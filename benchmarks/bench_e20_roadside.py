"""E20 — Masi et al. [63]: cooperative roadside perception.

Paper: merging roadside-camera observations with the vehicle's LiDAR
improves perceived object state accuracy in a complex intersection.
Shape: fused tracking error <= vehicle-only; occluded objects only
tracked at all with the roadside camera.
"""

import numpy as np
from conftest import once

from repro.eval import ResultTable
from repro.perception import CooperativePerception, RoadsideCamera
from repro.sensors.lidar import Obstacle


def _experiment(rng):
    camera = RoadsideCamera(position=np.array([0.0, 30.0]),
                            coverage_radius=80.0, sigma=0.35)
    visible = np.array([-20.0, 0.0])
    occluded = np.array([15.0, 12.0])  # hidden from the vehicle
    v_visible = np.array([3.0, 0.0])
    v_occluded = np.array([-2.0, -1.0])

    solo_errors, fused_errors = [], []
    occluded_tracked = 0
    for trial in range(10):
        trial_rng = np.random.default_rng(1000 + trial)
        solo = CooperativePerception()
        fused = CooperativePerception()
        pos_v, pos_o = visible.copy(), occluded.copy()
        for step in range(24):
            pos_v = pos_v + v_visible * 0.5
            pos_o = pos_o + v_occluded * 0.5
            vehicle_meas = [(pos_v + trial_rng.normal(0, 0.5, 2), 0.5)]
            cam_meas = [(m, camera.sigma) for m in camera.observe(
                [Obstacle(position=pos_v), Obstacle(position=pos_o)],
                trial_rng)]
            solo.step(0.5, vehicle_meas)
            fused.step(0.5, vehicle_meas + cam_meas)
        solo_errors.append(solo.position_errors([pos_v])[0])
        fused_errors.append(fused.position_errors([pos_v])[0])
        occ = fused.position_errors([pos_o])
        # The occluded object must be tracked by the fused system.
        nearest = min((float(np.hypot(*(t.position - pos_o)))
                       for t in fused.confirmed_tracks()), default=np.inf)
        occluded_tracked += nearest < 2.0
    return (float(np.mean(solo_errors)), float(np.mean(fused_errors)),
            occluded_tracked)


def test_e20_roadside_perception(benchmark, rng):
    solo, fused, occluded_tracked = once(benchmark, _experiment, rng)

    table = ResultTable("E20", "cooperative roadside perception [63]")
    table.add("vehicle-only error (m)", "(baseline)", f"{solo:.2f}", ok=None)
    table.add("fused error (m)", "(better)", f"{fused:.2f}",
              ok=fused <= solo * 1.05)
    table.add("occluded object tracked", "only with roadside",
              f"{occluded_tracked}/10 trials", ok=occluded_tracked >= 8)
    table.print()
    assert table.all_ok()
