"""GNSS receiver model: white noise plus an Ornstein-Uhlenbeck bias.

The bias term is what makes GNSS-only map building hard (Massow et al.
[28] get only 2.4 m from GPS probes): averaging many fixes removes white
noise but not the correlated multipath/atmospheric bias, so accuracy
saturates — exactly the behaviour this model reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.sensors.base import GNSS_NOISE_BY_GRADE, GnssNoise, SensorGrade
from repro.world.traffic import Trajectory


@dataclass(frozen=True)
class GnssFix:
    """One position fix (east-north metres in the map frame)."""

    t: float
    position: np.ndarray
    sigma: float  # advertised 1-D standard deviation


class GnssSensor:
    """Samples fixes along a trajectory with grade-dependent noise."""

    def __init__(self, grade: SensorGrade = SensorGrade.AUTOMOTIVE,
                 rate_hz: float = 1.0,
                 noise: Optional[GnssNoise] = None) -> None:
        self.grade = grade
        self.rate_hz = rate_hz
        self.noise = noise if noise is not None else GNSS_NOISE_BY_GRADE[grade]

    def measure(self, trajectory: Trajectory,
                rng: np.random.Generator) -> List[GnssFix]:
        dt = 1.0 / self.rate_hz
        noise = self.noise
        # OU bias: db = -b/tau dt + sigma*sqrt(2 dt/tau) dW, stationary
        # standard deviation = bias_sigma.
        bias = rng.normal(0.0, noise.bias_sigma, size=2)
        decay = np.exp(-dt / noise.bias_tau)
        drive = noise.bias_sigma * np.sqrt(1.0 - decay**2)
        fixes: List[GnssFix] = []
        t = trajectory.start_time
        while t <= trajectory.end_time:
            pose = trajectory.pose_at(t)
            truth = np.array([pose.x, pose.y])
            white = rng.normal(0.0, noise.white_sigma, size=2)
            fixes.append(GnssFix(
                t=float(t),
                position=truth + bias + white,
                sigma=float(np.hypot(noise.white_sigma, noise.bias_sigma)),
            ))
            bias = decay * bias + rng.normal(0.0, drive, size=2)
            t += dt
        return fixes
