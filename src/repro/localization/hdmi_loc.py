"""HDMI-Loc: bitwise raster-map particle localization [23].

The vector HD map is rasterized once into an 8-bit-per-cell
:class:`~repro.geometry.raster.BitmaskRaster` (one bit per semantic
class). Online, the vehicle builds a small body-frame patch of labelled
points from its sensors; each particle projects the patch into the map
raster and scores the bitwise agreement. Storage drops by orders of
magnitude versus the vector map while the filter stays sub-metre — the
paper reports a 0.3 m median over an 11 km drive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.elements import BoundaryType, Crosswalk, LaneBoundary
from repro.core.hdmap import HDMap
from repro.errors import LocalizationError
from repro.geometry.raster import BitmaskRaster, GridSpec
from repro.geometry.transform import SE2
from repro.localization.particle_filter import ParticleFilter2D

RASTER_CLASSES = ("marking", "road_edge", "crosswalk", "landmark")

DASH_LENGTH = 3.0
DASH_GAP = 4.5


def boundary_sample_points(boundary: LaneBoundary,
                           spacing: float = 0.35) -> np.ndarray:
    """Sample a boundary's painted surface.

    Dashed boundaries are sampled only on their painted dashes — the
    along-track structure that makes raster matching observable in the
    longitudinal direction.
    """
    line = boundary.line
    stations = np.arange(0.0, line.length, spacing)
    if boundary.boundary_type is BoundaryType.DASHED:
        period = DASH_LENGTH + DASH_GAP
        painted = np.mod(stations, period) < DASH_LENGTH
        stations = stations[painted]
    if stations.size == 0:
        return np.zeros((0, 2))
    return line.points_at(stations)


def _boundary_class(boundary: LaneBoundary) -> str:
    return ("road_edge"
            if boundary.boundary_type in (BoundaryType.ROAD_EDGE,
                                          BoundaryType.CURB)
            else "marking")


def rasterize_map(hdmap: HDMap, resolution: float = 0.25,
                  padding: float = 10.0) -> BitmaskRaster:
    """Collapse the vector map into the HDMI-Loc 8-bit label image."""
    spec = GridSpec.from_bounds(hdmap.bounds(), resolution, padding)
    raster = BitmaskRaster(spec, RASTER_CLASSES)
    # Every mark is dilated by one cell: observation noise (several cm)
    # must not drop a correctly positioned point into an unmarked
    # neighbouring cell, or the true pose scores little better than a
    # dash-period alias.
    offsets = np.array([[dx, dy] for dx in (-1, 0, 1) for dy in (-1, 0, 1)],
                       dtype=float) * resolution
    for boundary in hdmap.boundaries():
        pts = boundary_sample_points(boundary, spacing=resolution * 0.6)
        if pts.shape[0]:
            dilated = (pts[:, None, :] + offsets[None, :, :]).reshape(-1, 2)
            raster.mark_points(_boundary_class(boundary), dilated)
    for crosswalk in hdmap.crosswalks():
        raster.mark_points("crosswalk", crosswalk.polygon)
    for lm in hdmap.landmarks():
        raster.mark_points("landmark", lm.position[None, :] + offsets)
    return raster


@dataclass
class LabelledPatch:
    """Body-frame labelled points observed by the vehicle this frame."""

    points_by_class: Dict[str, np.ndarray]

    def total_points(self) -> int:
        return sum(int(p.shape[0]) for p in self.points_by_class.values())


def observe_patch(reality: HDMap, pose: SE2, rng: np.random.Generator,
                  radius: float = 25.0, spacing: float = 0.75,
                  noise_sigma: float = 0.08,
                  dropout: float = 0.25) -> LabelledPatch:
    """Sensor surrogate: sample labelled points around the true pose.

    Emulates the front-end (stereo semantics in the paper) by sampling the
    *reality* map's elements near the vehicle, in the body frame, with
    point noise and dropout.
    """
    inv = pose.inverse()
    by_class: Dict[str, List[np.ndarray]] = {c: [] for c in RASTER_CLASSES}
    for element in reality.elements_in_radius(pose.x, pose.y, radius):
        if isinstance(element, LaneBoundary):
            cls = _boundary_class(element)
            sampled = boundary_sample_points(element, spacing)
            if sampled.shape[0] == 0:
                continue
            near = np.hypot(sampled[:, 0] - pose.x,
                            sampled[:, 1] - pose.y) <= radius
            pts = sampled[near]
            if pts.shape[0] == 0:
                continue
            keep = rng.uniform(size=pts.shape[0]) >= dropout
            pts = pts[keep]
            if pts.shape[0] == 0:
                continue
            body = inv.apply(pts) + rng.normal(0.0, noise_sigma,
                                               size=(pts.shape[0], 2))
            by_class[cls].append(body)
    landmarks = reality.landmarks_in_radius(pose.x, pose.y, radius)
    if landmarks:
        pts = np.array([lm.position for lm in landmarks])
        keep = rng.uniform(size=pts.shape[0]) >= dropout
        pts = pts[keep]
        if pts.shape[0]:
            body = inv.apply(pts) + rng.normal(0.0, noise_sigma,
                                               size=(pts.shape[0], 2))
            by_class["landmark"].append(body)
    return LabelledPatch({
        cls: (np.concatenate(chunks) if chunks else np.zeros((0, 2)))
        for cls, chunks in by_class.items()
    })


class HdmiLocalizer:
    """Bitwise particle filter over the rasterized map."""

    def __init__(self, raster: BitmaskRaster, rng: np.random.Generator,
                 n_particles: int = 500, match_sharpness: float = 60.0) -> None:
        self.raster = raster
        self.filter = ParticleFilter2D(n_particles, rng)
        self.match_sharpness = match_sharpness
        self._initialized = False
        self._bits = {cls: self.raster.bit_of(cls) for cls in raster.class_names}

    def initialize(self, pose: SE2, sigma_xy: float = 3.0,
                   sigma_theta: float = 0.1) -> None:
        self.filter.init_gaussian(pose, sigma_xy, sigma_theta)
        self._initialized = True

    def predict(self, ds: float, dtheta: float) -> None:
        self._check()
        self.filter.predict(ds, dtheta,
                            sigma_ds=0.04 + 0.04 * abs(ds),
                            sigma_dtheta=0.008 + 0.08 * abs(dtheta))

    # Sparse unambiguous features (landmarks) outvote the dense-but-
    # longitudinally-aliased marking dashes; without this the filter can
    # lock one dash period off.
    CLASS_WEIGHTS = {"marking": 1.0, "road_edge": 1.0, "crosswalk": 4.0,
                     "landmark": 12.0}

    def update(self, patch: LabelledPatch) -> None:
        """Weight = exp(sharpness * weighted bitwise match fraction)."""
        self._check()
        total = sum(self.CLASS_WEIGHTS.get(cls, 1.0) * body.shape[0]
                    for cls, body in patch.points_by_class.items())
        if total == 0:
            return
        spec = self.raster.spec
        data = self.raster.data

        def weight(states: np.ndarray) -> np.ndarray:
            scores = np.zeros(states.shape[0])
            cos_t = np.cos(states[:, 2])
            sin_t = np.sin(states[:, 2])
            for cls, body in patch.points_by_class.items():
                if body.shape[0] == 0:
                    continue
                bit = self._bits[cls]
                class_weight = self.CLASS_WEIGHTS.get(cls, 1.0)
                # World points per particle: (N, P, 2) — vectorized rotate.
                wx = (states[:, 0][:, None]
                      + body[:, 0][None, :] * cos_t[:, None]
                      - body[:, 1][None, :] * sin_t[:, None])
                wy = (states[:, 1][:, None]
                      + body[:, 0][None, :] * sin_t[:, None]
                      + body[:, 1][None, :] * cos_t[:, None])
                cols = np.floor((wx - spec.origin_x) / spec.resolution).astype(int)
                rows = np.floor((wy - spec.origin_y) / spec.resolution).astype(int)
                ok = ((cols >= 0) & (cols < spec.width)
                      & (rows >= 0) & (rows < spec.height))
                vals = np.zeros(ok.shape, dtype=np.uint8)
                vals[ok] = data[rows[ok], cols[ok]]
                scores += class_weight * ((vals & bit) != 0).sum(axis=1)
            match_fraction = scores / total
            w = np.exp(self.match_sharpness * (match_fraction
                                               - match_fraction.max()))
            return w

        self.filter.update(weight)
        self.filter.resample_if_needed()

    def estimate(self) -> SE2:
        self._check()
        return self.filter.estimate()

    def _check(self) -> None:
        if not self._initialized:
            raise LocalizationError("localizer not initialized")
