"""MLVHM: monocular localization with a vector HD map [22].

A camera-only, low-cost localizer: lane observations give the lateral
position inside the matched lane; sign detections give range-bearing
fixes against vector-map landmarks; both feed one EKF. The map is
consumed in small *monocular segments* — only the elements near the
current estimate are touched, mirroring the paper's segment streaming.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.elements import TrafficLight, TrafficSign
from repro.core.hdmap import HDMap
from repro.geometry.transform import SE2
from repro.localization.ekf import PoseEKF
from repro.localization.map_matching import LaneMatcher
from repro.sensors.camera import LaneObservation, SignDetection


class MonocularLocalizer:
    """Camera + vector-map EKF localizer."""

    def __init__(self, hdmap: HDMap, initial: SE2,
                 sigma_xy: float = 2.0, sigma_theta: float = 0.1,
                 segment_radius: float = 60.0) -> None:
        self.map = hdmap
        self.ekf = PoseEKF(initial, sigma_xy, sigma_theta)
        self.matcher = LaneMatcher(hdmap)
        self.segment_radius = segment_radius

    def predict(self, ds: float, dtheta: float) -> None:
        self.ekf.predict(ds, dtheta,
                         sigma_ds=0.03 + 0.02 * abs(ds),
                         sigma_dtheta=0.005 + 0.05 * abs(dtheta))

    # ------------------------------------------------------------------
    def update_lane(self, obs: LaneObservation,
                    sigma: float = 0.12) -> bool:
        """Lateral + heading correction from a lane observation."""
        offset = obs.lane_centre_offset
        match = self.matcher.match(self.ekf.pose)
        if match is None:
            return False
        lane = self.map.get(match.lane_id)
        lane_point = lane.centerline.point_at(match.station)  # type: ignore[union-attr]
        lane_heading = lane.centerline.heading_at(match.station)  # type: ignore[union-attr]
        applied = False
        if offset is not None:
            applied |= self.ekf.update_lateral(offset, lane_heading,
                                               lane_point, sigma)
        applied |= self.ekf.update_heading(lane_heading + obs.heading_error,
                                           sigma=0.02)
        return applied

    # ------------------------------------------------------------------
    def update_signs(self, detections: Sequence[SignDetection],
                     sigma_bearing: float = np.radians(1.0),
                     sigma_range_rel: float = 0.06) -> int:
        """Range-bearing updates from associated sign detections.

        Association is nearest-landmark within a gate around the predicted
        detection position; unmatched detections (clutter) are dropped.
        """
        applied = 0
        pose = self.ekf.pose
        landmarks = [
            lm for lm in self.map.landmarks_in_radius(
                pose.x, pose.y, self.segment_radius)
            if isinstance(lm, (TrafficSign, TrafficLight))
        ]
        if not landmarks:
            return 0
        positions = np.array([lm.position for lm in landmarks])
        for det in detections:
            world = pose.apply(det.body_frame_position())
            dists = np.hypot(positions[:, 0] - world[0],
                             positions[:, 1] - world[1])
            i = int(np.argmin(dists))
            if dists[i] > 3.0:
                continue
            ok = self.ekf.update_landmark(
                positions[i], det.bearing, det.range,
                sigma_bearing=sigma_bearing,
                sigma_range=max(0.3, sigma_range_rel * det.range),
            )
            if ok:
                applied += 1
                pose = self.ekf.pose
        return applied

    def update_gnss(self, position: np.ndarray, sigma: float) -> bool:
        return self.ekf.update_position(position, sigma)

    @property
    def pose(self) -> SE2:
        return self.ekf.pose
