"""The tile pack file: mmap-backed storage for encoded tile payloads.

Layout (all integers little-endian)::

    offset 0                 64             data_end        dir_off
    +----------------------+--------------------------+--------------+
    | header (64 B)        | concatenated payloads    | directory    |
    |  magic "HDPK"        | (HDMV blobs, appended)   |  one 32-B    |
    |  format version      |                          |  entry per   |
    |  tile_size (f64)     |                          |  live tile   |
    |  dir_off / dir_len   |                          |              |
    |  count / dir_crc     |                          |              |
    +----------------------+--------------------------+--------------+

Write protocol (what makes publish atomic): payloads are only ever
*appended*; the directory is rewritten at the current end of file and
the 64-byte header is flipped last (write + flush + fsync between the
two steps). A reader that mapped the file before a publish keeps
serving the old directory — every offset it knows is still valid
because published bytes are never moved or truncated. A crash between
appends leaves the previous publish fully intact.

Superseded payloads (a tile re-added after publish) and stale
directories become dead bytes — *garbage* — that
:attr:`PackReader.garbage_bytes` accounts and :func:`compact_pack`
reclaims by rewriting only the live entries, byte-identically.

The reader never decodes at open: :meth:`PackReader.get` returns a
``memoryview`` slice of the mapping (zero copies), and
:meth:`PackReader.load` decodes a single tile on demand. Opening a
million-element pack therefore costs one ``mmap`` plus one directory
parse, regardless of how many elements the payloads hold.
"""

from __future__ import annotations

import mmap
import os
import struct
import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.tiles import TileId
from repro.errors import PackError
from repro.obs.log import get_logger
from repro.obs.metrics import Counter, Gauge

_log = get_logger("pack.format")

PACK_MAGIC = b"HDPK"
PACK_VERSION = 1
HEADER_SIZE = 64

#: magic, format version, flags, tile_size, dir_off, dir_len, count, dir_crc
_HEADER = struct.Struct("<4sHHdQQII")
#: tx, ty, offset, length, tile version, payload crc32, element count
_ENTRY = struct.Struct("<iiQIIII")
ENTRY_SIZE = _ENTRY.size


@dataclass(frozen=True)
class PackEntry:
    """One directory row: where a tile's payload lives and what it is."""

    tile: TileId
    offset: int
    length: int
    version: int
    checksum: int
    n_elements: int


class PackWriter:
    """Append payloads, publish directories atomically.

    A writer opened on an existing pack resumes after its last published
    directory: previously published payload bytes are never touched, so
    concurrent readers of the old directory stay valid. ``add`` of a
    tile that is already in the directory supersedes it (the old payload
    becomes garbage until :func:`compact_pack`).
    """

    def __init__(self, path: str, tile_size: float = 0.0) -> None:
        self.path = str(path)
        existing = os.path.exists(self.path) \
            and os.path.getsize(self.path) >= HEADER_SIZE
        self._entries: Dict[TileId, PackEntry] = {}
        if existing:
            reader = PackReader(self.path)
            try:
                self.tile_size = reader.tile_size
                self._entries = dict(reader._entries)
                # Resume *after* the published directory: the bytes a
                # live reader's directory points at are never reused.
                self._end = reader.file_bytes
            finally:
                reader.close()
            self._fh = open(self.path, "r+b")
            self._fh.seek(self._end)
        else:
            self.tile_size = float(tile_size)
            self._fh = open(self.path, "w+b")
            self._fh.write(b"\x00" * HEADER_SIZE)
            self._end = HEADER_SIZE
        self._published = len(self._entries)
        self._closed = False

    # -- building -------------------------------------------------------
    def add(self, tile: TileId, payload, version: int = 0,
            n_elements: int = 0) -> PackEntry:
        """Append one tile payload (not visible until :meth:`publish`)."""
        if self._closed:
            raise PackError("writer is closed")
        view = memoryview(payload)
        if view.nbytes == 0:
            raise PackError(f"refusing to pack empty payload for {tile}")
        entry = PackEntry(
            tile=tile, offset=self._end, length=view.nbytes,
            version=int(version), checksum=zlib.crc32(view),
            n_elements=int(n_elements))
        self._fh.seek(self._end)
        self._fh.write(view)
        self._end += view.nbytes
        self._entries[tile] = entry
        return entry

    def publish(self) -> int:
        """Write the directory, fsync, flip the header; returns the
        number of live entries now visible to new readers."""
        if self._closed:
            raise PackError("writer is closed")
        directory = bytearray()
        for tile in sorted(self._entries):
            e = self._entries[tile]
            directory += _ENTRY.pack(e.tile.tx, e.tile.ty, e.offset,
                                     e.length, e.version, e.checksum,
                                     e.n_elements)
        dir_off = self._end
        self._fh.seek(dir_off)
        self._fh.write(directory)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        header = _HEADER.pack(PACK_MAGIC, PACK_VERSION, 0, self.tile_size,
                              dir_off, len(directory), len(self._entries),
                              zlib.crc32(bytes(directory)))
        self._fh.seek(0)
        self._fh.write(header + b"\x00" * (HEADER_SIZE - _HEADER.size))
        self._fh.flush()
        os.fsync(self._fh.fileno())
        # Appends after this publish go past the directory we just
        # wrote; it becomes garbage only once the *next* publish lands.
        self._end = dir_off + len(directory)
        self._published = len(self._entries)
        return self._published

    # -- introspection --------------------------------------------------
    def tiles(self) -> List[TileId]:
        return sorted(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._fh.close()

    def __enter__(self) -> "PackWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class PackReader:
    """Zero-copy view over a published pack file.

    The whole file is mapped once (``mmap.ACCESS_READ``); :meth:`get`
    returns a ``memoryview`` slice of that mapping without copying or
    decoding, and :meth:`load` decodes one tile lazily. The directory is
    integrity-checked at open (magic, format version, directory CRC);
    per-payload checksums are verified on demand (``verify=True`` at
    open, or :meth:`verify` / :meth:`verify_all` later) so opening a
    continental pack stays O(directory).
    """

    def __init__(self, path: str, verify: bool = False,
                 garbage_warn_ratio: float = 0.5) -> None:
        if garbage_warn_ratio < 0.0:
            raise PackError("garbage_warn_ratio must be >= 0")
        self.path = str(path)
        #: one-shot ``pack_garbage_large`` warning threshold: dead bytes
        #: as a fraction of the file (``0`` disables the check). The
        #: counterpart of the router's ``journal_large`` guard — a pack
        #: past this ratio is overdue for :func:`compact_pack`.
        self.garbage_warn_ratio = garbage_warn_ratio
        self._garbage_warned = False
        self._fh = open(self.path, "rb")
        try:
            size = os.fstat(self._fh.fileno()).st_size
            if size < HEADER_SIZE:
                raise PackError(f"truncated pack header in {self.path}")
            self._mmap = mmap.mmap(self._fh.fileno(), 0,
                                   access=mmap.ACCESS_READ)
        except PackError:
            self._fh.close()
            raise
        self._buffer = memoryview(self._mmap)
        try:
            self._parse(size)
        except PackError:
            self.close()
            raise
        # pack.* counters: how the serving layer actually uses the pack.
        self.reads = Counter()
        self.bytes_served = Counter()
        self.decodes = Counter()
        self.checksum_failures = Counter()
        self._maybe_warn_garbage()
        if verify:
            bad = self.verify_all()
            if bad:
                self.close()
                raise PackError(
                    f"checksum mismatch for {len(bad)} tile(s) in "
                    f"{self.path}: {', '.join(str(t) for t in bad[:5])}")

    def _parse(self, size: int) -> None:
        (magic, version, _flags, tile_size, dir_off, dir_len, count,
         dir_crc) = _HEADER.unpack(self._buffer[:_HEADER.size])
        if magic != PACK_MAGIC:
            raise PackError(f"bad magic; {self.path} is not a tile pack")
        if version != PACK_VERSION:
            raise PackError(f"unsupported pack version {version}")
        if dir_off + dir_len > size:
            raise PackError(f"directory extends past EOF in {self.path}")
        if count * ENTRY_SIZE != dir_len:
            raise PackError(
                f"directory length {dir_len} does not fit {count} entries")
        directory = self._buffer[dir_off:dir_off + dir_len]
        if zlib.crc32(directory) != dir_crc:
            raise PackError(f"directory checksum mismatch in {self.path}")
        self.tile_size = float(tile_size)
        self._entries: Dict[TileId, PackEntry] = {}
        for i in range(count):
            tx, ty, offset, length, tile_version, checksum, n_elements = \
                _ENTRY.unpack(directory[i * ENTRY_SIZE:(i + 1) * ENTRY_SIZE])
            if offset + length > size:
                raise PackError(
                    f"payload of tile({tx},{ty}) extends past EOF")
            self._entries[TileId(tx, ty)] = PackEntry(
                TileId(tx, ty), offset, length, tile_version, checksum,
                n_elements)
        self._dir_off = dir_off
        self._dir_len = dir_len
        self._file_size = size
        self._data_end = max(
            [e.offset + e.length for e in self._entries.values()],
            default=HEADER_SIZE)

    # -- serving --------------------------------------------------------
    def __contains__(self, tile: TileId) -> bool:
        return tile in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def tiles(self) -> List[TileId]:
        return sorted(self._entries)

    def entry(self, tile: TileId) -> Optional[PackEntry]:
        return self._entries.get(tile)

    def get(self, tile: TileId) -> Optional[memoryview]:
        """The tile's payload as a zero-copy slice of the mapping."""
        entry = self._entries.get(tile)
        if entry is None:
            return None
        self.reads.add()
        self.bytes_served.add(entry.length)
        return self._buffer[entry.offset:entry.offset + entry.length]

    def load(self, tile: TileId):
        """Decode one tile to an :class:`~repro.core.hdmap.HDMap`."""
        from repro.storage.binary import decode_map

        view = self.get(tile)
        if view is None:
            return None
        self.decodes.add()
        return decode_map(view)

    @property
    def buffer(self) -> memoryview:
        """The raw mapping (identity anchor for zero-copy assertions)."""
        return self._buffer

    # -- integrity ------------------------------------------------------
    def verify(self, tile: TileId) -> None:
        """Raise :class:`PackError` if the tile's payload is corrupt."""
        entry = self._entries.get(tile)
        if entry is None:
            raise PackError(f"{tile} is not in this pack")
        view = self._buffer[entry.offset:entry.offset + entry.length]
        if zlib.crc32(view) != entry.checksum:
            self.checksum_failures.add()
            raise PackError(f"checksum mismatch for {tile} in {self.path}")

    def verify_all(self) -> List[TileId]:
        """Checksum every payload; returns the corrupt tiles."""
        bad: List[TileId] = []
        for tile in self._entries:
            try:
                self.verify(tile)
            except PackError:
                bad.append(tile)
        return bad

    # -- accounting -----------------------------------------------------
    @property
    def file_bytes(self) -> int:
        return self._file_size

    @property
    def live_bytes(self) -> int:
        return sum(e.length for e in self._entries.values())

    @property
    def garbage_bytes(self) -> int:
        """Dead bytes: superseded payloads and stale directories."""
        return max(0, self._file_size - HEADER_SIZE - self._dir_len
                   - self.live_bytes)

    @property
    def total_elements(self) -> int:
        """Sum of directory element counts (no payload decode)."""
        return sum(e.n_elements for e in self._entries.values())

    def _maybe_warn_garbage(self) -> None:
        """One ``pack_garbage_large`` warning when dead bytes cross the
        ``garbage_warn_ratio`` of the file (mirrors ``journal_large``)."""
        if self.garbage_warn_ratio <= 0.0 or self._garbage_warned:
            return
        garbage = self.garbage_bytes
        if garbage < self.garbage_warn_ratio * self._file_size:
            return
        self._garbage_warned = True
        _log.warning(
            "pack_garbage_large", path=self.path,
            garbage_bytes=garbage, file_bytes=self._file_size,
            ratio=round(garbage / self._file_size, 3),
            threshold=self.garbage_warn_ratio)

    def register_into(self, registry, prefix: str = "pack") -> None:
        """Register ``pack.*`` metrics: serving counters plus file-shape
        gauges (``pack.tiles`` / ``pack.file_bytes`` /
        ``pack.garbage_bytes`` / ``pack.elements``)."""
        registry.register(f"{prefix}.reads", self.reads)
        registry.register(f"{prefix}.bytes_served", self.bytes_served)
        registry.register(f"{prefix}.decodes", self.decodes)
        registry.register(f"{prefix}.checksum_failures",
                          self.checksum_failures)
        for name, value in ((f"{prefix}.tiles", len(self._entries)),
                            (f"{prefix}.file_bytes", self._file_size),
                            (f"{prefix}.garbage_bytes", self.garbage_bytes),
                            (f"{prefix}.elements", self.total_elements)):
            gauge = Gauge()
            gauge.set(int(value))
            registry.register(name, gauge)

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Release the mapping. With exported memoryviews still alive the
        mapping stays open until they are dropped (closing would
        invalidate zero-copy payloads already handed out)."""
        try:
            self._buffer.release()
        except BufferError:
            return
        try:
            self._mmap.close()
        except (BufferError, ValueError):
            pass
        finally:
            self._fh.close()

    def __enter__(self) -> "PackReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def write_pack(path: str, payloads: Iterable[Tuple[TileId, bytes]],
               tile_size: float = 0.0,
               versions: Optional[Dict[TileId, int]] = None,
               counts: Optional[Dict[TileId, int]] = None) -> int:
    """Write + publish a pack in one call; returns entries published."""
    versions = versions or {}
    counts = counts or {}
    with PackWriter(path, tile_size=tile_size) as writer:
        for tile, payload in payloads:
            writer.add(tile, payload, version=versions.get(tile, 0),
                       n_elements=counts.get(tile, 0))
        return writer.publish()


def compact_pack(src_path: str, dst_path: str) -> int:
    """Rewrite only the live entries of ``src`` into ``dst``.

    Payload bytes are copied verbatim (the reader round-trip is
    byte-identical), so compaction reclaims garbage without touching
    content. Returns the number of bytes reclaimed.
    """
    if os.path.abspath(src_path) == os.path.abspath(dst_path):
        raise PackError("compact_pack needs a distinct destination path")
    with PackReader(src_path) as reader:
        with PackWriter(dst_path, tile_size=reader.tile_size) as writer:
            for tile in reader.tiles():
                entry = reader._entries[tile]
                payload = reader.get(tile)
                writer.add(tile, payload, version=entry.version,
                           n_elements=entry.n_elements)
            writer.publish()
        reclaimed = reader.file_bytes - os.path.getsize(dst_path)
    return max(0, reclaimed)
