"""Routing, BHPS, Frenet path sets, and predictive cruise control."""

import numpy as np
import pytest

from repro.errors import NoRouteError, PlanningError
from repro.geometry.polyline import straight
from repro.planning import (
    FuelModel,
    LaneRouter,
    PathSetPlanner,
    PccPlanner,
    PlannerConfig,
    bhps_route,
    constant_speed_profile,
    simulate_fuel,
)
from repro.world import ElevationProfile


@pytest.fixture(scope="module")
def router(city):
    return LaneRouter(city)


@pytest.fixture(scope="module")
def endpoints(city):
    lanes = sorted(city.lanes(), key=lambda l: l.id)
    # Far-apart lanes so searches have real work to do.
    starts = [l for l in lanes if l.length > 50]
    return starts[0].id, starts[-1].id


class TestRouting:
    def test_dijkstra_finds_route(self, router, endpoints):
        start, goal = endpoints
        result = router.route(start, goal)
        assert result.lane_ids[0] == start
        assert result.lane_ids[-1] == goal
        assert result.cost > 0

    def test_route_is_connected(self, router, endpoints, city):
        start, goal = endpoints
        result = router.route(start, goal)
        graph = city.lane_graph()
        for u, v in zip(result.lane_ids, result.lane_ids[1:]):
            assert graph.has_edge(u, v)

    def test_astar_same_cost_fewer_expansions(self, router, endpoints):
        start, goal = endpoints
        dij = router.route(start, goal)
        ast = router.route_astar(start, goal)
        assert ast.cost == pytest.approx(dij.cost, rel=1e-9)
        assert ast.stats.expansions <= dij.stats.expansions

    def test_bhps_optimal_and_cheaper_than_dijkstra(self, router, endpoints):
        start, goal = endpoints
        dij = router.route(start, goal)
        for forward_bfs in (True, False):
            bh = bhps_route(router, start, goal, forward_bfs=forward_bfs)
            # BFS half optimizes hops, not metres: allow small suboptimality.
            assert bh.cost <= dij.cost * 1.35
            assert bh.stats.expansions < dij.stats.expansions * 1.2

    def test_no_route_raises(self, router, city):
        bogus = city.new_id("lane")
        start = next(iter(city.lanes())).id
        with pytest.raises(NoRouteError):
            router.route(start, bogus)

    def test_route_between_points(self, router, city):
        min_x, min_y, max_x, max_y = city.bounds()
        result = router.route_between_points((min_x + 20, min_y + 20),
                                             (max_x - 20, max_y - 20))
        assert result.n_lanes > 2

    def test_same_start_goal(self, router, endpoints):
        start, _ = endpoints
        result = router.route(start, start)
        assert result.lane_ids == [start]
        assert result.cost == 0.0


class TestFrenetPlanner:
    def setup_method(self):
        self.reference = straight([0, 0], [200, 0], spacing=5.0)
        self.planner = PathSetPlanner(self.reference)

    def test_generates_candidate_fan(self):
        paths = self.planner.generate(0.0, 0.0)
        terminals = sorted(p.terminal_offset for p in paths)
        assert len(terminals) >= 7
        assert terminals[0] < -2.0 and terminals[-1] > 2.0

    def test_unobstructed_prefers_centre(self):
        best = self.planner.plan(0.0, 0.5)
        assert abs(best.terminal_offset) < 1.0

    def test_obstacle_forces_detour(self):
        best = self.planner.plan(0.0, 0.0, obstacles=[(30.0, 0.0)])
        assert abs(best.terminal_offset) > 1.0

    def test_blocked_everywhere_raises(self):
        # Obstacles across the whole fan at the same station.
        wall = [(30.0, d) for d in np.linspace(-4.0, 4.0, 17)]
        with pytest.raises(PlanningError):
            self.planner.plan(0.0, 0.0, obstacles=wall)

    def test_inertia_prevents_flip_flop(self):
        # Symmetric obstacle: both sides equally good; the second plan must
        # stay on the side chosen first.
        first = self.planner.plan(0.0, 0.0, obstacles=[(30.0, 0.0)])
        second = self.planner.plan(2.0, 0.05, obstacles=[(30.0, 0.0)])
        assert np.sign(second.terminal_offset) == np.sign(first.terminal_offset)

    def test_path_starts_at_current_offset(self):
        paths = self.planner.generate(0.0, 1.2)
        for path in paths:
            assert path.laterals[0] == pytest.approx(1.2)

    def test_cartesian_conversion(self):
        best = self.planner.plan(0.0, 0.0)
        pts = best.cartesian(self.planner.frame)
        assert pts.shape[0] == best.stations.shape[0]


class TestPcc:
    @pytest.fixture(scope="class")
    def profile(self):
        return ElevationProfile.rolling(15000.0, np.random.default_rng(42))

    def test_fuel_model_monotone_in_slope(self):
        model = FuelModel()
        flat = model.fuel_rate(25.0, 0.0, 0.0)
        climb = model.fuel_rate(25.0, 0.0, 0.04)
        assert climb > flat

    def test_overrun_fuel_cut(self):
        model = FuelModel()
        downhill = model.fuel_rate(25.0, 0.0, -0.06)
        assert downhill == pytest.approx(model.idle_rate)

    def test_feasibility_limits(self):
        model = FuelModel()
        assert not model.feasible(30.0, 3.0, 0.05)  # beyond max power
        assert not model.feasible(20.0, -5.0, 0.0)  # beyond braking
        assert model.feasible(25.0, 0.0, 0.0)

    def test_pcc_saves_fuel_vs_constant_speed(self, profile):
        model = FuelModel()
        stations, speeds = constant_speed_profile(profile, 25.0)
        base_fuel, base_time = simulate_fuel(profile, stations, speeds, model)
        result = PccPlanner(time_penalty_litres_per_s=0.0006).plan(profile, 25.0)
        saving = (base_fuel - result.fuel_litres) / base_fuel
        assert saving > 0.02  # paper band: 8.73 %

    def test_time_matched_saving_positive(self, profile):
        """The anticipation benefit survives matching travel time."""
        model = FuelModel()
        result = PccPlanner(time_penalty_litres_per_s=0.0006).plan(profile, 25.0)
        stations, speeds = constant_speed_profile(profile, result.mean_speed())
        eq_fuel, eq_time = simulate_fuel(profile, stations, speeds, model)
        assert result.fuel_litres < eq_fuel
        assert result.travel_time == pytest.approx(eq_time, rel=0.02)

    def test_speed_band_respected(self, profile):
        planner = PccPlanner(speed_band=0.10)
        result = planner.plan(profile, 25.0)
        assert result.speeds.min() >= 25.0 * 0.9 - 1e-9
        assert result.speeds.max() <= 25.0 * 1.1 + 1e-9

    def test_flat_profile_holds_speed(self):
        profile = ElevationProfile.flat(5000.0)
        result = PccPlanner().plan(profile, 25.0)
        # On flat ground, deviating from a steady speed only costs fuel.
        assert float(np.std(result.speeds)) < 1.0

    def test_too_short_profile_raises(self):
        with pytest.raises(PlanningError):
            PccPlanner(station_step=100.0).plan(ElevationProfile.flat(50.0), 20.0)
