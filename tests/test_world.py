"""World substrate: builder, generators, trajectories, scenarios, elevation."""

import numpy as np
import pytest

from repro.core import Severity, validate_map
from repro.core.elements import BoundaryType, SignType
from repro.errors import PlanningError
from repro.geometry.polyline import straight
from repro.world import (
    ChangeSpec,
    ElevationProfile,
    HDMapGenSampler,
    MapTopologySpec,
    RoadSpec,
    WorldBuilder,
    apply_changes,
    drive_lane_sequence,
    drive_route,
)
from repro.world.traffic import drive_polyline


class TestBuilder:
    def setup_method(self):
        self.builder = WorldBuilder("t")
        self.segment = self.builder.add_road(RoadSpec(
            reference=straight([0, 0], [200, 0], spacing=10.0),
            forward_lanes=2, backward_lanes=1, lane_width=3.5))
        self.map = self.builder.finish()

    def test_lane_counts(self):
        assert len(self.segment.forward_lanes) == 2
        assert len(self.segment.backward_lanes) == 1
        assert len(list(self.map.boundaries())) == 4  # F+B+1

    def test_forward_lanes_right_of_reference(self):
        for lane_id in self.segment.forward_lanes:
            lane = self.map.get(lane_id)
            mid = lane.centerline.point_at(lane.length / 2)
            assert mid[1] < 0  # right-hand traffic

    def test_backward_lane_reversed(self):
        lane = self.map.get(self.segment.backward_lanes[0])
        assert lane.centerline.start[0] > lane.centerline.end[0]

    def test_boundaries_flank_lanes(self):
        errors = [i for i in validate_map(self.map)
                  if i.check == "boundary_consistency"]
        assert errors == []

    def test_edge_boundaries_are_road_edge(self):
        types = [b.boundary_type for b in self.map.boundaries()]
        assert types.count(BoundaryType.ROAD_EDGE) == 2

    def test_signs_along(self):
        signs = self.builder.add_signs_along(self.segment, spacing=50.0)
        assert len(signs) == 4
        # Signs sit on the right-hand side of the road.
        for sign in signs:
            assert sign.position[1] < -3.5


class TestGenerators:
    def test_highway_valid(self, highway):
        errors = [i for i in validate_map(highway)
                  if i.severity is Severity.ERROR]
        assert errors == []

    def test_highway_has_furniture(self, highway):
        assert len(list(highway.signs())) > 5
        assert len(list(highway.poles())) > 10

    def test_city_connected(self, city):
        import networkx as nx

        graph = city.lane_graph()
        assert nx.number_weakly_connected_components(graph) == 1

    def test_city_has_intersection_furniture(self, city):
        assert len(list(city.lights())) > 0
        assert len(list(city.crosswalks())) > 0

    def test_factory_single_direction_aisles(self, factory):
        for segment in factory.segments():
            assert len(segment.backward_lanes) == 0

    def test_factory_safety_signs(self, factory):
        signs = list(factory.signs())
        assert signs
        assert all(s.sign_type is SignType.SAFETY for s in signs)


class TestHDMapGen:
    def test_sample_global_graph_spacing(self, rng):
        sampler = HDMapGenSampler(MapTopologySpec(n_junctions=8))
        pos, edges = sampler.sample_global_graph(rng)
        assert pos.shape[0] >= 2
        for i in range(pos.shape[0]):
            for j in range(i + 1, pos.shape[0]):
                assert np.hypot(*(pos[i] - pos[j])) >= 200.0

    def test_local_geometry_endpoints_fixed(self, rng):
        sampler = HDMapGenSampler()
        a = np.array([0.0, 0.0])
        b = np.array([400.0, 100.0])
        line = sampler.sample_local_geometry(rng, a, b)
        assert np.allclose(line.start, a, atol=1e-9)
        assert np.allclose(line.end, b, atol=1e-9)
        assert line.length >= np.hypot(*(b - a))

    def test_sample_map_valid(self, rng):
        hdmap = HDMapGenSampler(MapTopologySpec(n_junctions=6)).sample_map(rng)
        errors = [i for i in validate_map(hdmap)
                  if i.severity is Severity.ERROR]
        assert errors == []
        assert len(list(hdmap.lanes())) > 0


class TestTrajectories:
    def test_drive_polyline_duration_and_length(self, rng):
        path = straight([0, 0], [100, 0], spacing=5.0)
        traj = drive_polyline(path, speed=10.0, dt=0.1)
        assert traj.duration == pytest.approx(10.0, abs=0.3)
        assert traj.path_length() == pytest.approx(100.0, abs=2.0)

    def test_lateral_wander_bounded(self, rng):
        path = straight([0, 0], [500, 0], spacing=5.0)
        traj = drive_polyline(path, speed=10.0, rng=rng, lateral_sigma=0.3)
        lateral = traj.positions()[:, 1]
        assert np.abs(lateral).max() < 1.0
        assert np.abs(lateral).max() > 0.05  # it does wander

    def test_pose_interpolation(self, rng):
        path = straight([0, 0], [100, 0], spacing=5.0)
        traj = drive_polyline(path, speed=10.0)
        pose = traj.pose_at(5.0)
        assert pose.x == pytest.approx(50.0, abs=1.0)

    def test_resampled(self):
        path = straight([0, 0], [100, 0], spacing=5.0)
        traj = drive_polyline(path, speed=10.0).resampled(0.5)
        dts = np.diff([s.t for s in traj.samples])
        assert np.allclose(dts, 0.5)

    def test_drive_lane_sequence_rejects_empty(self, highway):
        with pytest.raises(PlanningError):
            drive_lane_sequence(highway, [])

    def test_drive_route_covers_length(self, highway, rng):
        lane = next(iter(highway.lanes()))
        traj = drive_route(highway, lane.id, 500.0, rng)
        assert traj.path_length() >= 500.0 or traj.path_length() >= lane.length

    def test_speed_must_be_positive(self):
        with pytest.raises(PlanningError):
            drive_polyline(straight([0, 0], [10, 0]), speed=0.0)


class TestScenario:
    def test_apply_changes_counts(self, highway, rng):
        spec = ChangeSpec(add_signs=3, remove_signs=2, move_signs=1)
        scenario = apply_changes(highway, spec, rng)
        types = [c.change_type.value for c in scenario.true_changes]
        assert types.count("added") == 3
        assert types.count("removed") == 2
        assert types.count("moved") == 1

    def test_prior_unchanged(self, highway, rng):
        scenario = apply_changes(highway, ChangeSpec(add_signs=2), rng)
        assert len(list(scenario.prior.signs())) == len(list(highway.signs()))

    def test_construction_site_cluster(self, highway, rng):
        scenario = apply_changes(
            highway, ChangeSpec(construction_sites=1,
                                construction_signs_per_site=4), rng)
        added = [c for c in scenario.true_changes
                 if c.change_type.value == "added"]
        assert len(added) == 4


class TestElevation:
    def test_flat(self):
        profile = ElevationProfile.flat(1000.0)
        assert profile.slope_at(500.0) == 0.0

    def test_rolling_grade_bounded(self, rng):
        profile = ElevationProfile.rolling(10000.0, rng, max_grade=0.05)
        stations = np.linspace(0, 10000, 400)
        slopes = profile.slopes(stations)
        assert np.abs(slopes).max() <= 0.055

    def test_height_interpolation(self):
        profile = ElevationProfile(np.array([0.0, 100.0]),
                                   np.array([0.0, 10.0]))
        assert profile.height_at(50.0) == pytest.approx(5.0)
        assert profile.slope_at(50.0) == pytest.approx(0.1)

    def test_rejects_nonmonotonic(self):
        with pytest.raises(ValueError):
            ElevationProfile(np.array([0.0, 5.0, 3.0]), np.zeros(3))
