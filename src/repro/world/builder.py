"""Programmatic world construction.

``WorldBuilder`` turns road *specifications* (a reference line plus lane
counts) into a fully linked HD map: nodes, a HiDAM lane bundle, per-lane
centerlines offset from the reference, and shared boundaries between
adjacent lanes — the tedious-but-critical bookkeeping every map-creation
paper glosses over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.elements import (
    BoundaryType,
    Lane,
    LaneBoundary,
    LaneType,
    Node,
    RoadSegment,
    SignType,
    TrafficSign,
)
from repro.core.hdmap import HDMap
from repro.core.ids import ElementId
from repro.geometry.polyline import Polyline


@dataclass
class RoadSpec:
    """Specification of one road: geometry plus lane configuration.

    ``reference`` runs down the road centre; forward lanes sit to its
    right (negative lateral offsets), backward lanes to its left, matching
    right-hand traffic.
    """

    reference: Polyline
    forward_lanes: int = 1
    backward_lanes: int = 1
    lane_width: float = 3.5
    speed_limit: float = 13.89  # m/s
    boundary_spacing: float = 2.0  # resample spacing for derived lines


class WorldBuilder:
    """Accumulates roads and landmarks into a consistent :class:`HDMap`."""

    def __init__(self, name: str = "world") -> None:
        self.map = HDMap(name)

    # ------------------------------------------------------------------
    def add_road(self, spec: RoadSpec) -> RoadSegment:
        """Create the full element set for one road and return its segment."""
        ref = spec.reference
        start_node = self.map.create(Node, position=ref.start.copy())
        end_node = self.map.create(Node, position=ref.end.copy())
        segment = self.map.create(
            RoadSegment,
            start_node=start_node.id,
            end_node=end_node.id,
            reference_line=ref,
            forward_lanes=[],
            backward_lanes=[],
        )

        w = spec.lane_width
        # Boundary offsets from the reference line, leftmost (most positive)
        # to rightmost. With F forward + B backward lanes there are
        # F + B + 1 boundary lines.
        n_total = spec.forward_lanes + spec.backward_lanes
        # Centre divider sits on the reference; forward lanes to the right.
        boundary_offsets = [
            w * (spec.backward_lanes - i) for i in range(n_total + 1)
        ]
        boundaries: List[LaneBoundary] = []
        for i, off in enumerate(boundary_offsets):
            if i == 0 or i == n_total:
                btype = BoundaryType.ROAD_EDGE
            elif off == 0.0 and spec.backward_lanes > 0:
                btype = BoundaryType.DOUBLE_SOLID
            else:
                btype = BoundaryType.DASHED
            line = (ref.offset(off, spacing=spec.boundary_spacing)
                    if off != 0.0 else ref.resample(spec.boundary_spacing))
            # Painted lines are retro-reflective; curbs/road edges return a
            # distinct, weaker intensity band LiDAR pipelines key on.
            reflectivity = 0.38 if btype is BoundaryType.ROAD_EDGE else 0.62
            boundaries.append(
                self.map.create(LaneBoundary, line=line, boundary_type=btype,
                                reflectivity=reflectivity)
            )

        # Forward lanes: between boundary i and i+1 where offsets are
        # <= 0 side; ordered left-to-right in travel direction.
        for j in range(spec.forward_lanes):
            left_b = boundaries[spec.backward_lanes + j]
            right_b = boundaries[spec.backward_lanes + j + 1]
            centre_off = -w * (j + 0.5)
            lane = self._make_lane(ref, centre_off, spec, left_b.id, right_b.id,
                                   segment.id, reverse=False)
            segment.forward_lanes.append(lane.id)

        # Backward lanes travel end -> start; in their travel frame "left"
        # points back toward the road centre, so left/right swap relative
        # to the reference-line ordering.
        for j in range(spec.backward_lanes):
            left_b = boundaries[spec.backward_lanes - j]
            right_b = boundaries[spec.backward_lanes - j - 1]
            centre_off = w * (j + 0.5)
            lane = self._make_lane(ref, centre_off, spec, left_b.id, right_b.id,
                                   segment.id, reverse=True)
            segment.backward_lanes.append(lane.id)

        return segment

    def _make_lane(self, ref: Polyline, offset: float, spec: RoadSpec,
                   left_boundary: ElementId, right_boundary: ElementId,
                   segment_id: ElementId, reverse: bool) -> Lane:
        centre = ref.offset(offset, spacing=spec.boundary_spacing)
        if reverse:
            centre = centre.reversed()
        return self.map.create(
            Lane,
            centerline=centre,
            left_boundary=left_boundary,
            right_boundary=right_boundary,
            width=spec.lane_width,
            lane_type=LaneType.DRIVING,
            speed_limit=spec.speed_limit,
            segment=segment_id,
        )

    # ------------------------------------------------------------------
    def add_sign(self, position: Sequence[float], sign_type: SignType,
                 value: Optional[float] = None, facing: float = 0.0,
                 height: float = 2.2) -> TrafficSign:
        return self.map.create(
            TrafficSign,
            position=np.asarray(position, dtype=float),
            sign_type=sign_type,
            value=value,
            facing=facing,
            height=height,
        )

    def add_signs_along(self, segment: RoadSegment, spacing: float,
                        sign_type: SignType = SignType.SPEED_LIMIT,
                        side_offset: float = 8.0,
                        rng: Optional[np.random.Generator] = None) -> List[TrafficSign]:
        """Plant signs along a road's right side every ``spacing`` metres."""
        ref = segment.reference_line
        signs = []
        s = spacing / 2.0
        while s < ref.length:
            jitter = 0.0 if rng is None else float(rng.uniform(-spacing * 0.2,
                                                               spacing * 0.2))
            station = float(np.clip(s + jitter, 0.0, ref.length))
            base = ref.point_at(station)
            normal = ref.normal_at(station)
            pos = base - side_offset * normal  # right-hand side
            facing = ref.heading_at(station) + np.pi  # faces oncoming traffic
            signs.append(self.add_sign(pos, sign_type, facing=facing))
            s += spacing
        return signs

    def finish(self) -> HDMap:
        """Return the built map (the builder can keep being used)."""
        return self.map
