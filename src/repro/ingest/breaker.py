"""Per-stage circuit breakers: fail fast when a stage is systemically down.

Bounded retries (``max_attempts`` -> dead-letter queue) are the right
answer to *poison* — one batch that can never succeed. They are the wrong
answer to a *systemic* stage failure (a dependency outage, a bad deploy of
one stage): every batch in the partition burns its full retry budget
against a stage that cannot succeed, and by the time the stage recovers
the dead-letter queue holds work that was never poisonous.

The :class:`CircuitBreaker` separates the two failure classes. Each
pipeline stage gets one breaker shared by all workers:

- **closed** (healthy): calls flow through; consecutive failures are
  counted, any success resets the count;
- **open** (tripped after ``failure_threshold`` consecutive failures):
  callers get :class:`StageCircuitOpen` *without running the stage*; the
  pipeline nacks the batch for redelivery after ``cooldown_s`` and — key
  point — does **not** count the delivery against ``max_attempts``, so a
  systemic outage never dead-letters healthy batches;
- **half-open** (cooldown elapsed): up to ``half_open_probes`` concurrent
  probe deliveries run the stage for real; one success closes the breaker,
  one failure re-opens it for another cooldown.

State transitions are logged as ``stage_breaker_open`` /
``stage_breaker_half_open`` / ``stage_breaker_closed`` events so a chaos
run (or an operator) can line them up with the fault window.

The clock is injectable for deterministic tests, matching the convention
of the bus, pipeline, and admission controller.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.errors import IngestError
from repro.obs.log import get_logger

_log = get_logger("ingest.breaker")

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class StageCircuitOpen(IngestError):
    """Raised instead of running a stage whose breaker is open."""

    def __init__(self, stage: str, retry_after_s: float) -> None:
        super().__init__(f"circuit open for stage {stage!r}")
        self.stage = stage
        self.retry_after_s = retry_after_s


class CircuitBreaker:
    """A three-state (closed/open/half-open) breaker for one stage."""

    def __init__(self, stage: str = "",
                 failure_threshold: int = 6,
                 cooldown_s: float = 0.25,
                 half_open_probes: int = 1,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold < 1:
            raise IngestError("failure_threshold must be >= 1")
        if cooldown_s < 0:
            raise IngestError("cooldown_s must be >= 0")
        if half_open_probes < 1:
            raise IngestError("half_open_probes must be >= 1")
        self.stage = stage
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self.opens = 0        # times the breaker tripped
        self.fast_failures = 0  # calls refused while open

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def acquire(self) -> None:
        """Gate one stage call; raises :class:`StageCircuitOpen` if open.

        Must be paired with exactly one :meth:`record_success` or
        :meth:`record_failure` when it returns normally.
        """
        with self._lock:
            if self._state == OPEN:
                elapsed = self._clock() - self._opened_at
                if elapsed < self.cooldown_s:
                    self.fast_failures += 1
                    raise StageCircuitOpen(
                        self.stage, self.cooldown_s - elapsed)
                self._state = HALF_OPEN
                self._probes_in_flight = 0
                _log.warning("stage_breaker_half_open", stage=self.stage)
            if self._state == HALF_OPEN:
                if self._probes_in_flight >= self.half_open_probes:
                    self.fast_failures += 1
                    raise StageCircuitOpen(self.stage, self.cooldown_s)
                self._probes_in_flight += 1

    def record_success(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                _log.warning("stage_breaker_closed", stage=self.stage)
            self._state = CLOSED
            self._consecutive_failures = 0
            self._probes_in_flight = 0

    def record_failure(self) -> bool:
        """Count one stage failure; returns True when this trip opened
        the breaker (so callers can bump their own counters)."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._trip()
                return True
            self._consecutive_failures += 1
            if self._state == CLOSED and \
                    self._consecutive_failures >= self.failure_threshold:
                self._trip()
                return True
            return False

    def _trip(self) -> None:
        # caller holds self._lock
        self._state = OPEN
        self._opened_at = self._clock()
        self._consecutive_failures = 0
        self._probes_in_flight = 0
        self.opens += 1
        _log.error("stage_breaker_open", stage=self.stage,
                   cooldown_s=self.cooldown_s)

    def call(self, fn: Callable[[], object]) -> object:
        """Run ``fn`` through the breaker (convenience for tests)."""
        self.acquire()
        try:
            out = fn()
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return out

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "stage": self.stage,
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "opens": self.opens,
                "fast_failures": self.fast_failures,
            }


def breaker_for(stage: str,
                failure_threshold: int,
                cooldown_s: float,
                clock: Callable[[], float],
                half_open_probes: int = 1) -> Optional[CircuitBreaker]:
    """One breaker per stage, or None when breakers are disabled
    (``failure_threshold`` <= 0)."""
    if failure_threshold <= 0:
        return None
    return CircuitBreaker(stage, failure_threshold=failure_threshold,
                          cooldown_s=cooldown_s,
                          half_open_probes=half_open_probes, clock=clock)
