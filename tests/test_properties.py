"""Hypothesis property tests on core invariants."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.ids import ElementId
from repro.geometry.polyline import Polyline
from repro.geometry.transform import SE2
from repro.geometry.vec import wrap_angle
from repro.storage.binary import _read_svarint, _read_varint, _write_svarint, _write_varint
from io import BytesIO

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                   allow_infinity=False)
angles = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)


@st.composite
def se2_poses(draw):
    return SE2(draw(finite), draw(finite), draw(angles))


@st.composite
def polylines(draw):
    n = draw(st.integers(min_value=2, max_value=20))
    xs = draw(st.lists(st.floats(min_value=-1e4, max_value=1e4,
                                 allow_nan=False), min_size=n, max_size=n))
    ys = draw(st.lists(st.floats(min_value=-1e4, max_value=1e4,
                                 allow_nan=False), min_size=n, max_size=n))
    pts = np.column_stack([xs, ys])
    seg = np.diff(pts, axis=0)
    assume(np.all(np.hypot(seg[:, 0], seg[:, 1]) > 1e-6))
    return Polyline(pts)


class TestSE2Properties:
    @given(se2_poses())
    def test_inverse_is_identity(self, pose):
        identity = pose @ pose.inverse()
        assert abs(identity.x) < 1e-6 * max(1.0, abs(pose.x), abs(pose.y))
        assert abs(wrap_angle(identity.theta)) < 1e-9

    @given(se2_poses(), se2_poses())
    def test_compose_matches_matrices(self, a, b):
        left = (a @ b).as_matrix()
        right = a.as_matrix() @ b.as_matrix()
        assert np.allclose(left, right, atol=1e-6)

    @given(se2_poses(), st.tuples(finite, finite))
    def test_apply_preserves_distances(self, pose, point):
        p = np.array(point)
        q = p + np.array([1.0, 2.0])
        pa, qa = pose.apply(p), pose.apply(q)
        assert np.hypot(*(qa - pa)) == pytest.approx(np.hypot(*(q - p)),
                                                     rel=1e-9)

    @given(angles)
    def test_wrap_angle_idempotent(self, a):
        w = wrap_angle(a)
        assert wrap_angle(w) == pytest.approx(w)
        assert -math.pi < w <= math.pi


class TestPolylineProperties:
    @given(polylines())
    @settings(deadline=None)
    def test_length_at_least_endpoint_distance(self, line):
        direct = float(np.hypot(*(line.end - line.start)))
        assert line.length >= direct - 1e-6

    @given(polylines(), st.floats(min_value=0.0, max_value=1.0))
    @settings(deadline=None)
    def test_point_at_lies_near_line(self, line, frac):
        s = frac * line.length
        p = line.point_at(s)
        assert line.distance_to(p) < 1e-6

    @given(polylines())
    @settings(deadline=None)
    def test_reverse_preserves_length(self, line):
        assert line.reversed().length == pytest.approx(line.length, rel=1e-9)

    @given(polylines(), st.floats(min_value=0.05, max_value=1.0))
    @settings(deadline=None)
    def test_projection_of_on_line_point_roundtrips(self, line, frac):
        s = frac * line.length
        assume(0.01 < s < line.length - 0.01)
        p = line.point_at(s)
        s2, d = line.project(p)
        assert abs(d) < 1e-6
        # Station can differ on self-intersecting polylines but the point
        # must map back to the same location.
        assert np.allclose(line.point_at(s2), p, atol=1e-5)

    @given(polylines(), st.floats(min_value=1.0, max_value=50.0))
    @settings(deadline=None)
    def test_resample_preserves_endpoints_and_length(self, line, spacing):
        r = line.resample(spacing)
        assert np.allclose(r.start, line.start, atol=1e-9)
        assert np.allclose(r.end, line.end, atol=1e-9)
        assert r.length <= line.length + 1e-6

    @given(polylines(), st.floats(min_value=0.01, max_value=5.0))
    @settings(deadline=None)
    def test_simplify_within_tolerance(self, line, tol):
        simple = line.simplify(tol)
        # Every original vertex stays within tol of the simplified line.
        for p in line.points:
            assert simple.distance_to(p) <= tol * 1.01 + 1e-9


class TestVarintProperties:
    @given(st.integers(min_value=0, max_value=2**62))
    def test_varint_roundtrip(self, n):
        buf = BytesIO()
        _write_varint(buf, n)
        buf.seek(0)
        assert _read_varint(buf) == n

    @given(st.integers(min_value=-2**61, max_value=2**61))
    def test_svarint_roundtrip(self, n):
        buf = BytesIO()
        _write_svarint(buf, n)
        buf.seek(0)
        assert _read_svarint(buf) == n


class TestIdProperties:
    @given(st.sampled_from(["lane", "sign", "boundary", "x"]),
           st.integers(min_value=0, max_value=2**31))
    def test_id_parse_roundtrip(self, kind, num):
        eid = ElementId(kind, num)
        assert ElementId.parse(str(eid)) == eid


class TestBinaryCodecProperty:
    @given(st.lists(st.tuples(
        st.floats(min_value=-5e4, max_value=5e4, allow_nan=False),
        st.floats(min_value=-5e4, max_value=5e4, allow_nan=False)),
        min_size=1, max_size=12))
    @settings(deadline=None, max_examples=30)
    def test_signs_roundtrip_through_binary(self, positions):
        from repro.core import HDMap, TrafficSign
        from repro.core.elements import SignType
        from repro.storage import decode_map, encode_map

        hdmap = HDMap("prop")
        for x, y in positions:
            hdmap.create(TrafficSign, position=np.array([x, y]),
                         sign_type=SignType.STOP)
        again = decode_map(encode_map(hdmap))
        originals = sorted(hdmap.signs(), key=lambda s: s.id)
        decoded = sorted(again.signs(), key=lambda s: s.id)
        assert len(originals) == len(decoded)
        for a, b in zip(originals, decoded):
            assert np.allclose(a.position, b.position, atol=0.006)
