"""Maintenance/update pipelines: DBN, SLAMCU, crowd update, fusion, etc."""

import numpy as np
import pytest

from repro.core import ChangeType, HDMap
from repro.core.ids import ElementId
from repro.geometry.polyline import straight
from repro.geometry.transform import SE2
from repro.update import (
    ChangeClassifier,
    CrowdUpdatePipeline,
    DiffNet,
    DiscreteDBN,
    IncrementalFuser,
    LaneLearner,
    Slamcu,
    TraversalFeatures,
)
from repro.update.mec import CentralAggregator, MecServer, RsuRegion, build_rsu_grid
from repro.core.tiles import TileId
from repro.world import ChangeSpec, apply_changes, drive_route


class TestDBN:
    def test_presence_chain_decays_without_sightings(self):
        dbn = DiscreteDBN.presence_chain()
        p0 = dbn.probability(0)
        for _ in range(10):
            dbn.step([0.1, 0.95])  # expected but missed
        assert dbn.probability(0) < 0.05 < p0

    def test_sightings_confirm_presence(self):
        dbn = DiscreteDBN.presence_chain(prior_present=0.5)
        for _ in range(5):
            dbn.step([0.9, 0.05])
        assert dbn.probability(0) > 0.95

    def test_rejects_bad_transition(self):
        with pytest.raises(ValueError):
            DiscreteDBN(np.array([[0.5, 0.6], [0.0, 1.0]]),
                        np.array([0.5, 0.5]))

    def test_uninformative_update_is_noop(self):
        dbn = DiscreteDBN.presence_chain()
        before = dbn.belief.copy()
        dbn.update([0.0, 0.0])
        assert np.allclose(dbn.belief, before)


@pytest.fixture(scope="module")
def slamcu_setup():
    rng = np.random.default_rng(500)
    from repro.world import generate_highway

    hw = generate_highway(rng, length=4000.0, sign_spacing=200.0)
    scenario = apply_changes(hw, ChangeSpec(add_signs=4, remove_signs=3), rng)
    lanes = list(scenario.reality.lanes())
    trajectories = [drive_route(scenario.reality, lanes[i].id, 3900.0, rng)
                    for i in (0, 2)]
    return scenario, trajectories


class TestSlamcu:
    def test_detects_most_changes(self, slamcu_setup):
        scenario, trajectories = slamcu_setup
        rng = np.random.default_rng(501)
        report = Slamcu(scenario.prior.copy()).run(scenario, trajectories, rng)
        assert report.change_accuracy >= 0.7  # paper: 96 %

    def test_new_feature_error_in_figure2_band(self, slamcu_setup):
        scenario, trajectories = slamcu_setup
        rng = np.random.default_rng(502)
        report = Slamcu(scenario.prior.copy()).run(scenario, trajectories, rng)
        if not np.isnan(report.new_feature_errors.mean):
            # Figure 2: mean 0.8 m, sigma 0.9 m — stay in that band.
            assert report.new_feature_errors.mean < 2.0

    def test_patch_applies_cleanly(self, slamcu_setup):
        scenario, trajectories = slamcu_setup
        rng = np.random.default_rng(503)
        prior = scenario.prior.copy()
        report = Slamcu(prior).run(scenario, trajectories, rng)
        from repro.core import VersionedMap

        vm = VersionedMap(prior)
        version = vm.apply(report.patch)
        assert version == 1

    def test_no_changes_no_detections(self):
        rng = np.random.default_rng(504)
        from repro.world import generate_highway

        hw = generate_highway(rng, length=2000.0, sign_spacing=250.0)
        scenario = apply_changes(hw, ChangeSpec(), rng)
        lane = next(iter(scenario.reality.lanes()))
        traj = drive_route(scenario.reality, lane.id, 1900.0, rng)
        report = Slamcu(scenario.prior.copy()).run(scenario, traj, rng)
        assert len(report.detected_changes) <= 1  # tolerate one FP


class TestChangeClassifier:
    def test_clean_site_scores_low(self):
        f = TraversalFeatures(TileId(0, 0), missing_ratio=0.0,
                              unexpected_count=0.0, innovation=0.4)
        assert ChangeClassifier().score(f) < 0.4

    def test_changed_site_scores_high(self):
        f = TraversalFeatures(TileId(0, 0), missing_ratio=0.8,
                              unexpected_count=4.0, innovation=1.0)
        assert ChangeClassifier().score(f) > 0.6


class TestCrowdUpdate:
    def test_multi_traversal_beats_single(self):
        rng = np.random.default_rng(505)
        from repro.world import generate_highway

        hw = generate_highway(rng, length=2500.0, sign_spacing=150.0)
        scenario = apply_changes(
            hw, ChangeSpec(construction_sites=2,
                           construction_signs_per_site=5,
                           remove_signs=3), rng)
        pipeline = CrowdUpdatePipeline(scenario.prior)
        lane = next(iter(scenario.reality.lanes()))
        changed_tiles = {pipeline.tiles.tile_of(*c.position)
                         for c in scenario.true_changes}
        single_correct = multi_correct = evaluated = 0
        for k in range(8):
            traj = drive_route(scenario.reality, lane.id, 2400.0, rng)
            pipeline.ingest(pipeline.traverse(scenario.reality, traj, rng))
        for site, scores in pipeline._site_scores.items():
            truth = site in changed_tiles
            single = pipeline.site_decision(site, multi_traversal=False)
            multi = pipeline.site_decision(site, multi_traversal=True)
            evaluated += 1
            single_correct += single == truth
            multi_correct += multi == truth
        assert evaluated > 0
        assert multi_correct >= single_correct

    def test_jobs_created_for_changed_sites(self):
        rng = np.random.default_rng(506)
        from repro.world import generate_highway

        hw = generate_highway(rng, length=2500.0, sign_spacing=150.0)
        scenario = apply_changes(
            hw, ChangeSpec(construction_sites=2,
                           construction_signs_per_site=6), rng)
        pipeline = CrowdUpdatePipeline(scenario.prior)
        lane = next(iter(scenario.reality.lanes()))
        for _ in range(5):
            traj = drive_route(scenario.reality, lane.id, 2400.0, rng)
            pipeline.ingest(pipeline.traverse(scenario.reality, traj, rng))
        jobs = set(pipeline.create_jobs())
        changed_tiles = {pipeline.tiles.tile_of(*c.position)
                        for c in scenario.true_changes}
        assert jobs & changed_tiles  # at least one construction site flagged


class TestIncrementalFuser:
    def test_fusion_tightens_position(self, rng):
        fuser = IncrementalFuser()
        eid = ElementId("sign", 1)
        truth = np.array([10.0, 10.0])
        fuser.seed(eid, truth + [0.5, -0.5], sigma=1.0, t=0.0)
        for k in range(20):
            fuser.observe(truth + rng.normal(0, 0.3, 2), 0.3, t=float(k))
        element = fuser.elements[eid]
        assert float(np.hypot(*(element.position - truth))) < 0.2
        assert element.position_sigma() < 0.2
        assert element.confidence > 0.9

    def test_time_decay_enables_adaptation(self, rng):
        """After the world shifts, decay lets the map forget faster."""
        def run(use_decay):
            fuser = IncrementalFuser(use_time_decay=use_decay,
                                     decay_per_second=0.01)
            eid = ElementId("sign", 1)
            fuser.seed(eid, np.array([0.0, 0.0]), 0.3, t=0.0)
            for k in range(10):
                fuser.observe(np.array([0.0, 0.0]), 0.2, t=float(k))
            # Element vanishes; two misses arrive much later.
            for k in range(2):
                fuser.miss(eid, t=200.0 + k)
            return fuser.elements[eid].confidence

        assert run(True) < run(False)

    def test_unmatched_promoted_to_new_element(self):
        fuser = IncrementalFuser(promote_after=3)
        for k in range(3):
            fuser.observe(np.array([5.0, 5.0]), 0.3, t=float(k))
        assert any(eid.kind == "fused" for eid in fuser.elements)
        assert fuser.feedback_size() == 0

    def test_prune_drops_dead_elements(self):
        fuser = IncrementalFuser(confidence_loss=0.5)
        eid = ElementId("sign", 1)
        fuser.seed(eid, np.zeros(2), 0.3, t=0.0, confidence=0.5)
        fuser.miss(eid, 1.0)
        dead = fuser.prune()
        assert eid in dead


class TestLaneLearner:
    def test_smoothed_beats_naive_on_sparse_noisy_data(self, rng):
        truth = straight([0, 0], [300, 0], spacing=10.0)
        learner = LaneLearner(truth, station_bin=10.0, smoothness=40.0)
        s = rng.uniform(0, 300, 120)
        d = rng.normal(0.0, 1.2, 120)  # crowd-grade lateral noise
        pts = np.array([truth.point_at(float(si)) + [0, float(di)]
                        for si, di in zip(s, d)])
        smooth = learner.fit(pts)
        naive = learner.fit_naive(pts)
        assert smooth is not None and naive is not None
        assert learner.score(smooth, truth).mean < learner.score(naive, truth).mean

    def test_too_few_points(self):
        truth = straight([0, 0], [300, 0])
        learner = LaneLearner(truth)
        assert learner.fit(np.zeros((2, 2))) is None


class TestDiffNet:
    def test_detects_added_and_removed(self, rng):
        from repro.core.elements import SignType, TrafficSign

        prior = HDMap("p")
        prior.create(TrafficSign, position=np.array([10.0, 0.0]),
                     sign_type=SignType.STOP)
        prior.create(TrafficSign, position=np.array([-20.0, 5.0]),
                     sign_type=SignType.STOP)
        pose = SE2(0.0, 0.0, 0.0)
        # Reality: first sign still there, second removed, a new one added.
        observed = np.array([[10.1, 0.05], [0.0, 15.0]])
        regions = DiffNet().compare(prior, pose, observed)
        types = sorted(r.change_type.value for r in regions)
        assert "added" in types
        assert "removed" in types

    def test_no_changes_no_regions(self, rng):
        from repro.core.elements import SignType, TrafficSign

        prior = HDMap("p")
        prior.create(TrafficSign, position=np.array([10.0, 0.0]),
                     sign_type=SignType.STOP)
        regions = DiffNet().compare(prior, SE2(0, 0, 0),
                                    np.array([[10.0, 0.0]]))
        assert regions == []


class TestMec:
    def test_edge_compression(self, rng):
        from repro.core.elements import SignType, TrafficSign

        prior = HDMap("p")
        sign_ids = []
        for x in range(0, 400, 50):
            s = prior.create(TrafficSign, position=np.array([float(x), 5.0]),
                             sign_type=SignType.STOP)
            sign_ids.append(s.id)
        servers = build_rsu_grid(prior, tile_size=200.0)
        central = CentralAggregator()
        # 10 vehicles upload raw detections; one sign (the first) vanished.
        for _ in range(10):
            for region, server in servers:
                x0, y0, x1, y1 = region.bounds
                visible = [sid for sid in sign_ids
                           if x0 <= prior.get(sid).position[0] < x1]
                detections = [prior.get(sid).position + rng.normal(0, 0.2, 2)
                              for sid in visible if sid != sign_ids[0]]
                server.ingest(detections, visible)
        for _, server in servers:
            central.receive(server.extract_changes())
        assert any(c.change_type is ChangeType.REMOVED
                   and c.element_id == sign_ids[0] for c in central.changes)
        only_servers = [s for _, s in servers]
        assert central.compression_factor(only_servers) > 10.0
