"""Crowd-based HD-map update (Pannen et al. [42], [44]).

Three pipelines, as in the paper: *change detection* (per-traversal FCD
features -> a boosted change classifier), *job creation* (suspicious tiles
become verification jobs once enough traversals agree), and *map updating*
(confirmed changes are learned into a patch). The headline result is the
single- vs multi-traversal classification gap: one traversal's evidence is
noisy (the paper: much lower performance), aggregating ~tens of traversals
reaches 98.7 % sensitivity / 81.2 % specificity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.elements import TrafficSign
from repro.core.hdmap import HDMap
from repro.core.tiles import TileId, TileScheme
from repro.geometry.transform import SE2
from repro.sensors.camera import Camera
from repro.world.scenario import Scenario
from repro.world.traffic import Trajectory


@dataclass
class TraversalFeatures:
    """Per-traversal, per-site evidence features (the classifier input).

    - ``missing_ratio``: expected-but-unseen map features / expected;
    - ``unexpected_count``: detections with no map counterpart;
    - ``innovation``: mean localization innovation (map-matching residual
      growth, the two-particle-filter divergence proxy).
    """

    site: TileId
    missing_ratio: float
    unexpected_count: float
    innovation: float

    def vector(self) -> np.ndarray:
        return np.array([self.missing_ratio, self.unexpected_count,
                         self.innovation])


class ChangeClassifier:
    """A tiny boosted-stump-style classifier over traversal features.

    Three weighted decision stumps (one per feature) — the shape of the
    boosted classifier in [42] without the learning machinery; weights were
    chosen once against a held-out synthetic set.
    """

    def __init__(self, thresholds: Tuple[float, float, float] = (0.35, 1.5, 0.8),
                 weights: Tuple[float, float, float] = (1.0, 1.2, 0.6),
                 bias: float = -0.9) -> None:
        self.thresholds = thresholds
        self.weights = weights
        self.bias = bias

    def score(self, features: TraversalFeatures) -> float:
        """Change score in (0, 1)."""
        x = features.vector()
        z = self.bias
        for value, threshold, weight in zip(x, self.thresholds, self.weights):
            z += weight * (1.0 if value > threshold else -0.2)
        return float(1.0 / (1.0 + np.exp(-z)))

    def classify(self, features: TraversalFeatures,
                 threshold: float = 0.5) -> bool:
        return self.score(features) >= threshold


class CrowdUpdatePipeline:
    """change detection -> job creation -> map updating."""

    def __init__(self, prior: HDMap, tile_size: float = 250.0,
                 camera: Optional[Camera] = None,
                 localization_sigma: float = 0.4,
                 job_threshold: float = 0.5,
                 min_traversals_for_job: int = 3) -> None:
        self.prior = prior
        self.tiles = TileScheme(tile_size)
        self.camera = camera if camera is not None else Camera(
            detection_prob=0.85, false_positive_rate=0.08)
        self.localization_sigma = localization_sigma
        self.classifier = ChangeClassifier()
        self.job_threshold = job_threshold
        self.min_traversals_for_job = min_traversals_for_job
        # site -> accumulated scores across traversals
        self._site_scores: Dict[TileId, List[float]] = {}

    # ------------------------------------------------------------------
    def traverse(self, reality: HDMap, trajectory: Trajectory,
                 rng: np.random.Generator, frame_dt: float = 1.0
                 ) -> List[TraversalFeatures]:
        """One FCD traversal: returns per-visited-tile features."""
        per_site: Dict[TileId, Dict[str, float]] = {}
        t = trajectory.start_time
        while t <= trajectory.end_time:
            true_pose = trajectory.pose_at(t)
            est_pose = SE2(
                true_pose.x + float(rng.normal(0, self.localization_sigma)),
                true_pose.y + float(rng.normal(0, self.localization_sigma)),
                true_pose.theta,
            )
            site = self.tiles.tile_of(est_pose.x, est_pose.y)
            bucket = per_site.setdefault(site, {
                "expected": 0.0, "missing": 0.0, "unexpected": 0.0,
                "innovation": 0.0, "frames": 0.0,
            })
            expected = [
                s for s in self.prior.landmarks_in_radius(
                    est_pose.x, est_pose.y, self.camera.max_range)
                if isinstance(s, TrafficSign)
                and self.camera.in_view(est_pose, s.position)
            ]
            detections = self.camera.observe_signs(reality, true_pose, rng, t=t)
            det_world = [est_pose.apply(d.body_frame_position())
                         for d in detections]
            used = [False] * len(det_world)
            for sign in expected:
                bucket["expected"] += 1
                hit = False
                for i, w in enumerate(det_world):
                    if not used[i] and float(np.hypot(*(w - sign.position))) <= 3.0:
                        used[i] = True
                        hit = True
                        break
                if not hit:
                    bucket["missing"] += 1
            bucket["unexpected"] += sum(1 for u in used if not u)
            # Innovation proxy: localization residual against map furniture.
            bucket["innovation"] += float(rng.normal(
                0.4 + 0.5 * (bucket["missing"] > 0), 0.1))
            bucket["frames"] += 1
            t += frame_dt

        features = []
        for site, bucket in per_site.items():
            if bucket["frames"] < 3:
                continue
            expected = max(bucket["expected"], 1.0)
            features.append(TraversalFeatures(
                site=site,
                missing_ratio=bucket["missing"] / expected,
                unexpected_count=bucket["unexpected"] / bucket["frames"] * 10.0,
                innovation=bucket["innovation"] / bucket["frames"],
            ))
        return features

    # ------------------------------------------------------------------
    def ingest(self, features: Sequence[TraversalFeatures]) -> None:
        """Change-detection pipeline: accumulate per-site scores."""
        for f in features:
            self._site_scores.setdefault(f.site, []).append(
                self.classifier.score(f))

    def create_jobs(self) -> List[TileId]:
        """Job-creation pipeline: sites whose aggregated score crosses the
        threshold with enough traversals."""
        jobs = []
        for site, scores in self._site_scores.items():
            if len(scores) < self.min_traversals_for_job:
                continue
            if float(np.mean(scores)) >= self.job_threshold:
                jobs.append(site)
        return jobs

    def site_decision(self, site: TileId,
                      multi_traversal: bool = True) -> Optional[bool]:
        """Classify one site as changed/unchanged.

        ``multi_traversal=False`` uses only the first traversal's score —
        the single-traversal baseline of the paper.
        """
        scores = self._site_scores.get(site)
        if not scores:
            return None
        if multi_traversal:
            return float(np.mean(scores)) >= self.job_threshold
        return scores[0] >= self.job_threshold

    def reset(self) -> None:
        self._site_scores.clear()
