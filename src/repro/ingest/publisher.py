"""Idempotent patch publication into the authoritative map database.

The last hop of the maintenance loop: confirmed :class:`ConfirmedPatch`
objects are ingested into :class:`~repro.update.distribution.MapDistributionServer`
under a configurable :class:`~repro.update.distribution.ConflictPolicy`,
after which the serving layer's ``ChangesSince`` immediately reflects them
(both read the same versioned database).

Delivery upstream is at-least-once, so the same logical change can reach
the publisher more than once (batch redelivery after a worker crash, a
retry that half-succeeded). The publisher makes publication *exactly-once
per patch key*: a key that was ever accepted is never applied again, and
the suppression is counted, never silent. It also closes the freshness
measurement: the lag from the oldest contributing observation's enqueue
stamp to the version the patch became servable at.

The hop into the database can itself fail transiently (a replica
fail-over, a chaos-injected outage): an ingest that raises
:class:`TransientPublishError` is retried with exponential backoff up to
``max_publish_attempts`` times (``publish_retry`` warning events), then
surrendered with a ``publish_failed`` error event and a failed
:class:`PublishResult`. The patch's key is *not* recorded on failure, so
a later redelivery of the same logical change may still publish it.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ingest.verify import VerifyGate

from repro.core.versioning import MapPatch
from repro.ingest.metrics import IngestMetrics
from repro.obs.log import get_logger
from repro.obs.trace import TRACER
from repro.serve.metrics import ServiceMetrics
from repro.update.distribution import (
    ConflictPolicy,
    IngestResult,
    MapDistributionServer,
)

_log = get_logger("ingest.publisher")


class TransientPublishError(Exception):
    """A retryable failure of the publisher -> database hop.

    Raised by the database side (or a fault injector wrapping it) to
    signal that the ingest did not happen but may succeed if retried —
    the publisher's analogue of a 503.
    """


@dataclass
class ConfirmedPatch:
    """A pipeline-confirmed patch plus its idempotency key.

    ``key`` deterministically names the logical change (tile + change type
    + target), so redelivered emissions collide instead of duplicating.
    ``enqueued_at`` is the bus enqueue stamp of the oldest observation
    that contributed — the start of the freshness-lag clock.
    ``verified`` marks that the constraint gate already judged this
    patch (set by :class:`~repro.ingest.verify.VerifyGate`), so the
    publisher's backstop check does not run it twice.
    """

    key: str
    patch: MapPatch
    enqueued_at: float = 0.0
    verified: bool = False


@dataclass
class PublishResult:
    published: bool
    duplicate: bool
    version: Optional[int]
    result: Optional[IngestResult] = None
    quarantined: bool = False


class PatchPublisher:
    """Exactly-once (per key) publisher in front of the map database."""

    def __init__(self, server: MapDistributionServer,
                 policy: Optional[ConflictPolicy] = None,
                 metrics: Optional[IngestMetrics] = None,
                 service_metrics: Optional[ServiceMetrics] = None,
                 add_conflation_radius: float = 6.0,
                 max_publish_attempts: int = 3,
                 publish_backoff_s: float = 0.01,
                 clock: Callable[[], float] = time.monotonic,
                 verifier: Optional["VerifyGate"] = None) -> None:
        if max_publish_attempts < 1:
            raise ValueError("max_publish_attempts must be >= 1")
        self.server = server
        self.policy = policy
        self.metrics = metrics
        self.service_metrics = service_metrics
        # Backstop constraint gate: any patch that reaches publish()
        # without having passed the pipeline's VerifyStage
        # (confirmed.verified False) is checked here, so nothing can
        # route around the gate by publishing directly.
        self.verifier = verifier
        self.add_conflation_radius = add_conflation_radius
        self.max_publish_attempts = max_publish_attempts
        self.publish_backoff_s = publish_backoff_s
        self._clock = clock
        self._lock = threading.Lock()
        self._published_keys: Set[str] = set()
        self._published_add_positions: List[Tuple[float, float]] = []

    def _conflated_add(self, patch: MapPatch) -> bool:
        """A single-AddElement patch whose landmark sits within the
        conflation radius of an already-published add is the same physical
        change reported through a different tile/cluster — suppress it."""
        if self.add_conflation_radius <= 0 or len(patch.ops) != 1:
            return False
        op = patch.ops[0]
        position = getattr(getattr(op, "element", None), "position", None)
        if position is None:
            return False
        x, y = float(position[0]), float(position[1])
        return any(math.hypot(px - x, py - y) <= self.add_conflation_radius
                   for px, py in self._published_add_positions)

    def _remember_adds(self, patch: MapPatch) -> None:
        for op in patch.ops:
            position = getattr(getattr(op, "element", None), "position",
                               None)
            if position is not None:
                self._published_add_positions.append(
                    (float(position[0]), float(position[1])))

    def seen(self, key: str) -> bool:
        with self._lock:
            return key in self._published_keys

    def published_count(self) -> int:
        with self._lock:
            return len(self._published_keys)

    def publish(self, confirmed: ConfirmedPatch) -> PublishResult:
        """Ingest one confirmed patch; duplicates are suppressed.

        The key set is checked and the ingest performed under one lock,
        so two redeliveries racing on the same key cannot both apply.
        Keys are only recorded for *accepted* patches — a patch rejected
        by the conflict policy may legitimately be retried later.
        """
        span = TRACER.span("ingest.publish")
        if span.context is None:
            return self._publish(confirmed)
        with span:
            out = self._publish(confirmed)
            span.set("key", confirmed.key)
            span.set("published", out.published)
            span.set("duplicate", out.duplicate)
            if out.version is not None:
                span.set("version", out.version)
            return out

    def _publish(self, confirmed: ConfirmedPatch) -> PublishResult:
        if self.verifier is not None and not confirmed.verified and \
                not self.verifier.admit(confirmed):
            return PublishResult(False, False, None, quarantined=True)
        attempt = 0
        while True:
            delay = 0.0
            # Duplicate check and ingest happen under one lock hold, but
            # the retry backoff sleeps *outside* it so a flapping database
            # does not serialize unrelated publishers; the duplicate check
            # therefore re-runs on every attempt.
            with self._lock:
                if confirmed.key in self._published_keys or \
                        self._conflated_add(confirmed.patch):
                    if self.metrics is not None:
                        self.metrics.patches_duplicate.add()
                    return PublishResult(False, True, None)
                try:
                    result = self.server.ingest(confirmed.patch,
                                                policy=self.policy)
                except TransientPublishError as exc:
                    attempt += 1
                    if attempt >= self.max_publish_attempts:
                        if self.metrics is not None:
                            self.metrics.publish_failures.add()
                        _log.error("publish_failed", key=confirmed.key,
                                   attempts=attempt, error=str(exc))
                        return PublishResult(False, False, None)
                    if self.metrics is not None:
                        self.metrics.publish_retries.add()
                    delay = self.publish_backoff_s * (2 ** (attempt - 1))
                    _log.warning("publish_retry", key=confirmed.key,
                                 attempt=attempt,
                                 backoff_s=round(delay, 6),
                                 error=str(exc))
                else:
                    if result.accepted:
                        self._published_keys.add(confirmed.key)
                        self._remember_adds(confirmed.patch)
                    break
            if delay > 0:
                time.sleep(delay)
        if not result.accepted:
            if self.metrics is not None:
                self.metrics.patches_conflicted.add()
            _log.warning("patch_conflicted", key=confirmed.key,
                         reason=result.reason or "")
            return PublishResult(False, False, None, result)
        if self.metrics is not None:
            self.metrics.patches_published.add()
        if confirmed.enqueued_at > 0.0:
            lag = max(0.0, self._clock() - confirmed.enqueued_at)
            if self.metrics is not None:
                self.metrics.record_freshness(lag)
            if self.service_metrics is not None:
                self.service_metrics.record_freshness(lag)
        return PublishResult(True, False, result.version, result)
