"""Exception hierarchy for the hdmaps reproduction library.

All library-raised exceptions derive from :class:`HDMapError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class HDMapError(Exception):
    """Base class for all errors raised by the hdmaps library."""


class GeometryError(HDMapError):
    """Invalid geometric input (degenerate polyline, bad dimensions, ...)."""


class MapModelError(HDMapError):
    """Violation of the HD-map data model (unknown ids, layer mismatch)."""


class MapValidationError(MapModelError):
    """A map failed an integrity/validation check."""


class UnknownElementError(MapModelError):
    """Lookup of a map element id that does not exist in the map."""

    def __init__(self, element_id: object) -> None:
        super().__init__(f"unknown map element id: {element_id!r}")
        self.element_id = element_id


class StorageError(HDMapError):
    """Serialization or deserialization failure."""


class PackError(StorageError):
    """A tile pack file is corrupt, truncated, or misused."""


class SensorError(HDMapError):
    """Invalid sensor configuration or measurement request."""


class PlanningError(HDMapError):
    """Route or trajectory planning failure (e.g. unreachable goal)."""


class NoRouteError(PlanningError):
    """No route exists between the requested endpoints."""


class LocalizationError(HDMapError):
    """A localization filter diverged or received inconsistent input."""


class UpdateError(HDMapError):
    """A map maintenance/update pipeline failed."""


class IngestError(HDMapError):
    """An observation or batch failed ingestion (validation, staging)."""


class ClusterError(HDMapError):
    """A sharded-cluster operation failed (routing, failover, rebalance)."""
