"""Visual-SLAM surrogate for the factory ATV.

Full visual SLAM is out of scope for the planar substrate; what the sign-
update framework [11] needs from it is (a) a drift-bounded pose estimate
indoors and (b) an occupancy map. The surrogate integrates odometry and
periodically re-anchors against known dock/landmark positions (the loop-
closure events a visual SLAM would produce), yielding the bounded-error
pose track the update pipeline consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.transform import SE2
from repro.geometry.vec import wrap_angle


@dataclass
class SlamPose:
    t: float
    pose: SE2
    anchored: bool  # True right after a loop-closure correction


class VisualSlam:
    """Odometry integration with landmark re-anchoring."""

    def __init__(self, anchors: Sequence[np.ndarray],
                 anchor_radius: float = 3.0,
                 anchor_sigma: float = 0.05,
                 blend: float = 0.7) -> None:
        self.anchors = [np.asarray(a, dtype=float) for a in anchors]
        self.anchor_radius = anchor_radius
        self.anchor_sigma = anchor_sigma
        self.blend = blend
        self._pose: Optional[SE2] = None
        self.track: List[SlamPose] = []

    def start(self, pose: SE2, t: float = 0.0) -> None:
        self._pose = pose
        self.track = [SlamPose(t, pose, anchored=True)]

    def step(self, t: float, ds: float, dtheta: float,
             true_position: Optional[np.ndarray],
             rng: np.random.Generator) -> SE2:
        """Integrate one odometry increment; re-anchor when near an anchor.

        ``true_position`` is the ground-truth position used to *generate*
        the loop-closure observation (the SLAM front end would measure it
        visually); pass None when unknown.
        """
        if self._pose is None:
            raise RuntimeError("call start() first")
        mid = self._pose.theta + dtheta / 2.0
        pose = SE2(self._pose.x + ds * np.cos(mid),
                   self._pose.y + ds * np.sin(mid),
                   wrap_angle(self._pose.theta + dtheta))
        anchored = False
        if true_position is not None:
            for anchor in self.anchors:
                if float(np.hypot(*(true_position - anchor))) <= self.anchor_radius:
                    observed = true_position + rng.normal(
                        0.0, self.anchor_sigma, size=2)
                    pose = SE2(
                        (1 - self.blend) * pose.x + self.blend * observed[0],
                        (1 - self.blend) * pose.y + self.blend * observed[1],
                        pose.theta,
                    )
                    anchored = True
                    break
        self._pose = pose
        self.track.append(SlamPose(t, pose, anchored))
        return pose

    @property
    def pose(self) -> SE2:
        if self._pose is None:
            raise RuntimeError("SLAM not started")
        return self._pose
