"""Structured, leveled, trace-correlated event log.

The serve→ingest loop previously handled its operational events —
supervisor restarts, dead-letter writes, retries, load shedding —
silently (a counter bump at best). This module gives every subsystem a
cheap structured logger::

    _log = get_logger("ingest.pipeline")
    _log.error("batch_dead_lettered", batch_id=..., tile=..., reason=...)

Events are key-value dicts with a wall-clock stamp, a level, the logger
name, and — when emitted inside an active trace span — the trace/span
ids, so a trace dump and the event log can be joined on ``trace_id``.
Storage is a bounded in-memory ring (thread-safe, no I/O on the hot
path) plus an optional JSONL sink; per-level counters can be registered
into a :class:`~repro.obs.metrics.MetricsRegistry`.

Import discipline: imports only sibling ``repro.obs`` modules; the
serving/ingest layers import it, never the reverse.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.obs.metrics import Counter, MetricsRegistry
from repro.obs.trace import TRACER

DEBUG = 10
INFO = 20
WARNING = 30
ERROR = 40

_LEVEL_NAMES = {DEBUG: "debug", INFO: "info", WARNING: "warning",
                ERROR: "error"}


class EventLog:
    """Bounded, thread-safe, structured event store."""

    def __init__(self, capacity: int = 4096, level: int = INFO,
                 jsonl_path: Optional[str] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.level = level
        self.jsonl_path = jsonl_path
        self._lock = threading.Lock()
        self._events: Deque[Dict[str, object]] = deque(maxlen=capacity)
        self.counts_by_level: Dict[str, Counter] = {
            name: Counter() for name in _LEVEL_NAMES.values()}

    def log(self, level: int, event: str, logger: str = "",
            **fields: object) -> Optional[Dict[str, object]]:
        """Record one event; returns the entry (None when filtered)."""
        if level < self.level:
            return None
        entry: Dict[str, object] = {
            "ts": time.time(),
            "level": _LEVEL_NAMES.get(level, str(level)),
            "logger": logger,
            "event": event,
        }
        ctx = TRACER.current()
        if ctx is not None:
            entry["trace_id"] = ctx.trace_id
            if ctx.span_id is not None:
                entry["span_id"] = ctx.span_id
        entry.update(fields)
        self.counts_by_level[entry["level"]].add()
        with self._lock:
            self._events.append(entry)
        if self.jsonl_path is not None:
            line = json.dumps(entry, sort_keys=True, default=str)
            with self._lock:
                with open(self.jsonl_path, "a", encoding="utf-8") as f:
                    f.write(line + "\n")
        return entry

    def drain(self, max_events: Optional[int] = None
              ) -> List[Dict[str, object]]:
        """Pop up to ``max_events`` oldest entries out of the ring.

        The telemetry-harvest path: a shard ships its event tail to the
        router in bounded batches instead of re-sending the whole ring
        on every ``events`` poll. Draining is destructive by design —
        each event is harvested exactly once.
        """
        out: List[Dict[str, object]] = []
        with self._lock:
            while self._events and (max_events is None
                                    or len(out) < max_events):
                out.append(self._events.popleft())
        return out

    def ingest(self, entries: List[Dict[str, object]]) -> int:
        """Append harvested entries (from another process's log) as-is.

        Wall-clock ``ts`` stamps are comparable across processes on one
        host, so no rebasing happens here; per-level counters are bumped
        so ``log.events.<level>`` reflects the merged stream.
        """
        n = 0
        with self._lock:
            for entry in entries:
                counter = self.counts_by_level.get(str(entry.get("level")))
                if counter is not None:
                    counter.add()
                self._events.append(entry)
                n += 1
        return n

    # -- introspection --------------------------------------------------
    def events(self, min_level: int = DEBUG,
               event: Optional[str] = None) -> List[Dict[str, object]]:
        """Surviving events, optionally filtered by level and event name."""
        names = {name for lvl, name in _LEVEL_NAMES.items()
                 if lvl >= min_level}
        with self._lock:
            out = list(self._events)
        return [e for e in out
                if e["level"] in names and (event is None
                                            or e["event"] == event)]

    def dump_jsonl(self, path: str) -> int:
        events = self.events()
        with open(path, "w", encoding="utf-8") as f:
            for entry in events:
                f.write(json.dumps(entry, sort_keys=True, default=str)
                        + "\n")
        return len(events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def register_into(self, registry: MetricsRegistry,
                      prefix: str = "log") -> None:
        """Expose per-level event counters as ``<prefix>.events.<level>``."""
        for name, counter in self.counts_by_level.items():
            registry.register(f"{prefix}.events.{name}", counter)


#: Process-wide event log; ``get_logger`` binds names onto this one.
EVENT_LOG = EventLog()


class BoundLogger:
    """A named front end over an :class:`EventLog`."""

    __slots__ = ("name", "_log")

    def __init__(self, name: str, log: Optional[EventLog] = None) -> None:
        self.name = name
        self._log = log if log is not None else EVENT_LOG

    def debug(self, event: str, **fields: object) -> None:
        self._log.log(DEBUG, event, self.name, **fields)

    def info(self, event: str, **fields: object) -> None:
        self._log.log(INFO, event, self.name, **fields)

    def warning(self, event: str, **fields: object) -> None:
        self._log.log(WARNING, event, self.name, **fields)

    def error(self, event: str, **fields: object) -> None:
        self._log.log(ERROR, event, self.name, **fields)


def get_logger(name: str, log: Optional[EventLog] = None) -> BoundLogger:
    """A structured logger writing into the global (or given) event log."""
    return BoundLogger(name, log)


def configure_logging(level: Optional[int] = None,
                      capacity: Optional[int] = None,
                      jsonl_path: Optional[str] = None,
                      reset: bool = False) -> EventLog:
    """Reconfigure the global :data:`EVENT_LOG` in place."""
    if capacity is not None:
        with EVENT_LOG._lock:
            EVENT_LOG._events = deque(EVENT_LOG._events, maxlen=capacity)
    if level is not None:
        EVENT_LOG.level = level
    if jsonl_path is not None:
        EVENT_LOG.jsonl_path = jsonl_path
    if reset:
        EVENT_LOG.clear()
    return EVENT_LOG
