"""Unit tests for creation-pipeline internals (helper-level behaviour)."""

import numpy as np
import pytest

from repro.geometry.polyline import Polyline, straight
from repro.geometry.transform import SE2


class TestLateralPeaks:
    def test_two_lane_histogram(self, rng):
        from repro.creation.probe_pipeline import _lateral_peaks

        laterals = np.concatenate([
            rng.normal(-1.75, 0.3, 300),
            rng.normal(1.75, 0.3, 300),
        ])
        peaks = _lateral_peaks(laterals)
        assert len(peaks) == 2
        assert peaks[0] == pytest.approx(-1.75, abs=0.3)
        assert peaks[1] == pytest.approx(1.75, abs=0.3)

    def test_single_cluster(self, rng):
        from repro.creation.probe_pipeline import _lateral_peaks

        peaks = _lateral_peaks(rng.normal(0.0, 0.3, 200))
        assert len(peaks) == 1

    def test_too_few_points(self):
        from repro.creation.probe_pipeline import _lateral_peaks

        assert _lateral_peaks(np.array([0.1])) == []


class TestOffsetPeaks:
    def test_marking_positions_recovered(self, rng):
        from repro.creation.lane_graph import _offset_peaks

        offsets = np.concatenate([
            rng.normal(-3.5, 0.15, 120),
            rng.normal(0.0, 0.15, 120),
            rng.normal(3.5, 0.15, 120),
        ])
        peaks = sorted(_offset_peaks(offsets))
        assert len(peaks) == 3
        assert peaks[0] == pytest.approx(-3.5, abs=0.4)
        assert peaks[2] == pytest.approx(3.5, abs=0.4)


class TestAerialRender:
    def test_render_marks_road_cells(self, highway, rng):
        from repro.creation.aerial import render_aerial

        aerial, offset = render_aerial(highway, rng, resolution=1.0,
                                       registration_offset=0.0,
                                       noise_sigma=0.0)
        lane = next(iter(highway.lanes()))
        on_road = lane.centerline.point_at(lane.length / 2)
        off_road = on_road + np.array([0.0, 200.0])
        assert aerial.sample(on_road[None, :])[0] > 0.2
        assert aerial.sample(off_road[None, :])[0] < 0.1

    def test_extract_follows_registration_shift(self, highway):
        from repro.creation.aerial import AerialGroundMapper, render_aerial

        rng = np.random.default_rng(1)
        aerial, offset = render_aerial(highway, rng, resolution=0.5,
                                       registration_offset=1.5,
                                       noise_sigma=0.02)
        segment = next(iter(highway.segments()))
        prior = segment.reference_line.simplify(5.0)
        mapper = AerialGroundMapper()
        line = mapper.extract_from_aerial(aerial, prior)
        assert line is not None
        # The extraction inherits (part of) the registration offset: its
        # mean distance from the true reference reflects the shift.
        errors = [abs(segment.reference_line.project(p)[1])
                  for p in line.resample(50.0).points]
        assert np.mean(errors) > 0.3  # biased before ground fusion
        # Ground fusion removes it.
        truth_points = segment.reference_line.resample(40.0).points
        fused = mapper.fuse_ground(line, truth_points)
        fused_errors = [abs(segment.reference_line.project(p)[1])
                        for p in fused.resample(50.0).points]
        assert np.mean(fused_errors) < np.mean(errors)


class TestTrafficLightRoi:
    def test_roi_match_rejects_off_bearing(self, city, rng):
        from repro.core.elements import LightState, TrafficLight
        from repro.creation.traffic_lights import TrafficLightRecognizer
        from repro.sensors.camera import LightObservation

        recognizer = TrafficLightRecognizer(city)
        light = next(iter(city.lights()))
        pose = SE2(light.position[0] - 30.0, light.position[1], 0.0)
        good = LightObservation(t=0.0, bearing=0.0, range=30.0,
                                state=LightState.RED, true_id=light.id)
        off = LightObservation(t=0.0, bearing=0.5, range=30.0,
                               state=LightState.RED, true_id=light.id)
        expected = [light]
        assert recognizer._match_roi(pose, good, expected) is light
        assert recognizer._match_roi(pose, off, expected) is None


class TestSmoothingHelpers:
    def test_smooth_polyline_reduces_noise(self, rng):
        from repro.creation.smartphone import _smooth_polyline

        truth = straight([0, 0], [200, 0], spacing=2.0)
        noisy = truth.points + rng.normal(0, 0.5, truth.points.shape)
        smoothed = _smooth_polyline(noisy, window=15)
        noise_raw = float(np.abs(noisy[:, 1]).mean())
        noise_smooth = float(np.mean(
            [abs(truth.project(p)[1]) for p in smoothed.points]))
        assert noise_smooth < noise_raw

    def test_fuse_polyline_needs_enough_points(self):
        from repro.creation.lidar_pipeline import _fuse_polyline

        assert _fuse_polyline([np.zeros(2)] * 2, window=5) is None
        pts = [np.array([float(i), 0.0]) for i in range(20)]
        fused = _fuse_polyline(pts, window=5)
        assert fused is not None
        assert fused.length > 10.0

    def test_interp_pose_midpoint(self):
        from repro.creation.lidar_pipeline import _interp_pose

        track = [(0.0, SE2(0, 0, 0)), (1.0, SE2(10, 0, 0.2))]
        mid = _interp_pose(track, 0.5)
        assert mid.x == pytest.approx(5.0)
        assert mid.theta == pytest.approx(0.1)


class TestCrowdContribution:
    def test_pose_track_interpolation_with_bias(self, highway, rng):
        from repro.creation.crowdsource import VehicleContribution

        track = [(0.0, SE2(0, 0, 0)), (1.0, SE2(10, 0, 0))]
        contrib = VehicleContribution(0, track, [])
        contrib.bias = np.array([2.0, -1.0])
        pose = contrib.pose_at(0.5)
        # Bias is subtracted from the estimated pose.
        assert pose.x == pytest.approx(3.0)
        assert pose.y == pytest.approx(1.0)
