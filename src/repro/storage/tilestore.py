"""Tile-based map streaming with an LRU working set.

The survey closes on the open problem of managing "enormous map data"
efficiently [73]: a vehicle cannot hold a country-scale HD map in memory.
``TileStore`` shards a map into compact-binary tiles; ``StreamingMap``
serves spatial queries out of a bounded LRU working set, loading and
evicting tiles as the query position moves — the access pattern a driving
vehicle produces.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.elements import Lane, MapElement, PointLandmark
from repro.core.hdmap import HDMap
from repro.core.tiles import TileId, TileScheme
from repro.errors import StorageError
from repro.storage.binary import decode_map, encode_map


@dataclass
class TileStoreStats:
    """Hit/load/eviction counters, safe to update from multiple threads.

    The plain integer fields stay readable directly; writers should go
    through the ``record_*`` methods, which serialize the read-modify-write
    under a lock (the serve layer updates one stats object from a worker
    pool).
    """

    loads: int = 0
    evictions: int = 0
    hits: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def record_hit(self) -> None:
        with self._lock:
            self.hits += 1

    def record_load(self) -> None:
        with self._lock:
            self.loads += 1

    def record_eviction(self) -> None:
        with self._lock:
            self.evictions += 1

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.loads
        return self.hits / total if total else 0.0

    def __getstate__(self) -> Dict[str, int]:
        """Picklable counter state (the lock is dropped and recreated on
        load) so stats can cross a shard process boundary intact."""
        with self._lock:
            return {"loads": self.loads, "evictions": self.evictions,
                    "hits": self.hits}

    def __setstate__(self, state: Dict[str, int]) -> None:
        self.loads = state["loads"]
        self.evictions = state["evictions"]
        self.hits = state["hits"]
        self._lock = threading.Lock()

    def as_dict(self) -> Dict[str, float]:
        """Point-in-time counter values for metrics export."""
        with self._lock:
            loads, evictions, hits = self.loads, self.evictions, self.hits
        total = hits + loads
        return {
            "loads": loads,
            "evictions": evictions,
            "hits": hits,
            "hit_rate": hits / total if total else 0.0,
        }


def _count_elements(blob: bytes) -> int:
    """Element count of an HDMV blob from its body prefix (name, version,
    kinds table, count varint) — no per-element decode."""
    import zlib
    from io import BytesIO

    from repro.storage.binary import _read_varint

    body = BytesIO(zlib.decompress(blob[9:]))
    body.read(_read_varint(body))      # map name
    _read_varint(body)                 # map version
    for _ in range(_read_varint(body)):
        body.read(_read_varint(body))  # kind name
    return _read_varint(body)


class TileStore:
    """Immutable sharded storage: one compact blob per non-empty tile.

    Two backends share the same interface: a plain in-memory dict of
    blobs (:meth:`build` / :meth:`from_blobs`), or a single mmap'd pack
    file (:meth:`from_pack`) whose tiles are served as zero-copy
    ``memoryview`` slices — see :mod:`repro.pack.format`.
    """

    def __init__(self, tile_size: float = 500.0) -> None:
        self.scheme = TileScheme(tile_size)
        self._blobs: Dict[TileId, bytes] = {}
        self._pack = None  # Optional[repro.pack.PackReader]
        self._visible: Optional[frozenset] = None  # pack-mode tile subset

    @staticmethod
    def build(hdmap: HDMap, tile_size: float = 500.0) -> "TileStore":
        """Shard ``hdmap`` into per-tile blobs.

        Elements spanning several tiles are replicated into each one they
        intersect (queries deduplicate by element id), so border elements
        are always found regardless of which tile a query lands in.
        """
        store = TileStore(tile_size)
        members: Dict[TileId, List[MapElement]] = {}
        for element in hdmap.elements():
            try:
                bounds = element.bounds()
            except NotImplementedError:
                continue  # regulatory elements are not spatial
            for tile in store.scheme.tiles_for_bounds(bounds):
                members.setdefault(tile, []).append(element)
        for tile, elements in members.items():
            shard = HDMap(f"{hdmap.name}@{tile}")
            for element in elements:
                shard.add(element)
            store._blobs[tile] = encode_map(shard)
        return store

    @staticmethod
    def from_blobs(blobs: Dict[TileId, bytes],
                   tile_size: float = 500.0) -> "TileStore":
        """A store over pre-encoded tile blobs (no re-partitioning).

        The cluster layer uses this to hand each shard process exactly
        its owned tiles' blobs — byte-identical to the slices of a
        full-map :meth:`build`, so ``GetTile`` payloads do not depend on
        which shard serves them.
        """
        store = TileStore(tile_size)
        store._blobs = dict(blobs)
        return store

    @staticmethod
    def from_pack(path: str, tile_size: Optional[float] = None,
                  tiles: Optional[List[TileId]] = None) -> "TileStore":
        """A store over an mmap'd pack file (see :class:`repro.pack.PackReader`).

        ``tile_size`` defaults to the size recorded in the pack header.
        ``tiles`` restricts the visible subset — the cluster layer hands
        each shard the same shared pack file plus its owned tile list, so
        shards never copy blobs across the fork boundary.
        """
        from repro.pack.format import PackReader

        reader = PackReader(path)
        if tile_size is None:
            tile_size = reader.tile_size
        if tile_size <= 0:
            raise StorageError(
                f"pack {path!r} records no tile size; pass tile_size=")
        store = TileStore(tile_size)
        store._pack = reader
        if tiles is not None:
            store._visible = frozenset(tiles) & frozenset(reader.tiles())
        return store

    def to_pack(self, path: str) -> int:
        """Write this store's tiles into a pack file; returns tile count."""
        from repro.pack.format import PackWriter

        with PackWriter(path, tile_size=self.scheme.tile_size) as writer:
            for tile in self.tiles():
                blob = self._blobs[tile] if self._pack is None \
                    else bytes(self._pack.get(tile))
                writer.add(tile, blob,
                           n_elements=_count_elements(blob))
            return writer.publish()

    @property
    def pack_backed(self) -> bool:
        """True when tiles live in an mmap'd pack file, not a dict."""
        return self._pack is not None

    @property
    def pack_reader(self):
        """The underlying :class:`repro.pack.PackReader`, or ``None``."""
        return self._pack

    def _pack_tiles(self) -> List[TileId]:
        if self._visible is None:
            return self._pack.tiles()
        return sorted(self._visible)

    def tiles(self) -> List[TileId]:
        if self._pack is not None:
            return self._pack_tiles()
        return sorted(self._blobs)

    def total_bytes(self) -> int:
        if self._pack is not None:
            return sum(self._pack.entry(t).length for t in self._pack_tiles())
        return sum(len(b) for b in self._blobs.values())

    def blob_bytes(self, tile: TileId) -> int:
        if self._pack is not None:
            entry = self._pack.entry(tile) if self._has_tile(tile) else None
            return entry.length if entry is not None else 0
        return len(self._blobs.get(tile, b""))

    def largest_tile(self) -> Optional[Tuple[TileId, int]]:
        """The heaviest shard — the serving hot spot to watch for."""
        tiles = self.tiles()
        if not tiles:
            return None
        tile = max(tiles, key=self.blob_bytes)
        return tile, self.blob_bytes(tile)

    def _has_tile(self, tile: TileId) -> bool:
        if self._visible is not None and tile not in self._visible:
            return False
        return self._pack.entry(tile) is not None

    def contains(self, tile: TileId) -> bool:
        """Whether ``tile`` has a blob, without decoding anything.

        O(1) either way (dict membership or pack index probe) — the
        serve layer uses this to short-circuit absent tiles before the
        cache materializes them.
        """
        if self._pack is not None:
            return self._has_tile(tile)
        return tile in self._blobs

    def encoded_view(self, tile: TileId) -> Optional[memoryview]:
        """Zero-copy encoded payload for ``tile``.

        Only pack-backed stores return a view (a slice of the mmap);
        dict-backed stores return ``None`` so the serve layer keeps its
        per-request encode + cache path.
        """
        if self._pack is None or not self._has_tile(tile):
            return None
        return self._pack.get(tile)

    def load_tile(self, tile: TileId) -> Optional[HDMap]:
        if self._pack is not None:
            if not self._has_tile(tile):
                return None
            return self._pack.load(tile)
        blob = self._blobs.get(tile)
        if blob is None:
            return None
        return decode_map(blob)


class StreamingMap:
    """A bounded-memory map view backed by a :class:`TileStore`.

    Queries hit only the tiles intersecting the query region; tiles are
    decoded on demand and evicted LRU once ``max_tiles`` are resident.
    """

    def __init__(self, store: TileStore, max_tiles: int = 9) -> None:
        if max_tiles < 1:
            raise StorageError("max_tiles must be >= 1")
        self.store = store
        self.max_tiles = max_tiles
        self._resident: "OrderedDict[TileId, Optional[HDMap]]" = OrderedDict()
        self.stats = TileStoreStats()

    # ------------------------------------------------------------------
    def _tile(self, tile: TileId) -> Optional[HDMap]:
        if tile in self._resident:
            self._resident.move_to_end(tile)
            self.stats.record_hit()
            return self._resident[tile]
        shard = self.store.load_tile(tile)
        self.stats.record_load()
        self._resident[tile] = shard
        while len(self._resident) > self.max_tiles:
            self._resident.popitem(last=False)
            self.stats.record_eviction()
        return shard

    def resident_tiles(self) -> List[TileId]:
        return list(self._resident)

    def resident_bytes(self) -> int:
        """Approximate working-set size: encoded size of resident tiles."""
        return sum(self.store.blob_bytes(t) for t in self._resident)

    # ------------------------------------------------------------------
    def elements_in_radius(self, x: float, y: float, radius: float
                           ) -> List[MapElement]:
        out: List[MapElement] = []
        seen = set()
        bounds = (x - radius, y - radius, x + radius, y + radius)
        for tile in self.store.scheme.tiles_for_bounds(bounds):
            shard = self._tile(tile)
            if shard is None:
                continue
            for element in shard.elements_in_radius(x, y, radius):
                if element.id not in seen:
                    seen.add(element.id)
                    out.append(element)
        return out

    def landmarks_in_radius(self, x: float, y: float, radius: float
                            ) -> List[PointLandmark]:
        out: List[PointLandmark] = []
        seen = set()
        bounds = (x - radius, y - radius, x + radius, y + radius)
        for tile in self.store.scheme.tiles_for_bounds(bounds):
            shard = self._tile(tile)
            if shard is None:
                continue
            for lm in shard.landmarks_in_radius(x, y, radius):
                if lm.id not in seen:
                    seen.add(lm.id)
                    out.append(lm)
        return out

    def nearest_lane(self, x: float, y: float,
                     search_radius: float = 100.0) -> Tuple[Lane, float]:
        best: Optional[Lane] = None
        best_d = float("inf")
        point = np.array([x, y])
        for element in self.elements_in_radius(x, y, search_radius):
            if isinstance(element, Lane):
                d = element.centerline.distance_to(point)
                if d < best_d:
                    best, best_d = element, d
        if best is None:
            raise StorageError(
                f"no lane within {search_radius} m of ({x:.0f}, {y:.0f})")
        return best, best_d
