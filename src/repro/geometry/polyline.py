"""Arc-length-parameterized polylines.

``Polyline`` is the single geometric representation used by every HD-map
element with extent (lane boundaries, centerlines, stop lines, road edges).
It provides the operations the surveyed algorithms rely on: arc-length
interpolation, projection (point -> station/lateral offset), resampling,
lateral offsetting (for deriving boundaries from centerlines), heading and
curvature queries, and Douglas-Peucker simplification (used by the compact
storage codec of Li et al. [60]).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.errors import GeometryError
from repro.geometry.vec import perp_left, segment_point_distance

#: Cap on the (points x segments) temporary a single batched-projection
#: chunk may allocate. 2M pairs of float64 triples keeps peak memory for
#: one chunk under ~100 MB regardless of polyline size.
PROJECT_BATCH_MAX_PAIRS = 2_000_000


class Polyline:
    """An ordered sequence of 2-D vertices with arc-length parameterization.

    Vertices are stored as an immutable ``(N, 2)`` float array with N >= 2
    and no zero-length segments.
    """

    __slots__ = ("_pts", "_seg_len", "_cum_len")

    def __init__(self, points: Iterable[Sequence[float]]) -> None:
        pts = np.asarray(list(points) if not isinstance(points, np.ndarray) else points,
                         dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise GeometryError(f"polyline needs an (N, 2) array, got {pts.shape}")
        if pts.shape[0] < 2:
            raise GeometryError("polyline needs at least two vertices")
        seg = np.diff(pts, axis=0)
        seg_len = np.hypot(seg[:, 0], seg[:, 1])
        if np.any(seg_len <= 0.0):
            # Drop duplicate consecutive vertices rather than failing: noisy
            # extraction pipelines produce them routinely.
            keep = np.concatenate(([True], seg_len > 0.0))
            pts = pts[keep]
            if pts.shape[0] < 2:
                raise GeometryError("polyline degenerate after removing duplicates")
            seg = np.diff(pts, axis=0)
            seg_len = np.hypot(seg[:, 0], seg[:, 1])
        pts.setflags(write=False)
        self._pts = pts
        self._seg_len = seg_len
        self._cum_len = np.concatenate(([0.0], np.cumsum(seg_len)))

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def points(self) -> np.ndarray:
        """The ``(N, 2)`` vertex array (read-only view)."""
        return self._pts

    @property
    def length(self) -> float:
        """Total arc length in metres."""
        return float(self._cum_len[-1])

    @property
    def start(self) -> np.ndarray:
        return self._pts[0]

    @property
    def end(self) -> np.ndarray:
        return self._pts[-1]

    def __len__(self) -> int:
        return self._pts.shape[0]

    def __repr__(self) -> str:
        return f"Polyline({len(self)} pts, {self.length:.1f} m)"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polyline):
            return NotImplemented
        return self._pts.shape == other._pts.shape and bool(
            np.allclose(self._pts, other._pts)
        )

    def __hash__(self) -> int:  # frozen content => hashable by bytes
        return hash(self._pts.tobytes())

    def bounds(self) -> tuple[float, float, float, float]:
        """Axis-aligned bounding box ``(min_x, min_y, max_x, max_y)``."""
        mn = self._pts.min(axis=0)
        mx = self._pts.max(axis=0)
        return float(mn[0]), float(mn[1]), float(mx[0]), float(mx[1])

    # ------------------------------------------------------------------
    # Arc-length parameterization
    # ------------------------------------------------------------------
    def point_at(self, s: float) -> np.ndarray:
        """Point at station ``s`` (clamped to [0, length])."""
        s = float(np.clip(s, 0.0, self.length))
        i = int(np.searchsorted(self._cum_len, s, side="right") - 1)
        i = min(i, len(self._seg_len) - 1)
        ds = s - self._cum_len[i]
        if self._seg_len[i] == 0.0:
            return self._pts[i].copy()
        t = ds / self._seg_len[i]
        return self._pts[i] + t * (self._pts[i + 1] - self._pts[i])

    def points_at(self, stations: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`point_at` for an array of stations."""
        s = np.clip(np.asarray(stations, dtype=float), 0.0, self.length)
        idx = np.clip(
            np.searchsorted(self._cum_len, s, side="right") - 1,
            0,
            len(self._seg_len) - 1,
        )
        ds = s - self._cum_len[idx]
        t = np.where(self._seg_len[idx] > 0, ds / self._seg_len[idx], 0.0)
        a = self._pts[idx]
        b = self._pts[idx + 1]
        return a + t[:, None] * (b - a)

    def headings_at(self, stations: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`heading_at` for an array of stations."""
        s = np.clip(np.asarray(stations, dtype=float), 0.0, self.length)
        idx = np.clip(
            np.searchsorted(self._cum_len, s, side="right") - 1,
            0,
            len(self._seg_len) - 1,
        )
        d = self._pts[idx + 1] - self._pts[idx]
        return np.arctan2(d[:, 1], d[:, 0])

    def normals_at(self, stations: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`normal_at`: ``(N, 2)`` left-hand unit normals."""
        h = self.headings_at(stations)
        return np.stack([-np.sin(h), np.cos(h)], axis=1)

    def heading_at(self, s: float) -> float:
        """Tangent heading (radians) at station ``s``."""
        s = float(np.clip(s, 0.0, self.length))
        i = int(np.searchsorted(self._cum_len, s, side="right") - 1)
        i = min(max(i, 0), len(self._seg_len) - 1)
        d = self._pts[i + 1] - self._pts[i]
        return float(np.arctan2(d[1], d[0]))

    def tangent_at(self, s: float) -> np.ndarray:
        h = self.heading_at(s)
        return np.array([np.cos(h), np.sin(h)])

    def normal_at(self, s: float) -> np.ndarray:
        """Left-hand unit normal at station ``s``."""
        return perp_left(self.tangent_at(s))

    def curvature_at(self, s: float, window: float = 2.0) -> float:
        """Discrete curvature estimate (1/m) using heading change over a window."""
        s0 = max(0.0, s - window / 2.0)
        s1 = min(self.length, s + window / 2.0)
        if s1 - s0 < 1e-9:
            return 0.0
        h0 = self.heading_at(s0)
        h1 = self.heading_at(s1)
        dh = float(np.arctan2(np.sin(h1 - h0), np.cos(h1 - h0)))
        return dh / (s1 - s0)

    # ------------------------------------------------------------------
    # Projection
    # ------------------------------------------------------------------
    def project(self, point: Sequence[float]) -> tuple[float, float]:
        """Project ``point`` onto the polyline.

        Returns ``(station, signed_lateral)`` where ``signed_lateral`` is
        positive to the left of the direction of travel.
        """
        p = np.asarray(point, dtype=float)
        a = self._pts[:-1]
        b = self._pts[1:]
        d = b - a
        denom = np.einsum("ij,ij->i", d, d)
        t = np.clip(np.einsum("ij,ij->i", p - a, d) / np.maximum(denom, 1e-300), 0.0, 1.0)
        closest = a + t[:, None] * d
        dist2 = np.einsum("ij,ij->i", p - closest, p - closest)
        i = int(np.argmin(dist2))
        station = float(self._cum_len[i] + t[i] * self._seg_len[i])
        seg_dir = d[i] / max(np.hypot(*d[i]), 1e-300)
        offset_vec = p - closest[i]
        signed = float(seg_dir[0] * offset_vec[1] - seg_dir[1] * offset_vec[0])
        return station, signed

    def project_batch(self, points: Iterable[Sequence[float]],
                      max_pairs: int = PROJECT_BATCH_MAX_PAIRS
                      ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`project` for many points at once.

        Returns ``(stations, laterals)`` arrays of shape ``(P,)``. Each row
        is bit-identical to the scalar ``project`` result for the same
        point: the per-segment dot products, clipping, argmin tie-breaking,
        and sign computation all use the same operations in the same order.

        The computation covers all ``(P, S)`` point/segment pairs at once,
        with x/y components kept as separate 2-D arrays (cheaper than
        ``(P, S, 2)`` temporaries) and chunked over points so no temporary
        exceeds ``max_pairs`` pairs — projection onto country-scale
        boundary lines stays within a bounded memory footprint.
        """
        pts = np.asarray(points if isinstance(points, np.ndarray) else list(points),
                         dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise GeometryError(f"project_batch needs (P, 2) points, got {pts.shape}")
        n_pts = pts.shape[0]
        stations = np.empty(n_pts)
        laterals = np.empty(n_pts)
        if n_pts == 0:
            return stations, laterals
        a = self._pts[:-1]
        d = self._pts[1:] - a
        denom = np.maximum(np.einsum("ij,ij->i", d, d), 1e-300)
        seg_dir = d / np.maximum(self._seg_len, 1e-300)[:, None]
        ax, ay = a[:, 0], a[:, 1]
        dx, dy = d[:, 0], d[:, 1]
        chunk = max(1, min(n_pts, max_pairs // max(a.shape[0], 1)))
        for lo in range(0, n_pts, chunk):
            p = pts[lo:lo + chunk]
            px = p[:, 0, None]
            py = p[:, 1, None]
            relx = px - ax[None, :]
            rely = py - ay[None, :]
            t = np.clip((relx * dx[None, :] + rely * dy[None, :])
                        / denom[None, :], 0.0, 1.0)
            cx = ax[None, :] + t * dx[None, :]
            cy = ay[None, :] + t * dy[None, :]
            fx = px - cx
            fy = py - cy
            dist2 = fx * fx + fy * fy
            i = np.argmin(dist2, axis=1)
            rows = np.arange(p.shape[0])
            ti = t[rows, i]
            stations[lo:lo + chunk] = self._cum_len[i] + ti * self._seg_len[i]
            ox = p[:, 0] - cx[rows, i]
            oy = p[:, 1] - cy[rows, i]
            sd = seg_dir[i]
            laterals[lo:lo + chunk] = sd[:, 0] * oy - sd[:, 1] * ox
        return stations, laterals

    def distance_to(self, point: Sequence[float]) -> float:
        """Unsigned Euclidean distance from ``point`` to the polyline."""
        p = np.asarray(point, dtype=float)
        a = self._pts[:-1]
        b = self._pts[1:]
        d = b - a
        denom = np.einsum("ij,ij->i", d, d)
        t = np.clip(
            np.einsum("ij,ij->i", p - a, d) / np.maximum(denom, 1e-300), 0.0, 1.0
        )
        closest = a + t[:, None] * d
        dist2 = np.einsum("ij,ij->i", p - closest, p - closest)
        return float(np.sqrt(dist2.min()))

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def resample(self, spacing: float) -> "Polyline":
        """Resample to (approximately) uniform ``spacing`` metres.

        Always keeps the exact first and last vertex.
        """
        if spacing <= 0:
            raise GeometryError("spacing must be positive")
        n = max(2, int(np.ceil(self.length / spacing)) + 1)
        stations = np.linspace(0.0, self.length, n)
        return Polyline(self.points_at(stations))

    def offset(self, distance: float, spacing: Optional[float] = None) -> "Polyline":
        """Parallel curve offset ``distance`` metres to the left (negative = right).

        Implemented by resampling and shifting along the local normal — the
        standard way centerlines and lane boundaries are derived from each
        other in HD-map models.
        """
        base = self if spacing is None else self.resample(spacing)
        stations = base._cum_len if spacing is None else np.linspace(0.0, base.length, len(base))
        shifted = base.points_at(stations) + distance * base.normals_at(stations)
        return Polyline(shifted)

    def reversed(self) -> "Polyline":
        return Polyline(self._pts[::-1].copy())

    def slice(self, s0: float, s1: float) -> "Polyline":
        """Sub-polyline between stations ``s0`` and ``s1`` (s0 < s1)."""
        s0 = float(np.clip(s0, 0.0, self.length))
        s1 = float(np.clip(s1, 0.0, self.length))
        if s1 - s0 <= 1e-9:
            raise GeometryError("slice needs s1 > s0")
        inner = self._cum_len[(self._cum_len > s0) & (self._cum_len < s1)]
        stations = np.concatenate(([s0], inner, [s1]))
        return Polyline(self.points_at(stations))

    def transformed(self, pose) -> "Polyline":
        """Apply an :class:`~repro.geometry.transform.SE2` to every vertex."""
        return Polyline(pose.apply(self._pts))

    def simplify(self, tolerance: float) -> "Polyline":
        """Douglas-Peucker simplification within ``tolerance`` metres."""
        if tolerance <= 0:
            return Polyline(self._pts.copy())
        keep = _douglas_peucker_mask(self._pts, tolerance)
        return Polyline(self._pts[keep])

    def concat(self, other: "Polyline") -> "Polyline":
        """Join ``other`` onto the end of this polyline."""
        gap = float(np.hypot(*(other.start - self.end)))
        if gap < 1e-9:
            pts = np.vstack([self._pts, other.points[1:]])
        else:
            pts = np.vstack([self._pts, other.points])
        return Polyline(pts)

    def hausdorff_distance(self, other: "Polyline", spacing: float = 1.0) -> float:
        """Symmetric discrete Hausdorff distance between two polylines."""
        a = self.resample(spacing)
        b = other.resample(spacing)
        d_ab = float(np.abs(b.project_batch(a.points)[1]).max())
        d_ba = float(np.abs(a.project_batch(b.points)[1]).max())
        return max(d_ab, d_ba)

    def mean_distance_to_polyline(self, other: "Polyline", spacing: float = 1.0) -> float:
        """Mean absolute lateral deviation of this polyline from ``other``."""
        sampled = self.resample(spacing)
        return float(np.mean(np.abs(other.project_batch(sampled.points)[1])))


def _douglas_peucker_mask(pts: np.ndarray, tol: float) -> np.ndarray:
    """Boolean keep-mask for Douglas-Peucker simplification."""
    n = pts.shape[0]
    keep = np.zeros(n, dtype=bool)
    keep[0] = keep[-1] = True
    stack = [(0, n - 1)]
    while stack:
        lo, hi = stack.pop()
        if hi - lo < 2:
            continue
        a, b = pts[lo], pts[hi]
        best_d, best_i = -1.0, -1
        for i in range(lo + 1, hi):
            d, _ = segment_point_distance(a, b, pts[i])
            if d > best_d:
                best_d, best_i = d, i
        if best_d > tol:
            keep[best_i] = True
            stack.append((lo, best_i))
            stack.append((best_i, hi))
    return keep


def arc(center: Sequence[float], radius: float, start_angle: float,
        end_angle: float, n: int = 32) -> Polyline:
    """Circular arc helper used by the world generator."""
    if n < 2:
        raise GeometryError("arc needs at least 2 samples")
    angles = np.linspace(start_angle, end_angle, n)
    c = np.asarray(center, dtype=float)
    pts = c + radius * np.stack([np.cos(angles), np.sin(angles)], axis=1)
    return Polyline(pts)


def straight(a: Sequence[float], b: Sequence[float], spacing: float = 5.0) -> Polyline:
    """Straight segment from ``a`` to ``b`` sampled every ``spacing`` metres."""
    a_arr = np.asarray(a, dtype=float)
    b_arr = np.asarray(b, dtype=float)
    length = float(np.hypot(*(b_arr - a_arr)))
    n = max(2, int(np.ceil(length / spacing)) + 1)
    t = np.linspace(0.0, 1.0, n)
    return Polyline(a_arr + t[:, None] * (b_arr - a_arr))
