"""Parametric road-network generators.

Three families cover the evaluation settings of the surveyed systems:

- :func:`generate_highway` — a long gently curving multi-lane corridor
  (the 20 km highway of SLAMCU [41], Ghallabi's test tracks [50], the
  370 km PCC route [61]);
- :func:`generate_grid_city` — an urban block grid with intersections,
  traffic lights, crosswalks and signs (urban-scene mapping [38], [48]);
- :func:`generate_factory_floor` — an indoor aisle grid with safety signs
  for the ATV experiments of Tas et al. [10], [11].
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.core.elements import (
    Crosswalk,
    Pole,
    RoadMarking,
    SignType,
    StopLine,
    TrafficLight,
    TrafficSign,
)
from repro.core.hdmap import HDMap
from repro.geometry.polyline import Polyline, straight
from repro.world.builder import RoadSpec, WorldBuilder


def _meander(rng: np.random.Generator, length: float, step: float = 100.0,
             max_turn: float = 0.06, start=(0.0, 0.0), heading: float = 0.0) -> Polyline:
    """A gently curving polyline built as a bounded random walk in heading."""
    pts = [np.asarray(start, dtype=float)]
    h = heading
    travelled = 0.0
    while travelled < length:
        d = min(step, length - travelled)
        h += float(rng.uniform(-max_turn, max_turn))
        pts.append(pts[-1] + d * np.array([math.cos(h), math.sin(h)]))
        travelled += d
    return Polyline(np.array(pts))


def generate_highway(rng: np.random.Generator, length: float = 20000.0,
                     lanes_per_direction: int = 2,
                     sign_spacing: float = 500.0,
                     pole_spacing: float = 250.0,
                     curviness: float = 0.04,
                     speed_limit: float = 33.33) -> HDMap:
    """A divided highway corridor with signage and reflective poles."""
    builder = WorldBuilder("highway")
    ref = _meander(rng, length, max_turn=curviness)
    segment = builder.add_road(RoadSpec(
        reference=ref,
        forward_lanes=lanes_per_direction,
        backward_lanes=lanes_per_direction,
        lane_width=3.7,
        speed_limit=speed_limit,
    ))
    builder.add_signs_along(segment, sign_spacing, SignType.SPEED_LIMIT, rng=rng)
    # Reflective delineator poles on both shoulders.
    s = pole_spacing / 2.0
    half_width = 3.7 * lanes_per_direction + 2.0
    while s < ref.length:
        base = ref.point_at(s)
        normal = ref.normal_at(s)
        for side in (-1.0, 1.0):
            builder.map.create(Pole, position=base + side * half_width * normal)
        s += pole_spacing
    return builder.finish()


def generate_grid_city(rng: np.random.Generator, blocks_x: int = 4,
                       blocks_y: int = 3, block_size: float = 200.0,
                       lanes_per_direction: int = 1,
                       speed_limit: float = 13.89,
                       with_lights: bool = True,
                       sign_density: float = 0.5) -> HDMap:
    """An urban grid: streets between every pair of adjacent intersections.

    Roads stop short of intersection centres by a small setback so that
    lane endpoints from crossing streets do not merge into false
    connectivity; intersections get traffic lights, stop lines, and
    crosswalks.
    """
    builder = WorldBuilder("grid-city")
    setback = 12.0
    nx, ny = blocks_x + 1, blocks_y + 1

    def corner(ix: int, iy: int) -> np.ndarray:
        return np.array([ix * block_size, iy * block_size])

    # Horizontal streets.
    for iy in range(ny):
        for ix in range(blocks_x):
            a = corner(ix, iy) + np.array([setback, 0.0])
            b = corner(ix + 1, iy) - np.array([setback, 0.0])
            builder.add_road(RoadSpec(
                reference=straight(a, b, spacing=10.0),
                forward_lanes=lanes_per_direction,
                backward_lanes=lanes_per_direction,
                speed_limit=speed_limit,
            ))
    # Vertical streets.
    for ix in range(nx):
        for iy in range(blocks_y):
            a = corner(ix, iy) + np.array([0.0, setback])
            b = corner(ix, iy + 1) - np.array([0.0, setback])
            builder.add_road(RoadSpec(
                reference=straight(a, b, spacing=10.0),
                forward_lanes=lanes_per_direction,
                backward_lanes=lanes_per_direction,
                speed_limit=speed_limit,
            ))

    # Turn connectors across every intersection.
    centres = [corner(ix, iy) for ix in range(nx) for iy in range(ny)]
    connect_intersections(builder.map, centres, radius=setback + 4.0)

    # Intersection furniture.
    for ix in range(nx):
        for iy in range(ny):
            centre = corner(ix, iy)
            if with_lights and rng.uniform() < 0.8:
                for dx, dy in ((setback, 0), (-setback, 0), (0, setback), (0, -setback)):
                    builder.map.create(
                        TrafficLight,
                        position=centre + np.array([dx, dy]) * 0.8,
                        facing=math.atan2(-dy, -dx),
                        phase_offset=float(rng.uniform(0, 60.0)),
                    )
            if rng.uniform() < sign_density:
                offset = rng.uniform(-setback, setback, size=2)
                builder.add_sign(centre + offset + np.array([6.0, 6.0]),
                                 SignType.STOP, facing=float(rng.uniform(-np.pi, np.pi)))
            # Crosswalks across the four approaches.
            half_road = 3.5 * lanes_per_direction + 0.5
            if rng.uniform() < 0.7:
                y0 = centre[1] - setback
                builder.map.create(Crosswalk, polygon=np.array([
                    [centre[0] - half_road, y0 - 3.0],
                    [centre[0] + half_road, y0 - 3.0],
                    [centre[0] + half_road, y0],
                    [centre[0] - half_road, y0],
                ]))
    # Painted arrows near some intersections (IPM-matchable markings).
    for lane in list(builder.map.lanes()):
        if rng.uniform() < 0.3 and lane.length > 20.0:
            pos = lane.centerline.point_at(lane.length - 8.0)
            builder.map.create(RoadMarking, position=pos.copy(),
                               marking_type="arrow")
    return builder.finish()


def connect_intersections(hdmap: HDMap, centres: List[np.ndarray],
                          radius: float = 16.0,
                          allow_u_turns: bool = False) -> int:
    """Create virtual connector lanes across intersection gaps.

    For each intersection centre, every lane *ending* near it is joined to
    every lane *starting* near it with a short Bezier connector (except
    U-turns back onto the same road), giving the lane graph real urban
    turn topology. Returns the number of connectors created.
    """
    from repro.core.elements import Lane, LaneType

    created = 0
    lanes = list(hdmap.lanes())
    for centre in centres:
        incoming = []
        outgoing = []
        for lane in lanes:
            end = lane.centerline.end
            start = lane.centerline.start
            if float(np.hypot(*(end - centre))) <= radius:
                incoming.append(lane)
            if float(np.hypot(*(start - centre))) <= radius:
                outgoing.append(lane)
        for lane_in in incoming:
            p0 = lane_in.centerline.end
            h_in = lane_in.centerline.heading_at(lane_in.centerline.length)
            d_in = np.array([math.cos(h_in), math.sin(h_in)])
            for lane_out in outgoing:
                if lane_out.id == lane_in.id:
                    continue
                p3 = lane_out.centerline.start
                h_out = lane_out.centerline.heading_at(0.0)
                d_out = np.array([math.cos(h_out), math.sin(h_out)])
                gap = float(np.hypot(*(p3 - p0)))
                if gap < 0.5 or gap > 2.5 * radius:
                    continue
                if not allow_u_turns and float(d_in @ d_out) < -0.7:
                    continue
                # Cubic Bezier respecting both tangents.
                p1 = p0 + d_in * gap / 3.0
                p2 = p3 - d_out * gap / 3.0
                t = np.linspace(0.0, 1.0, 8)[:, None]
                pts = ((1 - t)**3 * p0 + 3 * (1 - t)**2 * t * p1
                       + 3 * (1 - t) * t**2 * p2 + t**3 * p3)
                hdmap.create(
                    Lane,
                    centerline=Polyline(pts),
                    width=min(lane_in.width, lane_out.width),
                    lane_type=LaneType.DRIVING,
                    speed_limit=min(lane_in.speed_limit,
                                    lane_out.speed_limit, 8.33),
                )
                created += 1
    return created


def generate_factory_floor(rng: np.random.Generator, aisles: int = 4,
                           aisle_length: float = 60.0,
                           aisle_gap: float = 10.0,
                           sign_spacing: float = 15.0) -> HDMap:
    """An indoor smart-factory floor: parallel one-lane aisles plus a
    cross-aisle, lined with safety signs (Tas et al. [10], [11])."""
    builder = WorldBuilder("factory")
    for i in range(aisles):
        y = i * aisle_gap
        segment = builder.add_road(RoadSpec(
            reference=straight([0.0, y], [aisle_length, y], spacing=5.0),
            forward_lanes=1,
            backward_lanes=0,
            lane_width=2.4,
            speed_limit=2.0,
        ))
        builder.add_signs_along(segment, sign_spacing, SignType.SAFETY,
                                side_offset=2.5, rng=rng)
    # Cross aisle connecting the ends.
    builder.add_road(RoadSpec(
        reference=straight([aisle_length + 3.0, -3.0],
                           [aisle_length + 3.0, (aisles - 1) * aisle_gap + 3.0],
                           spacing=5.0),
        forward_lanes=1,
        backward_lanes=0,
        lane_width=2.4,
        speed_limit=2.0,
    ))
    return builder.finish()
