"""Command-line interface: generate, inspect, validate, and route on maps.

Usage::

    python -m repro generate --kind city --seed 7 --out city.json
    python -m repro stats city.json [--tiles] [--tile-size 500]
    python -m repro validate city.json
    python -m repro route city.json --from 100,100 --to 600,400
    python -m repro serve-bench city.json --workers 1,4 --vehicles 8
    python -m repro ingest-bench city.json --workers 1,4 --vehicles 4
    python -m repro chaos-bench city.json --classes sensor,pipeline
    python -m repro cluster-bench city.json --shards 1,2 --check-scaling 1.5
    python -m repro cluster-bench city.json --replicas 1 --pipeline --check-scaling
    python -m repro pack-bench city.json --check --out PACK_BENCH.json
    python -m repro taxonomy
    python -m repro perf-bench --out BENCH_PERF.json
    python -m repro obs export city.json --format prometheus
    python -m repro obs trace --input spans.jsonl [--trace-id ID]
    python -m repro obs top --input spans.jsonl
    python -m repro obs smoke city.json
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

import numpy as np


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.storage import save_map
    from repro.world import (
        generate_factory_floor,
        generate_grid_city,
        generate_highway,
    )
    from repro.world.hdmapgen import HDMapGenSampler, MapTopologySpec

    rng = np.random.default_rng(args.seed)
    if args.kind == "city":
        hdmap = generate_grid_city(rng, blocks_x=args.size, blocks_y=args.size)
    elif args.kind == "highway":
        hdmap = generate_highway(rng, length=args.size * 1000.0)
    elif args.kind == "factory":
        hdmap = generate_factory_floor(rng, aisles=args.size)
    elif args.kind == "sampled":
        spec = MapTopologySpec(n_junctions=max(4, args.size * 3))
        hdmap = HDMapGenSampler(spec).sample_map(rng)
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(args.kind)
    n_bytes = save_map(hdmap, args.out)
    print(f"wrote {hdmap.name}: {len(hdmap)} elements, "
          f"{n_bytes / 1024:.1f} KB -> {args.out}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.storage import TileStore, load_map
    from repro.world.hdmapgen import map_statistics

    hdmap = load_map(args.map)
    stats = map_statistics(hdmap)
    print(f"map: {hdmap.name} (version {hdmap.version})")
    print(f"  elements by kind: {hdmap.counts_by_kind()}")
    print(f"  total lane length: {hdmap.total_lane_length() / 1000:.2f} km")
    print(f"  mean lane length: {stats.mean_lane_length:.1f} m")
    print(f"  mean |curvature|: {stats.mean_abs_curvature:.4f} 1/m")
    print(f"  mean junction degree: {stats.mean_junction_degree:.2f}")
    if args.tiles:
        store = TileStore.build(hdmap, tile_size=args.tile_size)
        n_tiles = len(store.tiles())
        total = store.total_bytes()
        print(f"  tile store ({args.tile_size:.0f} m tiles):")
        print(f"    tiles: {n_tiles}")
        print(f"    blob bytes: {total} "
              f"({total / 1024:.1f} KB, "
              f"{total / max(n_tiles, 1):.0f} B/tile mean)")
        largest = store.largest_tile()
        if largest is not None:
            tile, size = largest
            print(f"    largest tile: {tile} ({size} B)")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.core import Severity, validate_map
    from repro.storage import load_map

    hdmap = load_map(args.map)
    issues = validate_map(hdmap)
    errors = [i for i in issues if i.severity is Severity.ERROR]
    for issue in issues:
        print(f"  {issue}")
    print(f"{len(errors)} error(s), {len(issues) - len(errors)} warning(s)")
    return 1 if errors else 0


def _parse_point(text: str) -> tuple:
    try:
        x, y = text.split(",")
        return float(x), float(y)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected 'x,y' metres, got {text!r}") from None


def _cmd_route(args: argparse.Namespace) -> int:
    from repro.planning import LaneRouter, describe_route, render_guidance
    from repro.storage import load_map

    hdmap = load_map(args.map)
    router = LaneRouter(hdmap)
    result = router.route_between_points(args.start, args.goal)
    length = router.route_length(result)
    print(f"route: {result.n_lanes} lanes, {length:.0f} m driven, "
          f"{result.stats.expansions} nodes expanded")
    print(render_guidance(describe_route(hdmap, result)))
    return 0


def _parse_worker_list(text: str) -> List[int]:
    try:
        workers = [int(w) for w in text.split(",") if w]
        if not workers or any(w < 1 for w in workers):
            raise ValueError
        return workers
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated worker counts, got {text!r}") from None


def _trace_sample_setup(args: argparse.Namespace) -> bool:
    """Enable tracing when the bench asked for a span dump."""
    if not getattr(args, "trace_sample", None):
        return False
    from repro.obs import configure_tracing
    configure_tracing(enabled=True, sample_rate=args.trace_sample_rate,
                      capacity=65536, reset=True)
    return True


def _trace_sample_dump(args: argparse.Namespace) -> None:
    from repro.obs import TRACER
    n = TRACER.recorder.dump_jsonl(args.trace_sample)
    print(f"wrote {n} spans "
          f"({len(TRACER.recorder.trace_ids())} traces, "
          f"sample rate {args.trace_sample_rate}) -> {args.trace_sample}")
    TRACER.configure(enabled=False)


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.serve import FleetSimulator, MapService
    from repro.storage import TileStore, load_map
    from repro.update.distribution import MapDistributionServer

    tracing = _trace_sample_setup(args)
    hdmap = load_map(args.map)
    store = TileStore.build(hdmap, tile_size=args.tile_size)
    print(f"serving {hdmap.name}: {len(store.tiles())} tiles, "
          f"{store.total_bytes() / 1024:.1f} KB, "
          f"{args.vehicles} vehicles x {args.route / 1000:.1f} km")
    header = (f"{'workers':>7}  {'throughput':>12}  {'hit rate':>8}  "
              f"{'p95 query':>9}  {'shed':>5}  {'rejected':>8}  "
              f"{'consistent':>10}")
    print(header)
    print("-" * len(header))
    for workers in args.workers:
        server = MapDistributionServer(hdmap.copy())
        service = MapService(server, store, n_workers=workers,
                             service_latency_s=args.service_latency_ms / 1e3,
                             storage_latency_s=args.storage_latency_ms / 1e3)
        with service:
            fleet = FleetSimulator(service, hdmap,
                                   n_vehicles=args.vehicles,
                                   route_length_m=args.route,
                                   sync_every=5, ingest_every=7,
                                   seed=args.seed, trace_requests=tracing)
            report = fleet.run()
        query = report.latency.get("SpatialQuery", {})
        consistent = report.consistency_violations == 0 \
            and report.version_regressions == 0
        print(f"{workers:>7}  {report.throughput_rps:>8.0f} rps  "
              f"{100 * report.cache_hit_rate:>7.1f}%  "
              f"{1e3 * query.get('p95_s', 0.0):>6.1f} ms  "
              f"{report.shed_total:>5}  {report.rejected_total:>8}  "
              f"{'yes' if consistent else 'NO':>10}")
    if tracing:
        _trace_sample_dump(args)
    return 0


def _cmd_ingest_bench(args: argparse.Namespace) -> int:
    import time

    from repro.core.changes import ChangeType
    from repro.ingest import FleetObservationSource, IngestPipeline
    from repro.storage import load_map
    from repro.update.distribution import MapDistributionServer
    from repro.world.scenario import ChangeSpec, apply_changes

    tracing = _trace_sample_setup(args)
    hdmap = load_map(args.map)
    rng = np.random.default_rng(args.seed)
    scenario = apply_changes(
        hdmap, ChangeSpec(remove_signs=args.remove_signs,
                          add_signs=args.add_signs), rng)
    n_true = len(scenario.true_changes)
    print(f"ingesting against {hdmap.name}: {n_true} injected change(s), "
          f"{args.vehicles} vehicles x {args.routes} route(s) x "
          f"{args.route / 1000:.1f} km")
    header = (f"{'workers':>7}  {'published':>9}  {'throughput':>12}  "
              f"{'versions':>8}  {'detected':>8}  {'dedup':>6}  "
              f"{'dead':>4}  {'fresh p95':>9}")
    print(header)
    print("-" * len(header))
    for workers in args.workers:
        server = MapDistributionServer(scenario.prior.copy())
        pipe = IngestPipeline(server, tile_size=args.tile_size,
                              n_workers=workers,
                              n_partitions=max(8, workers),
                              capacity_per_partition=8192,
                              stage_latency_s=args.stage_latency_ms / 1e3)
        source = FleetObservationSource(
            scenario, n_vehicles=args.vehicles,
            route_length_m=args.route, step_s=0.5,
            routes_per_vehicle=args.routes,
            duplicate_rate=args.duplicate_rate, seed=args.seed)
        report = source.run(pipe.submit)
        t0 = time.perf_counter()
        with pipe:
            pipe.drain(120.0)
        elapsed = time.perf_counter() - t0
        changes = server.changes_since(0)
        removed = {c.element_id for c in changes
                   if c.change_type is ChangeType.REMOVED}
        added = [c.position for c in changes
                 if c.change_type is ChangeType.ADDED]
        detected = 0
        for true_change in scenario.true_changes:
            if true_change.change_type is ChangeType.REMOVED:
                detected += true_change.element_id in removed
            else:
                tx, ty = true_change.position
                detected += any(
                    float(np.hypot(tx - ax, ty - ay)) <= 6.0
                    for ax, ay in added)
        stats = pipe.stats()
        print(f"{workers:>7}  {report.published:>9}  "
              f"{report.published / max(elapsed, 1e-9):>8.0f} o/s  "
              f"{server.version:>8}  {detected:>5}/{n_true}  "
              f"{report.deduplicated:>6}  "
              f"{stats['batches']['dead_letters']:>4}  "
              f"{1e3 * stats['freshness']['p95_s']:>6.1f} ms")
    if tracing:
        _trace_sample_dump(args)
    if args.verify:
        return _verify_overhead_gate(hdmap, args.max_verify_overhead,
                                     args.seed)
    return 0


def _verify_overhead_gate(hdmap, max_overhead: float, seed: int) -> int:
    """The CI gate on the constraint verify stage's publish overhead.

    A/B benchmark of the publish hot path: the same stream of clean
    sign-add patches is pushed through an ungated pipeline's publisher
    and a gated one (arms interleaved rep by rep, best run kept, fresh
    servers per run so neither arm benefits from warm state, GC paused
    during the timed loops so a collection landing in one arm doesn't
    masquerade as gate latency). The gated arm must (a) publish every
    clean patch — zero false quarantines — (b) still quarantine an
    obviously corrupt patch, and (c) add at most ``max_overhead``
    relative latency.
    """
    import gc
    import time

    from repro.core.elements import Lane, SignType, TrafficSign
    from repro.core.ids import ElementId
    from repro.core.versioning import MapPatch
    from repro.geometry.polyline import Polyline
    from repro.ingest import ConfirmedPatch, IngestPipeline
    from repro.update.distribution import MapDistributionServer

    n_patches = 1600
    reps = 5
    min_x, min_y, max_x, max_y = hdmap.bounds()

    def build_patches(server):
        rng = np.random.default_rng(seed)
        out = []
        for i in range(n_patches):
            sign = TrafficSign(
                id=server.new_element_id("sign"),
                position=np.array([rng.uniform(min_x, max_x),
                                   rng.uniform(min_y, max_y)]),
                sign_type=SignType.DIRECTION)
            patch = MapPatch(source="verify-bench",
                             confidence=0.9).add(sign)
            out.append(ConfirmedPatch(key=f"verify-bench:add:{i}",
                                      patch=patch))
        return out

    chunk = 100  # publishes per timed slice

    def one_run(verify: bool):
        server = MapDistributionServer(hdmap.copy())
        pipe = IngestPipeline(server, n_workers=1, verify=verify)
        # No conflation: every publish must do the full ingest, so
        # both arms measure identical database work.
        pipe.publisher.add_conflation_radius = 0.0
        patches = build_patches(server)
        slices = []
        gc.collect()
        gc.disable()
        try:
            for start in range(0, n_patches, chunk):
                t0 = time.perf_counter()
                for confirmed in patches[start:start + chunk]:
                    pipe.publisher.publish(confirmed)
                slices.append(time.perf_counter() - t0)
            return slices, pipe
        finally:
            gc.enable()

    def measure():
        # Arms are interleaved rep by rep so clock-speed / allocator
        # drift lands on both equally. A run is timed in small slices;
        # per slice index the map state is identical across arms and
        # reps, so taking the per-slice minimum over the reps discards
        # scheduler/frequency transients a whole-run minimum would keep
        # (one hiccup anywhere in a run poisons its total, and a fresh
        # hiccup in every rep is likelier than one in every slice).
        base_best = [float("inf")] * (n_patches // chunk)
        gated_best = list(base_best)
        pipe = None
        for _ in range(reps):
            slices, _ = one_run(verify=False)
            base_best = [min(a, b) for a, b in zip(base_best, slices)]
            slices, pipe = one_run(verify=True)
            gated_best = [min(a, b) for a, b in zip(gated_best, slices)]
        return sum(base_best), sum(gated_best), pipe

    # Noise only ever inflates a measurement (the gate cannot run
    # faster than its true cost), so on an over-budget reading the
    # whole A/B is re-measured and the lowest overhead kept: a real
    # regression stays over budget on every attempt, a background-load
    # spike does not.
    one_run(verify=True)  # warm both code paths before timing
    base_s, gated_s, gated_pipe = measure()
    for _ in range(3):
        if gated_s / base_s - 1.0 <= max_overhead:
            break
        time.sleep(0.5)  # let a background-load burst pass
        nxt_base, nxt_gated, nxt_pipe = measure()
        if nxt_gated / nxt_base < gated_s / base_s:
            base_s, gated_s, gated_pipe = nxt_base, nxt_gated, nxt_pipe
    stats = gated_pipe.stats()["verify"]
    overhead = gated_s / base_s - 1.0
    print(f"verify gate: {n_patches} clean publishes "
          f"ungated {base_s * 1e3:.1f} ms, gated {gated_s * 1e3:.1f} ms "
          f"-> overhead {overhead * 100:+.1f}% "
          f"(budget {max_overhead * 100:.0f}%)")
    failures = []
    if stats["quarantined"] != 0:
        failures.append(f"{stats['quarantined']} clean patch(es) "
                        f"falsely quarantined")
    if stats["passed"] != n_patches:
        failures.append(f"only {stats['passed']}/{n_patches} clean "
                        f"patch(es) passed the gate")
    # Sanity: the gate that just ran must still reject corrupt geometry.
    corrupt = MapPatch(source="verify-bench", confidence=0.9).add(Lane(
        id=ElementId("lane", 990_000),
        centerline=Polyline(np.array([[0.0, 0.0], [0.2, 0.0]])),
        left_boundary=ElementId("boundary", 990_000),
        right_boundary=ElementId("boundary", 990_001),
        width=0.4, speed_limit=13.9))
    result = gated_pipe.publisher.publish(
        ConfirmedPatch(key="verify-bench:corrupt", patch=corrupt))
    if not result.quarantined:
        failures.append("corrupt patch was not quarantined")
    if overhead > max_overhead:
        failures.append(f"verify overhead {overhead * 100:.1f}% exceeds "
                        f"the {max_overhead * 100:.0f}% budget")
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print(f"verify gate ok: clean publishes unharmed, corrupt patch "
              f"quarantined ({len(gated_pipe.verify_gate.quarantine)} "
              f"record(s))")
    return 1 if failures else 0


def _obs_workload(map_path: str, seed: int):
    """Run one small fully-traced serve+ingest workload.

    Everything registers into one :class:`MetricsRegistry` (serve, ingest,
    perf kernels, log counters); tracing runs at sample rate 1.0 into a
    ring large enough that nothing wraps. Returns the registry — the
    recorder/event log are the global ones on ``repro.obs``.
    """
    from repro.ingest import FleetObservationSource, IngestPipeline
    from repro.obs import (
        EVENT_LOG,
        MetricsRegistry,
        configure_tracing,
        register_perf_registry,
    )
    from repro.perf.instrument import REGISTRY as PERF_REGISTRY
    from repro.serve import FleetSimulator, MapService
    from repro.storage import TileStore, load_map
    from repro.update.distribution import MapDistributionServer
    from repro.world.scenario import ChangeSpec, apply_changes

    hdmap = load_map(map_path)
    rng = np.random.default_rng(seed)
    scenario = apply_changes(
        hdmap, ChangeSpec(remove_signs=1, add_signs=1), rng)

    registry = MetricsRegistry()
    EVENT_LOG.register_into(registry)
    configure_tracing(enabled=True, sample_rate=1.0, capacity=65536,
                      reset=True)
    PERF_REGISTRY.enable()
    register_perf_registry(registry, PERF_REGISTRY)

    server = MapDistributionServer(scenario.prior.copy())
    store = TileStore.build(scenario.prior, tile_size=250.0)
    pipe = IngestPipeline(server, tile_size=250.0, n_workers=2)
    pipe.register_into(registry)
    source = FleetObservationSource(scenario, n_vehicles=2,
                                    route_length_m=600.0, step_s=1.0,
                                    seed=seed)
    with pipe:
        source.run(pipe.submit)
        pipe.drain(30.0)
    service = MapService(server, store, n_workers=2, registry=registry)
    with service:
        FleetSimulator(service, scenario.prior, n_vehicles=2,
                       route_length_m=400.0, sync_every=3, ingest_every=5,
                       seed=seed, trace_requests=True).run()
    PERF_REGISTRY.disable()
    return registry


def _cmd_obs_export(args: argparse.Namespace) -> int:
    registry = _obs_workload(args.map, args.seed)
    if args.format == "json":
        print(registry.to_json())
    else:
        print(registry.to_prometheus(), end="")
    from repro.obs import TRACER
    TRACER.configure(enabled=False)
    return 0


def _cmd_obs_trace(args: argparse.Namespace) -> int:
    from repro.obs import format_trace, load_spans_jsonl, verify_spans

    spans = load_spans_jsonl(args.input)
    by_trace: dict = {}
    for span in spans:
        by_trace.setdefault(span["trace_id"], []).append(span)
    if getattr(args, "cluster", False):
        # Cluster mode: keep only traces that actually crossed a process
        # boundary (a router-side cluster.* span plus a shard-side span
        # merged by the telemetry harvester), and treat any structural
        # violation in them as a hard failure — a broken parent chain
        # here means propagation or merging regressed.
        def _cross_process(trace_spans: list) -> bool:
            has_router = any(str(s["name"]).startswith("cluster.")
                             for s in trace_spans)
            has_shard = any("role" in (s.get("attrs") or {})
                            for s in trace_spans)
            return has_router and has_shard

        by_trace = {tid: ts for tid, ts in by_trace.items()
                    if _cross_process(ts)}
        problems = [p for tid, ts in by_trace.items()
                    for p in verify_spans(ts)]
        if problems:
            for problem in problems:
                print(f"OBS TRACE FAILED: {problem}", file=sys.stderr)
            return 1
        if not by_trace:
            print("(no cross-process cluster traces)", file=sys.stderr)
            return 1
    if not by_trace:
        print("(no spans)")
        return 0
    if args.trace_id is not None:
        if args.trace_id not in by_trace:
            print(f"trace {args.trace_id!r} not found "
                  f"({len(by_trace)} traces in {args.input})",
                  file=sys.stderr)
            return 1
        wanted = [args.trace_id]
    else:
        wanted = list(by_trace)[:args.limit]
    for trace_id in wanted:
        print(f"trace {trace_id} ({len(by_trace[trace_id])} spans)")
        print(format_trace(by_trace[trace_id]))
        print()
    print(f"{len(by_trace)} trace(s), {len(spans)} span(s) total")
    return 0


def _cmd_obs_top(args: argparse.Namespace) -> int:
    from collections import defaultdict

    from repro.obs import load_spans_jsonl

    spans = load_spans_jsonl(args.input)
    agg = defaultdict(lambda: [0, 0.0, 0.0])  # count, total_s, max_s
    for span in spans:
        entry = agg[span["name"]]
        duration = float(span.get("duration_s") or 0.0)
        entry[0] += 1
        entry[1] += duration
        entry[2] = max(entry[2], duration)
    header = (f"{'span':<28} {'count':>6} {'total':>10} "
              f"{'mean':>10} {'max':>10}")
    print(header)
    print("-" * len(header))
    ranked = sorted(agg.items(), key=lambda kv: kv[1][1], reverse=True)
    for name, (count, total, peak) in ranked[:args.limit]:
        print(f"{name:<28} {count:>6} {1e3 * total:>8.2f}ms "
              f"{1e3 * total / count:>8.3f}ms {1e3 * peak:>8.3f}ms")
    return 0


def _cmd_obs_smoke(args: argparse.Namespace) -> int:
    """CI gate: traced workload, valid export, no broken spans."""
    from repro.obs import TRACER, validate_prometheus_text, verify_spans

    registry = _obs_workload(args.map, args.seed)
    failures: List[str] = []

    text = registry.to_prometheus()
    failures += [f"prometheus: {p}" for p in validate_prometheus_text(text)]
    from repro.obs.metrics import _prom_name
    exported = {line.split("{")[0].split(" ")[0]
                for line in text.splitlines()
                if line and not line.startswith("#")}
    for name in registry.names():
        pname = _prom_name(name)
        if not any(e == pname or e.startswith(pname + "_")
                   for e in exported):
            failures.append(f"metric {name!r} missing from export")
    for prefix in ("serve.", "ingest.", "perf.", "log."):
        if not any(n.startswith(prefix) for n in registry.names()):
            failures.append(f"no {prefix}* metrics registered")

    spans = [s.as_dict() for s in TRACER.recorder.spans()]
    if not spans:
        failures.append("no spans recorded")
    failures += [f"trace: {p}" for p in verify_spans(spans)]
    if TRACER.recorder.dropped:
        failures.append(
            f"span ring wrapped ({TRACER.recorder.dropped} dropped)")

    n_traces = len(TRACER.recorder.trace_ids())
    TRACER.configure(enabled=False)
    if failures:
        for failure in failures:
            print(f"OBS SMOKE FAILURE: {failure}", file=sys.stderr)
        return 1
    print(f"obs smoke passed: {len(registry.names())} metrics exported, "
          f"{len(spans)} spans across {n_traces} traces, all parented")
    return 0


def _cmd_chaos_bench(args: argparse.Namespace) -> int:
    """Certify graceful degradation under the curated fault matrix."""
    from repro.chaos import (
        ChaosHarness,
        ChaosWorkload,
        ClusterChaosHarness,
        ClusterWorkload,
        FaultPlan,
    )
    from repro.chaos.faults import FAULT_CLASSES, curated_matrix
    from repro.storage import load_map

    hdmap = load_map(args.map)
    wanted = None if args.classes == "all" else \
        {c.strip() for c in args.classes.split(",") if c.strip()}
    if wanted is not None:
        unknown = wanted - set(FAULT_CLASSES)
        if unknown:
            print(f"unknown fault class(es): {', '.join(sorted(unknown))} "
                  f"(choose from {', '.join(FAULT_CLASSES)})",
                  file=sys.stderr)
            return 2
    workload = ChaosWorkload(vehicles=args.vehicles,
                             routes_per_vehicle=args.routes,
                             route_length_m=args.route, seed=args.seed)
    cluster_workload = ClusterWorkload(
        transport=args.shard_transport, seed=args.seed,
        trace_sample_rate=args.trace_sample_rate)
    print(f"chaos matrix against {hdmap.name} "
          f"(seed {args.seed}, {args.vehicles} vehicles x {args.routes} "
          f"route(s) x {args.route / 1000:.1f} km)")
    failures = 0
    ran_shard = False
    for fault_class, plan in curated_matrix(args.seed):
        if wanted is not None and fault_class not in wanted:
            continue
        if fault_class == "shard":
            # the cluster layer has its own harness: shard crashes, slow
            # shards, and rebalances against a live ClusterRouter.
            cluster_harness = ClusterChaosHarness(
                hdmap, plan, workload=cluster_workload,
                freshness_bound_s=args.freshness_bound_s)
            report = cluster_harness.run(fault_class)
            ran_shard = True
        else:
            harness = ChaosHarness(hdmap, plan, workload=workload,
                                   freshness_bound_s=args.freshness_bound_s)
            report = harness.run(fault_class)
        print(report.format())
        if not report.certify():
            failures += len(report.violations())
    if not args.skip_parity:
        if wanted is None or wanted - {"shard"}:
            harness = ChaosHarness(hdmap, FaultPlan.none(args.seed),
                                   workload=workload,
                                   freshness_bound_s=args.freshness_bound_s)
            report = harness.run("parity")
            chaos_bytes = harness.final_map_bytes()
            plain_bytes = harness.run_plain()
            identical = chaos_bytes == plain_bytes
            print(f"parity: inert chaos run vs plain pipeline -> "
                  f"{'byte-identical' if identical else 'MISMATCH'} "
                  f"({len(chaos_bytes)} B)")
            if not identical or not report.certify():
                failures += 1
        if ran_shard:
            cluster_harness = ClusterChaosHarness(
                hdmap, FaultPlan.none(args.seed),
                workload=cluster_workload,
                freshness_bound_s=args.freshness_bound_s)
            report = cluster_harness.run("shard-parity")
            cluster_bytes = cluster_harness.final_map_bytes()
            plain_bytes = cluster_harness.run_plain()
            identical = cluster_bytes == plain_bytes
            print(f"parity: inert cluster run vs single-node service -> "
                  f"{'byte-identical' if identical else 'MISMATCH'} "
                  f"({len(cluster_bytes)} B)")
            if not identical or not report.certify():
                failures += 1
    if failures:
        print(f"CHAOS BENCH FAILED: {failures} violation(s)",
              file=sys.stderr)
        return 1
    print("chaos bench passed: all invariants certified")
    return 0


def _cluster_read_throughput(router, requests: int,
                             clients: int) -> tuple:
    """Aggregate encoded-GetTile req/s against a live router.

    Clients are pinned to one shard and walk *disjoint* subsets of its
    tiles, so two clients never issue the same tile concurrently — the
    router's single-flight coalescing cannot share responses and the
    number measures backend capacity, nothing else.
    """
    import threading

    from repro.serve.api import GetTile

    by_shard: dict = {}
    for tile in router.tiles():
        by_shard.setdefault(router.owner_of_tile(tile), []).append(tile)
    shard_tiles = [by_shard[s] for s in sorted(by_shard)]
    n_lists = len(shard_tiles)
    errors = [0] * clients
    done = [0] * clients
    share = [requests // clients] * clients
    for i in range(requests % clients):
        share[i] += 1

    def worker(me: int) -> None:
        tiles = shard_tiles[me % n_lists]
        rank = me // n_lists
        peers = len(range(me % n_lists, clients, n_lists))
        mine = tiles[rank % len(tiles)::peers] or \
            [tiles[rank % len(tiles)]]
        for k in range(share[me]):
            tile = mine[k % len(mine)]
            response = router.request(GetTile(tile=tile, encoded=True))
            if not response.ok:
                errors[me] += 1
            done[me] += 1

    threads = [threading.Thread(target=worker, args=(i,),
                                name=f"bench-client-{i}")
               for i in range(clients)]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - t0
    throughput = sum(done) / elapsed if elapsed > 0 else 0.0
    return throughput, sum(errors), elapsed


def _cmd_cluster_bench(args: argparse.Namespace) -> int:
    """Sweep shard counts; optionally gate the concurrent read path.

    The sweep measures aggregate encoded-GetTile throughput per shard
    count (pipelined connections, so N shards x W workers concurrent
    requests overlap their simulated service cost). ``--pipeline`` adds
    the read-path suite: replica read scaling vs the legacy lockstep
    baseline, concurrent vs serial scatter-gather, and single-flight
    GetTile coalescing with byte-parity. ``--trace-sample-rate`` adds
    the telemetry-plane suite: interleaved traced/untraced read rounds
    bound the sampling overhead, and a guaranteed-sampled request must
    reconstruct as one merged cross-process span tree after a telemetry
    harvest. ``--check-scaling`` turns the measured ratios into hard
    gates; every number lands in ``--out``.
    """
    import json
    import threading

    from repro.cluster import ClusterRouter
    from repro.serve.api import ChangesSince, GetTile
    from repro.storage import load_map

    hdmap = load_map(args.map)
    latency_s = args.service_latency_ms / 1e3
    check = args.check_scaling is not None
    sweep_gate = args.check_scaling if check and args.check_scaling > 0 \
        else 1.5
    failures: List[str] = []
    report: dict = {
        "map": hdmap.name, "transport": args.transport,
        "service_latency_ms": args.service_latency_ms,
        "requests": args.requests, "clients": args.clients,
        "sweep": [], "gates": {},
    }

    # -- shard-count sweep ----------------------------------------------
    print(f"cluster GetTile sweep against {hdmap.name} "
          f"({args.requests} requests, {args.clients} client(s), "
          f"{args.service_latency_ms:g} ms simulated service cost, "
          f"transport={args.transport})")
    print(f"{'shards':>6} {'errors':>7} {'elapsed':>9} "
          f"{'throughput':>12}")
    results: List[tuple] = []
    for n_shards in args.shards:
        router = ClusterRouter(
            hdmap, n_shards=n_shards, tile_size=args.tile_size,
            replicas=args.replicas, transport=args.transport,
            n_workers=args.workers, service_latency_s=latency_s)
        try:
            throughput, failed, elapsed = _cluster_read_throughput(
                router, args.requests, args.clients)
        finally:
            router.close()
        results.append((n_shards, throughput, failed))
        report["sweep"].append({"shards": n_shards,
                                "throughput_rps": round(throughput, 1),
                                "errors": failed,
                                "elapsed_s": round(elapsed, 3)})
        print(f"{n_shards:>6} {failed:>7} {elapsed:>8.2f}s "
              f"{throughput:>9.1f} req/s")
    if any(failed for _, _, failed in results):
        failures.append("request errors during the shard sweep")
    if check and len(results) >= 2:
        base_shards, base_tp, _ = results[0]
        peak_shards, peak_tp, _ = max(results[1:], key=lambda r: r[1])
        factor = peak_tp / base_tp if base_tp > 0 else 0.0
        report["gates"]["sweep_scaling"] = {
            "factor": round(factor, 2), "required": sweep_gate}
        print(f"scaling: {peak_shards} shard(s) vs {base_shards} -> "
              f"{factor:.2f}x (required >= {sweep_gate:g}x)")
        if factor < sweep_gate:
            failures.append(f"shard scaling {factor:.2f}x below "
                            f"{sweep_gate:g}x")

    # -- pipelined read-path suite --------------------------------------
    if args.pipeline:
        # 1. Replica read scaling: 1 replica/shard with pipelining vs
        # the replica-less legacy lockstep router at equal shard count.
        n_shards = 2
        clients = max(args.clients, 16)
        print(f"replica read scaling: {n_shards} shard(s), {clients} "
              f"client(s), {args.requests} requests per mode")
        baseline_rps = replicated_rps = 0.0
        for label, kwargs in (
                ("baseline", dict(replicas=0, pipeline=False)),
                ("1 replica", dict(replicas=1, pipeline=True,
                                   replica_reads=True))):
            router = ClusterRouter(
                hdmap, n_shards=n_shards, tile_size=args.tile_size,
                transport=args.transport, n_workers=args.workers,
                service_latency_s=latency_s, **kwargs)
            try:
                rps, failed, _ = _cluster_read_throughput(
                    router, args.requests, clients)
                hits = router.replica_hits.value
            finally:
                router.close()
            if failed:
                failures.append(f"replica suite: {failed} error(s) "
                                f"({label})")
            if label == "baseline":
                baseline_rps = rps
            else:
                replicated_rps = rps
            print(f"  {label:>10}: {rps:>9.1f} req/s"
                  + (f"  (replica_hits={hits})" if hits else ""))
        replica_speedup = replicated_rps / baseline_rps \
            if baseline_rps > 0 else 0.0
        report["gates"]["replica_speedup"] = {
            "baseline_rps": round(baseline_rps, 1),
            "replicated_rps": round(replicated_rps, 1),
            "factor": round(replica_speedup, 2),
            "required": args.min_replica_speedup}
        print(f"  replica speedup: {replica_speedup:.2f}x "
              f"(required >= {args.min_replica_speedup:g}x)")
        if check and replica_speedup < args.min_replica_speedup:
            failures.append(f"replica speedup {replica_speedup:.2f}x "
                            f"below {args.min_replica_speedup:g}x")

        # 2 + 3. Scatter-gather and coalescing share one slow-handler
        # router: every shard call pays the simulated service cost, so
        # serial broadcasts cost ~shards x latency while concurrent
        # ones cost ~1 x, and concurrent identical GetTiles overlap
        # long enough to coalesce. Six shards put the ideal speedup at
        # 6x — comfortable margin over the 3x gate on noisy runners.
        scatter_shards = 6
        router = ClusterRouter(
            hdmap, n_shards=scatter_shards, tile_size=args.tile_size,
            transport=args.transport, n_workers=args.workers,
            service_latency_s=latency_s)
        try:
            broadcasts = 10
            timings = {}
            # Concurrent first: it pays any warmup, which only flatters
            # the serial baseline — conservative for the gate.
            for mode in ("concurrent", "serial"):
                router.scatter = mode
                t0 = time.perf_counter()
                for _ in range(broadcasts):
                    response = router.request(ChangesSince(since_version=0))
                    if not response.ok:
                        failures.append(f"scatter suite: {response.error}")
                timings[mode] = time.perf_counter() - t0
            router.scatter = "concurrent"
            scatter_speedup = timings["serial"] / timings["concurrent"] \
                if timings["concurrent"] > 0 else 0.0
            report["gates"]["scatter_speedup"] = {
                "serial_s": round(timings["serial"], 3),
                "concurrent_s": round(timings["concurrent"], 3),
                "factor": round(scatter_speedup, 2),
                "required": args.min_scatter_speedup}
            print(f"scatter-gather ({broadcasts} ChangesSince broadcasts "
                  f"over {scatter_shards} shards): serial "
                  f"{timings['serial']:.2f}s, concurrent "
                  f"{timings['concurrent']:.2f}s -> "
                  f"{scatter_speedup:.2f}x "
                  f"(required >= {args.min_scatter_speedup:g}x)")
            if check and scatter_speedup < args.min_scatter_speedup:
                failures.append(f"scatter speedup {scatter_speedup:.2f}x "
                                f"below {args.min_scatter_speedup:g}x")

            # Coalescing byte-parity: identical concurrent encoded
            # GetTiles must collapse onto one flight and every caller
            # must see byte-identical payloads — including a fresh
            # uncoalesced read afterwards.
            tile = router.tiles()[0]
            burst = 8
            payloads: List[object] = [None] * burst

            def one(slot: int) -> None:
                response = router.request(GetTile(tile=tile, encoded=True))
                payloads[slot] = response.payload if response.ok else None

            threads = [threading.Thread(target=one, args=(s,))
                       for s in range(burst)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            solo = router.request(GetTile(tile=tile, encoded=True))
            reference = solo.payload if solo.ok else None
            divergent = sum(1 for p in payloads
                            if p is None or bytes(p) != bytes(reference))
            coalesced = router.read_coalesced.value
            report["gates"]["coalesce"] = {
                "burst": burst, "coalesced": coalesced,
                "divergent": divergent}
            print(f"coalescing: {burst} identical concurrent GetTiles -> "
                  f"{coalesced} coalesced, {divergent} divergent payload(s)")
            if divergent:
                failures.append(f"{divergent} coalesced response(s) "
                                f"diverged from the uncoalesced payload")
            if check and coalesced == 0:
                failures.append("no requests coalesced during the burst")
        finally:
            router.close()

    # -- telemetry-plane suite: tracing overhead + merged-tree check ----
    if args.trace_sample_rate is not None:
        import statistics

        from repro.obs import TRACER, configure_tracing, verify_spans

        n_shards = args.shards[-1]
        rounds = 3
        round_requests = max(100, args.requests // 2)
        print(f"tracing suite: {n_shards} shard(s), sample rate "
              f"{args.trace_sample_rate:g}, {rounds} interleaved "
              f"round(s) x {round_requests} requests per mode")
        configure_tracing(enabled=False, reset=True)
        router = ClusterRouter(
            hdmap, n_shards=n_shards, tile_size=args.tile_size,
            replicas=args.replicas, transport=args.transport,
            n_workers=args.workers, service_latency_s=latency_s,
            telemetry_interval_s=0.25)
        overhead = 0.0
        try:
            # Warm every connection and cache path once, then interleave
            # traced/untraced rounds so drift hits both modes equally.
            _cluster_read_throughput(router, round_requests, args.clients)
            elapsed: dict = {"off": [], "on": []}
            for _ in range(rounds):
                for mode in ("off", "on"):
                    if mode == "on":
                        configure_tracing(
                            enabled=True,
                            sample_rate=args.trace_sample_rate)
                    else:
                        TRACER.configure(enabled=False)
                    _, failed, took = _cluster_read_throughput(
                        router, round_requests, args.clients)
                    if failed:
                        failures.append(
                            f"tracing suite: {failed} error(s) ({mode})")
                    elapsed[mode].append(took)
            off_s = statistics.median(elapsed["off"])
            on_s = statistics.median(elapsed["on"])
            overhead = on_s / off_s - 1.0 if off_s > 0 else 0.0

            # One guaranteed-sampled GetTile, then a harvest: the merged
            # recorder must reconstruct the full cross-process chain.
            configure_tracing(enabled=True, sample_rate=1.0)
            tile = router.tiles()[0]
            response = router.request(GetTile(tile=tile, encoded=True))
            if not response.ok:
                failures.append(f"tracing suite: {response.error}")
            TRACER.set_sample_rate(args.trace_sample_rate)
            router.harvest_telemetry()
            spans = [s.as_dict() for s in TRACER.recorder.spans()]
            trace_problems = verify_spans(spans)
            by_id = {s["span_id"]: s for s in spans}

            def _router_root(span: dict) -> bool:
                while span.get("parent_id") in by_id:
                    span = by_id[span["parent_id"]]
                return str(span["name"]).startswith("cluster.request.") \
                    and span.get("parent_id") is None

            chained = [
                s for s in spans
                if s["name"] == "serve.request.GetTile"
                and by_id.get(s.get("parent_id"), {}).get("name")
                == "shard.serve"
                and _router_root(s)]
            has_rpc = any(s["name"] == "cluster.rpc.serve" for s in spans)
            if trace_problems:
                failures += [f"tracing suite: {p}" for p in trace_problems]
            if not (chained and has_rpc):
                failures.append(
                    "tracing suite: no merged trace chains "
                    "serve.request.GetTile -> shard.serve -> "
                    "cluster.rpc.serve -> cluster.request.*")
            report["gates"]["trace_overhead"] = {
                "off_s": round(off_s, 4), "on_s": round(on_s, 4),
                "overhead": round(overhead, 4),
                "required_max": args.max_trace_overhead,
                "merged_spans": len(spans),
                "harvests": router.telemetry_harvests.value,
                "harvested_spans": router.telemetry_spans.value,
                "dropped": router.telemetry_dropped.value}
            print(f"  traced {on_s:.3f}s vs untraced {off_s:.3f}s -> "
                  f"{100 * overhead:+.1f}% overhead (allowed <= "
                  f"{100 * args.max_trace_overhead:g}%), "
                  f"{len(spans)} merged span(s), "
                  f"{router.telemetry_harvests.value} harvest(s)")
            if check and overhead > args.max_trace_overhead:
                failures.append(
                    f"tracing overhead {100 * overhead:.1f}% above "
                    f"{100 * args.max_trace_overhead:g}%")
            if args.trace_sample is not None:
                with open(args.trace_sample, "w") as fh:
                    for span in spans:
                        fh.write(json.dumps(span, sort_keys=True,
                                            default=str) + "\n")
                print(f"  merged span dump -> {args.trace_sample}")
        finally:
            router.close()
            configure_tracing(enabled=False, reset=True)

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    print(f"report -> {args.out}")
    if failures:
        for failure in failures:
            print(f"CLUSTER BENCH FAILED: {failure}", file=sys.stderr)
        return 1
    return 0


def _cmd_pack_bench(args: argparse.Namespace) -> int:
    """Gate the pack store's serving claims with measured numbers.

    Four checks, all written into the JSON artifact and enforced under
    ``--check``:

    - bytes/tile of the packed base map stays under the ceiling;
    - encoded-GetTile throughput from the mmap'd pack beats the
      object-encode path (cold encode memo every request) by the
      required factor;
    - a synthetic pack with at least ``--target-elements`` elements
      cold-starts (open + one tile decode) inside the budget, with
      exactly one decode — proof there is no hidden full-map decode;
    - the binary delta wire format stays under the required fraction of
      the pickled SyncDelta.
    """
    import json
    import os
    import pickle
    import tempfile

    from repro.core import MapPatch, SignType, TrafficSign
    from repro.core.tiles import TileId
    from repro.pack import PackReader, PackWriter, encode_delta
    from repro.serve.api import GetTile
    from repro.serve.service import MapService
    from repro.storage import TileStore, load_map
    from repro.update.distribution import MapDistributionServer

    hdmap = load_map(args.map)
    store = TileStore.build(hdmap, tile_size=args.tile_size)
    tiles = store.tiles()
    if not tiles:
        print("PACK BENCH FAILED: map has no tiles", file=sys.stderr)
        return 1
    workdir = tempfile.mkdtemp(prefix="pack-bench-")
    pack_path = os.path.join(workdir, "base.pack")
    store.to_pack(pack_path)
    packed = TileStore.from_pack(pack_path)
    bytes_per_tile = store.total_bytes() / len(tiles)
    print(f"packed {hdmap.name}: {len(tiles)} tiles, "
          f"{bytes_per_tile / 1024:.1f} KB/tile, "
          f"{os.path.getsize(pack_path) / 1024:.1f} KB pack file")

    # -- encoded-GetTile throughput: object-encode path vs pack slices --
    def sweep(service: MapService, cold: bool) -> float:
        requests = [GetTile(tile=tiles[i % len(tiles)], encoded=True)
                    for i in range(args.requests)]
        t0 = time.perf_counter()
        for request in requests:
            response = service.request(request)
            assert response.ok, response.error
            if cold:
                # cold cache: force the next request to re-serialize,
                # which is what every distinct-tile miss costs.
                service.cache.invalidate_encoded()
        return args.requests / (time.perf_counter() - t0)

    server = MapDistributionServer(hdmap.copy())
    with MapService(server, store, n_workers=args.workers) as service:
        object_tps = sweep(service, cold=True)
    server = MapDistributionServer(hdmap.copy())
    with MapService(server, packed, n_workers=args.workers) as service:
        pack_tps = sweep(service, cold=False)
        response = service.request(GetTile(tile=tiles[0], encoded=True))
        zero_copy = isinstance(response.payload, memoryview) \
            and response.payload.obj is packed.pack_reader.buffer.obj
    speedup = pack_tps / object_tps if object_tps > 0 else float("inf")
    print(f"encoded GetTile: object-encode {object_tps:,.0f} req/s, "
          f"pack {pack_tps:,.0f} req/s -> {speedup:.1f}x "
          f"(zero-copy payload: {zero_copy})")

    # -- cold start of a >= target-elements pack ------------------------
    big_path = os.path.join(workdir, "big.pack")
    blob = store._blobs[max(tiles, key=store.blob_bytes)]
    from repro.storage.tilestore import _count_elements
    per_blob = max(1, _count_elements(blob))
    n_copies = max(1, -(-args.target_elements // per_blob))
    with PackWriter(big_path, tile_size=args.tile_size) as writer:
        for i in range(n_copies):
            writer.add(TileId(i % 4096, i // 4096), blob,
                       n_elements=per_blob)
        writer.publish()
    t0 = time.perf_counter()
    reader = PackReader(big_path)
    shard = reader.load(reader.tiles()[0])
    cold_start_s = time.perf_counter() - t0
    cold_elements = reader.total_elements
    cold_decodes = int(reader.decodes.value)
    assert shard is not None
    reader.close()
    print(f"cold start: {cold_elements:,} elements "
          f"({os.path.getsize(big_path) / 1e6:.1f} MB pack) open + one "
          f"tile decode in {cold_start_s * 1e3:.1f} ms, "
          f"{cold_decodes} decode(s)")

    # -- delta wire vs pickled SyncDelta --------------------------------
    working = hdmap.copy()
    delta_server = MapDistributionServer(working)
    rng = np.random.default_rng(0)
    for i in range(args.delta_ops):
        patch = MapPatch(source=f"probe-{i}", confidence=0.9)
        x, y = rng.uniform(0, 500, size=2)
        patch.add(TrafficSign(id=working.new_id(f"pb{i}-sign"),
                              position=np.array([x, y]),
                              sign_type=SignType.STOP))
        delta_server.ingest(patch)
    delta = delta_server.delta_since(0)
    wire_bytes = len(encode_delta(delta))
    pickle_bytes = len(pickle.dumps(delta,
                                    protocol=pickle.HIGHEST_PROTOCOL))
    delta_ratio = wire_bytes / pickle_bytes
    print(f"delta wire: {wire_bytes} B vs {pickle_bytes} B pickled "
          f"({args.delta_ops} changes) -> ratio {delta_ratio:.3f}")

    report = {
        "map": hdmap.name,
        "tiles": len(tiles),
        "bytes_per_tile": bytes_per_tile,
        "object_encode_tps": object_tps,
        "pack_tps": pack_tps,
        "speedup": speedup,
        "zero_copy": zero_copy,
        "cold_start_s": cold_start_s,
        "cold_elements": cold_elements,
        "cold_decodes": cold_decodes,
        "delta_wire_bytes": wire_bytes,
        "delta_pickle_bytes": pickle_bytes,
        "delta_ratio": delta_ratio,
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"wrote {args.out}")

    if args.check:
        failures = []
        if bytes_per_tile > args.max_bytes_per_tile:
            failures.append(f"bytes/tile {bytes_per_tile:.0f} above "
                            f"{args.max_bytes_per_tile:.0f}")
        if speedup < args.min_speedup:
            failures.append(f"speedup {speedup:.2f}x below "
                            f"{args.min_speedup:g}x")
        if not zero_copy:
            failures.append("encoded GetTile payload is not a pack "
                            "mmap slice")
        if cold_elements < args.target_elements:
            failures.append(f"cold pack holds {cold_elements:,} elements "
                            f"< {args.target_elements:,}")
        if cold_start_s > args.cold_start_budget_s:
            failures.append(f"cold start {cold_start_s:.2f}s above "
                            f"{args.cold_start_budget_s:g}s")
        if cold_decodes != 1:
            failures.append(f"cold start decoded {cold_decodes} tiles "
                            "(expected exactly 1)")
        if delta_ratio > args.max_delta_ratio:
            failures.append(f"delta ratio {delta_ratio:.3f} above "
                            f"{args.max_delta_ratio:g}")
        if failures:
            for failure in failures:
                print(f"PACK BENCH FAILED: {failure}", file=sys.stderr)
            return 1
        print("pack bench passed: all bounds met")
    return 0


def _cmd_taxonomy(args: argparse.Namespace) -> int:
    from repro import taxonomy

    print(taxonomy.render_table())
    return 0


def _cmd_perf_bench(args: argparse.Namespace) -> int:
    from repro.perf import (
        HEADLINE_KERNELS,
        check_baseline,
        load_report,
        run_perf_suite,
        write_report,
    )

    results, speedups, counters = run_perf_suite(
        repetitions=args.repetitions, warmup=args.warmup)

    print(f"{'kernel':<28} {'median':>10} {'p95':>10} {'reps':>5}")
    for result in results:
        print(f"{result.name:<28} {1e3 * result.median_s:>8.3f}ms "
              f"{1e3 * result.p95_s:>8.3f}ms {len(result.samples_s):>5}")
    print()
    for name, factor in sorted(speedups.items()):
        print(f"speedup {name:<28} {factor:>6.2f}x")

    report = write_report(args.out, results, speedups=speedups,
                          counters=counters)
    print(f"\nwrote {args.out}")

    if args.check_baseline:
        baseline = load_report(args.check_baseline)
        failures = check_baseline(report, baseline, HEADLINE_KERNELS,
                                  max_regression=args.max_regression)
        if failures:
            for failure in failures:
                print(f"PERF REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"baseline check passed for {len(HEADLINE_KERNELS)} headline "
              f"kernels (limit {args.max_regression}x)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HD-map ecosystem reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic HD map")
    gen.add_argument("--kind", choices=("city", "highway", "factory",
                                        "sampled"), default="city")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--size", type=int, default=4,
                     help="blocks (city), km (highway), aisles (factory), "
                          "scale (sampled)")
    gen.add_argument("--out", required=True, help="output GeoJSON path")
    gen.set_defaults(func=_cmd_generate)

    stats = sub.add_parser("stats", help="summarize a map file")
    stats.add_argument("map")
    stats.add_argument("--tiles", action="store_true",
                       help="also report tile-store serving capacity")
    stats.add_argument("--tile-size", type=float, default=500.0,
                       help="tile edge length in metres (with --tiles)")
    stats.set_defaults(func=_cmd_stats)

    val = sub.add_parser("validate", help="run integrity checks")
    val.add_argument("map")
    val.set_defaults(func=_cmd_validate)

    route = sub.add_parser("route", help="lane-level route between points")
    route.add_argument("map")
    route.add_argument("--from", dest="start", type=_parse_point,
                       required=True, metavar="X,Y")
    route.add_argument("--to", dest="goal", type=_parse_point,
                       required=True, metavar="X,Y")
    route.set_defaults(func=_cmd_route)

    bench = sub.add_parser(
        "serve-bench",
        help="load-test the serving layer with a synthetic fleet")
    bench.add_argument("map")
    bench.add_argument("--workers", type=_parse_worker_list, default=[1, 4],
                       metavar="N,M,...",
                       help="worker-pool sizes to sweep (default 1,4)")
    bench.add_argument("--vehicles", type=int, default=8)
    bench.add_argument("--route", type=float, default=2000.0,
                       help="route length per vehicle, metres")
    bench.add_argument("--tile-size", type=float, default=250.0)
    bench.add_argument("--service-latency-ms", type=float, default=2.0,
                       help="simulated per-request network/serialization cost")
    bench.add_argument("--storage-latency-ms", type=float, default=2.0,
                       help="simulated blob-fetch cost on tile cache misses")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--trace-sample", metavar="PATH",
                       help="enable tracing and dump sampled spans (JSONL)")
    bench.add_argument("--trace-sample-rate", type=float, default=0.05,
                       help="root-span sampling rate with --trace-sample")
    bench.set_defaults(func=_cmd_serve_bench)

    ingest = sub.add_parser(
        "ingest-bench",
        help="stream a synthetic fleet through the ingest pipeline")
    ingest.add_argument("map")
    ingest.add_argument("--workers", type=_parse_worker_list, default=[1, 4],
                        metavar="N,M,...",
                        help="stage-worker pool sizes to sweep (default 1,4)")
    ingest.add_argument("--vehicles", type=int, default=4)
    ingest.add_argument("--routes", type=int, default=3,
                        help="routes per vehicle (coverage)")
    ingest.add_argument("--route", type=float, default=1200.0,
                        help="route length per vehicle, metres")
    ingest.add_argument("--remove-signs", type=int, default=2,
                        help="ground-truth sign removals to inject")
    ingest.add_argument("--add-signs", type=int, default=2,
                        help="ground-truth sign additions to inject")
    ingest.add_argument("--duplicate-rate", type=float, default=0.1,
                        help="fraction of reports re-sent (at-least-once "
                             "uplink)")
    ingest.add_argument("--stage-latency-ms", type=float, default=2.0,
                        help="simulated per-batch I/O cost in the pipeline")
    ingest.add_argument("--tile-size", type=float, default=250.0)
    ingest.add_argument("--seed", type=int, default=7)
    ingest.add_argument("--trace-sample", metavar="PATH",
                        help="enable tracing and dump sampled spans (JSONL)")
    ingest.add_argument("--trace-sample-rate", type=float, default=0.05,
                        help="root-span sampling rate with --trace-sample")
    ingest.add_argument("--verify", action="store_true",
                        help="also A/B-benchmark the constraint verify "
                             "gate and fail if its clean-patch publish "
                             "overhead exceeds --max-verify-overhead")
    ingest.add_argument("--max-verify-overhead", type=float, default=0.10,
                        help="relative publish-latency budget for the "
                             "verify gate (default 0.10 = 10%%)")
    ingest.set_defaults(func=_cmd_ingest_bench)

    obs = sub.add_parser(
        "obs", help="unified observability: export, traces, smoke gate")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    obs_export = obs_sub.add_parser(
        "export",
        help="run a traced workload and export the unified registry")
    obs_export.add_argument("map")
    obs_export.add_argument("--format", choices=("prometheus", "json"),
                            default="prometheus")
    obs_export.add_argument("--seed", type=int, default=0)
    obs_export.set_defaults(func=_cmd_obs_export)

    obs_trace = obs_sub.add_parser(
        "trace", help="render span trees from a JSONL span dump")
    obs_trace.add_argument("--input", required=True,
                           help="span dump (from --trace-sample or "
                                "SpanRecorder.dump_jsonl)")
    obs_trace.add_argument("--trace-id", help="render one specific trace")
    obs_trace.add_argument("--limit", type=int, default=3,
                           help="max traces to render without --trace-id")
    obs_trace.add_argument("--cluster", action="store_true",
                           help="show only cross-process cluster traces "
                                "(router span + harvested shard spans) "
                                "and fail on any structural violation")
    obs_trace.set_defaults(func=_cmd_obs_trace)

    obs_top = obs_sub.add_parser(
        "top", help="rank span names by total time from a span dump")
    obs_top.add_argument("--input", required=True)
    obs_top.add_argument("--limit", type=int, default=15)
    obs_top.set_defaults(func=_cmd_obs_top)

    obs_smoke = obs_sub.add_parser(
        "smoke",
        help="CI gate: traced workload, valid Prometheus export, "
             "no unparented/unfinished spans")
    obs_smoke.add_argument("map")
    obs_smoke.add_argument("--seed", type=int, default=0)
    obs_smoke.set_defaults(func=_cmd_obs_smoke)

    chaos = sub.add_parser(
        "chaos-bench",
        help="fault-injection matrix: certify graceful degradation "
             "invariants across the serve->ingest loop")
    chaos.add_argument("map")
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument("--classes", default="all",
                       help="comma-separated fault classes to run "
                            "(sensor,bus,pipeline,publish,serve,shard) "
                            "or 'all'")
    chaos.add_argument("--shard-transport", choices=("process", "local"),
                       default="process",
                       help="shard-class cluster transport (default "
                            "process; local = in-process, for "
                            "constrained CI)")
    chaos.add_argument("--vehicles", type=int, default=3)
    chaos.add_argument("--routes", type=int, default=2,
                       help="routes per vehicle")
    chaos.add_argument("--route", type=float, default=900.0,
                       help="route length per vehicle, metres")
    chaos.add_argument("--freshness-bound-s", type=float, default=30.0,
                       help="freshness-lag invariant bound, seconds")
    chaos.add_argument("--skip-parity", action="store_true",
                       help="skip the faults-disabled byte-parity check")
    chaos.add_argument("--trace-sample-rate", type=float, default=0.0,
                       help="shard-class runs: sample each op as a "
                            "trace at this rate so the report counts "
                            "traces poisoned by injected faults "
                            "(0 = off)")
    chaos.set_defaults(func=_cmd_chaos_bench)

    cluster = sub.add_parser(
        "cluster-bench",
        help="sweep shard counts and check aggregate GetTile scaling")
    cluster.add_argument("map")
    cluster.add_argument("--shards", type=_parse_worker_list, default=[1, 2],
                         metavar="N,M,...",
                         help="shard counts to sweep (default 1,2)")
    cluster.add_argument("--requests", type=int, default=400,
                         help="total GetTile requests per shard count")
    cluster.add_argument("--clients", type=int, default=16,
                         help="concurrent client threads (must exceed "
                              "aggregate shard capacity for the sweep "
                              "to show scaling)")
    cluster.add_argument("--workers", type=int, default=2,
                         help="MapService workers per shard")
    cluster.add_argument("--replicas", type=int, default=0,
                         help="read replicas per shard")
    cluster.add_argument("--tile-size", type=float, default=250.0)
    cluster.add_argument("--service-latency-ms", type=float, default=20.0,
                         help="simulated per-request service cost inside "
                              "each shard; must dominate the ~1 ms "
                              "serial RPC overhead for the sweep to show "
                              "shard-count scaling on few cores")
    cluster.add_argument("--transport", choices=("process", "local"),
                         default="process")
    cluster.add_argument("--pipeline", action="store_true",
                         help="run the concurrent read-path suite: "
                              "replica read scaling vs the lockstep "
                              "baseline, concurrent vs serial scatter-"
                              "gather, and GetTile coalescing parity")
    cluster.add_argument("--check-scaling", type=float, default=None,
                         nargs="?", const=-1.0, metavar="FACTOR",
                         help="enforce the gates; with a FACTOR, require "
                              "best sweep throughput >= FACTOR x the "
                              "first shard count's (bare flag: 1.5x)")
    cluster.add_argument("--min-replica-speedup", type=float, default=2.0,
                         help="required 1-replica/shard vs replica-less "
                              "read throughput ratio (--pipeline)")
    cluster.add_argument("--min-scatter-speedup", type=float, default=3.0,
                         help="required serial/concurrent scatter-gather "
                              "latency ratio (--pipeline)")
    cluster.add_argument("--trace-sample-rate", type=float, default=None,
                         metavar="RATE",
                         help="run the telemetry-plane suite: measure "
                              "read latency with tracing off vs sampled "
                              "at RATE, then harvest and verify one "
                              "merged cross-process trace")
    cluster.add_argument("--trace-sample", default=None, metavar="PATH",
                         help="write the merged (router + harvested "
                              "shard) span dump as JSONL")
    cluster.add_argument("--max-trace-overhead", type=float, default=0.05,
                         help="allowed median-latency overhead of sampled "
                              "tracing (fraction; gated under "
                              "--check-scaling)")
    cluster.add_argument("--out", default="CLUSTER_BENCH.json",
                         help="machine-readable report path")
    cluster.set_defaults(func=_cmd_cluster_bench)

    pack = sub.add_parser(
        "pack-bench",
        help="measure pack-store serving: throughput, cold start, delta")
    pack.add_argument("map")
    pack.add_argument("--tile-size", type=float, default=250.0)
    pack.add_argument("--requests", type=int, default=300,
                      help="encoded GetTile requests per serving path")
    pack.add_argument("--workers", type=int, default=1,
                      help="MapService workers (1 isolates per-request "
                           "serialization cost)")
    pack.add_argument("--target-elements", type=int, default=1_000_000,
                      help="minimum element count of the cold-start pack")
    pack.add_argument("--delta-ops", type=int, default=20,
                      help="ingested changes behind the delta-size check")
    pack.add_argument("--out", default="PACK_BENCH.json",
                      help="machine-readable report path")
    pack.add_argument("--check", action="store_true",
                      help="fail unless every bound below is met")
    pack.add_argument("--min-speedup", type=float, default=5.0,
                      help="required pack/object-encode throughput ratio")
    pack.add_argument("--max-bytes-per-tile", type=float, default=65536,
                      help="ceiling on mean encoded tile size")
    pack.add_argument("--cold-start-budget-s", type=float, default=2.0,
                      help="budget for open + one-tile decode of the "
                           "cold pack")
    pack.add_argument("--max-delta-ratio", type=float, default=0.25,
                      help="ceiling on wire-delta / pickled-delta size")
    pack.set_defaults(func=_cmd_pack_bench)

    tax = sub.add_parser("taxonomy", help="print Table I with coverage")
    tax.set_defaults(func=_cmd_taxonomy)

    perf = sub.add_parser(
        "perf-bench",
        help="run the hot-path kernel microbenchmark suite")
    perf.add_argument("--repetitions", type=int, default=20)
    perf.add_argument("--warmup", type=int, default=3)
    perf.add_argument("--out", default="BENCH_PERF.json",
                      help="machine-readable report path")
    perf.add_argument("--check-baseline", metavar="PATH",
                      help="fail on median regressions vs this report")
    perf.add_argument("--max-regression", type=float, default=2.5,
                      help="regression multiplier the baseline check allows")
    perf.set_defaults(func=_cmd_perf_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
