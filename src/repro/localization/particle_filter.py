"""Generic SE(2) particle filter.

The workhorse behind half the surveyed localization systems ([23], [42],
[48], [53], [59]): predict with odometry, weight with an arbitrary
measurement model, systematic resampling when the effective sample size
drops.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.errors import LocalizationError
from repro.geometry.transform import SE2
from repro.geometry.vec import wrap_angle

WeightFn = Callable[[np.ndarray], np.ndarray]


class ParticleFilter2D:
    """Particles are ``(N, 3)`` rows of ``[x, y, theta]``."""

    def __init__(self, n_particles: int, rng: np.random.Generator) -> None:
        if n_particles < 2:
            raise LocalizationError("need at least 2 particles")
        self.n = n_particles
        self.rng = rng
        self.states = np.zeros((n_particles, 3))
        self.weights = np.full(n_particles, 1.0 / n_particles)

    # ------------------------------------------------------------------
    def init_gaussian(self, pose: SE2, sigma_xy: float,
                      sigma_theta: float) -> None:
        self.states[:, 0] = pose.x + self.rng.normal(0, sigma_xy, self.n)
        self.states[:, 1] = pose.y + self.rng.normal(0, sigma_xy, self.n)
        self.states[:, 2] = pose.theta + self.rng.normal(0, sigma_theta, self.n)
        self.weights[:] = 1.0 / self.n

    def init_uniform(self, bounds, n_theta: int = 8) -> None:
        min_x, min_y, max_x, max_y = bounds
        self.states[:, 0] = self.rng.uniform(min_x, max_x, self.n)
        self.states[:, 1] = self.rng.uniform(min_y, max_y, self.n)
        self.states[:, 2] = self.rng.uniform(-np.pi, np.pi, self.n)
        self.weights[:] = 1.0 / self.n

    # ------------------------------------------------------------------
    def predict(self, ds: float, dtheta: float,
                sigma_ds: float = 0.05, sigma_dtheta: float = 0.01) -> None:
        """Body-frame motion increment with additive noise per particle."""
        ds_n = ds + self.rng.normal(0.0, max(sigma_ds, 1e-6), self.n)
        dth_n = dtheta + self.rng.normal(0.0, max(sigma_dtheta, 1e-6), self.n)
        theta_mid = self.states[:, 2] + dth_n / 2.0
        self.states[:, 0] += ds_n * np.cos(theta_mid)
        self.states[:, 1] += ds_n * np.sin(theta_mid)
        self.states[:, 2] = np.mod(self.states[:, 2] + dth_n + np.pi,
                                   2 * np.pi) - np.pi

    # ------------------------------------------------------------------
    def update(self, weight_fn: WeightFn, floor: float = 1e-12) -> None:
        """Multiply weights by the likelihoods ``weight_fn(states)``."""
        likelihood = np.asarray(weight_fn(self.states), dtype=float)
        if likelihood.shape != (self.n,):
            raise LocalizationError(
                f"weight_fn returned shape {likelihood.shape}, expected ({self.n},)"
            )
        self.weights *= np.maximum(likelihood, floor)
        total = self.weights.sum()
        if not np.isfinite(total) or total <= 0:
            # Degenerate update: reset to uniform rather than dividing by 0.
            self.weights[:] = 1.0 / self.n
        else:
            self.weights /= total

    # ------------------------------------------------------------------
    def effective_sample_size(self) -> float:
        return float(1.0 / np.sum(self.weights**2))

    def resample_if_needed(self, threshold_ratio: float = 0.5) -> bool:
        if self.effective_sample_size() < threshold_ratio * self.n:
            self.resample()
            return True
        return False

    def resample(self) -> None:
        """Systematic (low-variance) resampling."""
        positions = (self.rng.uniform() + np.arange(self.n)) / self.n
        cumulative = np.cumsum(self.weights)
        cumulative[-1] = 1.0
        idx = np.searchsorted(cumulative, positions)
        self.states = self.states[idx].copy()
        self.weights[:] = 1.0 / self.n

    # ------------------------------------------------------------------
    def estimate(self) -> SE2:
        """Weighted mean pose (circular mean for heading)."""
        w = self.weights
        x = float(np.sum(w * self.states[:, 0]))
        y = float(np.sum(w * self.states[:, 1]))
        s = float(np.sum(w * np.sin(self.states[:, 2])))
        c = float(np.sum(w * np.cos(self.states[:, 2])))
        return SE2(x, y, float(np.arctan2(s, c)))

    def covariance_xy(self) -> np.ndarray:
        mean = np.average(self.states[:, :2], axis=0, weights=self.weights)
        centred = self.states[:, :2] - mean
        return (self.weights[:, None] * centred).T @ centred

    def spread(self) -> float:
        """RMS particle distance from the weighted mean (divergence gauge)."""
        cov = self.covariance_xy()
        return float(np.sqrt(np.trace(cov)))
