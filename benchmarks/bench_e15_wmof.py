"""E15 — Chen et al. [19]: Weighted Mode Filter for Full-HD depth maps.

Paper (VLSI): Full-HD upsampling at 43 fps with 5.4 KB on-chip memory.
Shape: the tiled implementation matches the full-frame output bit-for-bit
with a working set orders of magnitude below the full-frame buffers, and
the filter beats nearest-neighbour on accuracy and outliers. (Software
fps is incomparable to silicon; reported for the record.)
"""

import numpy as np
from conftest import once

from repro.depthmap import WeightedModeFilter
from repro.depthmap.wmof import nearest_neighbour_upsample
from repro.eval import ResultTable
from repro.sensors import make_depth_scene


def _experiment(rng):
    frame = make_depth_scene(rng, height=1080, width=1920, factor=4,
                             noise_sigma=0.15)
    wmof = WeightedModeFilter(tile_rows=16)
    tiled_out, tiled_stats = wmof.upsample(frame, tiled=True)
    full_out, full_stats = wmof.upsample(frame, tiled=False)
    nn = nearest_neighbour_upsample(frame)
    nn_mae = float(np.abs(nn - frame.depth_true).mean())
    nn_outliers = float((np.abs(nn - frame.depth_true) > 1.0).mean())
    identical = bool(np.allclose(tiled_out, full_out))
    return tiled_stats, full_stats, nn_mae, nn_outliers, identical


def test_e15_wmof(benchmark, rng):
    tiled, full, nn_mae, nn_outliers, identical = once(
        benchmark, _experiment, rng)

    table = ResultTable("E15", "weighted mode filter, Full-HD [19]")
    table.add("tiled == full output", "exact", str(identical), ok=identical)
    kb = tiled.working_bytes / 1024.0
    table.add("tiled working set (KB)", "5.4 (on-chip)", f"{kb:.1f}",
              ok=kb < 600.0)
    factor = full.working_bytes / tiled.working_bytes
    table.add("vs full-frame buffers", ">> 1", f"{factor:.0f}x smaller",
              ok=factor > 20)
    table.add("MAE vs nearest-neighbour (m)", "(better)",
              f"{tiled.mae:.3f} vs {nn_mae:.3f}", ok=tiled.mae < nn_mae)
    table.add("outliers vs NN", "(fewer)",
              f"{100 * tiled.outlier_fraction:.2f} % vs {100 * nn_outliers:.2f} %",
              ok=tiled.outlier_fraction < nn_outliers)
    table.add("software fps (Full-HD)", "43 (VLSI)", f"{tiled.fps:.2f}",
              ok=None)
    table.print()
    assert table.all_ok()
