"""E3 — Massow et al. [28]: HD maps from vehicular probe data.

Paper: 2.4 m accuracy with GPS-only probes, 1.9 m with additional sensor
channels. Shape: both metre-level; the sensor-fused variant wins.
"""

import numpy as np
from conftest import once

from repro.creation import ProbeMapper
from repro.eval import ResultTable
from repro.sensors import ProbeGenerator
from repro.world import drive_route, generate_highway


def _experiment(rng):
    import numpy as np

    hw = generate_highway(rng, length=2000.0)
    lane = next(iter(hw.lanes()))
    # A small early-days probe fleet with realistic in-lane wander — the
    # regime where the extra sensor channel actually pays (the paper's
    # modest 2.4 -> 1.9 m gain).
    trajectories = [drive_route(hw, lane.id, 1900.0, rng, lateral_sigma=0.6)
                    for _ in range(4)]

    seed = int(rng.integers(0, 2**31))
    plain_traces = ProbeGenerator(with_sensors=False).generate_fleet(
        hw, trajectories, np.random.default_rng(seed))
    gps_only = ProbeMapper(hw, use_lane_sensor=False).build(plain_traces)

    rich_traces = ProbeGenerator(with_sensors=True).generate_fleet(
        hw, trajectories, np.random.default_rng(seed))
    fused = ProbeMapper(hw, use_lane_sensor=True).build(rich_traces)
    return gps_only, fused


def test_e03_probe_data_maps(benchmark, rng):
    gps_only, fused = once(benchmark, _experiment, rng)

    table = ResultTable("E3", "probe-data map derivation [28]")
    table.add("GPS-only error (m)", "2.4", f"{gps_only.centerline_error.mean:.2f}",
              ok=0.2 < gps_only.centerline_error.mean < 4.0)
    table.add("sensor-fused error (m)", "1.9", f"{fused.centerline_error.mean:.2f}",
              ok=fused.centerline_error.mean
              <= gps_only.centerline_error.mean)
    table.add("lanes found (GPS-only)",
              str(gps_only.lanes_true), str(gps_only.lanes_found),
              ok=gps_only.lanes_found >= 1)
    table.print()
    assert table.all_ok()
