"""Incremental map-element fusion (Liu et al. [43]).

Each map element carries a position estimate, a covariance, and a semantic
confidence. New measurements fuse by Kalman update; confidence grows with
agreeing evidence and *decays with time*, so a stale element loses weight
and the map adapts quickly when the world shifts. Unmatched measurements
are kept in a feedback buffer for future matching instead of being thrown
away — both behaviours straight from the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.ids import ElementId


@dataclass
class FusedElement:
    """One tracked map element."""

    element_id: ElementId
    position: np.ndarray
    covariance: np.ndarray  # (2, 2)
    confidence: float
    last_update_time: float

    def position_sigma(self) -> float:
        return float(np.sqrt(0.5 * np.trace(self.covariance)))


@dataclass
class _PendingMeasurement:
    position: np.ndarray
    sigma: float
    t: float


class IncrementalFuser:
    """Kalman fusion + confidence dynamics + time decay + feedback buffer."""

    def __init__(self, decay_per_second: float = 0.002,
                 confidence_gain: float = 0.12,
                 confidence_loss: float = 0.2,
                 match_radius: float = 2.5,
                 promote_after: int = 3,
                 drop_confidence: float = 0.15,
                 use_time_decay: bool = True) -> None:
        self.decay_per_second = decay_per_second
        self.confidence_gain = confidence_gain
        self.confidence_loss = confidence_loss
        self.match_radius = match_radius
        self.promote_after = promote_after
        self.drop_confidence = drop_confidence
        self.use_time_decay = use_time_decay
        self.elements: Dict[ElementId, FusedElement] = {}
        self._feedback: List[_PendingMeasurement] = []
        self._next_id = 0

    # ------------------------------------------------------------------
    def seed(self, element_id: ElementId, position: np.ndarray,
             sigma: float, t: float, confidence: float = 0.6) -> None:
        """Install a prior-map element."""
        self.elements[element_id] = FusedElement(
            element_id=element_id,
            position=np.asarray(position, dtype=float),
            covariance=np.eye(2) * sigma**2,
            confidence=confidence,
            last_update_time=t,
        )

    # ------------------------------------------------------------------
    def observe(self, position: np.ndarray, sigma: float, t: float) -> None:
        """Fuse one measurement (or buffer it if unmatched)."""
        position = np.asarray(position, dtype=float)
        match = self._match(position)
        if match is None:
            self._feedback.append(_PendingMeasurement(position, sigma, t))
            self._try_promote(t)
            return
        element = match
        self._apply_decay(element, t)
        # Kalman update with measurement covariance sigma^2 I.
        S = element.covariance + np.eye(2) * sigma**2
        K = element.covariance @ np.linalg.inv(S)
        innovation = position - element.position
        element.position = element.position + K @ innovation
        element.covariance = (np.eye(2) - K) @ element.covariance
        element.covariance = (element.covariance + element.covariance.T) / 2.0
        # Confidence: grow on agreement, shrink on big innovation.
        if float(np.hypot(*innovation)) <= self.match_radius / 2.0:
            element.confidence = min(1.0, element.confidence
                                     + self.confidence_gain)
        else:
            element.confidence = max(0.0, element.confidence
                                     - self.confidence_loss)
        element.last_update_time = t

    def miss(self, element_id: ElementId, t: float) -> None:
        """An expected element was not observed."""
        element = self.elements.get(element_id)
        if element is None:
            return
        self._apply_decay(element, t)
        element.confidence = max(0.0, element.confidence
                                 - self.confidence_loss)
        element.last_update_time = t

    # ------------------------------------------------------------------
    def prune(self) -> List[ElementId]:
        """Drop elements whose confidence collapsed; returns the ids."""
        dead = [eid for eid, e in self.elements.items()
                if e.confidence < self.drop_confidence]
        for eid in dead:
            del self.elements[eid]
        return dead

    def feedback_size(self) -> int:
        return len(self._feedback)

    # ------------------------------------------------------------------
    def _match(self, position: np.ndarray) -> Optional[FusedElement]:
        best = None
        best_d = self.match_radius
        for element in self.elements.values():
            d = float(np.hypot(*(element.position - position)))
            if d < best_d:
                best, best_d = element, d
        return best

    def _apply_decay(self, element: FusedElement, t: float) -> None:
        if not self.use_time_decay:
            return
        dt = max(0.0, t - element.last_update_time)
        element.confidence = max(
            0.0, element.confidence - self.decay_per_second * dt)
        # Stale position knowledge also loosens.
        element.covariance = element.covariance + np.eye(2) * (1e-5 * dt)

    def _try_promote(self, t: float) -> None:
        """Promote a cluster of buffered measurements into a new element."""
        if len(self._feedback) < self.promote_after:
            return
        pts = np.array([m.position for m in self._feedback])
        for i, anchor in enumerate(self._feedback):
            d = np.hypot(pts[:, 0] - anchor.position[0],
                         pts[:, 1] - anchor.position[1])
            members = np.where(d <= self.match_radius)[0]
            if members.size >= self.promote_after:
                position = pts[members].mean(axis=0)
                eid = ElementId("fused", self._next_id)
                self._next_id += 1
                sigma = float(np.mean([self._feedback[j].sigma
                                       for j in members]))
                self.seed(eid, position, sigma / np.sqrt(members.size), t,
                          confidence=0.5)
                self._feedback = [m for j, m in enumerate(self._feedback)
                                  if j not in set(members.tolist())]
                return
