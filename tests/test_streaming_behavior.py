"""Tile streaming (TileStore/StreamingMap) and the behavior planner."""

import numpy as np
import pytest

from repro.core.elements import LightState, SignType, TrafficLight, TrafficSign
from repro.errors import StorageError
from repro.geometry.polyline import straight
from repro.geometry.transform import SE2
from repro.planning import (
    BehaviorPlanner,
    BehaviorState,
    LeadVehicle,
    simulate_approach,
)
from repro.storage import StreamingMap, TileStore


class TestTileStore:
    def test_build_covers_all_elements(self, city):
        store = TileStore.build(city, tile_size=250.0)
        assert len(store.tiles()) > 1
        # Every spatial element appears in at least one tile.
        ids = set()
        for tile in store.tiles():
            shard = store.load_tile(tile)
            ids.update(e.id for e in shard.elements())
        spatial = [e for e in city.elements()
                   if e.id.kind != "regulatory"]
        assert {e.id for e in spatial} <= ids

    def test_missing_tile_returns_none(self, city):
        from repro.core.tiles import TileId

        store = TileStore.build(city, tile_size=250.0)
        assert store.load_tile(TileId(999, 999)) is None

    def test_streaming_matches_full_map(self, city):
        store = TileStore.build(city, tile_size=250.0)
        streaming = StreamingMap(store, max_tiles=6)
        for point in [(100.0, 100.0), (300.0, 200.0), (450.0, 150.0)]:
            full = {e.id for e in city.elements_in_radius(*point, 60.0)}
            part = {e.id for e in streaming.elements_in_radius(*point, 60.0)}
            assert full <= part or full == part  # replication superset OK
            assert full == {i for i in part if i in full}

    def test_lru_eviction_bounds_memory(self, city):
        store = TileStore.build(city, tile_size=200.0)
        streaming = StreamingMap(store, max_tiles=3)
        min_x, min_y, max_x, max_y = city.bounds()
        xs = np.linspace(min_x + 20, max_x - 20, 12)
        for x in xs:
            streaming.elements_in_radius(float(x), (min_y + max_y) / 2, 40.0)
        assert len(streaming.resident_tiles()) <= 3
        assert streaming.stats.evictions > 0

    def test_revisits_hit_cache(self, city):
        store = TileStore.build(city, tile_size=250.0)
        streaming = StreamingMap(store, max_tiles=6)
        streaming.elements_in_radius(100.0, 100.0, 40.0)
        loads_before = streaming.stats.loads
        streaming.elements_in_radius(100.0, 100.0, 40.0)
        assert streaming.stats.loads == loads_before
        assert streaming.stats.hits > 0

    def test_streaming_nearest_lane(self, city):
        store = TileStore.build(city, tile_size=250.0)
        streaming = StreamingMap(store, max_tiles=6)
        lane = next(iter(city.lanes()))
        mid = lane.centerline.point_at(lane.length / 2)
        found, dist = streaming.nearest_lane(float(mid[0]), float(mid[1]))
        assert dist < 0.5

    def test_streaming_nearest_lane_nowhere(self, city):
        store = TileStore.build(city, tile_size=250.0)
        streaming = StreamingMap(store, max_tiles=6)
        with pytest.raises(StorageError):
            streaming.nearest_lane(1e6, 1e6, search_radius=50.0)

    def test_max_tiles_validated(self, city):
        store = TileStore.build(city, tile_size=250.0)
        with pytest.raises(StorageError):
            StreamingMap(store, max_tiles=0)


@pytest.fixture
def straight_road_with_light():
    from repro.core.hdmap import HDMap
    from repro.core.elements import Lane

    hdmap = HDMap("b")
    lane = hdmap.create(Lane, centerline=straight([0, 0], [300, 0],
                                                  spacing=10.0),
                        speed_limit=13.89)
    # Red for 30 s, then green 27 s; placed at s=200.
    hdmap.create(TrafficLight, position=np.array([200.0, 4.0]),
                 cycle=(30.0, 3.0, 27.0), phase_offset=0.0)
    return hdmap, lane


class TestBehaviorPlanner:
    def test_cruise_at_limit(self, straight_road_with_light):
        hdmap, lane = straight_road_with_light
        planner = BehaviorPlanner(hdmap)
        pose = SE2(10.0, 0.0, 0.0)
        decision = planner.decide(pose, 10.0, t=0.0)
        # At s=10 the light at 200 is beyond the 80 m lookahead.
        assert decision.state is BehaviorState.CRUISE
        assert decision.target_speed == pytest.approx(13.89)

    def test_stops_for_red_light(self, straight_road_with_light):
        hdmap, lane = straight_road_with_light
        planner = BehaviorPlanner(hdmap)
        decision = planner.decide(SE2(150.0, 0.0, 0.0), 12.0, t=5.0)  # red
        assert decision.state is BehaviorState.STOPPING_LIGHT
        assert decision.stop_distance == pytest.approx(50.0, abs=2.0)
        # Close to the stop line the speed envelope collapses.
        near = planner.decide(SE2(185.0, 0.0, 0.0), 12.0, t=5.0)
        assert near.state is BehaviorState.STOPPING_LIGHT
        assert near.target_speed < 8.0
        at_line = planner.decide(SE2(197.0, 0.0, 0.0), 5.0, t=5.0)
        assert at_line.target_speed < 2.5

    def test_ignores_green_light(self, straight_road_with_light):
        hdmap, lane = straight_road_with_light
        planner = BehaviorPlanner(hdmap)
        pose = SE2(150.0, 0.0, 0.0)
        decision = planner.decide(pose, 12.0, t=40.0)  # green phase
        assert decision.state is BehaviorState.CRUISE

    def test_follows_lead_vehicle(self, straight_road_with_light):
        hdmap, lane = straight_road_with_light
        planner = BehaviorPlanner(hdmap)
        pose = SE2(10.0, 0.0, 0.0)
        decision = planner.decide(pose, 13.0, t=40.0,
                                  lead=LeadVehicle(gap=10.0, speed=8.0))
        assert decision.state is BehaviorState.FOLLOW
        assert decision.target_speed < 13.0

    def test_stop_sign(self):
        from repro.core.hdmap import HDMap
        from repro.core.elements import Lane

        hdmap = HDMap("s")
        hdmap.create(Lane, centerline=straight([0, 0], [100, 0]))
        hdmap.create(TrafficSign, position=np.array([60.0, 4.0]),
                     sign_type=SignType.STOP)
        planner = BehaviorPlanner(hdmap)
        decision = planner.decide(SE2(30.0, 0.0, 0.0), 10.0, t=0.0)
        assert decision.state is BehaviorState.STOPPING_SIGN

    def test_simulated_approach_stops_then_goes(self, straight_road_with_light):
        hdmap, lane = straight_road_with_light
        planner = BehaviorPlanner(hdmap)
        history = simulate_approach(planner, lane.id, t0=0.0,
                                    initial_speed=13.0)
        speeds = [v for _, v, _ in history]
        states = {d.state for _, _, d in history}
        assert BehaviorState.STOPPING_LIGHT in states
        assert min(speeds) < 1.0  # came to (near) rest at the red
        # After the light turns green the vehicle accelerates again.
        stopped_idx = int(np.argmin(speeds))
        assert max(speeds[stopped_idx:]) > 5.0

    def test_regulatory_limit_respected(self, straight_road_with_light):
        from repro.core import RuleType

        hdmap, lane = straight_road_with_light
        hdmap.create_regulatory(rule_type=RuleType.SPEED_LIMIT,
                                lanes=[lane.id], value=8.33)
        planner = BehaviorPlanner(hdmap)
        decision = planner.decide(SE2(10.0, 0.0, 0.0), 10.0, t=40.0)
        assert decision.target_speed == pytest.approx(8.33)
