"""WGS-84 geodesy: lat/lon <-> local east-north (ENU) metres.

HD maps are geo-referenced; probe data (FCD), GNSS fixes, and aerial imagery
arrive in geographic coordinates while all map computation happens in a
local metric frame. ``LocalProjector`` provides the equirectangular local
tangent-plane projection that is standard for the city-scale extents HD
maps cover (error < 1 cm over a 10 km extent at mid latitudes, far below
sensor noise).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

# WGS-84 ellipsoid constants.
WGS84_A = 6378137.0  # semi-major axis, metres
WGS84_F = 1.0 / 298.257223563  # flattening
WGS84_E2 = WGS84_F * (2.0 - WGS84_F)  # first eccentricity squared


def meridian_radius(lat_rad: float) -> float:
    """Radius of curvature in the meridian at a geodetic latitude."""
    s = math.sin(lat_rad)
    return WGS84_A * (1.0 - WGS84_E2) / (1.0 - WGS84_E2 * s * s) ** 1.5


def prime_vertical_radius(lat_rad: float) -> float:
    """Radius of curvature in the prime vertical at a geodetic latitude."""
    s = math.sin(lat_rad)
    return WGS84_A / math.sqrt(1.0 - WGS84_E2 * s * s)


@dataclass(frozen=True)
class LocalProjector:
    """Project WGS-84 lat/lon (degrees) to local east-north metres.

    The projection is a local tangent plane anchored at ``(lat0, lon0)``;
    east = +x, north = +y.
    """

    lat0: float
    lon0: float

    def _radii(self) -> Tuple[float, float]:
        lat_rad = math.radians(self.lat0)
        return meridian_radius(lat_rad), prime_vertical_radius(lat_rad) * math.cos(lat_rad)

    def to_local(self, lat: np.ndarray, lon: np.ndarray) -> np.ndarray:
        """Convert lat/lon degrees to ``(N, 2)`` east-north metres."""
        r_m, r_p = self._radii()
        lat = np.asarray(lat, dtype=float)
        lon = np.asarray(lon, dtype=float)
        east = np.radians(lon - self.lon0) * r_p
        north = np.radians(lat - self.lat0) * r_m
        return np.stack([east, north], axis=-1)

    def to_geographic(self, points: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Convert ``(N, 2)`` east-north metres back to (lat, lon) degrees."""
        r_m, r_p = self._radii()
        pts = np.asarray(points, dtype=float)
        lat = self.lat0 + np.degrees(pts[..., 1] / r_m)
        lon = self.lon0 + np.degrees(pts[..., 0] / r_p)
        return lat, lon


def haversine_distance(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance in metres between two lat/lon points (degrees).

    Uses the mean Earth radius; accurate to ~0.5 % which is ample for the
    sanity checks and probe-data bucketing it serves.
    """
    r = 6371008.8
    p1, p2 = math.radians(lat1), math.radians(lat2)
    dp = p2 - p1
    dl = math.radians(lon2 - lon1)
    a = math.sin(dp / 2) ** 2 + math.cos(p1) * math.cos(p2) * math.sin(dl / 2) ** 2
    return 2 * r * math.asin(math.sqrt(a))


MILE_METRES = 1609.344


def metres_to_miles(metres: float) -> float:
    return metres / MILE_METRES


def miles_to_metres(miles: float) -> float:
    return miles * MILE_METRES
