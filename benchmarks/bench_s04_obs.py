"""S4 — Observability overhead: tracing must be ~free on the hot path.

The tracing layer's cost model (see ``repro.obs.trace``) promises that a
disabled tracer costs one attribute check per instrumentation point and
that production-style sampling (1%) stays under 5% median overhead on
the ``GetTile`` hot path. This bench certifies both with the existing
``repro.perf`` runner: one warmed MapService, bursts of
``REQUESTS_PER_ITER`` concurrent GetTile requests per timed iteration
(so thread-handoff jitter averages out), swept across tracing disabled,
1% sampling, and 100% sampling. Configurations are interleaved round-
robin — one burst per configuration per round — so slow machine drift
(frequency scaling, competing load) hits all three equally instead of
biasing whichever sweep ran last.
"""

import itertools

from conftest import once

from repro.core.tiles import TileId
from repro.eval import ResultTable
from repro.obs import TRACER
from repro.perf import run_bench
from repro.serve import GetTile, MapService
from repro.storage import TileStore
from repro.update.distribution import MapDistributionServer
from repro.world import generate_grid_city

REQUESTS_PER_ITER = 200
ROUNDS = 30

CONFIGS = (("disabled", False, 1.0),
           ("sampled_1pct", True, 0.01),
           ("sampled_100pct", True, 1.0))


def _experiment(rng):
    world = generate_grid_city(rng, blocks_x=3, blocks_y=2,
                               block_size=150.0)
    server = MapDistributionServer(world.copy())
    store = TileStore.build(world, tile_size=250.0)
    tiles = store.tiles() or [TileId(0, 0)]
    cycle = list(itertools.islice(itertools.cycle(tiles),
                                  REQUESTS_PER_ITER))
    results = {}
    with MapService(server, store, n_workers=2,
                    tiles_per_shard=len(tiles) + 1) as service:

        def burst():
            futures = [service.submit(GetTile(tile)) for tile in cycle]
            for future in futures:
                future.result()

        for label, enabled, rate in CONFIGS:
            results[label] = run_bench(
                f"serve.gettile.{label}", burst, repetitions=1, warmup=2)
            results[label].samples_s.clear()  # warmup only; timed below
        for _ in range(ROUNDS):
            for label, enabled, rate in CONFIGS:
                TRACER.configure(enabled=enabled, sample_rate=rate,
                                 capacity=65536, reset=True)
                one = run_bench(f"serve.gettile.{label}", burst,
                                repetitions=1, warmup=0)
                results[label].samples_s.extend(one.samples_s)
        TRACER.configure(enabled=False, reset=True)
    return results


def test_s04_tracing_overhead(benchmark, rng):
    results = once(benchmark, _experiment, rng)
    disabled = results["disabled"].median_s
    sampled = results["sampled_1pct"].median_s
    full = results["sampled_100pct"].median_s

    table = ResultTable("S4", "observability overhead on GetTile")
    table.add(f"median burst ({REQUESTS_PER_ITER} reqs), tracing off",
              "reported", f"{1e3 * disabled:.2f} ms", ok=disabled > 0)
    table.add("overhead at 1% sampling", "< 5%",
              f"{100 * (sampled / disabled - 1):+.1f}% "
              f"({1e3 * sampled:.2f} ms)",
              ok=sampled <= 1.05 * disabled)
    table.add("overhead at 100% sampling", "reported",
              f"{100 * (full / disabled - 1):+.1f}% "
              f"({1e3 * full:.2f} ms)", ok=full > 0)
    table.print()
    assert table.all_ok()
