"""Extensions: geodesy-grounded ingestion, HDMapGen statistics, failure
injection across the sensor/estimator stack."""

import numpy as np
import pytest

from repro.geometry.geodesy import LocalProjector
from repro.geometry.polyline import straight
from repro.geometry.transform import SE2
from repro.world.hdmapgen import (
    HDMapGenSampler,
    MapTopologySpec,
    map_statistics,
)


class TestGeodesyIngestion:
    """Probe data arrives as lat/lon; the pipelines run in local metres."""

    def test_latlon_probe_flow(self, highway, rng):
        from repro.world import drive_route

        projector = LocalProjector(lat0=33.97, lon0=-117.33)
        lane = next(iter(highway.lanes()))
        traj = drive_route(highway, lane.id, 500.0, rng)
        # Vehicle reports WGS-84 fixes...
        local_truth = traj.positions()[::10]
        lat, lon = projector.to_geographic(local_truth)
        # ...the ingestion side projects them back for map matching.
        recovered = projector.to_local(lat, lon)
        assert np.allclose(recovered, local_truth, atol=1e-6)
        lane_again, dist = highway.nearest_lane(*recovered[5])
        assert dist < 1.0

    def test_projection_error_negligible_at_city_scale(self):
        projector = LocalProjector(lat0=48.0, lon0=11.0)
        # 10 km east: project, reproject, compare round trip.
        pts = np.array([[10000.0, 0.0], [0.0, 10000.0], [7000.0, -7000.0]])
        lat, lon = projector.to_geographic(pts)
        back = projector.to_local(lat, lon)
        assert np.abs(back - pts).max() < 0.01  # below sensor noise


class TestHdmapgenStatistics:
    def test_generated_maps_are_plausible(self):
        for seed in (1, 2, 3):
            rng = np.random.default_rng(seed)
            hdmap = HDMapGenSampler(
                MapTopologySpec(n_junctions=8)).sample_map(rng)
            stats = map_statistics(hdmap)
            assert stats.plausible(), stats

    def test_curvature_scale_controls_curvature(self):
        rng1 = np.random.default_rng(4)
        rng2 = np.random.default_rng(4)
        straightish = HDMapGenSampler(MapTopologySpec(
            n_junctions=8, curvature_scale=0.01)).sample_map(rng1)
        wavy = HDMapGenSampler(MapTopologySpec(
            n_junctions=8, curvature_scale=0.3)).sample_map(rng2)
        assert (map_statistics(wavy).mean_abs_curvature
                > map_statistics(straightish).mean_abs_curvature)

    def test_statistics_fields(self, city):
        stats = map_statistics(city)
        assert stats.n_lanes == len(list(city.lanes()))
        assert stats.n_segments == len(list(city.segments()))
        assert stats.mean_junction_degree >= 1.0


def _camera_blind_and_honest():
    from repro.sensors import Camera

    return Camera(detection_prob=0.0, false_positive_rate=0.0)


def _camera_dead_but_trusted():
    from repro.sensors import Camera

    class DeadCamera(Camera):
        """Returns nothing while advertising its nominal operating point."""

        def observe_signs(self, *args, **kwargs):
            return []

    return DeadCamera(detection_prob=0.9, false_positive_rate=0.0)


class TestFailureInjection:
    def test_lidar_full_dropout_yields_empty_channels(self, highway, rng):
        from repro.sensors import LidarScanner

        scanner = LidarScanner(dropout=1.0)
        lane = next(iter(highway.lanes()))
        pose = SE2(*lane.centerline.point_at(100.0),
                   lane.centerline.heading_at(100.0))
        scan = scanner.scan(highway, pose, rng)
        assert scan.ground.points.shape[0] == 0
        assert scan.objects.ranges.shape[0] == 0

    def test_localizer_survives_empty_scans(self, highway, rng):
        from repro.localization import LaneMarkingLocalizer
        from repro.sensors import LidarScanner

        scanner = LidarScanner(dropout=1.0)
        localizer = LaneMarkingLocalizer(highway, rng)
        lane = next(iter(highway.lanes()))
        pose = SE2(*lane.centerline.point_at(100.0),
                   lane.centerline.heading_at(100.0))
        localizer.initialize(pose)
        scan = scanner.scan(highway, pose, rng)
        assert localizer.update_markings(scan) == 0  # no lines, no crash
        assert localizer.estimate().distance_to(pose) < 5.0

    def test_camera_blind_detector(self, highway, rng):
        from repro.sensors import Camera

        camera = Camera(detection_prob=0.0, false_positive_rate=0.0,
                        lane_detection_prob=0.0)
        lane = next(iter(highway.lanes()))
        pose = SE2(*lane.centerline.point_at(100.0),
                   lane.centerline.heading_at(100.0))
        assert camera.observe_signs(highway, pose, rng) == []
        obs = camera.observe_lanes(highway, pose, rng)
        assert obs is None or obs.lane_centre_offset is None

    def test_slamcu_known_blind_camera_is_uninformative(self):
        """A camera *known* to be blind (detection_prob=0) makes misses
        uninformative: the correct Bayesian output is 'no changes'."""
        report = self._run_slamcu_with(_camera_blind_and_honest())
        assert report.detected_changes == []

    def test_slamcu_dead_sensor_with_stale_model_fails_loud(self):
        """A sensor that died while the model still claims 90 % detection
        produces mass removals — a loud, operator-visible failure instead
        of a silently stale map."""
        from repro.core import ChangeType

        report = self._run_slamcu_with(_camera_dead_but_trusted())
        removals = [c for c in report.detected_changes
                    if c.change_type is ChangeType.REMOVED]
        assert len(removals) >= 5

    @staticmethod
    def _run_slamcu_with(camera):
        from repro.update import Slamcu
        from repro.world import (
            ChangeSpec,
            apply_changes,
            drive_route,
            generate_highway,
        )

        rng = np.random.default_rng(7)
        hw = generate_highway(rng, length=2000.0, sign_spacing=200.0)
        scenario = apply_changes(hw, ChangeSpec(), rng)
        lane = next(iter(scenario.reality.lanes()))
        traj = drive_route(scenario.reality, lane.id, 1900.0, rng)
        return Slamcu(scenario.prior.copy(), camera=camera).run(
            scenario, traj, rng)

    def test_ekf_covariance_stays_positive(self, rng):
        from repro.localization import PoseEKF

        ekf = PoseEKF(SE2(0, 0, 0), sigma_xy=1.0)
        for k in range(200):
            ekf.predict(1.0, 0.01)
            if k % 3 == 0:
                ekf.update_position(
                    np.array([float(k), 0.0]) + rng.normal(0, 0.5, 2), 0.5,
                    gate=None)
        eigenvalues = np.linalg.eigvalsh(ekf.P)
        assert np.all(eigenvalues > 0)

    def test_streaming_map_with_empty_region(self, city):
        from repro.storage import StreamingMap, TileStore

        store = TileStore.build(city, tile_size=250.0)
        streaming = StreamingMap(store, max_tiles=4)
        # Far outside the map: no tiles exist, queries return empty.
        assert streaming.elements_in_radius(1e5, 1e5, 100.0) == []

    def test_router_on_single_lane_map(self):
        from repro.core import HDMap, Lane
        from repro.planning import LaneRouter

        hdmap = HDMap("one")
        lane = hdmap.create(Lane, centerline=straight([0, 0], [100, 0]))
        router = LaneRouter(hdmap)
        result = router.route(lane.id, lane.id)
        assert result.lane_ids == [lane.id]

    def test_wmof_noise_free_input(self, rng):
        """With zero noise the filter must not degrade the depth map."""
        from repro.depthmap import WeightedModeFilter
        from repro.sensors import make_depth_scene

        frame = make_depth_scene(rng, height=120, width=160, factor=4,
                                 noise_sigma=0.0)
        out, stats = WeightedModeFilter().upsample(frame)
        assert stats.mae < 0.5
