"""Fleet load generator: N synthetic vehicles driving against a MapService.

Each vehicle replays a ``drive_route`` trajectory over the ground-truth
world and, at a fixed spatial cadence, issues the request mix a real
connected vehicle produces: spatial queries around its pose on every step,
periodic incremental syncs of its on-board map, and (optionally)
crowd-sourced patch ingests reporting newly observed signs. Vehicles run
in their own threads, so the service sees genuinely concurrent,
spatially coherent traffic — the workload the sharded cache and the
admission controller are designed for.

The :class:`FleetReport` aggregates what the acceptance criteria need:
throughput, cache hit rate, latency percentiles, and two consistency
checks — no vehicle may ever observe the served map version go backwards,
and after a final sync every vehicle's local map must be
element-for-element identical to the server (`is_consistent`).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.core.elements import SignType, TrafficSign
from repro.core.hdmap import HDMap
from repro.core.versioning import MapPatch
from repro.obs.trace import TRACER
from repro.serve.api import ChangesSince, IngestPatch, Request, Response
from repro.serve.api import SpatialQuery, Status
from repro.serve.service import MapService
from repro.update.distribution import VehicleMapClient
from repro.world.traffic import drive_route


@dataclass
class VehicleReport:
    """One vehicle's view of the run."""

    vehicle: int
    requests: int = 0
    ok: int = 0
    shed: int = 0
    rejected: int = 0
    errors: int = 0
    patches_sent: int = 0
    changes_applied: int = 0
    version_regressions: int = 0
    consistent: bool = True


@dataclass
class FleetReport:
    """Aggregate outcome of a fleet run against one service."""

    n_vehicles: int
    duration_s: float
    requests_total: int
    ok_total: int
    shed_total: int
    rejected_total: int
    error_total: int
    cache_hit_rate: float
    consistency_violations: int
    version_regressions: int
    latency: Dict[str, Dict[str, float]]
    vehicles: List[VehicleReport] = field(default_factory=list)

    @property
    def throughput_rps(self) -> float:
        return self.ok_total / self.duration_s if self.duration_s > 0 else 0.0


class FleetSimulator:
    """Drive ``n_vehicles`` concurrent synthetic clients at a MapService."""

    def __init__(self, service: MapService, world: HDMap,
                 n_vehicles: int = 4, route_length_m: float = 2000.0,
                 query_radius_m: float = 60.0, step_s: float = 2.0,
                 sync_every: int = 5, ingest_every: int = 0,
                 seed: int = 0, trace_requests: bool = False) -> None:
        if n_vehicles < 1:
            raise ValueError("n_vehicles must be >= 1")
        self.service = service
        self.world = world
        self.n_vehicles = n_vehicles
        self.route_length_m = route_length_m
        self.query_radius_m = query_radius_m
        self.step_s = step_s
        self.sync_every = sync_every
        self.ingest_every = ingest_every
        self.seed = seed
        #: when True each vehicle request opens a sampled `fleet.request`
        #: root span, so end-to-end traces start client-side.
        self.trace_requests = trace_requests

    # ------------------------------------------------------------------
    def _trajectories(self):
        """One spatially spread trajectory per vehicle (deterministic)."""
        lanes = sorted(self.world.lanes(), key=lambda l: l.length,
                       reverse=True)
        out = []
        for i in range(self.n_vehicles):
            rng = np.random.default_rng(self.seed + 101 * i)
            lane = lanes[i % len(lanes)]
            out.append(drive_route(self.world, lane.id, self.route_length_m,
                                   rng))
        return out

    def _bootstrap_client(self) -> VehicleMapClient:
        # Snapshot carries the version it was captured at, so client state
        # starts consistent without paying the encode_map bootstrap cost.
        snap = self.service.server.snapshot()
        return VehicleMapClient(self.service.server, local=snap,
                                synced_version=snap.version)

    def _count(self, report: VehicleReport, status: Status) -> None:
        report.requests += 1
        if status is Status.OK:
            report.ok += 1
        elif status is Status.SHED:
            report.shed += 1
        elif status is Status.REJECTED:
            report.rejected += 1
        else:
            report.errors += 1

    def _request(self, idx: int, request: Request) -> Response:
        """Issue one request, optionally under a client-side root span."""
        if not self.trace_requests:
            return self.service.request(request)
        with TRACER.start_trace("fleet.request", vehicle=idx,
                                kind=request.kind) as span:
            resp = self.service.request(request)
            span.set("status", resp.status.value)
            return resp

    def _drive(self, idx, trajectory, client: VehicleMapClient,
               report: VehicleReport) -> None:
        rng = np.random.default_rng(self.seed + 13 * idx + 7)
        last_version = -1
        steps = np.arange(trajectory.start_time, trajectory.end_time,
                          self.step_s)
        for step, t in enumerate(steps):
            pose = trajectory.pose_at(float(t))
            resp = self._request(idx, SpatialQuery(
                pose.x, pose.y, self.query_radius_m))
            self._count(report, resp.status)
            if resp.ok:
                if resp.version < last_version:
                    report.version_regressions += 1
                last_version = max(last_version, resp.version)

            if self.sync_every and step % self.sync_every == 0:
                resp = self._request(
                    idx, ChangesSince(client.synced_version))
                self._count(report, resp.status)
                if resp.ok:
                    if resp.version < last_version:
                        report.version_regressions += 1
                    last_version = max(last_version, resp.version)
                    report.changes_applied += client.apply_delta(resp.payload)

            if self.ingest_every and step % self.ingest_every == \
                    self.ingest_every - 1:
                sign = TrafficSign(
                    id=self.service.server.new_element_id("sign"),
                    position=np.array([pose.x, pose.y])
                    + rng.normal(0.0, 3.0, size=2),
                    sign_type=SignType.DIRECTION)
                patch = MapPatch(source=f"vehicle-{idx}",
                                 confidence=0.5).add(sign)
                resp = self._request(idx, IngestPatch(patch))
                self._count(report, resp.status)
                report.patches_sent += 1

    # ------------------------------------------------------------------
    def run(self) -> FleetReport:
        """Drive the fleet concurrently, then verify every client."""
        trajectories = self._trajectories()
        clients = [self._bootstrap_client() for _ in range(self.n_vehicles)]
        reports = [VehicleReport(i) for i in range(self.n_vehicles)]
        threads = [
            threading.Thread(target=self._drive, name=f"vehicle-{i}",
                             args=(i, trajectories[i], clients[i],
                                   reports[i]), daemon=True)
            for i in range(self.n_vehicles)
        ]
        t0 = time.monotonic()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        duration = time.monotonic() - t0

        # Ingest traffic has stopped: one last sync must make every client
        # element-for-element identical to the authoritative map.
        violations = 0
        for client, report in zip(clients, reports):
            resp = self.service.request(ChangesSince(client.synced_version))
            if resp.ok:
                report.changes_applied += client.apply_delta(resp.payload)
            report.consistent = client.is_consistent()
            if not report.consistent:
                violations += 1

        metrics = self.service.metrics
        latency = {kind: hist for kind, hist
                   in metrics.as_dict()["latency"].items()}
        return FleetReport(
            n_vehicles=self.n_vehicles,
            duration_s=duration,
            requests_total=sum(r.requests for r in reports),
            ok_total=sum(r.ok for r in reports),
            shed_total=sum(r.shed for r in reports),
            rejected_total=sum(r.rejected for r in reports),
            error_total=sum(r.errors for r in reports),
            cache_hit_rate=self.service.cache.hit_rate,
            consistency_violations=violations,
            version_regressions=sum(r.version_regressions for r in reports),
            latency=latency,
            vehicles=reports,
        )
