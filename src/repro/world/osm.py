"""OSM-style road-network ingestion.

Zhou et al. [38] bootstrap lane-level maps from OpenStreetMap; this module
provides the ingestion side: a minimal OSM-like document (nodes with
lat/lon, ways with highway tags) is projected into the local metric frame
and expanded into a full HD map via :class:`~repro.world.builder.
WorldBuilder` — lanes, boundaries, and topology included, using the tag
conventions OSM actually uses (``lanes``, ``maxspeed``, ``oneway``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.hdmap import HDMap
from repro.errors import MapModelError
from repro.geometry.geodesy import LocalProjector
from repro.geometry.polyline import Polyline
from repro.world.builder import RoadSpec, WorldBuilder

# Default urban speed by highway class, m/s.
SPEED_BY_HIGHWAY = {
    "motorway": 33.33,
    "trunk": 27.78,
    "primary": 22.22,
    "secondary": 16.67,
    "tertiary": 13.89,
    "residential": 8.33,
    "service": 5.56,
}

DRIVABLE_HIGHWAYS = frozenset(SPEED_BY_HIGHWAY)


@dataclass
class OsmDocument:
    """A minimal OSM extract: nodes (lat, lon) and tagged ways."""

    nodes: Dict[int, Tuple[float, float]]
    ways: List[Dict]

    @staticmethod
    def from_dict(data: Dict) -> "OsmDocument":
        nodes = {int(k): (float(v[0]), float(v[1]))
                 for k, v in data["nodes"].items()}
        return OsmDocument(nodes=nodes, ways=list(data["ways"]))


def _parse_maxspeed(value: Optional[str]) -> Optional[float]:
    """OSM maxspeed tag -> m/s (supports '50', '50 km/h', '30 mph')."""
    if value is None:
        return None
    text = str(value).strip().lower()
    try:
        if text.endswith("mph"):
            return float(text[:-3].strip()) * 0.44704
        if text.endswith("km/h"):
            text = text[:-4].strip()
        return float(text) / 3.6
    except ValueError:
        return None


def _lane_split(tags: Dict) -> Tuple[int, int]:
    """(forward, backward) lane counts from OSM tags."""
    oneway = str(tags.get("oneway", "no")).lower() in ("yes", "true", "1")
    try:
        total = max(1, int(tags.get("lanes", 2 if not oneway else 1)))
    except (TypeError, ValueError):
        total = 1 if oneway else 2
    if oneway:
        return total, 0
    forward = max(1, total // 2)
    return forward, max(1, total - forward)


def import_osm(document: OsmDocument,
               projector: Optional[LocalProjector] = None,
               name: str = "osm-import",
               connect_radius: float = 18.0) -> HDMap:
    """Build an HD map from an OSM-like document.

    Non-drivable ways (no recognized ``highway`` tag) are skipped. Way
    endpoints shared by several ways become intersections, and turn
    connectors are generated across them.
    """
    if not document.nodes:
        raise MapModelError("OSM document has no nodes")
    if projector is None:
        lats = [lat for lat, _ in document.nodes.values()]
        lons = [lon for _, lon in document.nodes.values()]
        projector = LocalProjector(lat0=float(np.mean(lats)),
                                   lon0=float(np.mean(lons)))

    positions = {
        node_id: projector.to_local(np.array([lat]), np.array([lon]))[0]
        for node_id, (lat, lon) in document.nodes.items()
    }

    # Count how many drivable ways touch each node (intersection test).
    usage: Dict[int, int] = {}
    drivable = []
    for way in document.ways:
        tags = way.get("tags", {})
        if tags.get("highway") not in DRIVABLE_HIGHWAYS:
            continue
        node_ids = [int(n) for n in way["nodes"]]
        if len(node_ids) < 2:
            continue
        drivable.append((way, node_ids))
        for end in (node_ids[0], node_ids[-1]):
            usage[end] = usage.get(end, 0) + 1

    builder = WorldBuilder(name)
    intersections = [positions[n] for n, count in usage.items() if count > 1]
    for way, node_ids in drivable:
        tags = way.get("tags", {})
        pts = np.array([positions[n] for n in node_ids])
        try:
            ref = Polyline(pts)
        except Exception:
            continue
        setback = 12.0
        # Pull back from shared intersections so connectors take over.
        s0 = setback if usage.get(node_ids[0], 0) > 1 else 0.0
        s1 = (ref.length - setback if usage.get(node_ids[-1], 0) > 1
              else ref.length)
        if s1 - s0 < 15.0:
            continue
        ref = ref.slice(s0, s1)
        forward, backward = _lane_split(tags)
        speed = (_parse_maxspeed(tags.get("maxspeed"))
                 or SPEED_BY_HIGHWAY[tags["highway"]])
        builder.add_road(RoadSpec(
            reference=ref,
            forward_lanes=forward,
            backward_lanes=backward,
            speed_limit=speed,
        ))

    if intersections:
        from repro.world.generator import connect_intersections

        connect_intersections(builder.map, intersections,
                              radius=connect_radius)
    hdmap = builder.finish()
    if not list(hdmap.lanes()):
        raise MapModelError("no drivable ways found in the OSM document")
    return hdmap
