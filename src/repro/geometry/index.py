"""Uniform-grid spatial index for map elements.

HD maps are queried constantly by position (nearest lane, elements within a
sensor radius), and the survey highlights efficient spatial data management
as an open need [73]. A uniform grid hash is the right tool for the
road-network densities involved: O(1) insertion and query cost proportional
to the local element count.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from typing import Callable, Dict, Generic, Hashable, Iterable, List, Set, Tuple, TypeVar

import numpy as np

from repro.errors import GeometryError
from repro.perf.instrument import timed

K = TypeVar("K", bound=Hashable)

Bounds = Tuple[float, float, float, float]


class GridIndex(Generic[K]):
    """A uniform grid hash mapping cells to element keys.

    Elements are inserted with an axis-aligned bounding box and retrieved by
    point, box, or radius queries. Candidate sets are exact supersets; exact
    geometric filtering is the caller's job (it owns the real geometry).
    """

    def __init__(self, cell_size: float = 50.0) -> None:
        if cell_size <= 0:
            raise GeometryError("cell_size must be positive")
        self.cell_size = float(cell_size)
        self._cells: Dict[Tuple[int, int], Set[K]] = defaultdict(set)
        self._bounds: Dict[K, Bounds] = {}
        # Monotonic insertion ticket per key: queries sort hits by it, which
        # is process-deterministic (sets iterate in randomized hash order)
        # without paying a repr() per hit on every query.
        self._order: Dict[K, int] = {}
        self._ticket = itertools.count()

    def __len__(self) -> int:
        return len(self._bounds)

    def __contains__(self, key: K) -> bool:
        return key in self._bounds

    def _cell_of(self, x: float, y: float) -> Tuple[int, int]:
        return int(np.floor(x / self.cell_size)), int(np.floor(y / self.cell_size))

    def _cells_for_bounds(self, bounds: Bounds) -> Iterable[Tuple[int, int]]:
        min_x, min_y, max_x, max_y = bounds
        c0 = self._cell_of(min_x, min_y)
        c1 = self._cell_of(max_x, max_y)
        for cx in range(c0[0], c1[0] + 1):
            for cy in range(c0[1], c1[1] + 1):
                yield (cx, cy)

    def insert(self, key: K, bounds: Bounds) -> None:
        """Insert (or re-insert) ``key`` covering ``bounds``."""
        if key in self._bounds:
            self.remove(key)
        min_x, min_y, max_x, max_y = bounds
        if max_x < min_x or max_y < min_y:
            raise GeometryError(f"invalid bounds {bounds}")
        self._bounds[key] = bounds
        self._order[key] = next(self._ticket)
        for cell in self._cells_for_bounds(bounds):
            self._cells[cell].add(key)

    def remove(self, key: K) -> None:
        bounds = self._bounds.pop(key, None)
        self._order.pop(key, None)
        if bounds is None:
            return
        for cell in self._cells_for_bounds(bounds):
            members = self._cells.get(cell)
            if members is not None:
                members.discard(key)
                if not members:
                    del self._cells[cell]

    def query_point(self, x: float, y: float) -> List[K]:
        """Keys whose bounds contain the point (insertion order)."""
        hits = []
        for key in self._cells.get(self._cell_of(x, y), ()):
            min_x, min_y, max_x, max_y = self._bounds[key]
            if min_x <= x <= max_x and min_y <= y <= max_y:
                hits.append(key)
        # Sets iterate in hash order, which Python randomizes per process;
        # sorting by insertion ticket keeps every downstream computation
        # reproducible at integer-compare cost instead of a repr() per hit.
        hits.sort(key=self._order.__getitem__)
        return hits

    @timed("grid.query_box")
    def query_box(self, bounds: Bounds) -> List[K]:
        """Keys whose bounds intersect the query box (insertion order)."""
        qx0, qy0, qx1, qy1 = bounds
        seen: Set[K] = set()
        hits: List[K] = []
        for cell in self._cells_for_bounds(bounds):
            for key in self._cells.get(cell, ()):
                if key in seen:
                    continue
                seen.add(key)
                bx0, by0, bx1, by1 = self._bounds[key]
                if bx0 <= qx1 and bx1 >= qx0 and by0 <= qy1 and by1 >= qy0:
                    hits.append(key)
        hits.sort(key=self._order.__getitem__)
        return hits

    def query_radius(self, x: float, y: float, radius: float) -> List[K]:
        """Keys whose bounds intersect a circle (conservative box prefilter)."""
        box = (x - radius, y - radius, x + radius, y + radius)
        return self.query_box(box)

    def nearest(self, x: float, y: float,
                distance_fn: Callable[[K], float],
                max_radius: float = 1e4) -> Tuple[K, float]:
        """Nearest key by a caller-supplied exact distance function.

        Expands the search ring until a hit is found, then runs exactly one
        verification query whose ring covers every candidate that could
        still beat the hit (clamped to ``max_radius``) — no further
        doublings once something has been found.
        """
        if not self._bounds:
            raise GeometryError("nearest() on an empty index")
        radius = self.cell_size
        best_key = None
        best_dist = float("inf")
        while radius <= max_radius:
            for key in self.query_radius(x, y, radius):
                d = distance_fn(key)
                if d < best_dist:
                    best_key, best_dist = key, d
            if best_key is not None:
                if best_dist <= radius:
                    return best_key, best_dist
                # Any key closer than best_dist has bounds intersecting the
                # best_dist circle; one clamped ring verifies the hit.
                for key in self.query_radius(x, y, min(best_dist, max_radius)):
                    d = distance_fn(key)
                    if d < best_dist:
                        best_key, best_dist = key, d
                return best_key, best_dist
            radius *= 2.0
        # Fall back to a full scan; max_radius was too small.
        for key in self._bounds:
            d = distance_fn(key)
            if d < best_dist:
                best_key, best_dist = key, d
        return best_key, best_dist

    def keys(self) -> Iterable[K]:
        return self._bounds.keys()

    def bounds_of(self, key: K) -> Bounds:
        return self._bounds[key]
