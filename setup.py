"""Shim so `pip install -e .` / `setup.py develop` work on environments
without the `wheel` package (no-network build hosts)."""

from setuptools import setup

setup()
