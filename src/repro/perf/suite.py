"""The curated hot-path microbenchmark suite.

Each kernel is a closure over a deterministic fixture world (pinned seed)
so runs are comparable across machines and commits. Optimized kernels are
benchmarked next to their frozen pre-optimization twins from
:mod:`repro.perf.reference`, and the suite reports the resulting speedups
alongside raw medians. ``run_perf_suite`` powers both the ``perf-bench``
CLI subcommand and the CI perf-smoke gate.
"""

from __future__ import annotations

from concurrent.futures import wait
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.core.elements import BoundaryType, LaneBoundary
from repro.geometry.index import GridIndex
from repro.geometry.polyline import Polyline
from repro.geometry.transform import SE2
from repro.perf import reference
from repro.perf.instrument import REGISTRY
from repro.perf.runner import BenchResult, run_bench
from repro.sensors.lidar import LidarScanner
from repro.serve import GetTile, MapService, SpatialQuery
from repro.storage import TileStore
from repro.update.distribution import MapDistributionServer
from repro.world import generate_grid_city

#: Kernels the CI gate checks against the checked-in baseline.
HEADLINE_KERNELS: Tuple[str, ...] = (
    "polyline.project_batch",
    "lidar.scan",
    "grid.query_box",
)

#: Pinned fixture seed — keep stable so baselines stay comparable.
_SEED = 7


def _fixture_polyline(rng: np.random.Generator) -> Polyline:
    s = np.linspace(0.0, 400.0, 200)
    pts = np.stack([s, 12.0 * np.sin(s / 40.0) + rng.normal(0.0, 0.3, s.size)],
                   axis=1)
    return Polyline(pts)


def _fixture_boundaries(city, pose: SE2):
    """Boundary segment groups near ``pose``, as the PF localizer caches them."""
    segs = {"paint": [], "edge": []}
    centre = np.array([pose.x, pose.y])
    for element in city.elements_in_radius(pose.x, pose.y, 30.0,
                                           kind="boundary"):
        assert isinstance(element, LaneBoundary)
        cls = ("edge" if element.boundary_type in (BoundaryType.ROAD_EDGE,
                                                   BoundaryType.CURB)
               else "paint")
        pts = element.line.points
        mid = (pts[:-1] + pts[1:]) / 2.0
        near = np.hypot(*(mid - centre).T) <= 30.0
        if near.any():
            segs[cls].append((pts[:-1][near], pts[1:][near]))
    return segs


def run_perf_suite(repetitions: int = 20, warmup: int = 3
                   ) -> Tuple[List[BenchResult], Dict[str, float],
                              Dict[str, Dict[str, float]]]:
    """Run every curated kernel; returns (results, speedups, counters)."""
    rng = np.random.default_rng(_SEED)
    city = generate_grid_city(rng, 3, 2, block_size=150.0)
    pose = SE2(150.0, 150.0, 0.3)

    results: List[BenchResult] = []
    speedups: Dict[str, float] = {}

    def bench(name: str, fn: Callable[[], object]) -> BenchResult:
        result = run_bench(name, fn, repetitions=repetitions, warmup=warmup)
        results.append(result)
        return result

    REGISTRY.reset()
    REGISTRY.enable()
    try:
        # -- polyline projection: batched vs the scalar per-point loop ----
        line = _fixture_polyline(rng)
        points = np.stack([
            rng.uniform(0.0, 400.0, 1000),
            rng.uniform(-25.0, 25.0, 1000),
        ], axis=1)
        batch = bench("polyline.project_batch",
                      lambda: line.project_batch(points))
        scalar = bench("polyline.project_scalar",
                       lambda: reference.project_scalar(line, points))
        speedups["polyline.project_batch"] = (scalar.median_s
                                              / max(batch.median_s, 1e-12))

        # -- LiDAR scan at a fixed pose cell: cached vs re-cropping -------
        scanner = LidarScanner()
        scan = bench("lidar.scan",
                     lambda: scanner.scan(city, pose,
                                          np.random.default_rng(_SEED)))
        scan_ref = bench(
            "lidar.scan_reference",
            lambda: reference.scan_reference(scanner, city, pose,
                                             np.random.default_rng(_SEED)))
        speedups["lidar.scan"] = scan_ref.median_s / max(scan.median_s, 1e-12)

        # -- particle weighting: whole-cloud batch vs per-particle loop ---
        from repro.localization.lane_marking import _batch_signed_laterals

        boundaries = _fixture_boundaries(city, pose)
        measurements = [(1.7, "paint"), (-1.9, "paint"), (5.2, "edge")]
        states = np.stack([
            rng.normal(pose.x, 1.5, 250),
            rng.normal(pose.y, 1.5, 250),
            rng.normal(pose.theta, 0.05, 250),
        ], axis=1)
        sigma_offset = 0.12

        def weight_batched() -> np.ndarray:
            laterals = {
                cls: [_batch_signed_laterals(states, a_pts, b_pts)
                      for a_pts, b_pts in boundaries.get(cls, ())]
                for cls in ("paint", "edge")
            }
            total = np.zeros(states.shape[0])
            for m, cls in measurements:
                best = np.full(states.shape[0], np.inf)
                for lat, valid in laterals[cls]:
                    err = np.where(valid, np.abs(lat - m), np.inf)
                    np.minimum(best, err, out=best)
                scale = 2.0 if cls == "edge" else 1.0
                term = scale * (np.minimum(best, 3.0 * sigma_offset)
                                / sigma_offset)**2
                total += np.where(np.isfinite(best), term, 0.0)
            log_w = -0.5 * total
            log_w -= log_w.max()
            return np.exp(log_w)

        pf_batch = bench("pf.weight_batched", weight_batched)
        pf_ref = bench(
            "pf.weight_reference",
            lambda: reference.particle_weights_reference(
                states, measurements, boundaries, sigma_offset))
        speedups["pf.weight"] = pf_ref.median_s / max(pf_batch.median_s, 1e-12)

        # -- grid index: ticket-sorted vs repr-sorted queries -------------
        index: GridIndex = GridIndex(cell_size=50.0)
        for i in range(2000):
            x, y = rng.uniform(0.0, 1000.0, 2)
            w, h = rng.uniform(1.0, 40.0, 2)
            index.insert(("element", i), (x, y, x + w, y + h))
        query = (200.0, 200.0, 650.0, 650.0)
        grid = bench("grid.query_box", lambda: index.query_box(query))
        grid_ref = bench(
            "grid.query_box_repr",
            lambda: reference.query_box_repr_sorted(index, query))
        speedups["grid.query_box"] = (grid_ref.median_s
                                      / max(grid.median_s, 1e-12))

        # -- serving: GetTile / SpatialQuery under worker concurrency -----
        store = TileStore.build(city, tile_size=150.0)
        server = MapDistributionServer(city.copy())
        tiles = store.tiles()
        with MapService(server, store, n_workers=4) as service:
            def serve_tiles() -> None:
                futures = [service.submit(GetTile(tiles[i % len(tiles)]))
                           for i in range(32)]
                wait(futures)

            def serve_tiles_encoded() -> None:
                futures = [service.submit(
                    GetTile(tiles[i % len(tiles)], encoded=True))
                    for i in range(32)]
                wait(futures)

            def serve_spatial() -> None:
                futures = [service.submit(
                    SpatialQuery(150.0 + 10.0 * (i % 5), 150.0, 60.0))
                    for i in range(16)]
                wait(futures)

            bench("serve.get_tile", serve_tiles)
            bench("serve.get_tile_encoded", serve_tiles_encoded)
            bench("serve.spatial_query", serve_spatial)
        counters = REGISTRY.snapshot()
    finally:
        REGISTRY.disable()
        REGISTRY.reset()
    return results, speedups, counters
