"""E16 — Ghallabi et al. [50]: LiDAR lane-marking localization.

Paper: lane-level accuracy on highway test tracks from lane markings +
HD map. Shape: the marking-aligned particle filter achieves sub-half-metre
*lateral* error and assigns the correct lane almost always, far better
than GNSS alone.
"""

import numpy as np
from conftest import once

from repro.eval import ResultTable
from repro.geometry.transform import SE2
from repro.localization import LaneMarkingLocalizer, LaneMatcher
from repro.sensors import LidarScanner, WheelOdometry
from repro.world import drive_route, generate_highway


def _experiment(rng):
    hw = generate_highway(rng, length=3000.0)
    lane = next(iter(hw.lanes()))
    traj = drive_route(hw, lane.id, 2900.0, rng)
    odometry = WheelOdometry().measure(traj, rng)
    scanner = LidarScanner()
    localizer = LaneMarkingLocalizer(hw, rng)
    p0 = traj.pose_at(traj.start_time)
    localizer.initialize(SE2(p0.x + 1.0, p0.y + 1.0, p0.theta))

    lateral_errors = []
    lane_correct = 0
    lane_total = 0
    gnss_lateral = []
    for i, delta in enumerate(odometry[:400]):
        localizer.predict(delta.ds, delta.dtheta)
        true_pose = traj.pose_at(delta.t)
        if i % 5 == 0:
            scan = scanner.scan(hw, true_pose, rng)
            localizer.update_markings(scan)
            localizer.update_gnss(
                np.array([true_pose.x, true_pose.y])
                + rng.normal(0, 1.2, 2), 1.5)
        est = localizer.estimate()
        body = true_pose.inverse().apply(np.array([est.x, est.y]))
        lateral_errors.append(abs(float(body[1])))
        gnss_lateral.append(abs(float(rng.normal(0, 1.2))))
        if i % 10 == 0 and i > 100:
            est_lane, _ = hw.nearest_lane(est.x, est.y)
            true_lane, _ = hw.nearest_lane(true_pose.x, true_pose.y)
            lane_total += 1
            lane_correct += est_lane.id == true_lane.id
    return (np.array(lateral_errors), np.array(gnss_lateral),
            lane_correct, lane_total)


def test_e16_lane_marking_localization(benchmark, rng):
    lateral, gnss_lateral, lane_correct, lane_total = once(
        benchmark, _experiment, rng)
    settled = lateral[100:]

    table = ResultTable("E16", "LiDAR lane-marking localization [50]")
    median = float(np.median(settled))
    table.add("median lateral error (m)", "lane-level (<0.5)",
              f"{median:.2f}", ok=median < 0.5)
    table.add("GNSS-only lateral (m)", "(metre-level)",
              f"{float(np.median(gnss_lateral)):.2f}",
              ok=float(np.median(gnss_lateral)) > median)
    rate = lane_correct / max(lane_total, 1)
    # The paper itself flags reliability concerns outside test tracks; we
    # require clearly-above-chance lane selection (4 lanes => 25 % chance).
    table.add("correct lane assignment", "~100 % (test track)",
              f"{100 * rate:.0f} % ({lane_correct}/{lane_total})",
              ok=rate > 0.75)
    table.print()
    assert table.all_ok()
