"""Shared metric primitives and the unified :class:`MetricsRegistry`.

Before this module existed the repo had three telemetry silos —
``repro.serve.metrics``, ``repro.ingest.metrics``, and
``repro.perf.instrument`` — each with its own primitives and export
shape. This module is the single home of the thread-safe primitives
(:class:`Counter`, :class:`Gauge`, :class:`LatencyHistogram`) and of the
:class:`MetricsRegistry` every subsystem registers into under canonical
dotted names (``serve.requests.GetTile.ok``, ``ingest.freshness``,
``perf.<kernel>.calls`` …), with one consistent point-in-time
``snapshot()`` and two exporters: Prometheus text exposition format and
JSON.

Import discipline: this module is stdlib-only and must never import
back into the rest of ``repro`` — the serving, ingest, and perf layers
all import it (``repro.serve.metrics`` and ``repro.ingest.metrics``
re-export the primitives for backward compatibility).
"""

from __future__ import annotations

import copy
import itertools
import json
import re
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union


class Counter:
    """A thread-safe monotonically increasing counter.

    Picklable: the lock is dropped on serialization and recreated on
    load, so counters can cross a process boundary (shard→router
    metric shipping) without ad-hoc dict shims.
    """

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def add(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def __getstate__(self) -> Dict[str, int]:
        with self._lock:
            return {"value": self._value}

    def __setstate__(self, state: Dict[str, int]) -> None:
        self._lock = threading.Lock()
        self._value = state["value"]


class HotCounter(Counter):
    """A lock-free :class:`Counter` for per-publish hot paths.

    ``itertools.count.__next__`` runs entirely in C, so under the GIL a
    single increment can never interleave with another thread's — the
    same exactness the base class buys with a lock, at a fraction of
    the cost. Reads peek a ``copy.copy`` of the iterator (copying a
    ``count`` is non-consuming). Registry dispatch and pickling behave
    exactly like the base class.
    """

    __slots__ = ("_count",)

    def __init__(self) -> None:
        super().__init__()
        self._count = itertools.count()

    def add(self, n: int = 1) -> None:
        if n == 1:
            next(self._count)
            return
        for _ in range(n):  # each step is atomic; no lock needed
            next(self._count)

    @property
    def value(self) -> int:
        return next(copy.copy(self._count))

    def __getstate__(self) -> Dict[str, int]:
        return {"value": self.value}

    def __setstate__(self, state: Dict[str, int]) -> None:
        self._lock = threading.Lock()
        self._value = 0
        self._count = itertools.count(state["value"])


class Gauge:
    """A thread-safe last-value gauge (queue depths, in-flight counts).

    Picklable on the same terms as :class:`Counter`.
    """

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def set(self, value: int) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def __getstate__(self) -> Dict[str, int]:
        with self._lock:
            return {"value": self._value}

    def __setstate__(self, state: Dict[str, int]) -> None:
        self._lock = threading.Lock()
        self._value = state["value"]


#: Log-spaced bucket upper bounds (seconds): 0.1 ms .. 10 s, then +inf.
DEFAULT_BOUNDS: Tuple[float, ...] = (
    0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0,
)

#: Wider bounds for map-freshness lag (observation enqueue -> served
#: version): 10 ms .. 60 s, then +inf.
FRESHNESS_BOUNDS: Tuple[float, ...] = (
    0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 60.0,
)


class LatencyHistogram:
    """Fixed-bucket latency histogram with quantile estimates.

    Quantiles are resolved to the upper bound of the containing bucket
    (a conservative estimate), which is what fleet SLO reporting wants —
    but the exact observed min/max are tracked alongside the buckets, and
    every quantile is clamped to the observed max so sparse data (one
    sample per bucket) is not overstated by a whole bucket width.
    """

    def __init__(self, bounds: Optional[Sequence[float]] = None) -> None:
        self.bounds: Tuple[float, ...] = tuple(bounds or DEFAULT_BOUNDS)
        if list(self.bounds) != sorted(self.bounds) or not self.bounds:
            raise ValueError("histogram bounds must be sorted and non-empty")
        self._lock = threading.Lock()
        self._counts: List[int] = [0] * (len(self.bounds) + 1)
        self._total_s = 0.0
        self._count = 0
        self._min_s = float("inf")
        self._max_s = 0.0

    def record(self, seconds: float) -> None:
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if seconds <= bound:
                idx = i
                break
        with self._lock:
            self._counts[idx] += 1
            self._total_s += seconds
            self._count += 1
            if seconds < self._min_s:
                self._min_s = seconds
            if seconds > self._max_s:
                self._max_s = seconds

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other``'s samples into this histogram (cross-worker
        aggregation). Bounds must match exactly, or the merged quantiles
        would silently be nonsense — a mismatch raises ``ValueError``.
        """
        if tuple(other.bounds) != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} != {other.bounds}")
        # Copy under the source lock, fold under ours: no nested locking,
        # so concurrent a.merge(b) / b.merge(a) cannot deadlock.
        with other._lock:
            counts = list(other._counts)
            total_s = other._total_s
            count = other._count
            min_s = other._min_s
            max_s = other._max_s
        with self._lock:
            for i, c in enumerate(counts):
                self._counts[i] += c
            self._total_s += total_s
            self._count += count
            if count:
                if min_s < self._min_s:
                    self._min_s = min_s
                if max_s > self._max_s:
                    self._max_s = max_s
        return self

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def mean_s(self) -> float:
        with self._lock:
            return self._total_s / self._count if self._count else 0.0

    @property
    def sum_s(self) -> float:
        """Total of all recorded latencies (the Prometheus ``_sum``)."""
        with self._lock:
            return self._total_s

    @property
    def min_s(self) -> float:
        """Exact smallest recorded latency (0.0 when empty)."""
        with self._lock:
            return self._min_s if self._count else 0.0

    @property
    def max_s(self) -> float:
        """Exact largest recorded latency (0.0 when empty)."""
        with self._lock:
            return self._max_s

    def bucket_counts(self) -> List[int]:
        """Per-bucket counts (one extra overflow bucket past ``bounds``)."""
        with self._lock:
            return list(self._counts)

    def percentile(self, q: float) -> float:
        """Upper bound of the bucket containing the q-th percentile,
        clamped to the exact observed maximum."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        with self._lock:
            counts = list(self._counts)
            total = self._count
            max_s = self._max_s
        if total == 0:
            return 0.0
        rank = q / 100.0 * total
        running = 0
        for i, c in enumerate(counts):
            running += c
            if running >= rank:
                bound = self.bounds[i] if i < len(self.bounds) \
                    else float("inf")
                return min(bound, max_s)
        return max_s

    def snapshot(self) -> Dict[str, float]:
        """Point-in-time export: count, mean, quantiles, exact min/max."""
        return {
            "count": self.count,
            "mean_s": self.mean_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
            "p50_s": self.percentile(50.0),
            "p95_s": self.percentile(95.0),
            "p99_s": self.percentile(99.0),
        }

    def __getstate__(self) -> Dict[str, object]:
        """Picklable state (lock dropped): histograms cross the shard
        process boundary and are folded with :meth:`merge` on arrival."""
        with self._lock:
            return {
                "bounds": self.bounds,
                "counts": list(self._counts),
                "total_s": self._total_s,
                "count": self._count,
                "min_s": self._min_s,
                "max_s": self._max_s,
            }

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.bounds = tuple(state["bounds"])  # type: ignore[arg-type]
        self._lock = threading.Lock()
        self._counts = list(state["counts"])  # type: ignore[arg-type]
        self._total_s = float(state["total_s"])  # type: ignore[arg-type]
        self._count = int(state["count"])  # type: ignore[arg-type]
        self._min_s = float(state["min_s"])  # type: ignore[arg-type]
        self._max_s = float(state["max_s"])  # type: ignore[arg-type]

    def as_dict(self) -> Dict[str, float]:
        return self.snapshot()


Metric = Union[Counter, Gauge, LatencyHistogram, int, float,
               Callable[[], float]]

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.:\-]*$")
_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Canonical dotted name -> Prometheus metric name."""
    out = _PROM_BAD.sub("_", name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _fmt(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return format(value, "g")


class MetricsRegistry:
    """One registry for every subsystem's metrics, under dotted names.

    Two registration styles:

    - :meth:`register` / :meth:`counter` / :meth:`gauge` /
      :meth:`histogram` for metrics whose names are known up front;
    - :meth:`register_collector` for subsystems that mint metrics
      dynamically (per-request-kind latency histograms, per-kernel perf
      counters): the callback is invoked at export time and returns a
      ``{name: metric-or-value}`` mapping.

    Exports are :meth:`snapshot` (plain dicts), :meth:`to_json`, and
    :meth:`to_prometheus` (text exposition format: counters, gauges, and
    cumulative-bucket histograms).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Metric] = {}
        self._collectors: List[Callable[[], Dict[str, Metric]]] = []

    # -- registration ---------------------------------------------------
    def register(self, name: str, metric: Metric) -> Metric:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        with self._lock:
            if name in self._metrics:
                raise ValueError(f"metric {name!r} already registered")
            self._metrics[name] = metric
        return metric

    def register_collector(
            self, collect: Callable[[], Dict[str, Metric]]) -> None:
        """Add a callback contributing dynamically named metrics."""
        with self._lock:
            self._collectors.append(collect)

    def _get_or_create(self, name: str, factory, kind) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                if not _NAME_RE.match(name):
                    raise ValueError(f"invalid metric name {name!r}")
                metric = self._metrics[name] = factory()
            elif not isinstance(metric, kind):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}")
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, Gauge)

    def histogram(self, name: str,
                  bounds: Optional[Sequence[float]] = None
                  ) -> LatencyHistogram:
        return self._get_or_create(
            name, lambda: LatencyHistogram(bounds), LatencyHistogram)

    # -- export ---------------------------------------------------------
    def collect(self) -> Dict[str, Metric]:
        """Merged static + collector-provided metrics (statics win)."""
        with self._lock:
            statics = dict(self._metrics)
            collectors = list(self._collectors)
        out: Dict[str, Metric] = {}
        for collect in collectors:
            out.update(collect())
        out.update(statics)
        return out

    def names(self) -> List[str]:
        return sorted(self.collect())

    @staticmethod
    def _value_of(metric: Metric):
        if isinstance(metric, (Counter, Gauge)):
            return metric.value
        if isinstance(metric, LatencyHistogram):
            return metric.snapshot()
        if callable(metric):
            return float(metric())
        return metric

    def snapshot(self) -> Dict[str, object]:
        """Point-in-time view: name -> number or histogram snapshot."""
        return {name: self._value_of(metric)
                for name, metric in sorted(self.collect().items())}

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), indent=2, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for name, metric in sorted(self.collect().items()):
            pname = _prom_name(name)
            if isinstance(metric, Counter):
                lines.append(f"# TYPE {pname} counter")
                lines.append(f"{pname} {metric.value}")
            elif isinstance(metric, LatencyHistogram):
                lines.append(f"# TYPE {pname} histogram")
                cumulative = 0
                counts = metric.bucket_counts()
                for bound, bucket in zip(metric.bounds, counts):
                    cumulative += bucket
                    lines.append(f'{pname}_bucket{{le="{_fmt(bound)}"}} '
                                 f"{cumulative}")
                cumulative += counts[-1]
                lines.append(f'{pname}_bucket{{le="+Inf"}} {cumulative}')
                lines.append(f"{pname}_sum {_fmt(metric.sum_s)}")
                lines.append(f"{pname}_count {cumulative}")
            else:
                value = (metric.value if isinstance(metric, Gauge)
                         else float(metric()) if callable(metric)
                         else metric)
                lines.append(f"# TYPE {pname} gauge")
                lines.append(f"{pname} {_fmt(float(value))}")
        return "\n".join(lines) + "\n"


def register_perf_registry(registry: MetricsRegistry, perf_registry,
                           prefix: str = "perf") -> None:
    """Surface a :class:`repro.perf.instrument.PerfRegistry`'s per-kernel
    call/ns counters in ``registry`` under ``<prefix>.<kernel>.calls`` /
    ``.total_ns``. Duck-typed on ``snapshot()`` so this module never has
    to import ``repro.perf`` (kernels import the perf instrumenter at
    module load; an import edge back would be a cycle).
    """

    def collect() -> Dict[str, Metric]:
        out: Dict[str, Metric] = {}
        for kernel, entry in perf_registry.snapshot().items():
            out[f"{prefix}.{kernel}.calls"] = int(entry["calls"])
            out[f"{prefix}.{kernel}.total_ns"] = float(entry["total_ns"])
        return out

    registry.register_collector(collect)


# -- Prometheus text validation ----------------------------------------
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"            # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""   # first label
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"  # further labels
    r" (-?[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?|[+-]Inf|NaN)"  # value
    r"( -?[0-9]+)?$")                         # optional timestamp
_TYPE_RE = re.compile(
    r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) "
    r"(counter|gauge|histogram|summary|untyped)$")
_LE_RE = re.compile(r'le="([^"]*)"')


def validate_prometheus_text(text: str) -> List[str]:
    """Best-effort grammar + histogram-consistency check.

    Returns a list of human-readable problems (empty = valid): malformed
    sample lines, duplicate TYPE declarations, histograms without an
    ``+Inf`` bucket, non-monotone cumulative buckets, and ``_count``
    samples disagreeing with the ``+Inf`` bucket.
    """
    problems: List[str] = []
    typed: Dict[str, str] = {}
    buckets: Dict[str, List[Tuple[float, float]]] = {}
    counts: Dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if line.startswith("# TYPE"):
                m = _TYPE_RE.match(line)
                if m is None:
                    problems.append(f"line {lineno}: malformed TYPE: {line}")
                elif m.group(1) in typed:
                    problems.append(
                        f"line {lineno}: duplicate TYPE for {m.group(1)}")
                else:
                    typed[m.group(1)] = m.group(2)
            continue  # HELP/comments are free-form
        m = _SAMPLE_RE.match(line)
        if m is None:
            problems.append(f"line {lineno}: malformed sample: {line}")
            continue
        name, labels, value = m.group(1), m.group(2) or "", m.group(4)
        if name.endswith("_bucket"):
            le = _LE_RE.search(labels)
            if le is None:
                problems.append(
                    f"line {lineno}: histogram bucket without le label")
                continue
            bound = float("inf") if le.group(1) == "+Inf" \
                else float(le.group(1))
            buckets.setdefault(name[:-len("_bucket")], []).append(
                (bound, float(value)))
        elif name.endswith("_count"):
            counts[name[:-len("_count")]] = float(value)
    for base, series in buckets.items():
        series.sort(key=lambda bv: bv[0])
        if not series or series[-1][0] != float("inf"):
            problems.append(f"{base}: histogram missing +Inf bucket")
            continue
        cumulative = [v for _, v in series]
        if any(b > a for a, b in zip(cumulative[1:], cumulative)):
            problems.append(f"{base}: bucket counts are not cumulative")
        if base in counts and counts[base] != cumulative[-1]:
            problems.append(
                f"{base}: _count {counts[base]} != +Inf bucket "
                f"{cumulative[-1]}")
    return problems
