"""6-DoF pose recovery from a 4-DoF estimate plus 3-D landmarks.

HDMI-Loc [23] first estimates the 4-DoF partial pose (x, y, z, yaw) with a
particle filter, then calculates roll and pitch separately to complete the
6-DoF pose. Here, roll/pitch are solved by Gauss-Newton on the residuals
between observed body-frame 3-D landmark points and the map's 3-D landmark
positions under the fixed 4-DoF part.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import LocalizationError
from repro.geometry.transform import SE2, SE3


def _rot_rp(roll: float, pitch: float) -> np.ndarray:
    """Rotation from roll (about x) then pitch (about y)."""
    cr, sr = np.cos(roll), np.sin(roll)
    cp, sp = np.cos(pitch), np.sin(pitch)
    rx = np.array([[1, 0, 0], [0, cr, -sr], [0, sr, cr]])
    ry = np.array([[cp, 0, sp], [0, 1, 0], [-sp, 0, cp]])
    return ry @ rx


def recover_roll_pitch(body_points: np.ndarray, world_points: np.ndarray,
                       pose4: SE3, iterations: int = 12
                       ) -> Tuple[float, float]:
    """Solve (roll, pitch) given matched body/world 3-D landmark points.

    ``pose4`` supplies the fixed x, y, z, yaw. Needs >= 2 landmarks not all
    at the same elevation direction.
    """
    body = np.asarray(body_points, dtype=float)
    world = np.asarray(world_points, dtype=float)
    if body.shape != world.shape or body.shape[0] < 2:
        raise LocalizationError("need >= 2 matched 3-D landmarks")
    cy, sy = np.cos(pose4.yaw), np.sin(pose4.yaw)
    yaw_rot = np.array([[cy, -sy, 0], [sy, cy, 0], [0, 0, 1]])
    t = pose4.translation
    # Target: yaw_rot @ R(roll,pitch) @ body + t == world.
    target = (world - t) @ yaw_rot  # == R(roll,pitch) @ body (rows)
    roll, pitch = 0.0, 0.0
    for _ in range(iterations):
        rot = _rot_rp(roll, pitch)
        pred = body @ rot.T
        residual = (target - pred).ravel()
        # Numerical Jacobian over the two angles.
        eps = 1e-6
        j_roll = ((body @ _rot_rp(roll + eps, pitch).T - pred) / eps).ravel()
        j_pitch = ((body @ _rot_rp(roll, pitch + eps).T - pred) / eps).ravel()
        J = np.stack([j_roll, j_pitch], axis=1)
        delta, *_ = np.linalg.lstsq(J, residual, rcond=None)
        roll += float(delta[0])
        pitch += float(delta[1])
        if float(np.abs(delta).max()) < 1e-9:
            break
    return roll, pitch


@dataclass
class SixDofEstimator:
    """Completes planar estimates into 6-DoF poses.

    ``ground_z`` supplies the road elevation under the vehicle (from the
    map's elevation profile when available).
    """

    z_sigma: float = 0.05

    def estimate(self, planar: SE2, ground_z: float,
                 body_points: np.ndarray, world_points: np.ndarray) -> SE3:
        pose4 = SE3(planar.x, planar.y, ground_z, 0.0, 0.0, planar.theta)
        roll, pitch = recover_roll_pitch(body_points, world_points, pose4)
        return SE3(planar.x, planar.y, ground_z, roll, pitch, planar.theta)


def observe_landmarks_3d(true_pose: SE3, world_points: np.ndarray,
                         rng: np.random.Generator,
                         sigma: float = 0.05) -> np.ndarray:
    """Ground-truth generator: body-frame 3-D points of known landmarks."""
    world = np.asarray(world_points, dtype=float)
    inv = true_pose.inverse()
    body = inv.apply(world)
    return body + rng.normal(0.0, sigma, size=body.shape)
