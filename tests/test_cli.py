"""CLI: generate / stats / validate / route / taxonomy."""

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture
def map_file(tmp_path):
    path = tmp_path / "city.json"
    assert main(["generate", "--kind", "city", "--seed", "3",
                 "--size", "3", "--out", str(path)]) == 0
    return path


class TestCli:
    def test_generate_city(self, tmp_path, capsys):
        path = tmp_path / "c.json"
        assert main(["generate", "--kind", "city", "--seed", "3",
                     "--size", "2", "--out", str(path)]) == 0
        assert "wrote" in capsys.readouterr().out
        assert path.exists()

    def test_generate_highway(self, tmp_path):
        path = tmp_path / "hw.json"
        assert main(["generate", "--kind", "highway", "--size", "2",
                     "--out", str(path)]) == 0
        assert path.exists()

    def test_generate_sampled(self, tmp_path):
        path = tmp_path / "s.json"
        assert main(["generate", "--kind", "sampled", "--seed", "1",
                     "--out", str(path)]) == 0

    def test_stats(self, map_file, capsys):
        assert main(["stats", str(map_file)]) == 0
        out = capsys.readouterr().out
        assert "lane length" in out
        assert "junction degree" in out

    def test_validate_clean_map(self, map_file, capsys):
        assert main(["validate", str(map_file)]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_validate_broken_map_exits_nonzero(self, tmp_path):
        from repro.core import HDMap, Lane
        from repro.core.ids import ElementId
        from repro.geometry.polyline import straight
        from repro.storage import save_map

        hdmap = HDMap("bad")
        hdmap.create(Lane, centerline=straight([0, 0], [50, 0]),
                     left_boundary=ElementId("boundary", 99))
        path = tmp_path / "bad.json"
        save_map(hdmap, path)
        assert main(["validate", str(path)]) == 1

    def test_route_with_guidance(self, map_file, capsys):
        assert main(["route", str(map_file), "--from", "30,30",
                     "--to", "350,250"]) == 0
        out = capsys.readouterr().out
        assert "route:" in out
        assert "depart" in out and "arrive" in out

    def test_route_bad_point_format(self, map_file):
        with pytest.raises(SystemExit):
            main(["route", str(map_file), "--from", "30",
                  "--to", "350,250"])

    def test_taxonomy(self, capsys):
        assert main(["taxonomy"]) == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out
        assert "Localization" in out

    def test_reproducible_generation(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        main(["generate", "--kind", "city", "--seed", "9", "--out", str(a)])
        main(["generate", "--kind", "city", "--seed", "9", "--out", str(b)])
        assert a.read_text() == b.read_text()
