"""End-to-end observability of the ingestion pipeline.

Reuses the serving layer's thread-safe :class:`Counter` and
:class:`LatencyHistogram` primitives and adds the two surfaces the
maintenance loop needs: per-stage latency histograms (where in
validate -> associate -> fuse -> classify -> emit does time go) and the
*map-freshness lag* — the wall time from an observation entering the bus
to the moment its confirmed patch is visible to ``ChangesSince`` on the
serving layer. Freshness is the metric the whole subsystem exists to
drive down; it is also mirrored into
:class:`~repro.serve.metrics.ServiceMetrics` when the publisher is wired
to a service, so one dashboard shows both sides of the loop.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from repro.serve.metrics import (
    FRESHNESS_BOUNDS,
    Counter,
    LatencyHistogram,
)

#: Stage latencies are short (in-process work): 10 us .. 1 s, then +inf.
STAGE_BOUNDS = (1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 0.01, 0.03, 0.1, 0.3, 1.0)


class Gauge:
    """A thread-safe last-value gauge (queue depths, in-flight counts)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def set(self, value: int) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class IngestMetrics:
    """Counters, gauges, and histograms for one pipeline instance."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stage_latency: Dict[str, LatencyHistogram] = {}
        self.freshness = LatencyHistogram(FRESHNESS_BOUNDS)
        # consumer-side (producer-side counts live on the ObservationBus
        # and are merged into the export by IngestPipeline.stats())
        self.observations_processed = Counter()
        self.batches_processed = Counter()
        self.batch_retries = Counter()
        self.dead_letters = Counter()
        self.worker_restarts = Counter()
        # publish-side
        self.patches_published = Counter()
        self.patches_duplicate = Counter()
        self.patches_conflicted = Counter()
        # gauges, keyed by partition index
        self.queue_depth: Dict[int, Gauge] = {}
        self.in_flight = Gauge()

    def stage_histogram(self, stage: str) -> LatencyHistogram:
        with self._lock:
            hist = self._stage_latency.get(stage)
            if hist is None:
                hist = self._stage_latency[stage] = \
                    LatencyHistogram(STAGE_BOUNDS)
            return hist

    def record_stage(self, stage: str, seconds: float) -> None:
        self.stage_histogram(stage).record(seconds)

    def record_freshness(self, lag_s: float) -> None:
        self.freshness.record(lag_s)

    def depth_gauge(self, partition: int) -> Gauge:
        with self._lock:
            gauge = self.queue_depth.get(partition)
            if gauge is None:
                gauge = self.queue_depth[partition] = Gauge()
            return gauge

    def freshness_p95_s(self) -> float:
        return self.freshness.percentile(95.0)

    def as_dict(self) -> Dict[str, object]:
        """Consistent point-in-time export for dashboards/CLI output."""
        with self._lock:
            stages: List[str] = sorted(self._stage_latency)
            depths = {p: g.value for p, g in sorted(self.queue_depth.items())}
        return {
            "stage_latency": {s: self.stage_histogram(s).snapshot()
                              for s in stages},
            "freshness": self.freshness.snapshot(),
            "queue_depth": depths,
            "in_flight": self.in_flight.value,
            "observations": {
                "processed": self.observations_processed.value,
            },
            "batches": {
                "processed": self.batches_processed.value,
                "retries": self.batch_retries.value,
                "dead_letters": self.dead_letters.value,
                "worker_restarts": self.worker_restarts.value,
            },
            "patches": {
                "published": self.patches_published.value,
                "duplicate_suppressed": self.patches_duplicate.value,
                "conflicted": self.patches_conflicted.value,
            },
        }
