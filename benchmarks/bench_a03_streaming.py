"""A3 — Tile streaming: bounded-memory map access (the survey's open
data-management problem [73]).

A simulated drive queries the map continuously; the streaming view must
answer identically to the in-memory map while holding only a bounded
working set, with a high cache hit rate (drives are spatially coherent).
"""

import numpy as np
from conftest import once

from repro.eval import ResultTable
from repro.storage import StreamingMap, TileStore
from repro.world import drive_route, generate_grid_city


def _experiment(rng):
    city = generate_grid_city(rng, 6, 5, block_size=200.0)
    store = TileStore.build(city, tile_size=250.0)
    streaming = StreamingMap(store, max_tiles=6)

    lane = max(city.lanes(), key=lambda l: l.length)
    traj = drive_route(city, lane.id, 2500.0, rng)

    mismatches = 0
    queries = 0
    for t in np.arange(traj.start_time, traj.end_time, 2.0):
        pose = traj.pose_at(float(t))
        # Landmark queries use exact distances, so full and streaming maps
        # must agree except for features within the 1 cm coordinate
        # quantization band of the radius.
        full = {lm.id: lm for lm in city.landmarks_in_radius(
            pose.x, pose.y, 50.0)}
        part = {lm.id: lm for lm in streaming.landmarks_in_radius(
            pose.x, pose.y, 50.0)}
        queries += 1
        centre = np.array([pose.x, pose.y])
        for eid in set(full) ^ set(part):
            lm = full.get(eid) or part.get(eid)
            if abs(float(np.hypot(*(lm.position - centre))) - 50.0) > 0.02:
                mismatches += 1
                break
    return (store, streaming, queries, mismatches,
            len(store.tiles()))


def test_a03_tile_streaming(benchmark, rng):
    store, streaming, queries, mismatches, n_tiles = once(
        benchmark, _experiment, rng)

    table = ResultTable("A3", "tile streaming under a bounded working set")
    table.add("queries answered identically", f"{queries}/{queries}",
              f"{queries - mismatches}/{queries}", ok=mismatches == 0)
    table.add("tiles total", str(n_tiles), str(n_tiles), ok=n_tiles > 12)
    resident = len(streaming.resident_tiles())
    table.add("tiles resident", "<= 6", str(resident), ok=resident <= 6)
    frac = streaming.resident_bytes() / max(store.total_bytes(), 1)
    table.add("working set / full map", "bounded",
              f"{100 * frac:.0f} %", ok=frac < 0.7)
    table.add("cache hit rate", "high (coherent drive)",
              f"{100 * streaming.stats.hit_rate:.0f} %",
              ok=streaming.stats.hit_rate > 0.5)
    table.print()
    assert table.all_ok()
