"""`MapService`: the concurrent front door of the HD-map database.

One service instance fronts a :class:`~repro.update.distribution.MapDistributionServer`
(the authoritative, versioned map) and a :class:`~repro.storage.tilestore.TileStore`
(the static tiled base map) for a whole fleet:

- requests enter through :meth:`MapService.submit`, which applies admission
  control (bounded queue; REJECTED on overflow) and returns a future;
- a pool of worker threads drains the queue, shedding stale low-priority
  requests (SHED) and dispatching the rest;
- tile reads and spatial queries are answered from a
  :class:`~repro.serve.cache.ShardedTileCache`, so hot tiles are decoded
  once and served under shared locks;
- ingests and incremental syncs go to the distribution server, whose lock
  gives single-copy consistency (see ``repro.update.distribution``).

Locking discipline: the tile cache and the distribution server have
independent locks and no handler holds both at once, so the service cannot
deadlock. Tile requests serve the *static* base map; dynamic map changes
flow exclusively through ``IngestPatch``/``ChangesSince`` versions —
exactly the split a production map stack makes between base-map blobs on a
CDN and a live change feed.

``storage_latency_s`` and ``service_latency_s`` model remote-blob fetch
and per-request network/serialization cost. They sleep with the GIL
released, which is what lets a multi-worker pool overlap work in the
benchmarks the same way an I/O-bound server does in production.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import Callable, List, Optional, Set

from repro.core.hdmap import HDMap
from repro.core.tiles import TileId
from repro.errors import HDMapError
from repro.obs.log import get_logger
from repro.obs.metrics import Counter, MetricsRegistry
from repro.obs.trace import TRACER
from repro.serve.admission import AdmissionController, AdmissionPolicy
from repro.serve.api import (
    ChangesSince,
    GetTile,
    IngestPatch,
    Request,
    Response,
    Snapshot,
    SpatialQuery,
    Status,
)
from repro.serve.cache import ShardedTileCache
from repro.serve.metrics import ServiceMetrics
from repro.storage.binary import encode_map
from repro.storage.tilestore import TileStore
from repro.update.distribution import MapDistributionServer


_log = get_logger("serve.service")


class _WorkItem:
    __slots__ = ("request", "future", "submitted_at", "trace_ctx")

    def __init__(self, request: Request, future: "Future[Response]",
                 submitted_at: float, trace_ctx=None) -> None:
        self.request = request
        self.future = future
        self.submitted_at = submitted_at
        # TraceContext captured at submit; the worker thread continues
        # the caller's trace from it (or opens a sampled root span).
        self.trace_ctx = trace_ctx


class MapService:
    """Thread-safe map serving: worker pool + cache + admission control."""

    def __init__(self, server: MapDistributionServer, store: TileStore,
                 n_workers: int = 4,
                 cache_shards: int = 8, tiles_per_shard: int = 16,
                 policy: Optional[AdmissionPolicy] = None,
                 storage_latency_s: float = 0.0,
                 service_latency_s: float = 0.0,
                 registry: Optional[MetricsRegistry] = None,
                 stale_tile_versions: int = 0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if stale_tile_versions < 0:
            raise ValueError("stale_tile_versions must be >= 0")
        self.server = server
        self.store = store
        self.n_workers = n_workers
        self.storage_latency_s = storage_latency_s
        self.service_latency_s = service_latency_s
        #: default stale-while-revalidate bound for encoded GetTile:
        #: 0 = always re-encode at the current version (strict), N > 0 =
        #: an encoded payload up to N versions old may be served (with
        #: the lag surfaced as Response.staleness) while the tile is
        #: marked for re-encoding — the graceful-degradation mode for
        #: publish-heavy / invalidation-storm conditions.
        self.stale_tile_versions = stale_tile_versions
        self._clock = clock
        self.cache = ShardedTileCache(self._fetch_tile, cache_shards,
                                      tiles_per_shard)
        self.metrics = ServiceMetrics()
        self.metrics.attach_cache(self.cache)
        #: tiles a SpatialQuery actually visited (present in the store);
        #: absent covered tiles are short-circuited before the cache.
        self.spatial_tiles_scanned = Counter()
        if registry is not None:
            self.metrics.register_into(registry)
            registry.register("serve.spatial.tiles_scanned",
                              self.spatial_tiles_scanned)
            if store.pack_backed:
                store.pack_reader.register_into(registry)
        # Encoded payloads are keyed by served version; a published patch
        # advances the version, so drop the now-stale memo entries eagerly.
        server.add_listener(self._on_ingest_publish)
        self.queue = AdmissionController(policy, on_shed=self._shed_item,
                                         clock=clock)
        self._threads: List[threading.Thread] = []
        self._started = False

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "MapService":
        if self._started:
            return self
        self._started = True
        for i in range(self.n_workers):
            t = threading.Thread(target=self._worker_loop,
                                 name=f"map-serve-{i}", daemon=True)
            t.start()
            self._threads.append(t)
        return self

    def stop(self) -> None:
        """Drain the queue, answer everything in flight, and join workers."""
        if not self._started:
            return
        self.queue.close()
        for t in self._threads:
            t.join()
        self._threads.clear()
        self._started = False

    def __enter__(self) -> "MapService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- submission -----------------------------------------------------
    def submit(self, request: Request) -> "Future[Response]":
        """Queue a request; the future resolves to its :class:`Response`.

        Rejection (queue full / service stopped) resolves the future
        immediately — callers never block on admission.
        """
        future: "Future[Response]" = Future()
        item = _WorkItem(request, future, self._clock(),
                         trace_ctx=TRACER.propagate())
        if not self.queue.offer(item, request.priority):
            self.metrics.record(request.kind, Status.REJECTED.value, 0.0)
            _log.warning("request_rejected", kind=request.kind,
                         queue_depth=self.queue.depth())
            future.set_result(Response(Status.REJECTED,
                                       error="admission queue full"))
        return future

    def request(self, request: Request,
                timeout: Optional[float] = None) -> Response:
        """Synchronous convenience wrapper around :meth:`submit`."""
        return self.submit(request).result(timeout)

    # -- worker side ----------------------------------------------------
    def _shed_item(self, item: _WorkItem) -> None:
        latency = self._clock() - item.submitted_at
        self.metrics.record(item.request.kind, Status.SHED.value, latency)
        _log.warning("request_shed", kind=item.request.kind,
                     queued_age_s=round(latency, 6))
        item.future.set_result(Response(
            Status.SHED, latency_s=latency,
            error="stale low-priority request shed under load"))

    def _worker_loop(self) -> None:
        while True:
            item = self.queue.take()
            if item is None:
                return
            self._serve(item)

    def _serve(self, item: _WorkItem) -> None:
        kind = item.request.kind
        span = TRACER.continue_from(item.trace_ctx, f"serve.request.{kind}")
        with span:
            if span.context is not None:
                span.set("queue_wait_s",
                         round(self._clock() - item.submitted_at, 6))
            if self.service_latency_s > 0:
                time.sleep(self.service_latency_s)
            try:
                payload, version, staleness = self._dispatch(item.request)
                latency = self._clock() - item.submitted_at
                response = Response(Status.OK, payload, version, latency,
                                    staleness=staleness)
            except HDMapError as exc:
                latency = self._clock() - item.submitted_at
                response = Response(Status.ERROR, latency_s=latency,
                                    error=str(exc))
                _log.warning("request_failed", kind=kind, error=str(exc))
            except Exception as exc:  # keep the worker alive on handler bugs
                latency = self._clock() - item.submitted_at
                response = Response(Status.ERROR, latency_s=latency,
                                    error=f"{type(exc).__name__}: {exc}")
                _log.error("request_handler_error", kind=kind,
                           error=f"{type(exc).__name__}: {exc}")
            if span.context is not None:
                span.set("status", response.status.value)
                span.set("version", response.version)
        self.metrics.record(kind, response.status.value,
                            response.latency_s)
        item.future.set_result(response)

    # -- handlers -------------------------------------------------------
    def _fetch_tile(self, tile: TileId) -> Optional[HDMap]:
        if self.storage_latency_s > 0:
            time.sleep(self.storage_latency_s)
        return self.store.load_tile(tile)

    def _on_ingest_publish(self, version: int, patch) -> None:
        # Strict mode drops the (now-stale) encoded memo eagerly. In
        # stale-while-revalidate mode the old payloads are the degradation
        # budget: they stay servable within the staleness bound and are
        # superseded on the next fresh build instead.
        if self.stale_tile_versions == 0:
            self.cache.invalidate_encoded()

    def _dispatch(self, request: Request):
        """(payload, served version, payload staleness-in-versions)."""
        if isinstance(request, GetTile):
            version = self.server.version
            if request.encoded:
                if self.store.pack_backed:
                    # Zero-copy fast path: the payload is a memoryview
                    # slice of the pack mmap — no encode, no cache memo,
                    # no per-request copy. Pack payloads are the static
                    # base map, byte-stable across versions, so the SWR
                    # staleness contract is trivially met at 0.
                    return self.store.encoded_view(request.tile), version, 0
                bound = request.max_staleness \
                    if request.max_staleness is not None \
                    else self.stale_tile_versions
                payload, staleness = self.cache.get_encoded_swr(
                    request.tile, version, encode_map, bound)
                return payload, version, staleness
            return self.cache.get(request.tile), version, 0
        if isinstance(request, SpatialQuery):
            return self._spatial(request), self.server.version, 0
        if isinstance(request, ChangesSince):
            delta = self.server.delta_since(request.since_version)
            if request.encoded:
                from repro.pack.delta import encode_delta
                return encode_delta(delta), delta.version, 0
            return delta, delta.version, 0
        if isinstance(request, IngestPatch):
            result = self.server.ingest(request.patch)
            version = result.version if result.version is not None \
                else self.server.version
            return result, version, 0
        if isinstance(request, Snapshot):
            snapshot = self.server.snapshot()
            return snapshot, snapshot.version, 0
        raise HDMapError(f"unknown request type {type(request).__name__}")

    def _spatial(self, request: SpatialQuery) -> list:
        x, y, radius = request.x, request.y, request.radius
        bounds = (x - radius, y - radius, x + radius, y + radius)
        out: list = []
        seen: Set[object] = set()
        for tile in self.store.scheme.tiles_for_bounds(bounds):
            # Short-circuit tiles absent from the store: a radius query
            # over sparse geography would otherwise fault every covered
            # tile into the cache just to learn it holds nothing.
            if not self.store.contains(tile):
                continue
            self.spatial_tiles_scanned.add()
            shard = self.cache.get(tile)
            if shard is None:
                continue
            found = (shard.landmarks_in_radius(x, y, radius)
                     if request.landmarks_only
                     else shard.elements_in_radius(x, y, radius))
            for element in found:
                if element.id not in seen:
                    seen.add(element.id)
                    out.append(element)
        return out
