"""S7 — Pack store: zero-copy tile serving and binary delta sync.

The survey's distribution story (Li et al.'s vector compaction,
~10 MB/mile → ~100 KB/mile) only matters at serving time if the stack
ships those compact bytes without re-materializing objects per request.
This bench gates the :mod:`repro.pack` claims end-to-end:

- **parity** — a pack-backed :class:`TileStore` serves payloads
  byte-identical to the dict-backed store it was written from;
- **zero copy** — an encoded ``GetTile`` answered from a pack-backed
  :class:`MapService` is a ``memoryview`` slice of the pack mmap, and
  the pack path beats the per-request object-encode path on a cold
  encode memo;
- **lazy cold start** — opening a replicated ~1M-element pack plus one
  tile decode costs exactly one decode (no hidden full-map decode);
- **delta wire** — ``ChangesSince`` shipped through
  :func:`repro.pack.encode_delta` is at most 25% of the pickled
  :class:`SyncDelta`.
"""

import os
import pickle
import time

import numpy as np
from conftest import once

from repro.core import MapPatch, SignType, TrafficSign
from repro.core.tiles import TileId
from repro.pack import PackReader, PackWriter, encode_delta
from repro.serve.api import GetTile
from repro.serve.service import MapService
from repro.storage import TileStore
from repro.storage.tilestore import _count_elements
from repro.update.distribution import MapDistributionServer
from repro.eval import ResultTable
from repro.world import generate_grid_city

_SEED = 7
_REQUESTS = 200
_TARGET_ELEMENTS = 1_000_000


def _throughput(service: MapService, tiles, cold: bool) -> float:
    t0 = time.perf_counter()
    for i in range(_REQUESTS):
        response = service.request(
            GetTile(tile=tiles[i % len(tiles)], encoded=True))
        assert response.ok
        if cold:
            service.cache.invalidate_encoded()
    return _REQUESTS / (time.perf_counter() - t0)


def _experiment(tmp_path):
    city = generate_grid_city(np.random.default_rng(_SEED), 3, 2,
                              block_size=150.0)
    store = TileStore.build(city, tile_size=250.0)
    tiles = store.tiles()
    pack_path = str(tmp_path / "city.pack")
    store.to_pack(pack_path)
    packed = TileStore.from_pack(pack_path)

    parity = all(bytes(packed.encoded_view(t)) == store._blobs[t]
                 for t in tiles)

    server = MapDistributionServer(city.copy())
    with MapService(server, store, n_workers=1) as service:
        object_tps = _throughput(service, tiles, cold=True)
    server = MapDistributionServer(city.copy())
    with MapService(server, packed, n_workers=1) as service:
        pack_tps = _throughput(service, tiles, cold=False)
        response = service.request(GetTile(tile=tiles[0], encoded=True))
        zero_copy = isinstance(response.payload, memoryview) \
            and response.payload.obj is packed.pack_reader.buffer.obj

    # replicate the heaviest blob until the directory holds >= 1M elements
    blob = store._blobs[max(tiles, key=store.blob_bytes)]
    per_blob = max(1, _count_elements(blob))
    big_path = str(tmp_path / "big.pack")
    with PackWriter(big_path, tile_size=250.0) as writer:
        for i in range(-(-_TARGET_ELEMENTS // per_blob)):
            writer.add(TileId(i % 4096, i // 4096), blob,
                       n_elements=per_blob)
        writer.publish()
    t0 = time.perf_counter()
    reader = PackReader(big_path)
    shard = reader.load(reader.tiles()[0])
    cold_start_s = time.perf_counter() - t0
    cold_elements = reader.total_elements
    cold_decodes = int(reader.decodes.value)
    assert shard is not None
    pack_mb = os.path.getsize(big_path) / 1e6
    reader.close()

    working = city.copy()
    delta_server = MapDistributionServer(working)
    rng = np.random.default_rng(_SEED)
    for i in range(20):
        patch = MapPatch(source=f"probe-{i}", confidence=0.9)
        x, y = rng.uniform(0, 400, size=2)
        patch.add(TrafficSign(id=working.new_id(f"s7-{i}-sign"),
                              position=np.array([x, y]),
                              sign_type=SignType.STOP))
        delta_server.ingest(patch)
    delta = delta_server.delta_since(0)
    wire = len(encode_delta(delta))
    pickled = len(pickle.dumps(delta, protocol=pickle.HIGHEST_PROTOCOL))

    return (parity, object_tps, pack_tps, zero_copy, cold_start_s,
            cold_elements, cold_decodes, pack_mb, wire, pickled)


def test_s07_pack(benchmark, tmp_path):
    (parity, object_tps, pack_tps, zero_copy, cold_start_s, cold_elements,
     cold_decodes, pack_mb, wire, pickled) = \
        once(benchmark, _experiment, tmp_path)

    table = ResultTable("S7", "pack store: zero-copy serving + delta sync")
    table.add("pack payload parity", "byte-identical",
              "equal" if parity else "DIFFER", ok=parity)
    speedup = pack_tps / object_tps if object_tps > 0 else 0.0
    table.add("encoded GetTile, object-encode path", "> 0 req/s",
              f"{object_tps:.0f} req/s", ok=object_tps > 0)
    table.add("encoded GetTile, pack path", ">= 5x object path",
              f"{pack_tps:.0f} req/s ({speedup:.1f}x)", ok=speedup >= 5.0)
    table.add("payload is a pack mmap slice", "zero-copy memoryview",
              "yes" if zero_copy else "NO", ok=zero_copy)
    table.add("cold-start pack size", ">= 1M elements",
              f"{cold_elements:,} ({pack_mb:.1f} MB)",
              ok=cold_elements >= _TARGET_ELEMENTS)
    table.add("cold start: open + one tile", "< 2 s, exactly 1 decode",
              f"{cold_start_s * 1e3:.1f} ms, {cold_decodes} decode(s)",
              ok=cold_start_s < 2.0 and cold_decodes == 1)
    ratio = wire / pickled if pickled else 1.0
    table.add("ChangesSince wire vs pickled delta", "<= 25%",
              f"{wire} B / {pickled} B = {100 * ratio:.1f}%",
              ok=ratio <= 0.25)
    table.print()
    assert table.all_ok()
