"""A1 — Ablations on the map-creation design choices.

Each row switches one mechanism off and shows why it is there:

- Dabeer's corrective feedback (per-vehicle bias estimation) [29];
- the lane learner's geometric smoothness prior (Kim et al. [45]);
- range weighting in crowd triangulation.
"""

import numpy as np
from conftest import once

from repro.creation import CrowdMapper
from repro.eval import ResultTable
from repro.geometry.polyline import straight
from repro.update import LaneLearner
from repro.world import drive_route, generate_highway


def _crowd(rng, feedback_rounds):
    hw = generate_highway(rng, length=2000.0, sign_spacing=150.0)
    lane = next(iter(hw.lanes()))
    mapper = CrowdMapper(feedback_rounds=feedback_rounds)
    contribs = [
        mapper.collect(hw, drive_route(hw, lane.id, 1900.0, rng), v, rng)
        for v in range(12)
    ]
    return mapper.fuse(contribs, hw).error.mean


def _lane_learner(rng):
    truth = straight([0, 0], [300, 0], spacing=10.0)
    learner = LaneLearner(truth, station_bin=10.0, smoothness=40.0)
    s = rng.uniform(0, 300, 100)
    d = rng.normal(0.0, 1.2, 100)
    pts = np.array([truth.point_at(float(si)) + [0, float(di)]
                    for si, di in zip(s, d)])
    smooth = learner.score(learner.fit(pts), truth).mean
    naive = learner.score(learner.fit_naive(pts), truth).mean
    return smooth, naive


def _experiment(rng):
    seed = int(rng.integers(0, 2**31))
    with_fb = _crowd(np.random.default_rng(seed), feedback_rounds=3)
    without_fb = _crowd(np.random.default_rng(seed), feedback_rounds=0)
    smooth, naive = _lane_learner(rng)
    return with_fb, without_fb, smooth, naive


def test_a01_creation_ablations(benchmark, rng):
    with_fb, without_fb, smooth, naive = once(benchmark, _experiment, rng)

    table = ResultTable("A1", "creation-pipeline ablations")
    table.add("crowd error with feedback (m)", "(better)", f"{with_fb:.3f}",
              ok=with_fb <= without_fb)
    table.add("crowd error without feedback (m)", "(worse)",
              f"{without_fb:.3f}", ok=None)
    table.add("lane fit with smoothness prior (m)", "(better)",
              f"{smooth:.3f}", ok=smooth < naive)
    table.add("lane fit per-bin average (m)", "(worse)", f"{naive:.3f}",
              ok=None)
    table.print()
    assert table.all_ok()
