"""Rigid-body transforms: SE(2) for planar poses, SE(3) for 6-DoF poses.

``SE2`` is the workhorse for vehicle poses throughout the library; ``SE3``
is used by the 6-DoF pose-estimation stack (HDMI-Loc style roll/pitch
recovery).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.geometry.vec import rotate2d, wrap_angle


@dataclass(frozen=True)
class SE2:
    """A planar rigid transform / pose: translation (x, y) and heading theta.

    Composition follows the usual convention: ``a @ b`` applies ``b`` first,
    then ``a``; ``pose.apply(p)`` maps a point from the pose's local frame
    into the world frame.
    """

    x: float
    y: float
    theta: float

    @staticmethod
    def identity() -> "SE2":
        return SE2(0.0, 0.0, 0.0)

    @property
    def translation(self) -> np.ndarray:
        return np.array([self.x, self.y])

    def apply(self, points: np.ndarray) -> np.ndarray:
        """Map local-frame point(s) into the world frame."""
        return rotate2d(points, self.theta) + self.translation

    def apply_direction(self, vectors: np.ndarray) -> np.ndarray:
        """Rotate direction vector(s) into the world frame (no translation)."""
        return rotate2d(vectors, self.theta)

    def inverse(self) -> "SE2":
        c, s = math.cos(self.theta), math.sin(self.theta)
        return SE2(
            x=-(c * self.x + s * self.y),
            y=-(-s * self.x + c * self.y),
            theta=wrap_angle(-self.theta),
        )

    def compose(self, other: "SE2") -> "SE2":
        """``self`` after ``other``: world <- self <- other <- local."""
        tx, ty = self.apply(np.array([other.x, other.y]))
        return SE2(float(tx), float(ty), wrap_angle(self.theta + other.theta))

    def __matmul__(self, other: "SE2") -> "SE2":
        return self.compose(other)

    def relative_to(self, reference: "SE2") -> "SE2":
        """Express this pose in the frame of ``reference``."""
        return reference.inverse().compose(self)

    def distance_to(self, other: "SE2") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def heading_error_to(self, other: "SE2") -> float:
        return abs(wrap_angle(self.theta - other.theta))

    def as_matrix(self) -> np.ndarray:
        c, s = math.cos(self.theta), math.sin(self.theta)
        return np.array([[c, -s, self.x], [s, c, self.y], [0.0, 0.0, 1.0]])

    @staticmethod
    def from_matrix(matrix: np.ndarray) -> "SE2":
        return SE2(
            x=float(matrix[0, 2]),
            y=float(matrix[1, 2]),
            theta=float(math.atan2(matrix[1, 0], matrix[0, 0])),
        )


def _rotation_zyx(roll: float, pitch: float, yaw: float) -> np.ndarray:
    """Rotation matrix from ZYX (yaw-pitch-roll) Euler angles."""
    cr, sr = math.cos(roll), math.sin(roll)
    cp, sp = math.cos(pitch), math.sin(pitch)
    cy, sy = math.cos(yaw), math.sin(yaw)
    return np.array(
        [
            [cy * cp, cy * sp * sr - sy * cr, cy * sp * cr + sy * sr],
            [sy * cp, sy * sp * sr + cy * cr, sy * sp * cr - cy * sr],
            [-sp, cp * sr, cp * cr],
        ]
    )


@dataclass(frozen=True)
class SE3:
    """A 6-DoF pose: translation (x, y, z) and ZYX Euler angles.

    Angles are (roll, pitch, yaw) applied in yaw-pitch-roll order, matching
    the vehicle convention used by the 6-DoF pose-estimation literature the
    survey covers (HDMI-Loc recovers yaw+translation first, then roll/pitch).
    """

    x: float
    y: float
    z: float
    roll: float
    pitch: float
    yaw: float

    @staticmethod
    def identity() -> "SE3":
        return SE3(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

    @staticmethod
    def from_se2(pose: SE2, z: float = 0.0, roll: float = 0.0, pitch: float = 0.0) -> "SE3":
        return SE3(pose.x, pose.y, z, roll, pitch, pose.theta)

    @property
    def translation(self) -> np.ndarray:
        return np.array([self.x, self.y, self.z])

    def rotation_matrix(self) -> np.ndarray:
        return _rotation_zyx(self.roll, self.pitch, self.yaw)

    def apply(self, points: np.ndarray) -> np.ndarray:
        arr = np.asarray(points, dtype=float)
        return arr @ self.rotation_matrix().T + self.translation

    def inverse(self) -> "SE3":
        rot_inv = self.rotation_matrix().T
        t = -rot_inv @ self.translation
        roll, pitch, yaw = _euler_from_matrix(rot_inv)
        return SE3(float(t[0]), float(t[1]), float(t[2]), roll, pitch, yaw)

    def compose(self, other: "SE3") -> "SE3":
        rot = self.rotation_matrix() @ other.rotation_matrix()
        t = self.rotation_matrix() @ other.translation + self.translation
        roll, pitch, yaw = _euler_from_matrix(rot)
        return SE3(float(t[0]), float(t[1]), float(t[2]), roll, pitch, yaw)

    def __matmul__(self, other: "SE3") -> "SE3":
        return self.compose(other)

    def to_se2(self) -> SE2:
        return SE2(self.x, self.y, wrap_angle(self.yaw))

    def translation_error_to(self, other: "SE3") -> float:
        return float(np.linalg.norm(self.translation - other.translation))


def _euler_from_matrix(rot: np.ndarray) -> tuple[float, float, float]:
    """Recover ZYX Euler angles (roll, pitch, yaw) from a rotation matrix."""
    pitch = math.asin(max(-1.0, min(1.0, -float(rot[2, 0]))))
    if abs(math.cos(pitch)) > 1e-9:
        roll = math.atan2(float(rot[2, 1]), float(rot[2, 2]))
        yaw = math.atan2(float(rot[1, 0]), float(rot[0, 0]))
    else:
        # Gimbal lock: fold roll into yaw.
        roll = 0.0
        yaw = math.atan2(-float(rot[0, 1]), float(rot[1, 1]))
    return roll, pitch, yaw
