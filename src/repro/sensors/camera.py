"""Camera surrogate: lane, sign, and traffic-light observations.

The surveyed camera systems put a DNN in front of a geometric pipeline; we
model the DNN stage by its operating point (detection probability, false
positives, measurement noise) and emit the *geometric* observations the
downstream pipelines consume:

- :class:`LaneObservation` — lateral offset + relative heading of the
  left/right lane markings (the output of any lane detector, used by
  Maeda [37], Szabó [34], MLVHM [22]);
- :class:`SignDetection` — bearing/range/type of a sign or light in the
  field of view (Dabeer [29], Hirabayashi [33]);
- :class:`LightObservation` — traffic-light colour with a confusion model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.elements import (
    Lane,
    LaneBoundary,
    LightState,
    PointLandmark,
    TrafficLight,
    TrafficSign,
)
from repro.core.hdmap import HDMap
from repro.core.ids import ElementId
from repro.geometry.transform import SE2
from repro.geometry.vec import wrap_angle


@dataclass(frozen=True)
class LaneObservation:
    """Detected lane markings relative to the camera.

    Offsets are signed lateral distances (left positive) from the vehicle
    to each visible marking; ``heading_error`` is the vehicle heading
    relative to the lane direction.
    """

    t: float
    left_offset: Optional[float]
    right_offset: Optional[float]
    heading_error: float

    @property
    def lane_centre_offset(self) -> Optional[float]:
        """Vehicle offset from the lane centre (left positive), if both
        markings were seen."""
        if self.left_offset is None or self.right_offset is None:
            return None
        return -(self.left_offset + self.right_offset) / 2.0


@dataclass(frozen=True)
class SignDetection:
    """One detected sign/light: polar measurement in the body frame."""

    t: float
    bearing: float
    range: float
    sign_type: str
    true_id: Optional[ElementId] = None  # ground-truth link, eval only

    def body_frame_position(self) -> np.ndarray:
        return np.array([self.range * math.cos(self.bearing),
                         self.range * math.sin(self.bearing)])


@dataclass(frozen=True)
class LightObservation:
    t: float
    bearing: float
    range: float
    state: LightState
    true_id: Optional[ElementId] = None


class Camera:
    """Forward camera with a configurable detector operating point."""

    def __init__(self,
                 fov: float = math.radians(100.0),
                 max_range: float = 60.0,
                 detection_prob: float = 0.9,
                 false_positive_rate: float = 0.05,
                 bearing_sigma: float = math.radians(0.6),
                 range_sigma_rel: float = 0.05,
                 lane_offset_sigma: float = 0.08,
                 lane_detection_prob: float = 0.95,
                 light_state_accuracy: float = 0.95) -> None:
        self.fov = fov
        self.max_range = max_range
        self.detection_prob = detection_prob
        self.false_positive_rate = false_positive_rate
        self.bearing_sigma = bearing_sigma
        self.range_sigma_rel = range_sigma_rel
        self.lane_offset_sigma = lane_offset_sigma
        self.lane_detection_prob = lane_detection_prob
        self.light_state_accuracy = light_state_accuracy

    # ------------------------------------------------------------------
    def in_view(self, pose: SE2, position: np.ndarray) -> bool:
        rel = position - np.array([pose.x, pose.y])
        rng_ = float(np.hypot(*rel))
        if not 0.5 < rng_ <= self.max_range:
            return False
        bearing = wrap_angle(math.atan2(rel[1], rel[0]) - pose.theta)
        return abs(bearing) <= self.fov / 2.0

    # ------------------------------------------------------------------
    def observe_lanes(self, hdmap: HDMap, pose: SE2,
                      rng: np.random.Generator,
                      t: float = 0.0) -> Optional[LaneObservation]:
        """Detect the markings of the lane the vehicle occupies."""
        try:
            lane, dist = hdmap.nearest_lane(pose.x, pose.y)
        except Exception:
            return None
        if dist > lane.width:
            return None
        point = np.array([pose.x, pose.y])
        s, lateral = lane.centerline.project(point)
        lane_heading = lane.centerline.heading_at(s)
        heading_error = wrap_angle(pose.theta - lane_heading)

        # Left marking is at +width/2 - lateral to the left of the vehicle.
        left = (lane.width / 2.0) - lateral
        right = -((lane.width / 2.0) + lateral)
        left_obs = (None if rng.uniform() > self.lane_detection_prob
                    else float(left + rng.normal(0.0, self.lane_offset_sigma)))
        right_obs = (None if rng.uniform() > self.lane_detection_prob
                     else float(right + rng.normal(0.0, self.lane_offset_sigma)))
        return LaneObservation(
            t=t,
            left_offset=left_obs,
            right_offset=right_obs,
            heading_error=float(heading_error
                                + rng.normal(0.0, math.radians(0.5))),
        )

    # ------------------------------------------------------------------
    def observe_signs(self, hdmap: HDMap, pose: SE2,
                      rng: np.random.Generator,
                      t: float = 0.0) -> List[SignDetection]:
        detections: List[SignDetection] = []
        for lm in hdmap.landmarks_in_radius(pose.x, pose.y, self.max_range):
            if not isinstance(lm, (TrafficSign, TrafficLight)):
                continue
            if not self.in_view(pose, lm.position):
                continue
            if rng.uniform() > self.detection_prob:
                continue
            rel = lm.position - np.array([pose.x, pose.y])
            true_range = float(np.hypot(*rel))
            bearing = wrap_angle(math.atan2(rel[1], rel[0]) - pose.theta
                                 + rng.normal(0.0, self.bearing_sigma))
            rng_meas = true_range * (1.0 + rng.normal(0.0, self.range_sigma_rel))
            kind = (lm.sign_type.value if isinstance(lm, TrafficSign)
                    else "traffic_light")
            detections.append(SignDetection(
                t=t, bearing=bearing, range=float(rng_meas),
                sign_type=kind, true_id=lm.id,
            ))
        # Clutter: spurious detections uniform in the field of view.
        n_fp = rng.poisson(self.false_positive_rate)
        for _ in range(int(n_fp)):
            detections.append(SignDetection(
                t=t,
                bearing=float(rng.uniform(-self.fov / 2, self.fov / 2)),
                range=float(rng.uniform(5.0, self.max_range)),
                sign_type="speed_limit",
                true_id=None,
            ))
        return detections

    # ------------------------------------------------------------------
    def observe_lights(self, hdmap: HDMap, pose: SE2,
                       rng: np.random.Generator,
                       t: float = 0.0) -> List[LightObservation]:
        out: List[LightObservation] = []
        states = [LightState.RED, LightState.YELLOW, LightState.GREEN]
        for lm in hdmap.landmarks_in_radius(pose.x, pose.y, self.max_range):
            if not isinstance(lm, TrafficLight):
                continue
            if not self.in_view(pose, lm.position):
                continue
            if rng.uniform() > self.detection_prob:
                continue
            rel = lm.position - np.array([pose.x, pose.y])
            true_state = lm.state_at(t)
            if rng.uniform() < self.light_state_accuracy:
                state = true_state
            else:
                others = [s for s in states if s is not true_state]
                state = others[int(rng.integers(0, len(others)))]
            out.append(LightObservation(
                t=t,
                bearing=wrap_angle(math.atan2(rel[1], rel[0]) - pose.theta
                                   + rng.normal(0.0, self.bearing_sigma)),
                range=float(np.hypot(*rel)
                            * (1.0 + rng.normal(0.0, self.range_sigma_rel))),
                state=state,
                true_id=lm.id,
            ))
        return out
