"""E6 — Ilci & Toth [35]: survey-grade GNSS/IMU/LiDAR map creation.

Paper: ~2 cm 3-D mapping accuracy from an RTK + LiDAR rig. Shape:
centimetre-band landmark accuracy — the top of the accuracy ladder, an
order of magnitude under any crowd pipeline.
"""

from conftest import once

from repro.creation import CrowdMapper, SurveyRigMapper
from repro.eval import ResultTable
from repro.world import drive_route, generate_highway


def _experiment(rng):
    hw = generate_highway(rng, length=2000.0, sign_spacing=150.0,
                          pole_spacing=100.0)
    lane = next(iter(hw.lanes()))
    traj = drive_route(hw, lane.id, 1900.0, rng)
    survey = SurveyRigMapper().run(hw, traj, rng)
    crowd_mapper = CrowdMapper()
    crowd = crowd_mapper.fuse(
        [crowd_mapper.collect(hw, drive_route(hw, lane.id, 1900.0, rng),
                              v, rng) for v in range(10)], hw)
    return survey, crowd


def test_e06_survey_rig_mapping(benchmark, rng):
    survey, crowd = once(benchmark, _experiment, rng)

    table = ResultTable("E6", "GNSS/IMU/LiDAR survey mapping [35]")
    table.add("survey-rig error (m)", "~0.02", f"{survey.error.mean:.3f}",
              ok=survey.error.mean < 0.15)
    table.add("vs crowd fleet (m)", "(much worse)", f"{crowd.error.mean:.3f}",
              ok=crowd.error.mean > survey.error.mean * 2)
    table.add("landmarks mapped", ">= 10", str(survey.matched),
              ok=survey.matched >= 10)
    table.print()
    assert table.all_ok()
