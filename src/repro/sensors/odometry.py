"""Wheel odometry: relative motion increments with multiplicative noise.

Odometry is the prediction input of every particle filter in
:mod:`repro.localization`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.geometry.vec import wrap_angle
from repro.world.traffic import Trajectory


@dataclass(frozen=True)
class OdometryDelta:
    """Relative motion from the previous sample, in the body frame."""

    t: float
    ds: float  # distance travelled, metres
    dtheta: float  # heading change, radians


class WheelOdometry:
    """Samples body-frame motion increments along a trajectory.

    ``scale_sigma`` models wheel-radius error (multiplicative on distance);
    ``theta_sigma_per_m`` models heading drift per metre travelled.
    """

    def __init__(self, rate_hz: float = 10.0, scale_sigma: float = 0.01,
                 theta_sigma_per_m: float = 0.002) -> None:
        self.rate_hz = rate_hz
        self.scale_sigma = scale_sigma
        self.theta_sigma_per_m = theta_sigma_per_m

    def measure(self, trajectory: Trajectory,
                rng: np.random.Generator) -> List[OdometryDelta]:
        dt = 1.0 / self.rate_hz
        scale = 1.0 + float(rng.normal(0.0, self.scale_sigma))
        deltas: List[OdometryDelta] = []
        t = trajectory.start_time
        prev = trajectory.pose_at(t)
        while t + dt <= trajectory.end_time:
            cur = trajectory.pose_at(t + dt)
            ds_true = float(np.hypot(cur.x - prev.x, cur.y - prev.y))
            dtheta_true = wrap_angle(cur.theta - prev.theta)
            ds = max(0.0, scale * ds_true
                     + float(rng.normal(0.0, 0.01 * max(ds_true, 0.05))))
            dtheta = dtheta_true + float(
                rng.normal(0.0, self.theta_sigma_per_m * max(ds_true, 0.05))
            )
            deltas.append(OdometryDelta(float(t + dt), ds, dtheta))
            prev = cur
            t += dt
        return deltas
