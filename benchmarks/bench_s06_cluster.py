"""S6 — Cluster: sharded serving scales reads and survives shard loss.

The source paper's ecosystem serves HD maps to fleets at a scale no
single node reaches: map distribution is regional and redundant, and
tile ownership moves as capacity grows. This bench exercises
:mod:`repro.cluster` end-to-end on the synthetic substrate:

- **throughput scaling** — aggregate ``GetTile`` throughput at 2 shards
  must clear 1.5x the single-shard run. The probe pins the router to the
  lockstep discipline (``pipeline=False``: one outstanding call per
  shard, no replicas, no coalescing), so N shards admit exactly N
  concurrent simulated service sleeps and the sweep isolates
  routing-tier scaling even on one core. The concurrent read path's own
  speedups (replica round-robin, pipelined scatter-gather, single-flight
  coalescing) are gated separately in ``bench_s08_readpath.py``;
- **failover** — killing a shard mid-read must be absorbed by a replica
  or a journal restart, never surfaced to the caller;
- **chaos certification** — the ``shard`` fault class (crash, slow
  shard, rebalance mid-stream) certifies the same five degradation
  invariants as the single-node matrix (the constraint scan runs over
  the *merged* served state), and the faults-disabled cluster run is
  byte-identical to a plain single-node service run.
"""

import threading
import time

import numpy as np
from conftest import once

from repro.chaos import ClusterChaosHarness, ClusterWorkload, FaultPlan
from repro.chaos.faults import curated_matrix
from repro.cluster import ClusterRouter
from repro.eval import ResultTable
from repro.serve.api import GetTile
from repro.world import generate_grid_city

_SEED = 7
_REQUESTS = 240
_CLIENTS = 4
_SERVICE_LATENCY_S = 0.02


def _throughput(city, n_shards: int) -> float:
    # lockstep discipline: the per-shard-serialized baseline this bench
    # was written against (the pipelined path is S8's to gate)
    router = ClusterRouter(city, n_shards=n_shards, tile_size=120.0,
                           transport="process", n_workers=2,
                           service_latency_s=_SERVICE_LATENCY_S,
                           pipeline=False)
    try:
        by_shard = {}
        for tile in router.tiles():
            by_shard.setdefault(router.owner_of_tile(tile), []).append(tile)
        shard_tiles = [by_shard[s] for s in sorted(by_shard)]
        share = _REQUESTS // _CLIENTS
        failures = [0] * _CLIENTS

        def worker(me: int) -> None:
            tiles = shard_tiles[me % len(shard_tiles)]
            for k in range(share):
                response = router.request(
                    GetTile(tile=tiles[k % len(tiles)], encoded=True))
                if not response.ok:
                    failures[me] += 1

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(_CLIENTS)]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - t0
        assert not sum(failures)
        return share * _CLIENTS / elapsed
    finally:
        router.close()


def _experiment(rng):
    city = generate_grid_city(np.random.default_rng(_SEED), 3, 2,
                              block_size=150.0)
    tp_1 = _throughput(city, 1)
    tp_2 = _throughput(city, 2)

    workload = ClusterWorkload(seed=_SEED)
    plan = dict(curated_matrix(_SEED))["shard"]
    faulted = ClusterChaosHarness(city, plan, workload=workload)
    report = faulted.run("shard")

    inert = ClusterChaosHarness(city, FaultPlan.none(_SEED),
                                workload=workload)
    inert_report = inert.run("shard-inert")
    cluster_bytes = inert.final_map_bytes()
    plain_bytes = inert.run_plain()
    return tp_1, tp_2, report, inert_report, cluster_bytes, plain_bytes


def test_s06_cluster(benchmark, rng):
    tp_1, tp_2, report, inert_report, cluster_bytes, plain_bytes = \
        once(benchmark, _experiment, rng)

    table = ResultTable("S6", "sharded serving: scaling + shard chaos")
    factor = tp_2 / tp_1 if tp_1 > 0 else 0.0
    table.add("GetTile throughput, 1 shard", "> 0 req/s",
              f"{tp_1:.1f} req/s", ok=tp_1 > 0)
    table.add("GetTile scaling at 2 shards", ">= 1.5x",
              f"{factor:.2f}x", ok=factor >= 1.5)

    fired = sum(report.fired.values())
    table.add("shard faults fired", "> 0", str(fired), ok=fired > 0)
    violations = report.violations()
    total = len(report.invariants)
    table.add("shard: invariants certified", "5/5",
              f"{total - len(violations)}/{total}"
              + (f" ({violations[0].name})" if violations else ""),
              ok=report.certify() and total == 5)
    table.add("shard: crash absorbed by restart", "> 0 restarts",
              str(report.stats["restarts"]),
              ok=report.stats["restarts"] > 0)
    table.add("shard: rebalance mid-stream", "1 rebalance",
              str(report.stats["rebalances"]),
              ok=report.stats["rebalances"] == 1)

    n_inert = len(inert_report.invariants)
    table.add("faults-disabled cluster run certifies", "5/5",
              f"{n_inert - len(inert_report.violations())}/{n_inert}",
              ok=inert_report.certify() and n_inert == 5)
    table.add("faults-disabled parity vs single node", "byte-identical",
              f"{len(cluster_bytes)} B vs {len(plain_bytes)} B "
              + ("(equal)" if cluster_bytes == plain_bytes else "(DIFFER)"),
              ok=cluster_bytes == plain_bytes)
    table.print()
    assert table.all_ok()
