"""S5 — Chaos: graceful degradation of the serve→ingest loop under
injected faults.

The maintenance loop the survey's crowd-sourced pipelines [41][42][44]
feed is only useful if it degrades instead of breaking: the source
paper's fleet-scale ecosystem assumes sensors drop and duplicate
uplinks, workers crash, the database hiccups, and request load spikes.
This bench runs the curated fault matrix (one seeded
:class:`~repro.chaos.faults.FaultPlan` per fault class: sensor, bus,
pipeline, publish, serve, geometry) through
:class:`~repro.chaos.ChaosHarness` and asserts the five degradation
invariants hold under every class — no lost acked observations, no
duplicate published patches, version monotonicity, bounded freshness
lag, zero constraint violations served — plus the harness's own honesty
check: with faults disabled, the chaos run's final map is byte-identical
to a plain pipeline run of the same seed. The geometry class is the
verify gate's trial: every injected malformed patch must land in
quarantine, never in the served map.
"""

from conftest import once

from repro.chaos import ChaosHarness, ChaosWorkload, FaultPlan
from repro.chaos.faults import curated_matrix
from repro.eval import ResultTable
from repro.world import generate_grid_city

#: Pinned world seed shared with S2: fleet routes cover every injected
#: ground-truth change on this road graph.
_SEED = 7


def _experiment(rng):
    import numpy as np

    city = generate_grid_city(np.random.default_rng(_SEED), 3, 2,
                              block_size=150.0)
    workload = ChaosWorkload(seed=_SEED)
    reports = {}
    for fault_class, plan in curated_matrix(_SEED):
        if fault_class == "shard":
            # cluster-only points: nothing fires in the single-node
            # harness; bench_s06_cluster.py certifies this class.
            continue
        harness = ChaosHarness(city, plan, workload=workload)
        reports[fault_class] = harness.run(fault_class)

    parity = ChaosHarness(city, FaultPlan.none(_SEED), workload=workload)
    baseline = parity.run("parity")
    chaos_bytes = parity.final_map_bytes()
    plain_bytes = parity.run_plain()
    return reports, baseline, chaos_bytes, plain_bytes


def test_s05_chaos_matrix(benchmark, rng):
    reports, baseline, chaos_bytes, plain_bytes = \
        once(benchmark, _experiment, rng)

    table = ResultTable("S5", "fault injection + graceful degradation")
    for fault_class, report in reports.items():
        fired = sum(report.fired.values())
        table.add(f"{fault_class}: faults fired", "> 0", str(fired),
                  ok=fired > 0)
        violations = report.violations()
        total = len(report.invariants)
        table.add(f"{fault_class}: invariants certified", "5/5",
                  f"{total - len(violations)}/{total}"
                  + (f" ({violations[0].name})" if violations else ""),
                  ok=report.certify() and total == 5)

    # Degradation must be *observable*: the pipeline-class run crashes
    # workers and dead-letters poison, and both must surface in the
    # run's own stats rather than in harness bookkeeping.
    stats = reports["pipeline"].stats
    table.add("pipeline: worker restarts observed", "> 0",
              str(stats["batches"]["worker_restarts"]),
              ok=stats["batches"]["worker_restarts"] > 0)
    table.add("pipeline: poison dead-lettered", "> 0",
              str(stats["batches"]["dead_letters"]),
              ok=stats["batches"]["dead_letters"] > 0)

    serve = reports["serve"].serve_stats
    table.add("serve: request storm answered", "> 0 responses",
              str(serve["responses"]), ok=serve["responses"] > 0)
    table.add("serve: SWR staleness within bound", "<= 2 versions",
              str(serve["max_staleness_versions"]),
              ok=serve["max_staleness_versions"] <= 2)

    # The verify gate must be *exercised*, not vacuously green: every
    # malformed patch the geometry class injected must be quarantined.
    verify = reports["geometry"].stats["verify"]
    injected = sum(reports["geometry"].fired.values())
    table.add("geometry: malformed patches quarantined", "== injected",
              f"{verify['quarantined']}/{injected}",
              ok=injected > 0 and verify["quarantined"] == injected)

    n_base = len(baseline.invariants)
    table.add("faults-disabled run certifies", "5/5",
              f"{n_base - len(baseline.violations())}/{n_base}",
              ok=baseline.certify() and n_base == 5)
    table.add("faults-disabled parity vs plain pipeline", "byte-identical",
              f"{len(chaos_bytes)} B vs {len(plain_bytes)} B "
              + ("(equal)" if chaos_bytes == plain_bytes else "(DIFFER)"),
              ok=chaos_bytes == plain_bytes)
    table.print()
    assert table.all_ok()
