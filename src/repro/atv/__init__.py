"""Automated transfer vehicles: indoor HD-map maintenance
(Tas et al. [10], [11]).

An ATV drives a smart-factory floor running visual SLAM (surrogate: an
occupancy-grid mapper with drift-corrected odometry) and object detection;
comparing the *virtual* map it builds against the valid HD map exposes new
or missing safety signs, which are batched into map updates.
"""

from repro.atv.occupancy import OccupancyGrid
from repro.atv.vslam import VisualSlam, SlamPose
from repro.atv.sign_update import AtvSignUpdater, SignUpdateReport

__all__ = [
    "AtvSignUpdater",
    "OccupancyGrid",
    "SignUpdateReport",
    "SlamPose",
    "VisualSlam",
]
