"""Turn-by-turn guidance from a lane-level route.

The survey frames HD path planning as "detailed routing instructions for
machines ... analogous to navigation apps" [60]: the machine consumes the
lane sequence, a human supervisor still wants the Google-Maps-style
narration. This module derives it from route geometry: follow / turn left
/ turn right / lane-change steps with distances.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.elements import Lane
from repro.core.hdmap import HDMap
from repro.core.ids import ElementId
from repro.geometry.vec import wrap_angle
from repro.planning.route_graph import RouteResult

TURN_THRESHOLD = np.radians(35.0)


class Maneuver(enum.Enum):
    DEPART = "depart"
    CONTINUE = "continue"
    TURN_LEFT = "turn left"
    TURN_RIGHT = "turn right"
    LANE_CHANGE_LEFT = "change lane left"
    LANE_CHANGE_RIGHT = "change lane right"
    ARRIVE = "arrive"


@dataclass(frozen=True)
class GuidanceStep:
    maneuver: Maneuver
    distance: float  # metres driven during this step
    lane_id: ElementId

    def __str__(self) -> str:
        return f"{self.maneuver.value} ({self.distance:.0f} m)"


def _heading_change(lane: Lane) -> float:
    h0 = lane.centerline.heading_at(0.0)
    h1 = lane.centerline.heading_at(lane.length)
    return wrap_angle(h1 - h0)


def describe_route(hdmap: HDMap, route: RouteResult) -> List[GuidanceStep]:
    """Turn the lane sequence into guidance steps.

    Consecutive CONTINUE segments are merged; turns are detected from the
    connector lane's net heading change, lane changes from the adjacency
    relation between consecutive lanes.
    """
    if not route.lane_ids:
        return []
    steps: List[GuidanceStep] = []
    lanes = [hdmap.get(eid) for eid in route.lane_ids]
    for lane in lanes:
        if not isinstance(lane, Lane):
            raise ValueError(f"route element {lane.id} is not a lane")

    steps.append(GuidanceStep(Maneuver.DEPART, 0.0, lanes[0].id))
    pending_distance = lanes[0].length
    for prev, cur in zip(lanes, lanes[1:]):
        maneuver = Maneuver.CONTINUE
        if hdmap.right_neighbor(prev.id) == cur.id:
            maneuver = Maneuver.LANE_CHANGE_RIGHT
        elif hdmap.left_neighbor(prev.id) == cur.id:
            maneuver = Maneuver.LANE_CHANGE_LEFT
        else:
            dh = _heading_change(cur)
            if dh > TURN_THRESHOLD:
                maneuver = Maneuver.TURN_LEFT
            elif dh < -TURN_THRESHOLD:
                maneuver = Maneuver.TURN_RIGHT
        if maneuver is Maneuver.CONTINUE:
            pending_distance += cur.length
            continue
        steps.append(GuidanceStep(Maneuver.CONTINUE, pending_distance,
                                  prev.id))
        steps.append(GuidanceStep(maneuver, cur.length, cur.id))
        pending_distance = 0.0
    steps.append(GuidanceStep(Maneuver.CONTINUE, pending_distance,
                              lanes[-1].id))
    steps.append(GuidanceStep(Maneuver.ARRIVE, 0.0, lanes[-1].id))
    # Drop zero-length CONTINUEs produced by back-to-back maneuvers.
    return [s for s in steps
            if s.maneuver is not Maneuver.CONTINUE or s.distance > 1.0]


def render_guidance(steps: Sequence[GuidanceStep]) -> str:
    lines = []
    for i, step in enumerate(steps, 1):
        lines.append(f"{i:2d}. {step}")
    return "\n".join(lines)
