"""Synthetic sensors with explicit noise models.

Each sensor observes the ground-truth world (an :class:`~repro.core.HDMap`
plus a true trajectory) and emits measurements corrupted exactly the way
its real counterpart is: GNSS bias random-walk + white noise, IMU bias
drift, LiDAR range/intensity noise and dropouts, camera detection
probability and pixel noise. Sensor *grades* (survey rig / automotive /
smartphone) differ only in noise parameters, which is what lets one
pipeline reproduce the accuracy ladder the survey reports (2 cm survey
rigs [35] -> 20 cm crowd fleets [29] -> metres from phones [34]).
"""

from repro.sensors.base import SensorGrade
from repro.sensors.gnss import GnssFix, GnssSensor
from repro.sensors.imu import ImuReading, ImuSensor
from repro.sensors.odometry import OdometryDelta, WheelOdometry
from repro.sensors.lidar import LidarScan, LidarScanner
from repro.sensors.camera import (
    Camera,
    LaneObservation,
    LightObservation,
    SignDetection,
)
from repro.sensors.probe import ProbeGenerator, ProbeTrace
from repro.sensors.depth import DepthFrame, make_depth_scene

__all__ = [
    "Camera",
    "DepthFrame",
    "GnssFix",
    "GnssSensor",
    "ImuReading",
    "ImuSensor",
    "LaneObservation",
    "LidarScan",
    "LidarScanner",
    "LightObservation",
    "OdometryDelta",
    "ProbeGenerator",
    "ProbeTrace",
    "SensorGrade",
    "SignDetection",
    "WheelOdometry",
    "make_depth_scene",
]
