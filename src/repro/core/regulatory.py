"""Regulatory elements: traffic rules bound to lanes.

This is the *relational* glue of Lanelet2's middle layer [20]: rules are
first-class elements that reference the lanes they govern and the physical
elements (signs, lights, stop lines) that evidence them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.ids import ElementId


class RuleType(enum.Enum):
    SPEED_LIMIT = "speed_limit"
    RIGHT_OF_WAY = "right_of_way"
    TRAFFIC_LIGHT = "traffic_light"
    STOP = "stop"
    NO_OVERTAKING = "no_overtaking"


@dataclass
class RegulatoryElement:
    """A traffic rule: applies to ``lanes``, evidenced by ``evidence``.

    ``value`` carries the rule parameter (speed limit in m/s for
    SPEED_LIMIT; unused otherwise). ``yields_to`` lists lanes with priority
    for RIGHT_OF_WAY rules.
    """

    id: ElementId
    rule_type: RuleType
    lanes: List[ElementId] = field(default_factory=list)
    evidence: List[ElementId] = field(default_factory=list)
    value: Optional[float] = None
    yields_to: List[ElementId] = field(default_factory=list)

    def bounds(self) -> Tuple[float, float, float, float]:
        # Regulatory elements have no geometry of their own; they are
        # indexed through the lanes they attach to.
        raise NotImplementedError("regulatory elements are not spatially indexed")
