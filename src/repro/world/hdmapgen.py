"""HDMapGen-style two-level hierarchical map sampling.

HDMapGen [24] generates HD maps hierarchically: a *global graph* whose
nodes are intersections/lane endpoints and whose edges are road
connections, then a *local graph* refining each edge's curvature. The
original is a learned autoregressive model; this reproduction keeps the
two-level structure but samples both levels from explicit distributions —
sufficient to generate unbounded, varied, valid maps for every experiment
in the suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.hdmap import HDMap
from repro.geometry.polyline import Polyline
from repro.world.builder import RoadSpec, WorldBuilder


@dataclass
class MapTopologySpec:
    """Parameters of the global-graph sampler."""

    n_junctions: int = 12
    extent: float = 1500.0  # side of the square region, metres
    min_junction_gap: float = 220.0
    connectivity: float = 2.4  # target mean degree
    max_lanes: int = 2
    curvature_scale: float = 0.12  # local-graph waviness (0 = straight)


class HDMapGenSampler:
    """Samples road networks as (global topology, local geometry) pairs."""

    def __init__(self, spec: MapTopologySpec = MapTopologySpec()) -> None:
        self.spec = spec

    # -- level 1: global graph -----------------------------------------
    def sample_global_graph(self, rng: np.random.Generator
                            ) -> Tuple[np.ndarray, List[Tuple[int, int]]]:
        """Poisson-disk-ish junction layout + proximity edges.

        Returns junction positions ``(N, 2)`` and an undirected edge list.
        """
        spec = self.spec
        positions: List[np.ndarray] = []
        attempts = 0
        while len(positions) < spec.n_junctions and attempts < spec.n_junctions * 200:
            cand = rng.uniform(0.0, spec.extent, size=2)
            attempts += 1
            if all(np.hypot(*(cand - p)) >= spec.min_junction_gap for p in positions):
                positions.append(cand)
        pos = np.array(positions)
        n = pos.shape[0]
        if n < 2:
            raise ValueError("could not place at least two junctions; "
                             "loosen min_junction_gap or enlarge extent")

        # Connect each junction to its nearest neighbours until the target
        # mean degree is met, skipping edges that would cross existing ones.
        target_edges = int(round(spec.connectivity * n / 2.0))
        d = np.linalg.norm(pos[:, None, :] - pos[None, :, :], axis=2)
        candidate_pairs = sorted(
            ((d[i, j], i, j) for i in range(n) for j in range(i + 1, n)),
            key=lambda t: t[0],
        )
        edges: List[Tuple[int, int]] = []
        for _, i, j in candidate_pairs:
            if len(edges) >= target_edges and _is_connected(n, edges):
                break
            if any(_segments_cross(pos[i], pos[j], pos[a], pos[b])
                   for a, b in edges if len({i, j, a, b}) == 4):
                continue
            edges.append((i, j))
        return pos, edges

    # -- level 2: local geometry ----------------------------------------
    def sample_local_geometry(self, rng: np.random.Generator,
                              a: np.ndarray, b: np.ndarray) -> Polyline:
        """Refine a straight edge into a smooth curved centerline.

        Midpoints are perturbed orthogonally with a sinusoidal envelope so
        endpoints stay fixed and tangents stay reasonable.
        """
        length = float(np.hypot(*(b - a)))
        n = max(4, int(length / 40.0) + 1)
        t = np.linspace(0.0, 1.0, n)
        base = a + t[:, None] * (b - a)
        direction = (b - a) / max(length, 1e-9)
        normal = np.array([-direction[1], direction[0]])
        amp = self.spec.curvature_scale * length * 0.25
        k = int(rng.integers(1, 3))
        phase = float(rng.uniform(0, 2 * math.pi))
        wobble = amp * np.sin(math.pi * t) * np.sin(k * math.pi * t + phase)
        pts = base + wobble[:, None] * normal
        return Polyline(pts)

    # -- full map ---------------------------------------------------------
    def sample_map(self, rng: np.random.Generator, name: str = "hdmapgen"
                   ) -> HDMap:
        pos, edges = self.sample_global_graph(rng)
        builder = WorldBuilder(name)
        setback = 15.0
        for i, j in edges:
            a, b = pos[i], pos[j]
            length = float(np.hypot(*(b - a)))
            if length <= 2 * setback + 20.0:
                continue
            direction = (b - a) / length
            a_in = a + setback * direction
            b_in = b - setback * direction
            ref = self.sample_local_geometry(rng, a_in, b_in)
            lanes = int(rng.integers(1, self.spec.max_lanes + 1))
            builder.add_road(RoadSpec(
                reference=ref,
                forward_lanes=lanes,
                backward_lanes=lanes,
                speed_limit=float(rng.choice([8.33, 13.89, 22.22])),
            ))
        from repro.world.generator import connect_intersections

        connect_intersections(builder.map, [pos[i] for i in range(len(pos))],
                              radius=setback + 8.0)
        return builder.finish()


@dataclass(frozen=True)
class MapStatistics:
    """Structural statistics of a generated map (HDMapGen's evaluation
    compares such distributions between generated and real maps)."""

    n_lanes: int
    n_segments: int
    mean_lane_length: float
    mean_abs_curvature: float
    mean_junction_degree: float

    def plausible(self) -> bool:
        """Crude urban-plausibility screen."""
        return (self.n_lanes > 0
                and 20.0 < self.mean_lane_length < 2000.0
                and self.mean_abs_curvature < 0.1
                and 1.0 <= self.mean_junction_degree <= 6.0)


def map_statistics(hdmap: HDMap) -> MapStatistics:
    """Compute the structural statistics of a (generated) map."""
    lanes = list(hdmap.lanes())
    segments = list(hdmap.segments())
    lengths = [lane.length for lane in lanes]
    curvatures = []
    for lane in lanes:
        for s in np.linspace(0.0, lane.length, 5):
            curvatures.append(abs(lane.centerline.curvature_at(float(s))))
    # Junction degree: segments touching each node.
    degree: dict = {}
    for segment in segments:
        for node in (segment.start_node, segment.end_node):
            if node is not None:
                degree[node] = degree.get(node, 0) + 1
    return MapStatistics(
        n_lanes=len(lanes),
        n_segments=len(segments),
        mean_lane_length=float(np.mean(lengths)) if lengths else 0.0,
        mean_abs_curvature=float(np.mean(curvatures)) if curvatures else 0.0,
        mean_junction_degree=(float(np.mean(list(degree.values())))
                              if degree else 0.0),
    )


def _is_connected(n: int, edges: List[Tuple[int, int]]) -> bool:
    if n == 0:
        return True
    adj: Dict[int, List[int]] = {i: [] for i in range(n)}
    for a, b in edges:
        adj[a].append(b)
        adj[b].append(a)
    seen = {0}
    stack = [0]
    while stack:
        cur = stack.pop()
        for nxt in adj[cur]:
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return len(seen) == n


def _segments_cross(p1: np.ndarray, p2: np.ndarray,
                    p3: np.ndarray, p4: np.ndarray) -> bool:
    """Proper intersection test for two segments (shared endpoints excluded)."""

    def orient(a, b, c) -> float:
        return float((b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0]))

    d1 = orient(p3, p4, p1)
    d2 = orient(p3, p4, p2)
    d3 = orient(p1, p2, p3)
    d4 = orient(p1, p2, p4)
    return ((d1 > 0) != (d2 > 0)) and ((d3 > 0) != (d4 > 0))
