"""S1 — Fleet-scale map serving: throughput scaling, cache locality, and
consistency under concurrent ingest + sync (the survey's closing open
problem of distributing "enormous map data" to fleets [73]).

A synthetic fleet drives spatially coherent routes against the serving
layer while crowd-sourcing patches back into the map database. The shape
assertions: a multi-worker pool must out-serve a single worker under the
same (I/O-modelled) per-request cost, coherent drives must re-hit cached
tiles (>0.8), and no vehicle may ever observe a torn delta or an
out-of-order map version.
"""

from conftest import once

from repro.eval import ResultTable
from repro.serve import FleetSimulator, MapService
from repro.storage import TileStore
from repro.update.distribution import MapDistributionServer
from repro.world import generate_grid_city


def _run_fleet(city, store, n_workers):
    server = MapDistributionServer(city.copy())
    service = MapService(server, store, n_workers=n_workers,
                         service_latency_s=0.002, storage_latency_s=0.002)
    with service:
        fleet = FleetSimulator(service, city, n_vehicles=8,
                               route_length_m=2000.0, sync_every=5,
                               ingest_every=7, seed=11)
        return fleet.run()


def _experiment(rng):
    city = generate_grid_city(rng, 6, 5, block_size=200.0)
    store = TileStore.build(city, tile_size=250.0)
    return {workers: _run_fleet(city, store, workers) for workers in (1, 4)}


def test_s01_fleet_serving(benchmark, rng):
    results = once(benchmark, _experiment, rng)
    solo, pool = results[1], results[4]

    table = ResultTable("S1", "concurrent fleet-scale map serving")
    table.add("4-worker vs 1-worker throughput", ">= 1x",
              f"{pool.throughput_rps / max(solo.throughput_rps, 1e-9):.2f}x "
              f"({solo.throughput_rps:.0f} -> {pool.throughput_rps:.0f} rps)",
              ok=pool.throughput_rps >= solo.throughput_rps)
    table.add("cache hit rate (coherent fleet drive)", "> 0.8",
              f"{pool.cache_hit_rate:.3f}",
              ok=pool.cache_hit_rate > 0.8)
    violations = solo.consistency_violations + pool.consistency_violations
    table.add("clients consistent after final sync",
              f"{solo.n_vehicles + pool.n_vehicles}/"
              f"{solo.n_vehicles + pool.n_vehicles}",
              f"{solo.n_vehicles + pool.n_vehicles - violations}/"
              f"{solo.n_vehicles + pool.n_vehicles}",
              ok=violations == 0)
    regressions = solo.version_regressions + pool.version_regressions
    table.add("out-of-order versions observed", "0", str(regressions),
              ok=regressions == 0)
    table.add("handler errors", "0",
              str(solo.error_total + pool.error_total),
              ok=solo.error_total + pool.error_total == 0)
    patches = sum(r.patches_sent for r in pool.vehicles)
    table.add("patches ingested during 4-worker run", "> 0", str(patches),
              ok=patches > 0)
    query_p95 = pool.latency.get("SpatialQuery", {}).get("p95_s", 0.0)
    table.add("spatial query p95", "reported", f"{1e3 * query_p95:.1f} ms")
    table.print()
    assert table.all_ok()
