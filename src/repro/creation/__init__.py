"""Map creation: every construction pipeline family the survey covers.

Each module reproduces one surveyed system on the synthetic substrate:

- :mod:`lidar_pipeline` — Zhao et al. [32]: 5-step LiDAR road-structure
  mapping (cloud -> 2-D projection -> ground removal -> boundary
  extraction -> probabilistic fusion);
- :mod:`crowdsource` — Dabeer et al. [29]: fleet triangulation of road
  furniture with corrective feedback;
- :mod:`feature_layers` — Kim et al. [31]: crowdsourced enrichment of an
  existing map with a new, decoupled feature layer;
- :mod:`probe_pipeline` — Massow et al. [28]: lane geometry from vehicle
  probe data, GPS-only vs sensor-fused;
- :mod:`aerial` — Mátyus et al. [27]: aerial + ground image fusion for
  fine-grained road extraction (the survey's Figure 1);
- :mod:`smartphone` — Szabó et al. [34]: phone-grade Kalman mapping;
- :mod:`traffic_lights` — Hirabayashi et al. [33]: map-prior traffic-light
  recognition with an inter-frame filter;
- :mod:`ilci_integration` — Ilci & Toth [35]: survey-grade GNSS/IMU/LiDAR
  mapping at centimetre level;
- :mod:`lane_graph` — Zhou et al. [38]: lane-level maps from a road graph
  plus bird's-eye-view lane semantics.
"""

from repro.creation.lidar_pipeline import LidarMappingPipeline, LidarMappingResult
from repro.creation.crowdsource import CrowdMapper, CrowdMappingResult
from repro.creation.feature_layers import FeatureLayerMapper, LayerResult
from repro.creation.probe_pipeline import ProbeMapper, ProbeMapResult
from repro.creation.aerial import AerialGroundMapper, AerialMapResult, render_aerial
from repro.creation.smartphone import SmartphoneMapper, SmartphoneResult
from repro.creation.traffic_lights import TrafficLightRecognizer, RecognitionResult
from repro.creation.ilci_integration import SurveyRigMapper, SurveyResult
from repro.creation.lane_graph import LaneGraphBuilder, LaneGraphResult

__all__ = [
    "AerialGroundMapper",
    "AerialMapResult",
    "CrowdMapper",
    "CrowdMappingResult",
    "FeatureLayerMapper",
    "LaneGraphBuilder",
    "LaneGraphResult",
    "LayerResult",
    "LidarMappingPipeline",
    "LidarMappingResult",
    "ProbeMapper",
    "ProbeMapResult",
    "RecognitionResult",
    "SmartphoneMapper",
    "SmartphoneResult",
    "SurveyResult",
    "SurveyRigMapper",
    "TrafficLightRecognizer",
    "render_aerial",
]
