"""The mandatory verify gate between fuse and publish.

Reference-free constraint verification (ROADMAP item 4): every
:class:`~repro.ingest.publisher.ConfirmedPatch` the pipeline emits is
checked against the :class:`~repro.core.validation.ConstraintEngine`
before it may reach the map database. A patch with any ERROR-severity
:class:`~repro.core.validation.ConstraintViolation` is **quarantined**
— written to a journaled :class:`QuarantineStore` with its full
structured violation report — never silently dropped, and never
published. Clean patches pass with microsecond-scale added latency
(the patch-scoped ``check_patch`` never scans the whole map), so the
gate holds the ≤10% publish-overhead budget `ingest-bench --verify`
enforces in CI.

The gate is enforced twice, deliberately:

- :class:`VerifyStage` (in :mod:`repro.ingest.stages`) filters the
  emit stage's output inside the pipeline, so quarantined patches are
  accounted per batch and the stage gets ``ingest.stage.verify``
  latency for free.
- :class:`~repro.ingest.publisher.PatchPublisher` calls the same gate
  as a backstop on any patch that did not come through the stage
  (``confirmed.verified`` is False) — e.g. chaos harnesses publishing
  malformed patches directly. One gate object, one quarantine store,
  one metric surface, regardless of the entry path.

Observability: ``ingest.verify`` spans around each decision,
``ingest.verify.*`` counters (checked / passed / quarantined /
violations and one ``ingest.verify.constraint.<name>`` counter per
catalog entry), a ``patch_quarantined`` ERROR event per rejection.
docs/MAP_QUALITY.md is the operator-facing catalog and the triage
playbook for everything this module rejects.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Set

from repro.core.hdmap import HDMap
from repro.core.validation import ConstraintEngine, ConstraintReport
from repro.ingest.metrics import IngestMetrics
from repro.ingest.publisher import ConfirmedPatch
from repro.obs.log import get_logger
from repro.obs.trace import TRACER
from repro.storage.journal import RecordJournal

_log = get_logger("ingest.verify")


class QuarantineStore:
    """Journaled store of gate-rejected patches.

    Every rejection becomes one structured record — idempotency key,
    provenance, an op summary, and the full violation report — appended
    to a :class:`~repro.storage.journal.RecordJournal`. With a ``path``
    the journal writes through as JSONL, so a crashed process leaves a
    complete quarantine trail that :meth:`load` replays. Keys are
    deduplicated: at-least-once redelivery of the same rejected patch
    is counted (``duplicates``) but journaled once.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self._journal = RecordJournal(path)
        self._lock = threading.Lock()
        self._keys: Set[str] = set()
        self.duplicates = 0

    @property
    def path(self) -> Optional[str]:
        return self._journal._path

    def add(self, confirmed: ConfirmedPatch,
            report: ConstraintReport) -> bool:
        """Record one rejected patch; returns False on a duplicate key."""
        record = {
            "key": confirmed.key,
            "source": confirmed.patch.source,
            "confidence": float(confirmed.patch.confidence),
            "ops": [type(op).__name__ for op in confirmed.patch.ops],
            "errors": len(report.errors),
            "warnings": len(report.warnings),
            "violations": [v.as_dict() for v in report.violations],
        }
        with self._lock:
            if confirmed.key in self._keys:
                self.duplicates += 1
                return False
            self._keys.add(confirmed.key)
        self._journal.append(record)
        return True

    def records(self) -> List[Dict[str, object]]:
        return self._journal.replay()

    def keys(self) -> Set[str]:
        with self._lock:
            return set(self._keys)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._keys

    def __len__(self) -> int:
        return len(self._journal)

    def violation_counts(self) -> Dict[str, int]:
        """Total journaled violations per constraint name."""
        out: Dict[str, int] = {}
        for record in self._journal.replay():
            for violation in record.get("violations", []):
                name = str(violation.get("constraint", "?"))
                out[name] = out.get(name, 0) + 1
        return out

    def close(self) -> None:
        self._journal.close()

    @staticmethod
    def load(path: str) -> "QuarantineStore":
        """Rebuild a store's in-memory state from its JSONL journal.

        The crash-recovery path: the reloaded store remembers every
        quarantined key, so redeliveries after restart still dedup.
        The underlying journal is memory-only (reopen with a fresh
        ``QuarantineStore(path)`` to keep appending to the same file).
        """
        journal = RecordJournal.load(path)
        store = QuarantineStore()
        store._journal = journal
        store._keys = {str(r["key"]) for r in journal.replay() if "key" in r}
        return store


class VerifyGate:
    """One admit/quarantine decision point shared by stage and publisher.

    ``prior`` is the immutable pre-run snapshot the pipeline already
    keeps for emit-stage diffing — checking against it instead of the
    live database means no lock is taken on the hot path. That is a
    deliberate trade: a patch is judged against the map as of pipeline
    start, which is exactly the consistency the rest of the pipeline
    (associate/fuse) already assumes.
    """

    def __init__(self, prior: HDMap,
                 engine: Optional[ConstraintEngine] = None,
                 metrics: Optional[IngestMetrics] = None,
                 quarantine: Optional[QuarantineStore] = None) -> None:
        self.prior = prior
        self.engine = engine if engine is not None else ConstraintEngine()
        self.metrics = metrics
        self.quarantine = quarantine if quarantine is not None \
            else QuarantineStore()
        # Bound once for the per-publish hot path (attribute chains
        # cost real time at this call rate).
        self._check = self.engine.check_patch
        self._mark_clean = None if metrics is None \
            else metrics.verify_mark_clean

    def admit(self, confirmed: ConfirmedPatch) -> bool:
        """Verify one patch; True admits it, False quarantines it."""
        # The enabled/current prechecks dodge even NOOP_SPAN
        # construction, and the clean-patch outcome resolves right
        # here: this runs once per published patch.
        if TRACER.enabled and TRACER.current() is not None:
            with TRACER.span("ingest.verify") as span:
                ok = self._admit(confirmed)
                span.set("key", confirmed.key)
                span.set("admitted", ok)
                return ok
        report = self._check(self.prior, confirmed.patch)
        confirmed.verified = True
        if not report.violations:
            if self._mark_clean is not None:
                self._mark_clean()
            return True
        return self._flag(confirmed, report)

    def _admit(self, confirmed: ConfirmedPatch) -> bool:
        # Traced-path twin of the inline decision in admit(); keep the
        # two in lockstep.
        report = self._check(self.prior, confirmed.patch)
        confirmed.verified = True
        if not report.violations:
            if self._mark_clean is not None:
                self._mark_clean()
            return True
        return self._flag(confirmed, report)

    def _flag(self, confirmed: ConfirmedPatch,
              report: ConstraintReport) -> bool:
        """The violations path: count, warn or quarantine."""
        metrics = self.metrics
        if metrics is not None:
            metrics.verify_checked.add()
            metrics.verify_violations.add(len(report.violations))
            for name, count in report.counts().items():
                counter = metrics.verify_constraint.get(name)
                if counter is not None:
                    counter.add(count)
        if report.ok():
            if metrics is not None:
                metrics.verify_passed.add()
            _log.warning("patch_verify_warnings", key=confirmed.key,
                         warnings=len(report.warnings),
                         summary=report.summary())
            return True
        self.quarantine.add(confirmed, report)
        if metrics is not None:
            metrics.verify_quarantined.add()
            metrics.quarantine_depth.set(len(self.quarantine))
        _log.error("patch_quarantined", key=confirmed.key,
                   errors=len(report.errors),
                   warnings=len(report.warnings),
                   constraints=",".join(sorted(report.counts())),
                   summary=report.summary())
        return False

    def filter(self, patches: Iterable[ConfirmedPatch]
               ) -> List[ConfirmedPatch]:
        """Admit a batch; quarantined patches are dropped from the
        returned list (but never from the record — see the store)."""
        return [cp for cp in patches if self.admit(cp)]
