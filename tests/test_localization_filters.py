"""Particle filter and EKF substrates."""

import numpy as np
import pytest

from repro.errors import LocalizationError
from repro.geometry.transform import SE2
from repro.localization import ParticleFilter2D, PoseEKF


class TestParticleFilter:
    def test_init_gaussian_statistics(self, rng):
        pf = ParticleFilter2D(2000, rng)
        pf.init_gaussian(SE2(10.0, -5.0, 0.5), sigma_xy=2.0, sigma_theta=0.1)
        assert pf.states[:, 0].mean() == pytest.approx(10.0, abs=0.2)
        assert pf.states[:, 0].std() == pytest.approx(2.0, abs=0.2)

    def test_needs_two_particles(self, rng):
        with pytest.raises(LocalizationError):
            ParticleFilter2D(1, rng)

    def test_predict_moves_mean_forward(self, rng):
        pf = ParticleFilter2D(500, rng)
        pf.init_gaussian(SE2(0, 0, 0), 0.01, 0.001)
        pf.predict(10.0, 0.0, sigma_ds=0.01, sigma_dtheta=0.001)
        est = pf.estimate()
        assert est.x == pytest.approx(10.0, abs=0.1)

    def test_update_concentrates_weight(self, rng):
        pf = ParticleFilter2D(500, rng)
        pf.init_gaussian(SE2(0, 0, 0), 5.0, 0.1)

        def weight(states):
            return np.exp(-0.5 * ((states[:, 0] - 3.0)**2
                                  + states[:, 1]**2))

        pf.update(weight)
        est = pf.estimate()
        assert est.x == pytest.approx(3.0, abs=0.6)

    def test_update_rejects_bad_shape(self, rng):
        pf = ParticleFilter2D(100, rng)
        pf.init_gaussian(SE2(0, 0, 0), 1.0, 0.1)
        with pytest.raises(LocalizationError):
            pf.update(lambda s: np.ones(3))

    def test_degenerate_update_resets_uniform(self, rng):
        pf = ParticleFilter2D(100, rng)
        pf.init_gaussian(SE2(0, 0, 0), 1.0, 0.1)
        pf.update(lambda s: np.zeros(s.shape[0]))
        assert np.allclose(pf.weights, 1.0 / 100)

    def test_resample_resets_weights_preserves_mass_location(self, rng):
        pf = ParticleFilter2D(1000, rng)
        pf.init_gaussian(SE2(0, 0, 0), 5.0, 0.1)
        pf.update(lambda s: np.exp(-0.5 * (s[:, 0] - 4.0)**2))
        before = pf.estimate()
        pf.resample()
        after = pf.estimate()
        assert np.allclose(pf.weights, 1.0 / 1000)
        assert after.x == pytest.approx(before.x, abs=0.5)

    def test_effective_sample_size_bounds(self, rng):
        pf = ParticleFilter2D(100, rng)
        pf.init_gaussian(SE2(0, 0, 0), 1.0, 0.1)
        assert pf.effective_sample_size() == pytest.approx(100.0)
        pf.weights[:] = 0.0
        pf.weights[0] = 1.0
        assert pf.effective_sample_size() == pytest.approx(1.0)

    def test_circular_mean_heading(self, rng):
        pf = ParticleFilter2D(1000, rng)
        pf.init_gaussian(SE2(0, 0, np.pi), 0.01, 0.2)
        est = pf.estimate()
        assert abs(abs(est.theta) - np.pi) < 0.1

    def test_spread_shrinks_after_update(self, rng):
        pf = ParticleFilter2D(1000, rng)
        pf.init_gaussian(SE2(0, 0, 0), 5.0, 0.1)
        s0 = pf.spread()
        pf.update(lambda s: np.exp(-2.0 * (s[:, 0]**2 + s[:, 1]**2)))
        assert pf.spread() < s0


class TestEKF:
    def test_predict_straight(self):
        ekf = PoseEKF(SE2(0, 0, 0), 0.1, 0.01)
        for _ in range(10):
            ekf.predict(1.0, 0.0)
        assert ekf.pose.x == pytest.approx(10.0)
        assert ekf.P[0, 0] > 0.01  # uncertainty grows

    def test_position_update_converges(self, rng):
        ekf = PoseEKF(SE2(5.0, 5.0, 0), sigma_xy=5.0)
        for _ in range(20):
            ekf.update_position(np.array([0.0, 0.0]), 0.5, gate=None)
        assert abs(ekf.pose.x) < 0.2
        assert ekf.position_sigma() < 0.5

    def test_gate_rejects_outlier(self):
        ekf = PoseEKF(SE2(0, 0, 0), sigma_xy=0.5)
        accepted = ekf.update_position(np.array([50.0, 0.0]), 0.5)
        assert not accepted
        assert abs(ekf.pose.x) < 1e-9

    def test_heading_update_wraps(self):
        ekf = PoseEKF(SE2(0, 0, 3.1), sigma_theta=0.5)
        ekf.update_heading(-3.1, 0.05, gate=None)
        assert abs(ekf.pose.theta) > 3.0  # stayed near pi, not near zero

    def test_landmark_update_pulls_position(self):
        ekf = PoseEKF(SE2(1.0, 0.5, 0.0), sigma_xy=2.0)
        landmark = np.array([10.0, 0.0])
        # Truth: vehicle at origin; observed range 10, bearing 0.
        for _ in range(10):
            ekf.update_landmark(landmark, bearing=0.0, range_=10.0,
                                sigma_bearing=0.02, sigma_range=0.1,
                                gate=None)
        assert abs(ekf.pose.y) < 0.4

    def test_lateral_update(self):
        ekf = PoseEKF(SE2(0.0, 1.0, 0.0), sigma_xy=1.0)
        # The lane runs along x at y=0; vehicle measured on the centerline.
        ekf.update_lateral(0.0, lane_heading=0.0,
                           lane_point=np.array([0.0, 0.0]), sigma=0.05,
                           gate=None)
        assert abs(ekf.pose.y) < 0.3
        # x untouched by a purely lateral measurement.
        assert ekf.pose.x == pytest.approx(0.0, abs=1e-6)

    def test_landmark_at_vehicle_raises(self):
        ekf = PoseEKF(SE2(0, 0, 0))
        with pytest.raises(LocalizationError):
            ekf.update_landmark(np.array([0.0, 0.0]), 0.0, 0.0, 0.1, 0.1)
