"""E8 — HDMI-Loc [23]: bitwise raster-map localization.

Paper: 0.3 m median error over an 11 km drive, with the 8-bit raster map
orders of magnitude smaller than the point-cloud map it replaces.
Shape: sub-half-metre median over a multi-km drive; raster storage a
small fraction of the cloud.
"""

import numpy as np
from conftest import once

from repro.eval import ResultTable
from repro.geometry.transform import SE2
from repro.localization.hdmi_loc import HdmiLocalizer, observe_patch, rasterize_map
from repro.sensors import WheelOdometry
from repro.storage import build_pointcloud_map
from repro.world import drive_route, generate_highway


def _experiment(rng):
    hw = generate_highway(rng, length=11000.0, pole_spacing=90.0,
                          sign_spacing=250.0)
    lane = next(iter(hw.lanes()))
    trajectory = drive_route(hw, lane.id, 10800.0, rng, dt=0.2)
    odometry = WheelOdometry(rate_hz=5.0).measure(trajectory, rng)

    raster = rasterize_map(hw, resolution=0.25)
    cloud_bytes = len(build_pointcloud_map(hw, rng,
                                           points_per_m2=10.0).to_bytes())

    localizer = HdmiLocalizer(raster, rng)
    p0 = trajectory.pose_at(trajectory.start_time)
    localizer.initialize(SE2(p0.x + 1.5, p0.y + 1.0, p0.theta))
    errors = []
    for i, delta in enumerate(odometry):
        localizer.predict(delta.ds, delta.dtheta)
        if i % 2 == 0:
            patch = observe_patch(hw, trajectory.pose_at(delta.t), rng)
            localizer.update(patch)
        if i % 50 == 0:
            # Coarse onboard GNSS prior (every 10 s), as in the paper's
            # vehicle: keeps a lost filter from staying lost.
            true_pose = trajectory.pose_at(delta.t)
            fix = np.array([true_pose.x, true_pose.y]) + rng.normal(0, 3.0, 2)
            localizer.filter.update(
                lambda s: np.exp(-0.5 * ((s[:, 0] - fix[0])**2
                                         + (s[:, 1] - fix[1])**2) / 25.0))
        errors.append(localizer.estimate().distance_to(
            trajectory.pose_at(delta.t)))
    return (np.array(errors), raster.occupied_nbytes(), cloud_bytes,
            trajectory)


def test_e08_hdmi_loc(benchmark, rng):
    errors, raster_bytes, cloud_bytes, trajectory = once(
        benchmark, _experiment, rng)
    settled = errors[50:]

    table = ResultTable("E8", "HDMI-Loc bitwise raster localization [23]")
    km = trajectory.path_length() / 1000.0
    table.add("drive length (km)", "11", f"{km:.1f}", ok=km > 9.0)
    median = float(np.median(settled))
    table.add("median error (m)", "0.3", f"{median:.2f}", ok=median < 0.6)
    table.add("p95 error (m)", "(bounded)",
              f"{float(np.percentile(settled, 95)):.2f}",
              ok=float(np.percentile(settled, 95)) < 3.0)
    ratio = cloud_bytes / raster_bytes
    table.add("cloud/raster storage", ">> 1", f"{ratio:.0f}x", ok=ratio > 3)
    table.print()
    assert table.all_ok()
