"""Streaming ingest: bus semantics, failure paths, idempotency, and the
end-to-end fleet -> ingest -> serve maintenance loop."""

import threading

import numpy as np
import pytest

from repro.core import MapPatch, SignType, TrafficSign
from repro.core.changes import ChangeType
from repro.errors import IngestError, StorageError
from repro.ingest import (
    ConfirmedPatch,
    FleetObservationSource,
    IngestPipeline,
    Observation,
    ObservationBus,
    ObservationKind,
    PatchPublisher,
    TransientPublishError,
)
from repro.ingest.metrics import IngestMetrics
from repro.obs import EVENT_LOG
from repro.serve import ChangesSince, MapService
from repro.storage import RecordJournal, TileStore
from repro.update.distribution import ConflictPolicy, MapDistributionServer
from repro.world import generate_grid_city
from repro.world.scenario import ChangeSpec, apply_changes


def _obs(seq=0, vehicle="v0", x=10.0, y=10.0, kind=ObservationKind.DETECTION,
         sigma=0.5, **kw):
    return Observation(kind=kind, position=(x, y), sigma=sigma,
                       vehicle=vehicle, seq=seq, t=float(seq), **kw)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


# ----------------------------------------------------------------------
class TestObservation:
    def test_dedup_key(self):
        assert _obs(seq=7, vehicle="a").dedup_key == ("a", 7)

    def test_validate_accepts_well_formed(self):
        _obs().validate()

    @pytest.mark.parametrize("bad", [
        _obs(x=float("nan")),
        _obs(y=float("inf")),
        _obs(sigma=0.0),
        _obs(sigma=float("nan")),
        _obs(kind="telepathy"),
        _obs(kind=ObservationKind.MISS),  # miss without an element id
    ])
    def test_validate_rejects_poison(self, bad):
        with pytest.raises(IngestError):
            bad.validate()


# ----------------------------------------------------------------------
class TestObservationBus:
    def test_publish_dedups_redelivered_observations(self):
        bus = ObservationBus(n_partitions=1)
        assert bus.publish(_obs(seq=1))
        assert not bus.publish(_obs(seq=1))  # same (vehicle, seq)
        assert bus.publish(_obs(seq=2))
        assert bus.published.value == 2
        assert bus.deduplicated.value == 1

    def test_batches_are_tile_coherent(self):
        bus = ObservationBus(tile_size=100.0, n_partitions=1)
        for seq, x in enumerate([10.0, 510.0, 20.0, 520.0, 30.0]):
            bus.publish(_obs(seq=seq, x=x))
        seen_tiles = []
        while True:
            batch = bus.poll(0, max_batch=16, timeout=0.0)
            if batch is None:
                break
            tiles = {bus.scheme.tile_of(*o.position)
                     for o in batch.observations}
            assert len(tiles) == 1
            seen_tiles.append(batch.tile)
            bus.ack(batch)
        assert len(seen_tiles) == 2
        assert bus.is_drained()

    def test_ack_completes_delivery(self):
        bus = ObservationBus(n_partitions=1)
        bus.publish(_obs())
        batch = bus.poll(0, timeout=0.0)
        assert batch is not None and bus.in_flight() == 1
        assert not bus.is_drained()
        bus.ack(batch)
        assert bus.in_flight() == 0
        assert bus.is_drained()
        assert bus.acked_batches.value == 1

    def test_nack_redelivers_with_attempts(self):
        bus = ObservationBus(n_partitions=1)
        bus.publish(_obs())
        batch = bus.poll(0, timeout=0.0)
        bus.nack(batch, delay_s=0.0)
        again = bus.poll(0, timeout=0.5)
        assert again is not None
        assert again.batch_id == batch.batch_id
        assert again.attempts == 1
        assert bus.redelivered.value == 1

    def test_expired_lease_is_redelivered(self):
        clock = FakeClock()
        bus = ObservationBus(n_partitions=1, lease_timeout_s=5.0,
                             clock=clock)
        bus.publish(_obs())
        batch = bus.poll(0, timeout=0.0)
        assert batch.attempts == 0
        assert bus.redeliver_expired() == 0  # lease still live
        clock.t = 6.0
        assert bus.redeliver_expired() == 1  # worker presumed crashed
        again = bus.poll(0, timeout=0.0)
        assert again.batch_id == batch.batch_id
        assert again.attempts == 1

    def test_backpressure_sheds_oldest_per_partition(self):
        bus = ObservationBus(n_partitions=1, capacity_per_partition=4)
        for seq in range(6):
            assert bus.publish(_obs(seq=seq))
        assert bus.shed_oldest.value == 2
        batch = bus.poll(0, max_batch=16, timeout=0.0)
        # The two oldest observations were shed; the freshest four remain.
        assert sorted(o.seq for o in batch.observations) == [2, 3, 4, 5]

    def test_closed_empty_bus_returns_none(self):
        bus = ObservationBus(n_partitions=1)
        bus.close()
        assert bus.poll(0, timeout=5.0) is None
        with pytest.raises(IngestError):
            bus.publish(_obs())


# ----------------------------------------------------------------------
def _sign_server():
    from repro.core import HDMap, Lane
    from repro.geometry.polyline import straight

    hdmap = HDMap("ingest-test")
    hdmap.create(Lane, centerline=straight([0, 0], [100, 0]))
    hdmap.create(TrafficSign, position=np.array([50.0, 5.0]),
                 sign_type=SignType.STOP)
    return MapDistributionServer(hdmap)


def _add_patch(server, position, confidence=0.9):
    sign = TrafficSign(id=server.new_element_id("sign"),
                       position=np.asarray(position, dtype=float),
                       sign_type=SignType.DIRECTION)
    return MapPatch(source="test", confidence=confidence).add(sign)


class TestPatchPublisher:
    def test_duplicate_key_suppressed(self):
        server = _sign_server()
        publisher = PatchPublisher(server)
        first = publisher.publish(
            ConfirmedPatch("k1", _add_patch(server, [10.0, 5.0])))
        assert first.published and not first.duplicate
        redelivered = publisher.publish(
            ConfirmedPatch("k1", _add_patch(server, [10.0, 5.0])))
        assert redelivered.duplicate and not redelivered.published
        assert server.version == 1
        assert publisher.published_count() == 1

    def test_conflated_add_suppressed_across_keys(self):
        server = _sign_server()
        publisher = PatchPublisher(server, add_conflation_radius=4.0)
        assert publisher.publish(
            ConfirmedPatch("k1", _add_patch(server, [10.0, 5.0]))).published
        # A different tile reported the same physical sign 2 m away.
        near = publisher.publish(
            ConfirmedPatch("k2", _add_patch(server, [12.0, 5.0])))
        assert near.duplicate
        far = publisher.publish(
            ConfirmedPatch("k3", _add_patch(server, [30.0, 5.0])))
        assert far.published
        assert server.version == 2

    def test_rejected_patch_key_not_burned(self):
        server = _sign_server()
        prior_sign = next(iter(server.db.map.signs()))
        assert server.ingest(MapPatch(source="survey", confidence=0.9)
                             .remove(prior_sign.id)).accepted
        publisher = PatchPublisher(server, policy=ConflictPolicy.REJECT)
        conflicted = ConfirmedPatch("kr", MapPatch(
            source="ingest", confidence=0.9).add(
                TrafficSign(id=prior_sign.id, position=prior_sign.position,
                            sign_type=SignType.STOP)))
        result = publisher.publish(conflicted)
        assert not result.published and not result.duplicate
        # The key was not recorded, so the patch may be retried later.
        assert not publisher.seen("kr")

    def test_retry_exhaustion_emits_events_and_keeps_key_retriable(self):
        server = _sign_server()

        class FlakyServer:
            """Delegating wrapper whose ingest fails N times, then heals."""

            def __init__(self, inner, failures):
                self._inner = inner
                self.failures = failures

            def __getattr__(self, name):
                return getattr(self._inner, name)

            def ingest(self, patch, policy=None):
                if self.failures > 0:
                    self.failures -= 1
                    raise TransientPublishError("replica fail-over")
                return self._inner.ingest(patch, policy=policy)

        flaky = FlakyServer(server, failures=10)
        metrics = IngestMetrics()
        publisher = PatchPublisher(flaky, metrics=metrics,
                                   max_publish_attempts=3,
                                   publish_backoff_s=1e-4)
        EVENT_LOG.clear()
        result = publisher.publish(
            ConfirmedPatch("kx", _add_patch(server, [10.0, 5.0])))
        assert not result.published and not result.duplicate
        assert result.version is None

        retries = EVENT_LOG.events(event="publish_retry")
        assert [e["attempt"] for e in retries] == [1, 2]
        assert all(e["level"] == "warning" and e["key"] == "kx"
                   for e in retries)
        (failed,) = EVENT_LOG.events(event="publish_failed")
        assert failed["level"] == "error"
        assert failed["attempts"] == 3
        assert metrics.publish_retries.value == 2
        assert metrics.publish_failures.value == 1

        # The key was not burned by the failure: once the database heals
        # (one transient left: a retry succeeds), the change publishes.
        flaky.failures = 1
        healed = publisher.publish(
            ConfirmedPatch("kx", _add_patch(server, [10.0, 5.0])))
        assert healed.published
        assert metrics.publish_retries.value == 3
        assert server.version == 1

    def test_concurrent_redelivery_publishes_once(self):
        server = _sign_server()
        publisher = PatchPublisher(server)
        patches = [ConfirmedPatch("same-key",
                                  _add_patch(server, [10.0 + i, 5.0]))
                   for i in range(8)]
        barrier = threading.Barrier(len(patches))
        results = [None] * len(patches)

        def run(i):
            barrier.wait()
            results[i] = publisher.publish(patches[i])

        threads = [threading.Thread(target=run, args=(i,))
                   for i in range(len(patches))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(1 for r in results if r.published) == 1
        assert sum(1 for r in results if r.duplicate) == 7
        assert server.version == 1


# ----------------------------------------------------------------------
class TestRecordJournal:
    def test_append_and_replay(self):
        journal = RecordJournal()
        assert journal.append({"a": 1}) == 0
        assert journal.append({"b": 2}) == 1
        assert len(journal) == 2
        assert journal.replay() == [{"a": 1}, {"b": 2}]

    def test_rejects_non_dict(self):
        with pytest.raises(StorageError):
            RecordJournal().append(["not", "a", "dict"])

    def test_jsonl_write_through_and_load(self, tmp_path):
        path = tmp_path / "dlq.jsonl"
        journal = RecordJournal(path=path)
        journal.append({"batch": 1, "reason": "poison"})
        journal.append({"batch": 2, "reason": "poison"})
        journal.close()
        assert RecordJournal.load(path).replay() == [
            {"batch": 1, "reason": "poison"},
            {"batch": 2, "reason": "poison"},
        ]


# ----------------------------------------------------------------------
class TestFailurePaths:
    def test_poison_observation_dead_letters_without_wedging(self):
        server = _sign_server()
        pipe = IngestPipeline(server, n_workers=1, n_partitions=1,
                              max_attempts=3, backoff_base_s=0.001)
        with pipe:
            pipe.submit(_obs(seq=0, sigma=-1.0))  # poison
            # Healthy observation in a *different tile* of the same
            # partition: it must keep flowing around the poison batch.
            pipe.submit(_obs(seq=1, x=300.0))
            assert pipe.drain(10.0)
        dead = pipe.dead_letters.batches()
        assert len(dead) == 1
        batch, reason = dead[0]
        assert "IngestError" in reason
        # max_attempts deliveries happened: attempts counts redeliveries.
        assert batch.attempts == 2
        stats = pipe.stats()
        assert stats["batches"]["dead_letters"] == 1
        assert stats["batches"]["retries"] == 2
        # The partition kept flowing: the healthy observation made it.
        assert stats["observations"]["processed"] >= 1
        record = pipe.dead_letters.journal.replay()[0]
        assert record["reason"] == reason
        assert record["observations"] == 1

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning")
    def test_crashed_worker_restarts_and_batch_redelivered(self):
        server = _sign_server()
        crashed = threading.Event()

        def crash_once(batch):
            if not crashed.is_set():
                crashed.set()
                raise RuntimeError("simulated worker crash")

        pipe = IngestPipeline(server, n_workers=1, n_partitions=1,
                              lease_timeout_s=0.1, supervisor_tick_s=0.01,
                              delivery_hook=crash_once)
        with pipe:
            for seq in range(8):
                pipe.submit(_obs(seq=seq, x=10.0 + seq))
            assert pipe.drain(10.0)
        assert crashed.is_set()
        stats = pipe.stats()
        assert stats["batches"]["worker_restarts"] >= 1
        assert stats["batches"]["redelivered"] >= 1
        # Nothing was lost: every published observation was processed
        # (at-least-once, so processed may exceed published).
        assert (stats["observations"]["processed"]
                >= stats["observations"]["published"])
        assert stats["batches"]["acked"] >= 1
        assert pipe.bus.is_drained()

    def test_backpressure_surfaces_in_stats(self):
        server = _sign_server()
        pipe = IngestPipeline(server, n_workers=1, n_partitions=1,
                              capacity_per_partition=4)
        # Not started: the bus fills and sheds without consumers.
        for seq in range(10):
            pipe.submit(_obs(seq=seq))
        stats = pipe.stats()
        assert stats["observations"]["shed"] == 6
        assert stats["queue_depth_total"] == 4


# ----------------------------------------------------------------------
class TestEndToEndMaintenanceLoop:
    @pytest.fixture(scope="class")
    def loop(self):
        """Inject ground-truth changes, stream a synthetic fleet through
        the ingest pipeline, and serve the result — one maintenance loop."""
        seed = 7
        rng = np.random.default_rng(seed)
        city = generate_grid_city(rng, blocks_x=3, blocks_y=2,
                                  block_size=150.0)
        scenario = apply_changes(
            city, ChangeSpec(remove_signs=2, add_signs=2), rng)
        server = MapDistributionServer(scenario.prior.copy())
        store = TileStore.build(scenario.prior, tile_size=250.0)
        service = MapService(server, store, n_workers=2)
        pipe = IngestPipeline(server, tile_size=250.0, n_workers=2,
                              service_metrics=service.metrics)
        source = FleetObservationSource(
            scenario, n_vehicles=4, route_length_m=1200.0, step_s=0.5,
            routes_per_vehicle=3, duplicate_rate=0.15, seed=seed)
        with service, pipe:
            report = source.run(pipe.submit)
            assert pipe.drain(30.0)
            delta = service.request(ChangesSince(0))
        return scenario, service, pipe, report, delta

    def test_every_injected_change_is_served(self, loop):
        scenario, _, _, _, delta = loop
        assert delta.ok
        changes = delta.payload.changes
        removed = {c.element_id for c in changes
                   if c.change_type is ChangeType.REMOVED}
        added = [c.position for c in changes
                 if c.change_type is ChangeType.ADDED]
        for true_change in scenario.true_changes:
            if true_change.change_type is ChangeType.REMOVED:
                assert true_change.element_id in removed
            else:
                tx, ty = true_change.position
                assert any(np.hypot(tx - ax, ty - ay) <= 6.0
                           for ax, ay in added)

    def test_no_duplicate_patches_despite_at_least_once(self, loop):
        scenario, _, pipe, report, delta = loop
        assert report.deduplicated > 0  # the flaky uplink really re-sent
        changes = delta.payload.changes
        # Each physical change produced exactly one served change record.
        removed = [c.element_id for c in changes
                   if c.change_type is ChangeType.REMOVED]
        assert len(removed) == len(set(removed))
        added = [c.position for c in changes
                 if c.change_type is ChangeType.ADDED]
        for i, (ax, ay) in enumerate(added):
            for bx, by in added[i + 1:]:
                assert np.hypot(ax - bx, ay - by) > 4.0
        stats = pipe.stats()
        assert stats["batches"]["dead_letters"] == 0

    def test_freshness_and_stage_latency_observable(self, loop):
        _, service, pipe, _, _ = loop
        stats = pipe.stats()
        assert stats["freshness"]["count"] >= 1
        assert stats["freshness"]["max_s"] >= stats["freshness"]["p95_s"] > 0
        for stage in ("validate", "associate", "fuse", "classify", "emit"):
            snap = stats["stage_latency"][stage]
            assert snap["count"] > 0
            assert snap["min_s"] <= snap["p50_s"] <= snap["max_s"]
        # The serving layer exports the same freshness lag to the fleet.
        served = service.metrics.as_dict()
        assert served["freshness"]["count"] == stats["freshness"]["count"]

    def test_bounded_versions(self, loop):
        scenario, _, pipe, _, delta = loop
        # Every change landed within a bounded number of map versions:
        # with idempotent publication the version count equals the number
        # of accepted patches, which is bounded by true changes here.
        assert delta.payload.version == len(delta.payload.changes)
        assert delta.payload.version <= 2 * len(scenario.true_changes)
