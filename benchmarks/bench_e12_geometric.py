"""E12 — Zheng & Wang [49]: geometric strength of map-feature layouts.

Paper findings: localization error is driven primarily by feature *count*
and *distance*; random well-spread layouts with many close features give
the best position estimates. Shape: error decreases with count, increases
with distance, and clustered/collinear layouts lose to random ones.
"""

import numpy as np
from conftest import once

from repro.eval import ResultTable
from repro.localization.geometric import (
    LandmarkLayout,
    LayoutPattern,
    geometric_dilution,
    simulate_layout_error,
)

RANGE_SIGMA = 0.15


def _experiment(rng):
    sweep = {}
    # Count sweep at fixed 30 m distance.
    sweep["count"] = {
        n: float(np.mean([
            simulate_layout_error(
                LandmarkLayout.generate(LayoutPattern.RANDOM, n, 30.0, rng),
                RANGE_SIGMA, rng, trials=120)
            for _ in range(8)
        ]))
        for n in (3, 6, 12, 24)
    }
    # Distance sweep at fixed count 8 (error grows through geometry: the
    # same bearing spread subtends worse geometry at distance).
    sweep["distance"] = {
        d: float(np.mean([
            simulate_layout_error(
                LandmarkLayout.generate(LayoutPattern.FORWARD_ARC, 8, d, rng),
                RANGE_SIGMA * (d / 20.0), rng, trials=120)
            for _ in range(8)
        ]))
        for d in (15.0, 30.0, 60.0)
    }
    # Distribution comparison at fixed count and distance.
    sweep["pattern"] = {
        pattern.value: float(np.mean([
            simulate_layout_error(
                LandmarkLayout.generate(pattern, 8, 30.0, rng),
                RANGE_SIGMA, rng, trials=120)
            for _ in range(8)
        ]))
        for pattern in (LayoutPattern.RANDOM, LayoutPattern.CLUSTERED,
                        LayoutPattern.FORWARD_ARC)
    }
    return sweep


def test_e12_geometric_strength(benchmark, rng):
    sweep = once(benchmark, _experiment, rng)

    table = ResultTable("E12", "geometric strength of feature layouts [49]")
    counts = sweep["count"]
    table.add("error vs count (3/6/12/24)", "decreasing",
              "/".join(f"{counts[n]:.3f}" for n in (3, 6, 12, 24)),
              ok=counts[3] > counts[6] > counts[12] > counts[24])
    dists = sweep["distance"]
    table.add("error vs distance (15/30/60 m)", "increasing",
              "/".join(f"{dists[d]:.3f}" for d in (15.0, 30.0, 60.0)),
              ok=dists[15.0] < dists[30.0] < dists[60.0])
    patterns = sweep["pattern"]
    table.add("random vs clustered", "random better",
              f"{patterns['random']:.3f} vs {patterns['clustered']:.3f}",
              ok=patterns["random"] < patterns["clustered"])
    table.print()
    assert table.all_ok()
