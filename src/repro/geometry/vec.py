"""Small 2-D vector helpers shared across the library.

These are deliberately thin wrappers over numpy: map elements store plain
``(N, 2)`` arrays, and the helpers here encode the library-wide conventions
(angles in radians, CCW, zero along +x).
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

ArrayLike = Union[np.ndarray, list, tuple]

TWO_PI = 2.0 * math.pi


def as_point(p: ArrayLike) -> np.ndarray:
    """Coerce ``p`` to a float ``(2,)`` array."""
    arr = np.asarray(p, dtype=float)
    if arr.shape != (2,):
        raise ValueError(f"expected a 2-D point, got shape {arr.shape}")
    return arr


def norm(v: ArrayLike) -> float:
    """Euclidean length of a 2-D vector."""
    arr = np.asarray(v, dtype=float)
    return float(np.hypot(arr[..., 0], arr[..., 1]))


def unit(v: ArrayLike) -> np.ndarray:
    """Unit vector in the direction of ``v``.

    Raises ``ValueError`` for the zero vector, which has no direction.
    """
    arr = np.asarray(v, dtype=float)
    length = float(np.hypot(arr[0], arr[1]))
    if length == 0.0:
        raise ValueError("cannot normalize the zero vector")
    return arr / length


def perp_left(v: ArrayLike) -> np.ndarray:
    """Rotate ``v`` by +90 degrees (left-hand normal of a direction)."""
    arr = np.asarray(v, dtype=float)
    return np.array([-arr[1], arr[0]])


def rotate2d(points: ArrayLike, angle: float) -> np.ndarray:
    """Rotate point(s) CCW by ``angle`` radians about the origin.

    Accepts a single ``(2,)`` point or an ``(N, 2)`` array and returns the
    same shape.
    """
    arr = np.asarray(points, dtype=float)
    c, s = math.cos(angle), math.sin(angle)
    rot = np.array([[c, -s], [s, c]])
    return arr @ rot.T


def heading_to_unit(heading: float) -> np.ndarray:
    """Unit direction vector for a heading angle."""
    return np.array([math.cos(heading), math.sin(heading)])


def heading_of(v: ArrayLike) -> float:
    """Heading angle (radians, CCW from +x) of a direction vector."""
    arr = np.asarray(v, dtype=float)
    return float(math.atan2(arr[1], arr[0]))


def wrap_angle(angle: float) -> float:
    """Wrap an angle into ``(-pi, pi]``."""
    wrapped = math.fmod(angle + math.pi, TWO_PI)
    if wrapped <= 0.0:
        wrapped += TWO_PI
    return wrapped - math.pi


def angle_diff(a: float, b: float) -> float:
    """Signed smallest difference ``a - b`` wrapped into ``(-pi, pi]``."""
    return wrap_angle(a - b)


def segment_point_distance(
    a: ArrayLike, b: ArrayLike, p: ArrayLike
) -> tuple[float, float]:
    """Distance from point ``p`` to segment ``ab``.

    Returns ``(distance, t)`` where ``t`` in [0, 1] is the parameter of the
    closest point ``a + t * (b - a)``.
    """
    a_arr = np.asarray(a, dtype=float)
    b_arr = np.asarray(b, dtype=float)
    p_arr = np.asarray(p, dtype=float)
    d = b_arr - a_arr
    denom = float(d @ d)
    if denom == 0.0:
        return float(np.hypot(*(p_arr - a_arr))), 0.0
    t = float(np.clip((p_arr - a_arr) @ d / denom, 0.0, 1.0))
    closest = a_arr + t * d
    return float(np.hypot(*(p_arr - closest))), t


def polygon_area(points: ArrayLike) -> float:
    """Signed area of a simple polygon (positive for CCW winding)."""
    arr = np.asarray(points, dtype=float)
    if arr.ndim != 2 or arr.shape[0] < 3 or arr.shape[1] != 2:
        raise ValueError("polygon needs an (N>=3, 2) array of vertices")
    x, y = arr[:, 0], arr[:, 1]
    return 0.5 * float(np.dot(x, np.roll(y, -1)) - np.dot(y, np.roll(x, -1)))


def point_in_polygon(point: ArrayLike, polygon: ArrayLike) -> bool:
    """Even-odd rule point-in-polygon test (boundary counts as inside)."""
    p = as_point(point)
    poly = np.asarray(polygon, dtype=float)
    n = poly.shape[0]
    inside = False
    j = n - 1
    for i in range(n):
        xi, yi = poly[i]
        xj, yj = poly[j]
        dist, _ = segment_point_distance(poly[j], poly[i], p)
        if dist < 1e-12:
            return True
        if (yi > p[1]) != (yj > p[1]):
            x_cross = (xj - xi) * (p[1] - yi) / (yj - yi) + xi
            if p[0] < x_cross:
                inside = not inside
        j = i
    return inside
