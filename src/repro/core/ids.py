"""Typed element identifiers.

Every map element carries an :class:`ElementId` — a (kind, number) pair —
so references between layers (lane -> boundary, regulatory -> lane) are
self-describing and wrong-kind references are caught at validation time.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator


@dataclass(frozen=True, order=True)
class ElementId:
    """Identifier of one map element: a kind tag plus a number."""

    kind: str
    num: int

    def __str__(self) -> str:
        return f"{self.kind}:{self.num}"

    @staticmethod
    def parse(text: str) -> "ElementId":
        kind, sep, num = text.partition(":")
        if not sep or not kind:
            raise ValueError(f"malformed element id {text!r}")
        return ElementId(kind, int(num))


class IdAllocator:
    """Monotonic per-kind id allocator for a map instance."""

    def __init__(self) -> None:
        self._counters: Dict[str, Iterator[int]] = {}
        self._highest: Dict[str, int] = {}

    def allocate(self, kind: str) -> ElementId:
        if kind not in self._counters:
            start = self._highest.get(kind, 0) + 1
            self._counters[kind] = itertools.count(start)
        eid = ElementId(kind, next(self._counters[kind]))
        self._highest[kind] = eid.num
        return eid

    def reserve(self, eid: ElementId) -> None:
        """Mark an externally supplied id as used so it is never re-issued."""
        if eid.num > self._highest.get(eid.kind, 0):
            self._highest[eid.kind] = eid.num
            # Restart the counter past the reserved id.
            self._counters[eid.kind] = itertools.count(eid.num + 1)
