"""Lane-coordinate path-set planning with inertia-like selection
(Jian et al. [52]).

Step 1 (*path set generation*): candidate paths are quintic lateral
profiles in the Frenet frame of the HD-map lane, ending at a fan of
terminal lateral offsets — vehicle kinematics are respected by bounding
the implied curvature. Step 2 (*path selection*): each candidate is scored
on obstacle clearance, lateral deviation, smoothness, and an *inertia*
term that prefers staying close to the previously selected path, which is
what keeps the vehicle from flip-flopping between alternatives frame to
frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import PlanningError
from repro.geometry.frenet import FrenetFrame
from repro.geometry.polyline import Polyline


@dataclass
class FrenetPath:
    """A candidate path: lateral profile over stations."""

    stations: np.ndarray
    laterals: np.ndarray
    terminal_offset: float
    cost: float = 0.0

    def cartesian(self, frame: FrenetFrame) -> np.ndarray:
        return frame.path_to_cartesian(self.stations, self.laterals)


@dataclass
class PlannerConfig:
    horizon: float = 60.0  # planning distance, metres
    n_candidates: int = 11
    max_offset: float = 3.0  # fan half-width, metres
    station_step: float = 2.0
    max_curvature: float = 0.2  # 1/m kinematic bound
    w_obstacle: float = 10.0
    w_deviation: float = 0.6
    w_smoothness: float = 2.0
    w_inertia: float = 1.0
    clearance: float = 1.2  # required obstacle clearance, metres


def quintic_lateral(d0: float, d1: float, stations: np.ndarray,
                    horizon: float, settle_fraction: float = 0.55
                    ) -> np.ndarray:
    """Quintic profile from (d0, 0 slope) to (d1, 0 slope).

    The transition completes at ``settle_fraction`` of the horizon and
    holds — a lane-change manoeuvre finishes well before the planning
    horizon so the candidate actually clears mid-horizon obstacles.
    """
    tau = np.clip(stations / (horizon * settle_fraction), 0.0, 1.0)
    blend = 10 * tau**3 - 15 * tau**4 + 6 * tau**5
    return d0 + (d1 - d0) * blend


class PathSetPlanner:
    """Generate-then-select planner in the lane Frenet frame."""

    def __init__(self, reference: Polyline,
                 config: PlannerConfig = PlannerConfig()) -> None:
        self.frame = FrenetFrame(reference)
        self.config = config
        self._last_choice: Optional[float] = None

    # ------------------------------------------------------------------
    def generate(self, s0: float, d0: float) -> List[FrenetPath]:
        cfg = self.config
        s1 = min(s0 + cfg.horizon, self.frame.length)
        if s1 - s0 < cfg.station_step * 2:
            raise PlanningError("reference too short for the horizon")
        stations = np.arange(s0, s1, cfg.station_step)
        offsets = np.linspace(-cfg.max_offset, cfg.max_offset,
                              cfg.n_candidates)
        paths = []
        for d1 in offsets:
            laterals = quintic_lateral(d0, float(d1), stations - s0, s1 - s0)
            if self._max_curvature(stations, laterals) > cfg.max_curvature:
                continue
            paths.append(FrenetPath(stations=stations, laterals=laterals,
                                    terminal_offset=float(d1)))
        if not paths:
            raise PlanningError("no kinematically feasible candidate")
        return paths

    def _max_curvature(self, stations: np.ndarray,
                       laterals: np.ndarray) -> float:
        # Path curvature ~ |d''| for small offsets plus reference curvature.
        dd = np.gradient(np.gradient(laterals, stations), stations)
        ref_k = max(abs(self.frame.curvature_at(float(s)))
                    for s in stations[:: max(1, len(stations) // 8)])
        return float(np.abs(dd).max()) + ref_k

    # ------------------------------------------------------------------
    def select(self, paths: Sequence[FrenetPath],
               obstacles: Sequence[Tuple[float, float]] = ()) -> FrenetPath:
        """Score candidates; obstacles are (station, lateral) points."""
        cfg = self.config
        best: Optional[FrenetPath] = None
        for path in paths:
            clearance_cost = 0.0
            blocked = False
            for s_ob, d_ob in obstacles:
                mask = np.abs(path.stations - s_ob) <= 6.0
                if not mask.any():
                    continue
                gap = float(np.min(np.abs(path.laterals[mask] - d_ob)))
                if gap < cfg.clearance:
                    blocked = True
                    break
                clearance_cost += 1.0 / max(gap - cfg.clearance + 0.2, 0.2)
            if blocked:
                continue
            deviation = float(np.mean(path.laterals**2))
            smoothness = float(np.mean(np.gradient(path.laterals,
                                                   path.stations)**2))
            inertia = 0.0
            if self._last_choice is not None:
                inertia = (path.terminal_offset - self._last_choice)**2
            path.cost = (cfg.w_obstacle * clearance_cost
                         + cfg.w_deviation * deviation
                         + cfg.w_smoothness * smoothness
                         + cfg.w_inertia * inertia)
            if best is None or path.cost < best.cost:
                best = path
        if best is None:
            raise PlanningError("every candidate is blocked")
        self._last_choice = best.terminal_offset
        return best

    def plan(self, s0: float, d0: float,
             obstacles: Sequence[Tuple[float, float]] = ()) -> FrenetPath:
        return self.select(self.generate(s0, d0), obstacles)

    def reset_inertia(self) -> None:
        self._last_choice = None
