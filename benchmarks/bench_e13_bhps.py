"""E13 — Yang et al. [62]: bidirectional hybrid path search (BHPS).

Shape: both BHPS pairings return (near-)optimal lane-level routes while
expanding fewer nodes than unidirectional Dijkstra, with the gap growing
on larger maps.
"""

import numpy as np
from conftest import once

from repro.eval import ResultTable
from repro.planning import LaneRouter, bhps_route
from repro.world import generate_grid_city


def _experiment(rng):
    results = {}
    for blocks in (3, 6):
        city = generate_grid_city(rng, blocks, blocks, block_size=180.0,
                                  with_lights=False)
        router = LaneRouter(city)
        lanes = [l for l in city.lanes() if l.length > 60]
        pairs = [(lanes[0].id, lanes[-1].id),
                 (lanes[len(lanes) // 3].id, lanes[-2].id),
                 (lanes[1].id, lanes[2 * len(lanes) // 3].id)]
        stats = {"dijkstra": [], "astar": [], "bhps_fwd": [], "bhps_rev": [],
                 "cost_ratio": []}
        for start, goal in pairs:
            dij = router.route(start, goal)
            ast = router.route_astar(start, goal)
            fwd = bhps_route(router, start, goal, forward_bfs=True)
            rev = bhps_route(router, start, goal, forward_bfs=False)
            stats["dijkstra"].append(dij.stats.expansions)
            stats["astar"].append(ast.stats.expansions)
            stats["bhps_fwd"].append(fwd.stats.expansions)
            stats["bhps_rev"].append(rev.stats.expansions)
            stats["cost_ratio"].append(
                min(fwd.cost, rev.cost) / max(dij.cost, 1e-9))
        results[blocks] = {k: float(np.mean(v)) for k, v in stats.items()}
    return results


def test_e13_bhps(benchmark, rng):
    results = once(benchmark, _experiment, rng)

    table = ResultTable("E13", "bidirectional hybrid path search [62]")
    small, large = results[3], results[6]
    table.add("expansions (6x6): Dijkstra", "(baseline)",
              f"{large['dijkstra']:.0f}", ok=None)
    table.add("expansions (6x6): BHPS fwd-BFS", "(fewer)",
              f"{large['bhps_fwd']:.0f}",
              ok=large["bhps_fwd"] < large["dijkstra"])
    table.add("expansions (6x6): BHPS fwd-Dijkstra", "(fewer)",
              f"{large['bhps_rev']:.0f}",
              ok=large["bhps_rev"] < large["dijkstra"])
    table.add("route cost vs optimal", "~1.0",
              f"{large['cost_ratio']:.3f}",
              ok=large["cost_ratio"] <= 1.35)
    saving_small = small["dijkstra"] / max(small["bhps_fwd"], 1.0)
    saving_large = large["dijkstra"] / max(large["bhps_fwd"], 1.0)
    table.add("saving grows with map", "yes",
              f"{saving_small:.2f}x -> {saving_large:.2f}x",
              ok=saving_large >= saving_small * 0.8)
    table.print()
    assert table.all_ok()
