"""Metrics and the result-table harness."""

import numpy as np
import pytest

from repro.eval import (
    ResultTable,
    average_precision,
    error_histogram,
    error_stats,
    precision_recall,
    sensitivity_specificity,
)
from repro.eval.harness import render_histogram


class TestErrorStats:
    def test_basic(self):
        stats = error_stats([1.0, 2.0, 3.0, 4.0])
        assert stats.mean == pytest.approx(2.5)
        assert stats.median == pytest.approx(2.5)
        assert stats.max == 4.0
        assert stats.n == 4

    def test_rmse_exceeds_mean_for_spread(self):
        stats = error_stats([0.0, 10.0])
        assert stats.rmse > stats.mean

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            error_stats([])


class TestHistogram:
    def test_counts_and_clipping(self):
        counts, edges = error_histogram([0.1, 0.1, 0.6, 99.0],
                                        bin_width=0.5, max_value=2.0)
        assert counts.sum() == 4
        assert counts[0] == 2
        assert counts[-1] == 1  # clipped outlier lands in the last bin

    def test_render(self):
        counts, edges = error_histogram([0.1, 0.2, 0.9], bin_width=0.5,
                                        max_value=1.0)
        text = render_histogram(counts, edges)
        assert "#" in text


class TestClassificationMetrics:
    def test_precision_recall(self):
        m = precision_recall(tp=8, fp=2, fn=2)
        assert m["precision"] == pytest.approx(0.8)
        assert m["recall"] == pytest.approx(0.8)
        assert m["f1"] == pytest.approx(0.8)

    def test_zero_division_safe(self):
        assert precision_recall(0, 0, 0)["f1"] == 0.0

    def test_sensitivity_specificity(self):
        m = sensitivity_specificity(tp=9, fp=1, tn=9, fn=1)
        assert m["sensitivity"] == pytest.approx(0.9)
        assert m["specificity"] == pytest.approx(0.9)


class TestAveragePrecision:
    def test_perfect_detector(self):
        ap = average_precision([0.9, 0.8, 0.7], [True, True, True])
        assert ap == pytest.approx(1.0)

    def test_worst_detector(self):
        ap = average_precision([0.9, 0.8], [False, False], n_positives=2)
        assert ap == 0.0

    def test_ranking_matters(self):
        good = average_precision([0.9, 0.8, 0.1], [True, True, False])
        bad = average_precision([0.9, 0.8, 0.1], [False, True, True])
        assert good > bad

    def test_missed_positives_lower_ap(self):
        full = average_precision([0.9, 0.8], [True, True], n_positives=2)
        missed = average_precision([0.9, 0.8], [True, True], n_positives=4)
        assert missed < full

    def test_empty(self):
        assert average_precision([], []) == 0.0


class TestResultTable:
    def test_render_and_status(self):
        table = ResultTable("E1", "demo")
        table.add("error", "0.2 m", "0.25 m", ok=True)
        table.add("note", "-", "-")
        text = table.render()
        assert "E1" in text and "PASS" in text
        assert table.all_ok()

    def test_all_ok_fails_when_any_false(self):
        table = ResultTable("E2", "demo")
        table.add("a", "1", "2", ok=False)
        assert not table.all_ok()
