"""T1 — Table I: taxonomy of the presented techniques.

Regenerates the survey's Table I (two categories, eight sub-areas with
their reference lists) and verifies that this library implements every
sub-area (all mapped modules import and expose their entry points).
"""

from conftest import once

from repro import taxonomy
from repro.eval import ResultTable


def _coverage():
    return taxonomy.coverage()


def test_table1_taxonomy(benchmark):
    coverage = once(benchmark, _coverage)

    print()
    print(taxonomy.render_table())

    table = ResultTable("T1", "Table I taxonomy coverage")
    cats = taxonomy.by_category()
    table.add("categories", "2", str(len(cats)), ok=len(cats) == 2)
    table.add("sub-areas", "8", str(len(taxonomy.TABLE_I)),
              ok=len(taxonomy.TABLE_I) == 8)
    n_refs = sum(len(a.references) for a in taxonomy.TABLE_I)
    table.add("referenced techniques", ">= 50", str(n_refs), ok=n_refs >= 50)
    implemented = sum(coverage.values())
    table.add("sub-areas implemented", "8/8",
              f"{implemented}/{len(coverage)}",
              ok=implemented == len(coverage))
    table.print()
    assert table.all_ok()
