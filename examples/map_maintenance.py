"""The map-maintenance loop: construction appears, the crowd notices,
SLAMCU verifies, and the map database is patched.

Reproduces the survey's Section II-B(2) flow end-to-end: FCD change
scoring over tiles (Pannen et al.), SLAMCU verification drives, and a
versioned patch applied to the map database.

Run:  python examples/map_maintenance.py
"""

import numpy as np

from repro import VersionedMap, diff_maps, generate_highway
from repro.core import ChangeType
from repro.update import CrowdUpdatePipeline, Slamcu
from repro.world import ChangeSpec, apply_changes, drive_route


def main() -> None:
    rng = np.random.default_rng(33)

    # The world: a highway whose map is initially perfect...
    hw = generate_highway(rng, length=5000.0, sign_spacing=200.0)
    # ...until a construction site appears and some signage changes.
    scenario = apply_changes(hw, ChangeSpec(
        construction_sites=1, construction_signs_per_site=5,
        add_signs=2, remove_signs=2), rng)
    print(f"{scenario.n_changes} real-world changes injected "
          f"(the map database doesn't know yet)")

    database = VersionedMap(scenario.prior.copy())

    # Stage 1 — the crowd: connected vehicles stream FCD; per-tile change
    # scores accumulate until verification jobs are created.
    pipeline = CrowdUpdatePipeline(database.map)
    lanes = list(scenario.reality.lanes())
    for k in range(8):
        lane = lanes[0] if k % 2 == 0 else lanes[2]
        traj = drive_route(scenario.reality, lane.id, 4800.0, rng, dt=0.3)
        pipeline.ingest(pipeline.traverse(scenario.reality, traj, rng))
    jobs = pipeline.create_jobs()
    print(f"after 8 crowd traversals: {len(jobs)} verification job(s) "
          f"created at tiles {[str(j) for j in jobs]}")

    # Stage 2 — verification: a SLAMCU-equipped vehicle drives the route
    # and resolves the actual changes.
    slamcu = Slamcu(database.map, new_feature_min_obs=3)
    trajectories = [
        drive_route(scenario.reality, lanes[0].id, 4800.0, rng),
        drive_route(scenario.reality, lanes[2].id, 4800.0, rng),
    ]
    report = slamcu.run(scenario, trajectories, rng)
    added = sum(c.change_type is ChangeType.ADDED
                for c in report.detected_changes)
    removed = sum(c.change_type is ChangeType.REMOVED
                  for c in report.detected_changes)
    print(f"SLAMCU verification: {added} additions, {removed} removals "
          f"detected (accuracy {100 * report.change_accuracy:.0f} %)")

    # Stage 3 — publication: one atomic, versioned patch.
    version = database.apply(report.patch)
    print(f"map database patched: now at version {version} "
          f"({len(report.patch)} operations)")

    # Residual differences by *position* (patched-in signs carry fresh ids,
    # so an id-based diff would double count them).
    residual = _positional_sign_mismatches(database.map, scenario.reality)
    print(f"residual sign mismatches vs reality: {residual} "
          f"(was {scenario.n_changes})")


def _positional_sign_mismatches(map_a, map_b, radius: float = 3.0) -> int:
    a = np.array([s.position for s in map_a.signs()])
    b = np.array([s.position for s in map_b.signs()])

    def unmatched(src, dst):
        count = 0
        for p in src:
            if dst.shape[0] == 0 or np.hypot(
                    dst[:, 0] - p[0], dst[:, 1] - p[1]).min() > radius:
                count += 1
        return count

    return unmatched(a, b) + unmatched(b, a)


if __name__ == "__main__":
    main()
