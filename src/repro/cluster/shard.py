"""Shard process: a full MapService over one shard's tile subset.

A shard is an ordinary single-node serving stack —
:class:`~repro.update.distribution.MapDistributionServer` (authoritative
dynamic state) + :class:`~repro.storage.tilestore.TileStore` (static tile
blobs) + :class:`~repro.serve.service.MapService` (worker pool, cache,
admission) — scoped to the tiles rendezvous hashing assigned it. The
router hands each shard a fully picklable :class:`ShardConfig` at boot:

- ``base_map_bytes``: the encoded disjoint subset of the base map whose
  elements' centre tiles this shard owns (the authoritative dynamic
  partition — every element has exactly one home shard);
- ``blobs``: the shard's owned tiles' blobs, sliced from a *full-map*
  ``TileStore.build``, so border elements are replicated exactly as on a
  single node and ``GetTile`` payloads are byte-identical regardless of
  which shard serves them;
- ``replay``: the journal suffix of accepted sub-patches this shard must
  re-apply. Replay runs through the same ingest path (same conflict
  policy, same order), so a restarted shard reconstructs the exact
  dynamic state — versions, change log, and all — that the dead primary
  had acknowledged. That replay is the whole failover story: acked
  writes live in the router's journal, so no shard death can lose them.

The same backend runs in two transports: in-process (``LocalShard`` in
the router module — unit tests, doc tooling) and as a forked child
(:func:`shard_main`) speaking the length-prefixed RPC of
:mod:`repro.cluster.rpc` over a socketpair.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.tiles import TileId
from repro.core.versioning import MapPatch
from repro.obs.log import EVENT_LOG, get_logger
from repro.obs.trace import TRACER, SpanRecorder
from repro.serve.api import Request
from repro.serve.service import MapService
from repro.storage.binary import decode_map
from repro.storage.tilestore import TileStore
from repro.update.distribution import ConflictPolicy, MapDistributionServer

_log = get_logger("cluster.shard")


@dataclass
class ShardConfig:
    """Everything a shard process needs to boot, in picklable form."""

    index: int
    tile_size: float
    base_map_bytes: bytes
    blobs: Dict[TileId, bytes] = field(default_factory=dict)
    replay: List[MapPatch] = field(default_factory=list)
    n_workers: int = 2
    service_latency_s: float = 0.0
    storage_latency_s: float = 0.0
    stale_tile_versions: int = 0
    name: str = "shard"
    #: pack-backed mode: instead of shipping ``blobs`` through the fork,
    #: every shard mmaps the same shared pack file and sees only its
    #: ``owned_tiles`` subset — the config stays a few hundred bytes no
    #: matter how big the base map is.
    pack_path: Optional[str] = None
    owned_tiles: List[TileId] = field(default_factory=list)


class ShardBackend:
    """The shard-side dispatch table over a private serving stack."""

    def __init__(self, config: ShardConfig) -> None:
        self.config = config
        base = decode_map(config.base_map_bytes)
        self.server = MapDistributionServer(base)
        if config.pack_path is not None:
            store = TileStore.from_pack(config.pack_path, config.tile_size,
                                        tiles=config.owned_tiles)
        else:
            store = TileStore.from_blobs(config.blobs, config.tile_size)
        self.service = MapService(
            self.server, store,
            n_workers=config.n_workers,
            service_latency_s=config.service_latency_s,
            storage_latency_s=config.storage_latency_s,
            stale_tile_versions=config.stale_tile_versions)
        for patch in config.replay:
            # The journal stores *effective* patches — the ops the dead
            # primary actually applied after conflict resolution — so
            # replay applies them verbatim (LAST_WRITER_WINS never drops)
            # and reconstructs the exact acked state: one version per
            # entry, same elements, same change log shape.
            self.server.ingest(patch, policy=ConflictPolicy.LAST_WRITER_WINS)
        # Injected slowness (the cluster.slow_shard fault): the next
        # ``count`` dispatches sleep ``delay_s`` before answering.
        self._slow_lock = threading.Lock()
        self._slow_delay_s = 0.0
        self._slow_count = 0
        # Telemetry drop accounting: ``dropped`` on the recorder is
        # cumulative; each telemetry drain reports only the delta since
        # the previous one.
        self._telemetry_dropped_seen = 0

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "ShardBackend":
        self.service.start()
        return self

    def stop(self) -> None:
        self.service.stop()

    # -- dispatch -------------------------------------------------------
    def _maybe_slow(self) -> float:
        """Apply an armed slow fault; returns the delay slept (0 = none)."""
        with self._slow_lock:
            if self._slow_count <= 0:
                return 0.0
            self._slow_count -= 1
            delay = self._slow_delay_s
        time.sleep(delay)
        return delay

    def _serve_span(self, trace_ctx, op: str, delayed: float):
        """Resume the router's propagated trace as a ``shard.serve`` span.

        The span parents everything the worker pool records for the
        request (``MapService.submit`` captures the active context), and
        a fired slow fault is stamped onto it — plus a trace-correlated
        ``fault_injected`` event — so a poisoned trace is identifiable
        from the merged tree alone.
        """
        span = TRACER.continue_from(trace_ctx, "shard.serve",
                                    shard=self.config.index, op=op)
        if span.context is not None and delayed:
            span.set("fault", "cluster.slow_shard")
            span.set("fault_delay_s", delayed)
        return span

    def dispatch_async(self, op: str, payload: Any, trace_ctx: Any = None):
        """Pipelined dispatch: ``serve`` ops return a ``Future`` resolved
        by the worker pool, so the connection loop keeps reading while
        slow handlers run — requests overlap inside one shard and
        replies go out as each finishes. Every other op (rare, cheap, or
        intentionally order-sensitive) returns ``None`` and takes the
        synchronous path in the loop thread.
        """
        if op != "serve":
            return None
        # An armed slow fault sleeps *here*, in the connection loop —
        # stalling the whole stream like a wedged shard, which is what
        # the timeout -> failover chaos path expects to observe.
        delayed = self._maybe_slow()
        assert isinstance(payload, Request)
        span = self._serve_span(trace_ctx, op, delayed)
        # Enter (activating the context so submit() parents under this
        # span), submit, then detach without ending: the span covers the
        # whole shard-side handling and is closed by the future callback
        # — registered first, so it runs before the reply is sent.
        span.__enter__()
        try:
            if delayed:
                _log.warning("fault_injected", fault="cluster.slow_shard",
                             shard=self.config.index, delay_s=delayed)
            future = self.service.submit(payload)
        except BaseException:
            span.__exit__(None, None, None)
            raise
        finally:
            span.detach()
        if span.context is not None:
            def _close_span(fut, span=span):
                resp = None if fut.exception() is not None else fut.result()
                if resp is not None:
                    span.set("status", resp.status.value)
                span.__exit__(None, None, None)
            future.add_done_callback(_close_span)
        return future

    def dispatch(self, op: str, payload: Any, trace_ctx: Any = None) -> Any:
        delayed = self._maybe_slow()
        if op == "serve":
            assert isinstance(payload, Request)
            with self._serve_span(trace_ctx, op, delayed) as span:
                if delayed:
                    _log.warning("fault_injected",
                                 fault="cluster.slow_shard",
                                 shard=self.config.index, delay_s=delayed)
                response = self.service.request(payload, timeout=30.0)
                if span.context is not None:
                    span.set("status", response.status.value)
                return response
        if op == "apply":
            # Replica write path: apply an effective (post-conflict-
            # resolution) patch verbatim, exactly as journal replay does,
            # so replicas track the primary version-for-version.
            assert isinstance(payload, MapPatch)
            return self.server.ingest(
                payload, policy=ConflictPolicy.LAST_WRITER_WINS)
        if op == "ping":
            return "pong"
        if op == "clock":
            # Clock-offset ping: the harvester reads this process's
            # monotonic clock, brackets it with its own send/receive
            # stamps, and estimates the offset as shard_ts − midpoint.
            return time.monotonic()
        if op == "telemetry":
            return self.telemetry(payload if isinstance(payload, dict)
                                  else {})
        if op == "version":
            return self.server.version
        if op == "changelog":
            return self.changelog()
        if op == "metrics":
            metrics = self.service.metrics
            return {
                "snapshot": metrics.snapshot(),
                "latency": metrics.latency_histograms(),
                "outcomes": metrics.outcome_counts(),
            }
        if op == "events":
            return EVENT_LOG.events()
        if op == "slow":
            with self._slow_lock:
                self._slow_delay_s = float(payload["delay_s"])
                self._slow_count = int(payload["count"])
            return None
        if op == "crash":
            # Injected fault: die without replying (process mode only;
            # LocalShard intercepts this op before dispatch).
            os._exit(17)
        raise ValueError(f"unknown shard op {op!r}")

    def telemetry(self, limits: Dict[str, Any]) -> Dict[str, Any]:
        """Drain this process's span ring and event tail, bounded.

        The harvest op: returns up to ``max_spans`` span dicts and
        ``max_events`` event dicts (oldest first, removed from the local
        rings), the span-drop delta since the previous drain, and this
        process's monotonic clock so the router can sanity-check its
        offset estimate. In the local transport the router intercepts
        this op — in-process spans land directly in its recorder.
        """
        recorder = TRACER.recorder
        spans = recorder.drain(int(limits.get("max_spans", 512)))
        events = EVENT_LOG.drain(int(limits.get("max_events", 512)))
        dropped = recorder.dropped - self._telemetry_dropped_seen
        self._telemetry_dropped_seen = recorder.dropped
        return {
            "shard": self.config.index,
            "spans": spans,
            "events": events,
            "dropped": dropped,
            "clock": time.monotonic(),
        }

    def changelog(self) -> List[Tuple[int, object]]:
        """The shard's full ``(version, MapChange)`` log, atomically."""
        with self.server._lock:
            return list(self.server.db.log.entries)


def _post_fork_sanitize(index: Optional[int] = None) -> None:
    """Make inherited global state safe and quiet in a forked child.

    Fork can snapshot locks mid-acquisition by a router thread; every
    lock the child might touch through module globals is replaced with a
    fresh one. The inherited event ring is cleared so the shard ships
    only its *own* events when the router polls them, and the inherited
    JSONL sinks are dropped so the child never appends to the router's
    files.

    Tracing is rebuilt for the telemetry plane: a fresh recorder (no
    router spans, no sink), span ids namespaced ``s<index>-<pid>-`` so
    merged rings never collide, and ``sample_rate=0`` — a shard never
    *starts* traces, it only continues contexts the router propagated
    (``continue_from`` ignores the sampler).
    """
    EVENT_LOG._lock = threading.Lock()
    EVENT_LOG._events.clear()
    EVENT_LOG.jsonl_path = None
    for counter in EVENT_LOG.counts_by_level.values():
        counter._lock = threading.Lock()
    TRACER.recorder = SpanRecorder(capacity=TRACER.recorder.capacity)
    if index is not None:
        TRACER.id_prefix = f"s{index}-{os.getpid():x}-"
    TRACER.enabled = True
    TRACER.set_sample_rate(0.0)


def shard_main(config: ShardConfig, sock) -> None:
    """Child-process entrypoint: boot the backend and serve the socket."""
    from repro.cluster.rpc import serve_connection

    _post_fork_sanitize(config.index)
    backend = ShardBackend(config).start()
    try:
        serve_connection(sock, backend.dispatch, backend.dispatch_async)
    finally:
        backend.stop()
        try:
            sock.close()
        except OSError:
            pass
