"""Landmark-based localization: HRL detection, association, triangulation.

Covers Juang [72] (pre-mapped landmark triangulation) and Ghallabi et al.
[53] (High Reflective Landmarks detected from LiDAR intensity, matched to
the map, fused in a particle filter).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.elements import PointLandmark
from repro.core.hdmap import HDMap
from repro.errors import LocalizationError
from repro.geometry.transform import SE2
from repro.geometry.vec import wrap_angle
from repro.localization.particle_filter import ParticleFilter2D
from repro.sensors.lidar import LidarScan

HRL_INTENSITY_THRESHOLD = 0.75


@dataclass(frozen=True)
class RangeBearing:
    """A range-bearing detection in the body frame."""

    range: float
    bearing: float

    def body_point(self) -> np.ndarray:
        return np.array([self.range * np.cos(self.bearing),
                         self.range * np.sin(self.bearing)])


def detect_hrl(scan: LidarScan, intensity_threshold: float = HRL_INTENSITY_THRESHOLD,
               cluster_angle: float = np.radians(3.0)) -> List[RangeBearing]:
    """Detect highly reflective landmarks in a scan's object channel.

    Adjacent high-intensity beams are clustered; each cluster yields one
    detection at its mean range/bearing — the size/shape/reflectivity
    screening of [53], [72] collapsed to the intensity cue that drives it.
    """
    obj = scan.objects
    mask = obj.intensity >= intensity_threshold
    if not mask.any():
        return []
    angles = obj.angles[mask]
    ranges = obj.ranges[mask]
    order = np.argsort(angles)
    angles = angles[order]
    ranges = ranges[order]
    detections: List[RangeBearing] = []
    cluster_a = [angles[0]]
    cluster_r = [ranges[0]]
    for a, r in zip(angles[1:], ranges[1:]):
        if a - cluster_a[-1] <= cluster_angle and abs(r - cluster_r[-1]) < 1.5:
            cluster_a.append(a)
            cluster_r.append(r)
        else:
            detections.append(RangeBearing(float(np.mean(cluster_r)),
                                           float(np.mean(cluster_a))))
            cluster_a = [a]
            cluster_r = [r]
    detections.append(RangeBearing(float(np.mean(cluster_r)),
                                   float(np.mean(cluster_a))))
    return detections


def associate_detections(detections: Sequence[RangeBearing], pose: SE2,
                         hdmap: HDMap, max_distance: float = 3.0
                         ) -> List[Tuple[RangeBearing, PointLandmark]]:
    """Nearest-neighbour association of detections to map landmarks."""
    if not detections:
        return []
    search_radius = max(d.range for d in detections) + max_distance + 5.0
    landmarks = hdmap.landmarks_in_radius(pose.x, pose.y, search_radius)
    landmarks = [lm for lm in landmarks if lm.height > 0.05]
    pairs: List[Tuple[RangeBearing, PointLandmark]] = []
    used = set()
    for det in detections:
        world = pose.apply(det.body_point())
        best = None
        best_d = max_distance
        for lm in landmarks:
            if lm.id in used:
                continue
            d = float(np.hypot(*(lm.position - world)))
            if d < best_d:
                best, best_d = lm, d
        if best is not None:
            used.add(best.id)
            pairs.append((det, best))
    return pairs


def triangulate_pose(pairs: Sequence[Tuple[RangeBearing, PointLandmark]],
                     initial: SE2, iterations: int = 10) -> SE2:
    """Gauss-Newton pose solve from range-bearing landmark observations."""
    if len(pairs) < 2:
        raise LocalizationError("triangulation needs at least 2 landmarks")
    x = np.array([initial.x, initial.y, initial.theta])
    for _ in range(iterations):
        rows = []
        residuals = []
        for det, lm in pairs:
            dx = lm.position[0] - x[0]
            dy = lm.position[1] - x[1]
            q = dx * dx + dy * dy
            r_pred = np.sqrt(q)
            if r_pred < 1e-6:
                continue
            b_pred = wrap_angle(np.arctan2(dy, dx) - x[2])
            residuals.append(det.range - r_pred)
            residuals.append(wrap_angle(det.bearing - b_pred))
            rows.append([-dx / r_pred, -dy / r_pred, 0.0])
            rows.append([dy / q, -dx / q, -1.0])
        A = np.asarray(rows)
        r = np.asarray(residuals)
        delta = np.linalg.solve(A.T @ A + np.eye(3) * 1e-9, A.T @ r)
        x += delta
        x[2] = wrap_angle(x[2])
        if float(np.abs(delta).max()) < 1e-6:
            break
    return SE2(float(x[0]), float(x[1]), float(x[2]))


class LandmarkLocalizer:
    """HRL particle-filter localization against the HD map [53].

    Predict with odometry; weight particles by how well the detected HRLs
    line up with map landmarks from each particle's viewpoint.
    """

    def __init__(self, hdmap: HDMap, rng: np.random.Generator,
                 n_particles: int = 300,
                 sigma_range: float = 0.15,
                 sigma_bearing: float = np.radians(1.0)) -> None:
        self.map = hdmap
        self.filter = ParticleFilter2D(n_particles, rng)
        self.sigma_range = sigma_range
        self.sigma_bearing = sigma_bearing
        self._initialized = False

    def initialize(self, pose: SE2, sigma_xy: float = 3.0,
                   sigma_theta: float = 0.15) -> None:
        self.filter.init_gaussian(pose, sigma_xy, sigma_theta)
        self._initialized = True

    def predict(self, ds: float, dtheta: float) -> None:
        self._require_init()
        self.filter.predict(ds, dtheta,
                            sigma_ds=0.05 + 0.05 * abs(ds),
                            sigma_dtheta=0.01 + 0.1 * abs(dtheta))

    def update(self, detections: Sequence[RangeBearing]) -> None:
        self._require_init()
        if not detections:
            return
        estimate = self.filter.estimate()
        pairs = associate_detections(detections, estimate, self.map)
        if not pairs:
            return

        def weight(states: np.ndarray) -> np.ndarray:
            log_w = np.zeros(states.shape[0])
            for det, lm in pairs:
                dx = lm.position[0] - states[:, 0]
                dy = lm.position[1] - states[:, 1]
                r_pred = np.hypot(dx, dy)
                b_pred = np.arctan2(dy, dx) - states[:, 2]
                b_err = np.arctan2(np.sin(det.bearing - b_pred),
                                   np.cos(det.bearing - b_pred))
                log_w -= 0.5 * ((det.range - r_pred) / self.sigma_range)**2
                log_w -= 0.5 * (b_err / self.sigma_bearing)**2
            log_w -= log_w.max()
            return np.exp(log_w)

        self.filter.update(weight)
        self.filter.resample_if_needed()

    def estimate(self) -> SE2:
        self._require_init()
        return self.filter.estimate()

    def _require_init(self) -> None:
        if not self._initialized:
            raise LocalizationError("localizer not initialized")
