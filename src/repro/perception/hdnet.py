"""HDNET: exploiting HD maps for object detection (Yang et al. [6]).

The map contributes two priors to the detector:

- *geometric*: obstacles of interest (vehicles) are on the road surface —
  detections far off any lane are down-weighted (static clutter);
- *semantic*: detections that coincide with mapped furniture (poles,
  signs) are explained by the map and suppressed.

When no HD map is available, :func:`predict_road_prior` estimates the road
region online from a single LiDAR scan's ground-intensity returns — the
paper's map-prediction fallback, weaker than the true map but better than
nothing. The expected ordering (and the paper's finding) is
``with map > predicted map > no map``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.hdmap import HDMap
from repro.geometry.transform import SE2
from repro.perception.detector import Detection, LidarObjectDetector
from repro.sensors.lidar import LidarScan


@dataclass
class RoadPrior:
    """An online-predicted road region: points + acceptance radius."""

    road_points: np.ndarray  # (N, 2) world frame
    radius: float

    def on_road(self, position: np.ndarray) -> bool:
        if self.road_points.shape[0] == 0:
            return True  # uninformative prior accepts everything
        d = np.hypot(self.road_points[:, 0] - position[0],
                     self.road_points[:, 1] - position[1])
        return bool(d.min() <= self.radius)


def predict_road_prior(scan: LidarScan, pose: SE2,
                       asphalt_band: tuple = (0.08, 0.38),
                       radius: float = 3.0) -> RoadPrior:
    """Estimate the road region from one scan (no map available).

    Ground returns whose intensity sits in the asphalt band are taken as
    road surface samples.
    """
    ground = scan.ground
    lo, hi = asphalt_band
    mask = (ground.intensity >= lo) & (ground.intensity <= hi)
    world = pose.apply(ground.points[mask])
    return RoadPrior(road_points=world, radius=radius)


class HdnetDetector:
    """Base detector + map priors.

    ``mode``: "map" (use the HD map), "predicted" (online prior from the
    scan), or "none" (raw detector).
    """

    def __init__(self, hdmap: Optional[HDMap], mode: str = "map",
                 base: Optional[LidarObjectDetector] = None,
                 off_road_penalty: float = 0.15,
                 furniture_radius: float = 1.2,
                 road_margin: float = 2.5) -> None:
        if mode not in ("map", "predicted", "none"):
            raise ValueError(f"unknown mode {mode!r}")
        if mode == "map" and hdmap is None:
            raise ValueError("mode='map' needs a map")
        self.map = hdmap
        self.mode = mode
        self.base = base if base is not None else LidarObjectDetector()
        self.off_road_penalty = off_road_penalty
        self.furniture_radius = furniture_radius
        self.road_margin = road_margin

    # ------------------------------------------------------------------
    def detect(self, scan: LidarScan, pose: SE2) -> List[Detection]:
        detections = self.base.detect(scan, pose)
        if self.mode == "none":
            return detections
        prior = (predict_road_prior(scan, pose)
                 if self.mode == "predicted" else None)
        out: List[Detection] = []
        for det in detections:
            score = det.score
            if self.mode == "map":
                assert self.map is not None
                # Semantic prior: mapped furniture explains the cluster.
                furniture = self.map.landmarks_in_radius(
                    float(det.position[0]), float(det.position[1]),
                    self.furniture_radius)
                if any(lm.height > 0.05 for lm in furniture):
                    continue
                # Geometric prior: keep on-road detections at full score.
                try:
                    _, dist = self.map.nearest_lane(float(det.position[0]),
                                                    float(det.position[1]))
                except Exception:
                    dist = float("inf")
                if dist > self.road_margin:
                    score *= self.off_road_penalty
            else:
                assert prior is not None
                if not prior.on_road(det.position):
                    score *= self.off_road_penalty
            out.append(Detection(position=det.position, score=score,
                                 n_points=det.n_points,
                                 true_object=det.true_object))
        return out
