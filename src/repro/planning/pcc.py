"""Predictive cruise control with HD-map slope data (Chu et al. [61]).

The HD map carries the elevation profile ahead; PCC optimizes the speed
trajectory over a receding horizon to spend fuel where it pays (before
climbs) and coast where gravity helps — the paper reports 8.73 % fuel
saving over a 370 km route versus a factory adaptive cruise control that
holds speed constant.

The optimizer is dynamic programming over a (station, speed) grid — the
"fast solver" role of the paper's shift-map-guided MPC — against a
physics-based longitudinal fuel model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import PlanningError
from repro.world.elevation import ElevationProfile

GRAVITY = 9.81
AIR_DENSITY = 1.2


@dataclass
class FuelModel:
    """Willans-line style fuel model for a heavy passenger vehicle."""

    mass: float = 1800.0  # kg
    drag_area: float = 0.70  # Cd * A, m^2
    rolling: float = 0.009
    idle_rate: float = 0.00025  # L/s at zero power
    fuel_per_joule: float = 8.2e-8  # L/J of positive tractive work
    regen_fraction: float = 0.0  # no recuperation on a combustion car
    max_power: float = 120e3  # W
    max_brake_decel: float = 3.0  # m/s^2

    def tractive_force(self, speed: float, accel: float,
                       slope: float) -> float:
        resist = (0.5 * AIR_DENSITY * self.drag_area * speed * speed
                  + self.mass * GRAVITY * (self.rolling + slope))
        return self.mass * accel + resist

    def fuel_rate(self, speed: float, accel: float, slope: float) -> float:
        """Litres per second at the given operating point."""
        force = self.tractive_force(speed, accel, slope)
        power = force * speed
        if power <= 0.0:
            return self.idle_rate  # fuel cut / idling on overrun
        return self.idle_rate + self.fuel_per_joule * power

    def feasible(self, speed: float, accel: float, slope: float) -> bool:
        force = self.tractive_force(speed, accel, slope)
        power = force * speed
        if power > self.max_power:
            return False
        return accel >= -self.max_brake_decel


@dataclass
class PccResult:
    stations: np.ndarray
    speeds: np.ndarray
    fuel_litres: float
    travel_time: float

    def mean_speed(self) -> float:
        return float((self.stations[-1] - self.stations[0])
                     / max(self.travel_time, 1e-9))


def simulate_fuel(profile: ElevationProfile, stations: np.ndarray,
                  speeds: np.ndarray, model: FuelModel) -> Tuple[float, float]:
    """Integrate fuel and time for a speed profile over the elevation."""
    fuel = 0.0
    time_s = 0.0
    for i in range(len(stations) - 1):
        ds = float(stations[i + 1] - stations[i])
        v0, v1 = float(speeds[i]), float(speeds[i + 1])
        v_mid = max(0.5, (v0 + v1) / 2.0)
        accel = (v1 * v1 - v0 * v0) / (2.0 * ds)
        slope = profile.slope_at(float(stations[i]) + ds / 2.0)
        dt = ds / v_mid
        fuel += model.fuel_rate(v_mid, accel, slope) * dt
        time_s += dt
    return fuel, time_s


def constant_speed_profile(profile: ElevationProfile, speed: float,
                           step: float = 100.0
                           ) -> Tuple[np.ndarray, np.ndarray]:
    """The factory-ACC baseline: hold the set speed everywhere."""
    stations = np.arange(0.0, profile.length + step, step)
    stations = np.clip(stations, 0.0, profile.length)
    return stations, np.full(stations.size, speed)


class PccPlanner:
    """DP speed optimization over the (station, speed) grid."""

    def __init__(self, model: Optional[FuelModel] = None,
                 speed_band: float = 0.12,
                 n_speed_levels: int = 13,
                 station_step: float = 100.0,
                 time_penalty_litres_per_s: float = 0.0003) -> None:
        self.model = model if model is not None else FuelModel()
        self.speed_band = speed_band
        self.n_speed_levels = n_speed_levels
        self.station_step = station_step
        self.time_penalty = time_penalty_litres_per_s

    def plan(self, profile: ElevationProfile, set_speed: float) -> PccResult:
        """Optimal speed profile holding mean speed near ``set_speed``.

        Speeds are restricted to a band around the set speed (the paper's
        comfort/arrival-time constraint), so savings come from *when* to
        speed up, not from driving slower overall; a time penalty keeps
        the DP from exploiting the slow edge of the band.
        """
        model = self.model
        stations = np.arange(0.0, profile.length + self.station_step,
                             self.station_step)
        stations = np.clip(stations, 0.0, profile.length)
        n = stations.size
        if n < 3:
            raise PlanningError("profile too short")
        speeds = set_speed * np.linspace(1.0 - self.speed_band,
                                         1.0 + self.speed_band,
                                         self.n_speed_levels)
        n_v = speeds.size
        cost = np.full((n, n_v), np.inf)
        parent = np.zeros((n, n_v), dtype=int)
        start_idx = int(np.argmin(np.abs(speeds - set_speed)))
        cost[0, start_idx] = 0.0
        for i in range(n - 1):
            ds = float(stations[i + 1] - stations[i])
            if ds <= 0:
                cost[i + 1] = cost[i]
                continue
            slope = profile.slope_at(float(stations[i]) + ds / 2.0)
            for j in range(n_v):
                if not np.isfinite(cost[i, j]):
                    continue
                v0 = float(speeds[j])
                for k in range(max(0, j - 2), min(n_v, j + 3)):
                    v1 = float(speeds[k])
                    accel = (v1 * v1 - v0 * v0) / (2.0 * ds)
                    if not model.feasible((v0 + v1) / 2.0, accel, slope):
                        continue
                    v_mid = (v0 + v1) / 2.0
                    dt = ds / v_mid
                    step_cost = (model.fuel_rate(v_mid, accel, slope) * dt
                                 + self.time_penalty * dt)
                    if cost[i, j] + step_cost < cost[i + 1, k]:
                        cost[i + 1, k] = cost[i, j] + step_cost
                        parent[i + 1, k] = j
        final = int(np.argmin(cost[n - 1]))
        if not np.isfinite(cost[n - 1, final]):
            raise PlanningError("DP found no feasible speed profile")
        idx = np.zeros(n, dtype=int)
        idx[n - 1] = final
        for i in range(n - 1, 0, -1):
            idx[i - 1] = parent[i, idx[i]]
        speed_profile = speeds[idx]
        fuel, time_s = simulate_fuel(profile, stations, speed_profile, model)
        return PccResult(stations=stations, speeds=speed_profile,
                         fuel_litres=fuel, travel_time=time_s)
