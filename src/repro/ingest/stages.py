"""The staged ingest pipeline: validate -> associate -> fuse -> classify -> emit.

Each stage does one job from the surveyed maintenance loop and hands a
``carry`` dict to the next:

- :class:`ValidateStage` rejects malformed (poison) observations — a
  raising stage triggers the batch's retry/dead-letter path;
- :class:`AssociateStage` matches detections to prior-map elements by
  position (misses carry their expected element explicitly);
- :class:`FuseStage` runs Liu et al.'s incremental Kalman fusion [43] for
  positions plus one SLAMCU-style :class:`DiscreteDBN` presence chain per
  prior element [41];
- :class:`ClassifyStage` gates emission with Pannen et al.'s multi-
  traversal :class:`ChangeClassifier` [42][44] over the tile's
  accumulated evidence, so one noisy traversal never patches the map;
- :class:`EmitStage` turns confirmed beliefs into idempotent
  :class:`ConfirmedPatch` objects (a deterministic patch key per logical
  change), emitting each change at most once per pipeline;
- :class:`VerifyStage` is the mandatory constraint gate between fuse
  and publish: every emitted patch is checked by the shared
  :class:`~repro.ingest.verify.VerifyGate` and violating patches are
  quarantined (journaled with their violation report), never published.

All per-tile state lives in :class:`TileState`, owned by the pipeline and
keyed by tile — a tile maps to exactly one bus partition and one worker,
so stages never need locks, and state survives worker crashes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ingest.verify import VerifyGate

from repro.core.elements import SignType, TrafficSign
from repro.core.hdmap import HDMap
from repro.core.ids import ElementId
from repro.core.tiles import TileId
from repro.core.versioning import MapPatch
from repro.ingest.observation import Observation, ObservationBatch, ObservationKind
from repro.ingest.publisher import ConfirmedPatch
from repro.update.crowd_update import ChangeClassifier, TraversalFeatures
from repro.update.dbn import DiscreteDBN, FeatureState
from repro.update.incremental_fusion import IncrementalFuser


@dataclass
class IngestConfig:
    """Tunables of the staged pipeline (one instance shared by all stages)."""

    match_radius: float = 3.0           # detection -> prior association gate
    seed_sigma: float = 0.5             # prior-element position sigma
    min_evidence: int = 6               # observations before classify may fire
    remove_belief: float = 0.8          # P(REMOVED) to emit a removal
    add_confidence: float = 0.7         # fused confidence to emit an addition
    change_threshold: float = 0.45      # classifier decision threshold
    fuser_confidence_gain: float = 0.15  # per agreeing measurement
    fuser_confidence_loss: float = 0.08  # per disagreeing measurement/miss
    add_key_quantum_m: float = 2.0      # position quantum for add-patch keys
    conflation_radius_m: float = 4.0    # two adds closer than this are one
    seed_margin_m: float = 8.0          # tile-state seeding boundary margin
    # P(observation | PRESENT), P(observation | REMOVED)
    detect_likelihood: Tuple[float, float] = (0.7, 0.05)
    miss_likelihood: Tuple[float, float] = (0.3, 0.95)


@dataclass
class TileState:
    """All mutable per-tile pipeline state (single-writer by design)."""

    tile: TileId
    fuser: IncrementalFuser
    dbn: Dict[ElementId, DiscreteDBN] = field(default_factory=dict)
    seeded: bool = False
    changed: bool = False
    emitted: Set[str] = field(default_factory=set)
    emitted_add_positions: List[Tuple[float, float]] = \
        field(default_factory=list)
    # rolling evidence for the change classifier
    detections: int = 0        # detections associated with a prior element
    misses: int = 0            # expected-but-unseen prior elements
    unmatched: int = 0         # detections with no prior counterpart
    residual_sum: float = 0.0  # association residual accumulator (metres)


#: carry keys handed from stage to stage
_VALID = "valid"
_ASSOC = "assoc"
_PATCHES = "patches"


class Stage:
    """One pipeline stage; raises :class:`IngestError` on failure."""

    name = "stage"

    def process(self, state: TileState, batch: ObservationBatch,
                carry: dict) -> None:
        raise NotImplementedError


class ValidateStage(Stage):
    """Schema/sanity validation; poison observations fail the batch."""

    name = "validate"

    def process(self, state: TileState, batch: ObservationBatch,
                carry: dict) -> None:
        for obs in batch.observations:
            obs.validate()
        carry[_VALID] = list(batch.observations)


class AssociateStage(Stage):
    """Match each observation to a prior-map element (or to nothing)."""

    name = "associate"

    def __init__(self, prior: HDMap, config: IngestConfig) -> None:
        self.prior = prior
        self.config = config

    def _nearest_sign(self, x: float, y: float) -> Tuple[Optional[ElementId],
                                                         float]:
        best, best_d = None, self.config.match_radius
        for lm in self.prior.landmarks_in_radius(x, y,
                                                 self.config.match_radius):
            if not isinstance(lm, TrafficSign):
                continue
            d = float(np.hypot(lm.position[0] - x, lm.position[1] - y))
            if d < best_d:
                best, best_d = lm.id, d
        return best, best_d

    def process(self, state: TileState, batch: ObservationBatch,
                carry: dict) -> None:
        associations: List[Tuple[Observation, Optional[ElementId], float]] = []
        for obs in carry[_VALID]:
            if obs.kind == ObservationKind.MISS:
                # The reporter says which element it expected; ignore
                # expectations about elements the prior no longer has.
                if obs.element_id is not None and obs.element_id in self.prior:
                    associations.append((obs, obs.element_id, 0.0))
                continue
            assoc = obs.element_id if (obs.element_id is not None
                                       and obs.element_id in self.prior) \
                else None
            residual = 0.0
            if assoc is None:
                assoc, residual = self._nearest_sign(*obs.position)
            associations.append((obs, assoc, residual))
        carry[_ASSOC] = associations


class FuseStage(Stage):
    """Incremental Kalman fusion + per-element presence DBNs.

    Tile states arrive pre-seeded by the pipeline with the prior's
    elements (fuser tracks + presence chains); this stage only folds in
    the batch's evidence.
    """

    name = "fuse"

    def __init__(self, config: IngestConfig) -> None:
        self.config = config

    def process(self, state: TileState, batch: ObservationBatch,
                carry: dict) -> None:
        cfg = self.config
        for obs, assoc, residual in carry[_ASSOC]:
            if obs.kind == ObservationKind.DETECTION:
                state.fuser.observe(np.asarray(obs.position, dtype=float),
                                    obs.sigma, obs.t)
                if assoc is not None:
                    state.detections += 1
                    state.residual_sum += residual
                    chain = state.dbn.get(assoc)
                    if chain is not None:
                        chain.step(cfg.detect_likelihood)
                else:
                    state.unmatched += 1
            else:  # MISS
                state.misses += 1
                if assoc is not None:
                    state.fuser.miss(assoc, obs.t)
                    chain = state.dbn.get(assoc)
                    if chain is not None:
                        chain.step(cfg.miss_likelihood)


class ClassifyStage(Stage):
    """Tile-level change gate: multi-traversal classifier over evidence."""

    name = "classify"

    def __init__(self, config: IngestConfig,
                 classifier: Optional[ChangeClassifier] = None) -> None:
        self.config = config
        self.classifier = classifier or ChangeClassifier()

    def features(self, state: TileState) -> TraversalFeatures:
        evidence = state.detections + state.misses + state.unmatched
        expected = max(state.detections + state.misses, 1)
        missing_ratio = state.misses / expected
        # Unexpected detections per observation, scaled the way
        # CrowdUpdatePipeline scales its per-frame rate.
        unexpected = state.unmatched / max(evidence, 1) * 10.0
        # Innovation proxy: mean association residual, inflated when the
        # tile is missing expected elements (fewer anchors means the
        # map-matcher diverges in proportion to what vanished).
        residual_mean = state.residual_sum / max(state.detections, 1)
        innovation = residual_mean + (missing_ratio
                                      if missing_ratio > 0.3 else 0.0)
        return TraversalFeatures(site=state.tile,
                                 missing_ratio=missing_ratio,
                                 unexpected_count=unexpected,
                                 innovation=innovation)

    def process(self, state: TileState, batch: ObservationBatch,
                carry: dict) -> None:
        evidence = state.detections + state.misses + state.unmatched
        if evidence < self.config.min_evidence:
            return  # not enough traversal evidence yet; stay unchanged
        state.changed = self.classifier.classify(
            self.features(state), self.config.change_threshold)


class EmitStage(Stage):
    """Turn confirmed beliefs into idempotent patch emissions."""

    name = "emit"

    def __init__(self, allocate_id: Callable[[str], ElementId],
                 config: IngestConfig,
                 prior: Optional[HDMap] = None) -> None:
        self.allocate_id = allocate_id
        self.config = config
        self.prior = prior

    def _removal_patches(self, state: TileState) -> List[ConfirmedPatch]:
        out = []
        for eid, chain in state.dbn.items():
            belief = chain.probability(FeatureState.REMOVED.value)
            if belief < self.config.remove_belief:
                continue
            key = f"{state.tile}:remove:{eid}"
            if key in state.emitted:
                continue
            state.emitted.add(key)
            patch = MapPatch(source=f"ingest:{state.tile}",
                             confidence=float(belief)).remove(eid)
            out.append(ConfirmedPatch(key=key, patch=patch))
        return out

    def _conflates(self, state: TileState, x: float, y: float) -> bool:
        """True when (x, y) is the same physical landmark as something we
        already know: a prior-map element (checked map-wide, because noisy
        detections of a sign near a tile boundary land in the neighbouring
        tile whose state never seeded it), a prior-seeded track, or a
        previously emitted add."""
        radius = self.config.conflation_radius_m
        if self.prior is not None and any(
                isinstance(lm, TrafficSign)
                for lm in self.prior.landmarks_in_radius(x, y, radius)):
            return True
        for element in state.fuser.elements.values():
            if element.element_id.kind != "fused" and \
                    float(np.hypot(element.position[0] - x,
                                   element.position[1] - y)) <= radius:
                return True
        return any(float(np.hypot(px - x, py - y)) <= radius
                   for px, py in state.emitted_add_positions)

    def _addition_patches(self, state: TileState) -> List[ConfirmedPatch]:
        out = []
        q = self.config.add_key_quantum_m
        for element in list(state.fuser.elements.values()):
            if element.element_id.kind != "fused":
                continue  # seeded from the prior, not a new discovery
            if element.confidence < self.config.add_confidence:
                continue
            x, y = float(element.position[0]), float(element.position[1])
            key = (f"{state.tile}:add:"
                   f"{round(x / q) * q:.0f},{round(y / q) * q:.0f}")
            if key in state.emitted or self._conflates(state, x, y):
                continue
            state.emitted.add(key)
            state.emitted_add_positions.append((x, y))
            sign = TrafficSign(id=self.allocate_id("sign"),
                               position=np.array([x, y]),
                               sign_type=SignType.DIRECTION)
            patch = MapPatch(source=f"ingest:{state.tile}",
                             confidence=float(element.confidence)).add(sign)
            out.append(ConfirmedPatch(key=key, patch=patch))
        return out

    def process(self, state: TileState, batch: ObservationBatch,
                carry: dict) -> None:
        patches: List[ConfirmedPatch] = []
        if state.changed:
            patches.extend(self._removal_patches(state))
            patches.extend(self._addition_patches(state))
        for cp in patches:
            cp.enqueued_at = batch.enqueued_at
        carry[_PATCHES] = patches


class VerifyStage(Stage):
    """Constraint gate over the emit stage's output.

    Runs as a normal pipeline stage so it inherits the per-stage
    machinery for free: an ``ingest.stage.verify`` latency series, a
    circuit breaker, and per-batch span annotation. The actual
    decision lives in the shared :class:`~repro.ingest.verify
    .VerifyGate` (also wired into the publisher as a backstop), so
    both entry paths agree on one quarantine store and metric surface.
    """

    name = "verify"

    def __init__(self, gate: "VerifyGate") -> None:
        self.gate = gate

    def process(self, state: TileState, batch: ObservationBatch,
                carry: dict) -> None:
        carry[_PATCHES] = self.gate.filter(carry.get(_PATCHES, []))
