"""Lane-level map matching.

Two surveyed flavours:

- :class:`LaneMatcher` — probabilistic lane-level map matching with an
  *integrity* measure (Li et al. [59]): candidate lanes are scored by
  lateral distance and heading agreement; integrity is the posterior
  probability mass of the best candidate, so the consumer knows when the
  match is ambiguous (parallel lanes) versus trustworthy.
- :func:`match_line_segments` — the line-segment matching model of Han et
  al. [51]: extracted road-marking segments are matched to map boundary
  segments and a rigid correction is estimated by least squares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.elements import Lane
from repro.core.hdmap import HDMap
from repro.core.ids import ElementId
from repro.geometry.transform import SE2
from repro.geometry.vec import wrap_angle


@dataclass(frozen=True)
class LaneMatch:
    """Result of matching a pose to the lane network."""

    lane_id: ElementId
    station: float
    lateral: float
    probability: float  # posterior of this lane among candidates
    integrity: float  # probability margin over the runner-up

    @property
    def ambiguous(self) -> bool:
        return self.integrity < 0.5


class LaneMatcher:
    """Scores candidate lanes around a pose estimate."""

    def __init__(self, hdmap: HDMap, search_radius: float = 10.0,
                 sigma_lateral: float = 1.2,
                 sigma_heading: float = 0.35) -> None:
        self.map = hdmap
        self.search_radius = search_radius
        self.sigma_lateral = sigma_lateral
        self.sigma_heading = sigma_heading

    def candidates(self, pose: SE2) -> List[Tuple[Lane, float, float, float]]:
        """(lane, station, lateral, score) for each nearby lane."""
        out = []
        for element in self.map.elements_in_radius(pose.x, pose.y,
                                                   self.search_radius,
                                                   kind="lane"):
            assert isinstance(element, Lane)
            s, d = element.centerline.project((pose.x, pose.y))
            if abs(d) > self.search_radius:
                continue
            heading_err = wrap_angle(pose.theta
                                     - element.centerline.heading_at(s))
            score = float(
                np.exp(-0.5 * (d / self.sigma_lateral)**2)
                * np.exp(-0.5 * (heading_err / self.sigma_heading)**2)
            )
            out.append((element, s, d, score))
        return out

    def match(self, pose: SE2) -> Optional[LaneMatch]:
        candidates = self.candidates(pose)
        if not candidates:
            return None
        total = sum(score for *_, score in candidates)
        if total <= 0:
            return None
        ranked = sorted(candidates, key=lambda c: -c[3])
        best = ranked[0]
        p_best = best[3] / total
        p_second = ranked[1][3] / total if len(ranked) > 1 else 0.0
        return LaneMatch(
            lane_id=best[0].id,
            station=best[1],
            lateral=best[2],
            probability=p_best,
            integrity=p_best - p_second,
        )


def match_line_segments(
    observed: Sequence[Tuple[np.ndarray, np.ndarray]],
    reference: Sequence[Tuple[np.ndarray, np.ndarray]],
    max_distance: float = 2.0,
    max_angle: float = 0.35,
) -> Optional[SE2]:
    """Estimate the rigid correction aligning observed segments to the map.

    Each observed segment (world frame, as placed by the current pose
    estimate) is associated to the closest reference segment with a
    compatible direction; the translation + rotation minimizing midpoint
    residuals (point-to-line) is solved in closed form (small-angle).

    Returns the correction ``SE2`` to *compose onto* the pose estimate, or
    None if fewer than 2 segments matched.
    """
    if not reference:
        return None
    # Stack the reference segments once; each observed segment is then
    # associated in one vectorized pass instead of an inner Python loop.
    # All per-segment arithmetic is elementwise in the same operation order
    # as the scalar loop it replaced, so the selected pairs are identical.
    a_ref = np.asarray([np.asarray(a) for a, _ in reference], dtype=float)
    b_ref = np.asarray([np.asarray(b) for _, b in reference], dtype=float)
    d_ref = b_ref - a_ref  # (R, 2)
    len_ref = np.hypot(d_ref[:, 0], d_ref[:, 1])
    ok_len = len_ref >= 1e-6
    dir_ref = d_ref / np.maximum(len_ref, 1e-300)[:, None]
    cos_thresh = np.cos(max_angle)

    pairs = []
    for a_obs, b_obs in observed:
        mid_obs = (np.asarray(a_obs) + np.asarray(b_obs)) / 2.0
        dir_obs = np.asarray(b_obs) - np.asarray(a_obs)
        len_obs = float(np.hypot(*dir_obs))
        if len_obs < 1e-6:
            continue
        dir_obs = dir_obs / len_obs
        cos_angle = np.abs(dir_obs[0] * dir_ref[:, 0]
                           + dir_obs[1] * dir_ref[:, 1])
        rel = mid_obs[None, :] - a_ref  # (R, 2)
        # Point-to-line distance of observed midpoint.
        d = np.abs(dir_ref[:, 0] * rel[:, 1] - dir_ref[:, 1] * rel[:, 0])
        along = rel[:, 0] * dir_ref[:, 0] + rel[:, 1] * dir_ref[:, 1]
        candidate = (ok_len & (cos_angle >= cos_thresh) & (d < max_distance)
                     & (along >= -2.0) & (along <= len_ref + 2.0))
        if not candidate.any():
            continue
        # The scalar loop kept the first strict improvement, i.e. the
        # earliest index attaining the minimum d — exactly np.argmin on the
        # masked distances.
        masked = np.where(candidate, d, np.inf)
        i = int(np.argmin(masked))
        normal = np.array([-dir_ref[i, 1], dir_ref[i, 0]])
        signed = float(rel[i] @ normal)
        pairs.append((mid_obs, normal, signed))
    if len(pairs) < 2:
        return None

    # Solve for [dx, dy, dtheta] (rotation about the midpoint centroid, so
    # translation and rotation decouple) minimizing the point-to-line
    # residuals: n . (p + [dx,dy] + dtheta * J (p - c)) = n . p - signed.
    centroid = np.mean([mid for mid, _, _ in pairs], axis=0)
    A = []
    b = []
    for mid, normal, signed in pairs:
        rel = mid - centroid
        jp = np.array([-rel[1], rel[0]])
        A.append([normal[0], normal[1], float(normal @ jp)])
        b.append(-signed)
    A = np.asarray(A)
    b = np.asarray(b)
    # Regularize rotation slightly to keep the solve well-posed on
    # parallel-only segment sets.
    reg = np.diag([1e-9, 1e-9, 1e-6])
    sol = np.linalg.solve(A.T @ A + reg, A.T @ b)
    dx, dy, dtheta = float(sol[0]), float(sol[1]), float(sol[2])
    # Convert "rotate about centroid then translate" to an about-origin SE2:
    # p' = c + R (p - c) + t  =  R p + (t + c - R c).
    c_rot = np.array([
        np.cos(dtheta) * centroid[0] - np.sin(dtheta) * centroid[1],
        np.sin(dtheta) * centroid[0] + np.cos(dtheta) * centroid[1],
    ])
    shift = np.array([dx, dy]) + centroid - c_rot
    return SE2(float(shift[0]), float(shift[1]), dtheta)
