"""Log-odds occupancy grid for indoor mapping."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.geometry.raster import GridSpec

L_OCCUPIED = 0.85
L_FREE = -0.4
L_MIN, L_MAX = -4.0, 4.0


class OccupancyGrid:
    """A probabilistic occupancy map updated from range observations."""

    def __init__(self, spec: GridSpec) -> None:
        self.spec = spec
        self.log_odds = np.zeros((spec.height, spec.width))

    def probability(self) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-self.log_odds))

    def occupied_mask(self, threshold: float = 0.65) -> np.ndarray:
        return self.probability() >= threshold

    # ------------------------------------------------------------------
    def integrate_ray(self, origin: np.ndarray, hit: np.ndarray,
                      hit_occupied: bool = True) -> None:
        """Mark cells along origin->hit free, the hit cell occupied."""
        cells = self._traverse(origin, hit)
        if cells.shape[0] == 0:
            return
        for col, row in cells[:-1]:
            if 0 <= row < self.spec.height and 0 <= col < self.spec.width:
                self.log_odds[row, col] = np.clip(
                    self.log_odds[row, col] + L_FREE, L_MIN, L_MAX)
        col, row = cells[-1]
        if hit_occupied and 0 <= row < self.spec.height and 0 <= col < self.spec.width:
            self.log_odds[row, col] = np.clip(
                self.log_odds[row, col] + L_OCCUPIED, L_MIN, L_MAX)

    def _traverse(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Cells visited along the segment (simple supersampling walk)."""
        length = float(np.hypot(*(b - a)))
        n = max(2, int(length / (self.spec.resolution * 0.5)))
        t = np.linspace(0.0, 1.0, n)
        pts = a[None, :] + t[:, None] * (b - a)[None, :]
        cells = self.spec.world_to_cell(pts)
        # Deduplicate consecutive repeats.
        keep = np.ones(cells.shape[0], dtype=bool)
        keep[1:] = np.any(cells[1:] != cells[:-1], axis=1)
        return cells[keep]

    def occupancy_agreement(self, other: "OccupancyGrid",
                            threshold: float = 0.65) -> float:
        """IoU of occupied cells against another grid (same spec)."""
        mine = self.occupied_mask(threshold)
        theirs = other.occupied_mask(threshold)
        union = np.logical_or(mine, theirs).sum()
        if union == 0:
            return 1.0
        return float(np.logical_and(mine, theirs).sum() / union)
