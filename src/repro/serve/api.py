"""Typed request/response API of the map serving layer.

The fleet never talks to :class:`~repro.update.distribution.MapDistributionServer`
or :class:`~repro.storage.tilestore.TileStore` directly; it submits one of
five request types to a :class:`~repro.serve.service.MapService` and receives
a :class:`Response` tagged with the map version it was served at:

- :class:`GetTile` — one decoded base-map tile (served through the sharded
  cache);
- :class:`SpatialQuery` — elements (or landmarks only) within a radius,
  answered from cached tiles exactly as ``StreamingMap`` would;
- :class:`ChangesSince` — incremental sync: an atomic
  :class:`~repro.update.distribution.SyncDelta` of everything after a version;
- :class:`IngestPatch` — a crowd-sourced :class:`~repro.core.versioning.MapPatch`
  for the authoritative database;
- :class:`Snapshot` — a full map copy (the expensive bootstrap path).

Requests carry a :class:`Priority`; the admission controller sheds stale
low-priority work under load, which surfaces as ``Status.SHED`` responses.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.tiles import TileId
from repro.core.versioning import MapPatch


class Priority(enum.IntEnum):
    """Scheduling class of a request; higher values survive load-shedding."""

    LOW = 0      # opportunistic prefetch / telemetry
    NORMAL = 1   # interactive queries on the driving path
    HIGH = 2     # safety-relevant: ingests, incremental sync


class Status(enum.Enum):
    OK = "ok"
    REJECTED = "rejected"  # backpressure: bounded queue was full at submit
    SHED = "shed"          # admitted, then dropped as stale low-priority work
    ERROR = "error"        # the handler raised


_request_ids = itertools.count(1)


class Request:
    """Marker base class; concrete requests are the dataclasses below."""

    priority: Priority

    @property
    def kind(self) -> str:
        return type(self).__name__


@dataclass
class GetTile(Request):
    """Fetch one tile of the static base map.

    With ``encoded=True`` the response payload is the serialized tile
    blob (bytes) rather than the decoded :class:`~repro.core.hdmap.HDMap`;
    repeat requests are answered from the serving cache's per-version
    encoded-payload memo without re-serializing.

    ``max_staleness`` bounds stale-while-revalidate serving of encoded
    payloads: a cached blob built at a version up to that many versions
    behind the current one may be served (the response's ``staleness``
    says how far behind the payload actually is, and the tile is marked
    so the next request re-encodes it fresh). ``None`` defers to the
    service-wide ``stale_tile_versions`` default; ``0`` demands an
    exactly-current payload.
    """

    tile: TileId
    priority: Priority = Priority.NORMAL
    request_id: int = field(default_factory=lambda: next(_request_ids))
    encoded: bool = False
    max_staleness: Optional[int] = None


@dataclass
class SpatialQuery(Request):
    """All elements (or landmarks only) within ``radius`` of (x, y)."""

    x: float
    y: float
    radius: float
    landmarks_only: bool = False
    priority: Priority = Priority.NORMAL
    request_id: int = field(default_factory=lambda: next(_request_ids))


@dataclass
class ChangesSince(Request):
    """Incremental sync: atomic delta of everything after ``since_version``.

    With ``encoded=True`` the response payload is the binary delta wire
    format (bytes, see :func:`repro.pack.encode_delta`) instead of the
    :class:`~repro.update.distribution.SyncDelta` object — what a real
    change feed ships over the network.
    """

    since_version: int
    priority: Priority = Priority.HIGH
    request_id: int = field(default_factory=lambda: next(_request_ids))
    encoded: bool = False


@dataclass
class IngestPatch(Request):
    """Submit a crowd-sourced patch to the authoritative database."""

    patch: MapPatch
    priority: Priority = Priority.HIGH
    request_id: int = field(default_factory=lambda: next(_request_ids))


@dataclass
class Snapshot(Request):
    """Full map copy — the bootstrap path incremental sync avoids."""

    priority: Priority = Priority.LOW
    request_id: int = field(default_factory=lambda: next(_request_ids))


@dataclass
class Response:
    """Outcome of one request.

    ``version`` is the database version the request was served at (−1 when
    the request never reached a handler, e.g. REJECTED/SHED). ``latency_s``
    spans submit → completion, so it includes queueing delay.

    ``staleness`` is the explicit per-tile staleness bound surfaced by
    stale-while-revalidate tile serving: how many versions behind
    ``version`` the returned payload was built at (0 everywhere except
    encoded ``GetTile`` answered from a within-bound stale memo entry).
    """

    status: Status
    payload: Any = None
    version: int = -1
    latency_s: float = 0.0
    error: str = ""
    staleness: int = 0

    @property
    def ok(self) -> bool:
        return self.status is Status.OK
