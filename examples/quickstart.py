"""Quickstart: build a world, query the map, plan a route, drive it.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import LaneRouter, generate_grid_city, validate_map
from repro.core import Severity
from repro.world import drive_lane_sequence


def main() -> None:
    rng = np.random.default_rng(7)

    # 1. A ground-truth urban HD map: lanes, boundaries, signs, lights,
    #    crosswalks, turn connectors — all linked and spatially indexed.
    city = generate_grid_city(rng, blocks_x=4, blocks_y=3, block_size=200.0)
    print(f"built {city}")
    print(f"  element counts: {city.counts_by_kind()}")
    print(f"  total lane length: {city.total_lane_length() / 1000:.1f} km")

    # 2. Integrity validation (the checks a map provider runs before
    #    publication).
    issues = validate_map(city)
    errors = [i for i in issues if i.severity is Severity.ERROR]
    print(f"  validation: {len(errors)} errors, "
          f"{len(issues) - len(errors)} warnings")

    # 3. Spatial queries: what is around a point?
    x, y = 200.0, 200.0
    lane, dist = city.nearest_lane(x, y)
    print(f"\nnearest lane to ({x:.0f}, {y:.0f}): {lane.id} "
          f"({dist:.1f} m away, limit {lane.speed_limit * 3.6:.0f} km/h)")
    landmarks = city.landmarks_in_radius(x, y, 50.0)
    print(f"  {len(landmarks)} landmarks within 50 m")

    # 4. Lane-level routing over the topological layer.
    router = LaneRouter(city)
    lanes = [l for l in city.lanes() if l.length > 60]
    route = router.route_astar(lanes[0].id, lanes[-1].id)
    print(f"\nroute: {route.n_lanes} lanes, {route.cost:.0f} m cost, "
          f"{route.stats.expansions} nodes expanded")

    # 5. Human-readable guidance for the same lane-level route.
    from repro.planning import describe_route, render_guidance

    print("\nguidance:")
    print(render_guidance(describe_route(city, route)))

    # 6. Drive the first stretch of the route and report the track.
    trajectory = drive_lane_sequence(city, route.lane_ids[:3], rng=rng)
    print(f"\ndrove {trajectory.path_length():.0f} m "
          f"in {trajectory.duration:.0f} s "
          f"({len(trajectory)} trajectory samples)")


if __name__ == "__main__":
    main()
