"""ATV safety-sign HD-map update (Tas et al. [10], [11]).

The ATV drives the factory floor with visual SLAM and object detection; a
*virtual HD map* of detected signs is built along the way, then compared
against the valid HD map. Signs in the virtual map without a map
counterpart are NEW; mapped signs never observed despite being in range
are MISSING. Confirmed differences are batched into one MapPatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.changes import ChangeType, MapChange, match_changes
from repro.core.elements import SignType, TrafficSign
from repro.core.hdmap import HDMap
from repro.core.ids import ElementId
from repro.core.versioning import MapPatch
from repro.geometry.transform import SE2
from repro.sensors.camera import Camera
from repro.world.scenario import Scenario
from repro.world.traffic import Trajectory
from repro.atv.vslam import VisualSlam


@dataclass
class SignUpdateReport:
    detected_changes: List[MapChange]
    patch: MapPatch
    precision: float
    recall: float


class AtvSignUpdater:
    """Drive, build the virtual sign map, diff it against the prior."""

    def __init__(self, prior: HDMap, camera: Optional[Camera] = None,
                 match_radius: float = 1.5,
                 min_observations: int = 3,
                 miss_ratio: float = 0.25) -> None:
        self.prior = prior
        self.camera = camera if camera is not None else Camera(
            max_range=15.0, detection_prob=0.9, false_positive_rate=0.02,
            bearing_sigma=np.radians(1.0), range_sigma_rel=0.03)
        self.match_radius = match_radius
        self.min_observations = min_observations
        self.miss_ratio = miss_ratio

    # ------------------------------------------------------------------
    def run(self, scenario: Scenario, trajectory: Trajectory,
            slam: VisualSlam, rng: np.random.Generator,
            frame_dt: float = 0.5) -> SignUpdateReport:
        reality = scenario.reality
        observations: List[np.ndarray] = []
        expected_counts: Dict[ElementId, int] = {}
        seen_counts: Dict[ElementId, int] = {}

        start = trajectory.pose_at(trajectory.start_time)
        slam.start(start, trajectory.start_time)
        prev_pose = start
        t = trajectory.start_time + frame_dt
        while t <= trajectory.end_time:
            true_pose = trajectory.pose_at(t)
            ds = true_pose.distance_to(prev_pose) * (1 + rng.normal(0, 0.01))
            dtheta = wrapd(true_pose.theta - prev_pose.theta) \
                + float(rng.normal(0, 0.004))
            est_pose = slam.step(t, ds, dtheta,
                                 np.array([true_pose.x, true_pose.y]), rng)
            prev_pose = true_pose

            detections = self.camera.observe_signs(reality, true_pose, rng, t=t)
            det_world = [est_pose.apply(d.body_frame_position())
                         for d in detections]
            expected = [
                s for s in self.prior.landmarks_in_radius(
                    est_pose.x, est_pose.y, self.camera.max_range)
                if isinstance(s, TrafficSign)
                and self.camera.in_view(est_pose, s.position)
            ]
            used = [False] * len(det_world)
            for sign in expected:
                expected_counts[sign.id] = expected_counts.get(sign.id, 0) + 1
                for i, w in enumerate(det_world):
                    if not used[i] and float(np.hypot(*(w - sign.position))) \
                            <= self.match_radius:
                        used[i] = True
                        seen_counts[sign.id] = seen_counts.get(sign.id, 0) + 1
                        break
            observations.extend(w for i, w in enumerate(det_world)
                                if not used[i])
            t += frame_dt

        changes, patch = self._conclude(observations, expected_counts,
                                        seen_counts)
        counts = match_changes(
            changes,
            [c for c in scenario.true_changes
             if c.change_type in (ChangeType.ADDED, ChangeType.REMOVED)],
            radius=self.match_radius * 2,
        )
        tp, fp, fn = counts["tp"], counts["fp"], counts["fn"]
        precision = tp / (tp + fp) if tp + fp else 1.0
        recall = tp / (tp + fn) if tp + fn else 1.0
        return SignUpdateReport(detected_changes=changes, patch=patch,
                                precision=precision, recall=recall)

    # ------------------------------------------------------------------
    def _conclude(self, observations: List[np.ndarray],
                  expected_counts: Dict[ElementId, int],
                  seen_counts: Dict[ElementId, int]
                  ) -> Tuple[List[MapChange], MapPatch]:
        changes: List[MapChange] = []
        patch = MapPatch(source="atv")
        # Missing signs.
        for sign_id, expected in expected_counts.items():
            seen = seen_counts.get(sign_id, 0)
            if expected >= self.min_observations \
                    and seen <= self.miss_ratio * expected:
                sign = self.prior.get(sign_id)
                assert isinstance(sign, TrafficSign)
                changes.append(MapChange(
                    ChangeType.REMOVED, sign_id,
                    (float(sign.position[0]), float(sign.position[1])),
                ))
                patch.remove(sign_id)
        # New signs.
        if observations:
            from repro.creation.crowdsource import _greedy_cluster

            pts = np.array(observations)
            for members in _greedy_cluster(pts, self.match_radius):
                if len(members) < self.min_observations:
                    continue
                position = pts[members].mean(axis=0)
                eid = self.prior.new_id("sign")
                changes.append(MapChange(
                    ChangeType.ADDED, eid,
                    (float(position[0]), float(position[1])),
                ))
                patch.add(TrafficSign(id=eid, position=position,
                                      sign_type=SignType.SAFETY))
        return changes, patch


def wrapd(angle: float) -> float:
    return float(np.arctan2(np.sin(angle), np.cos(angle)))
