"""Floating-car / probe data (FCD) generation.

Massow et al. [28] derive HD maps from connected-vehicle probe data;
Pannen et al. [42], [44] detect map changes from FCD statistics. A probe
trace is a low-rate GNSS track, optionally enriched with the extra sensor
channels a connected vehicle can report (lane observations, sign
detections).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.hdmap import HDMap
from repro.sensors.camera import Camera, LaneObservation, SignDetection
from repro.sensors.gnss import GnssFix, GnssSensor
from repro.sensors.base import SensorGrade
from repro.world.traffic import Trajectory


@dataclass
class ProbeTrace:
    """One vehicle's uploaded trace."""

    vehicle_id: int
    fixes: List[GnssFix]
    lane_observations: List[LaneObservation] = field(default_factory=list)
    sign_detections: List[SignDetection] = field(default_factory=list)

    @property
    def positions(self) -> np.ndarray:
        return np.array([f.position for f in self.fixes])


class ProbeGenerator:
    """Generates probe traces from trajectories over the *reality* map.

    ``with_sensors=False`` reproduces Massow's GPS-only pipeline input;
    ``with_sensors=True`` adds the camera channels their richer variant
    assumes.
    """

    def __init__(self, grade: SensorGrade = SensorGrade.AUTOMOTIVE,
                 rate_hz: float = 1.0, with_sensors: bool = False,
                 camera: Optional[Camera] = None) -> None:
        self.gnss = GnssSensor(grade, rate_hz=rate_hz)
        self.with_sensors = with_sensors
        self.camera = camera if camera is not None else Camera()

    def generate(self, reality: HDMap, trajectory: Trajectory,
                 vehicle_id: int, rng: np.random.Generator) -> ProbeTrace:
        fixes = self.gnss.measure(trajectory, rng)
        trace = ProbeTrace(vehicle_id=vehicle_id, fixes=fixes)
        if self.with_sensors:
            for fix in fixes:
                pose = trajectory.pose_at(fix.t)
                lane_obs = self.camera.observe_lanes(reality, pose, rng, t=fix.t)
                if lane_obs is not None:
                    trace.lane_observations.append(lane_obs)
                trace.sign_detections.extend(
                    self.camera.observe_signs(reality, pose, rng, t=fix.t)
                )
        return trace

    def generate_fleet(self, reality: HDMap, trajectories: List[Trajectory],
                       rng: np.random.Generator) -> List[ProbeTrace]:
        return [self.generate(reality, traj, i, rng)
                for i, traj in enumerate(trajectories)]
