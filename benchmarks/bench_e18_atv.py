"""E18 — Tas et al. [10], [11]: ATV HD-map update in a smart factory.

Paper: visual SLAM + object detection finds new/missing safety signs by
comparing the virtual map against the valid HD map. Shape: driving the
aisles detects the injected sign changes with high precision and recall.
"""

import numpy as np
from conftest import once

from repro.atv import AtvSignUpdater, VisualSlam
from repro.core import VersionedMap
from repro.eval import ResultTable
from repro.world import ChangeSpec, apply_changes, generate_factory_floor
from repro.world.traffic import drive_lane_sequence


def _experiment(rng):
    factory = generate_factory_floor(rng, aisles=5, aisle_length=80.0)
    scenario = apply_changes(factory,
                             ChangeSpec(add_signs=3, remove_signs=3), rng)
    aisle_lanes = [l for l in scenario.reality.lanes() if l.length > 40]

    updater = AtvSignUpdater(scenario.prior.copy())
    all_changes = []
    patch_ops = 0
    for lane in aisle_lanes:
        traj = drive_lane_sequence(scenario.reality, [lane.id], rng=rng,
                                   lateral_sigma=0.05)
        # Indoors, visual SLAM re-localizes continuously against the rich
        # factory structure: model it as anchors every ~20 m of aisle.
        stations = np.arange(0.0, lane.length + 1.0, 20.0)
        anchors = [lane.centerline.point_at(float(s)).copy()
                   for s in stations]
        report = updater.run(scenario, traj, VisualSlam(anchors), rng)
        all_changes.extend(report.detected_changes)
        patch_ops += len(report.patch)

    from repro.core.changes import ChangeType, match_changes

    # Aisles overlap in sensor range: the same change can be reported by
    # two runs. Deduplicate by type + position before scoring.
    deduped = []
    for change in all_changes:
        dup = any(c.change_type is change.change_type
                  and c.distance_to(change) < 3.0 for c in deduped)
        if not dup:
            deduped.append(change)

    truth = [c for c in scenario.true_changes
             if c.change_type in (ChangeType.ADDED, ChangeType.REMOVED)]
    counts = match_changes(deduped, truth, radius=3.0)
    return counts, len(truth), patch_ops


def test_e18_atv_sign_update(benchmark, rng):
    counts, n_truth, patch_ops = once(benchmark, _experiment, rng)
    tp, fp, fn = counts["tp"], counts["fp"], counts["fn"]
    precision = tp / (tp + fp) if tp + fp else 1.0
    recall = tp / (tp + fn) if tp + fn else 0.0

    table = ResultTable("E18", "ATV factory sign update [10], [11]")
    table.add("true sign changes", str(n_truth), f"{tp} found", ok=tp >= 1)
    table.add("recall", "high", f"{100 * recall:.0f} %", ok=recall >= 0.5)
    table.add("precision", "high", f"{100 * precision:.0f} %",
              ok=precision >= 0.6)
    table.add("patch operations emitted", "batched", str(patch_ops),
              ok=patch_ops >= tp)
    table.print()
    assert table.all_ok()
