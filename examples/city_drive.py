"""Rule-aware city driving: the regulatory layer in the loop.

A vehicle rolls through the grid city under the behavior planner: it
cruises at the mapped speed limit, brakes for red lights the HD map says
are ahead, waits out the red phase, and follows slower traffic — while the
map itself is served tile-by-tile from a bounded streaming working set.

Run:  python examples/city_drive.py
"""

import numpy as np

from repro import generate_grid_city
from repro.planning import BehaviorPlanner, BehaviorState, simulate_approach
from repro.storage import StreamingMap, TileStore


def main() -> None:
    rng = np.random.default_rng(17)
    city = generate_grid_city(rng, blocks_x=4, blocks_y=3, block_size=220.0)

    # Serve the map as streamed tiles (bounded memory), query it normally.
    store = TileStore.build(city, tile_size=250.0)
    streaming = StreamingMap(store, max_tiles=6)
    print(f"map sharded into {len(store.tiles())} tiles "
          f"({store.total_bytes() / 1024:.0f} KB total); "
          f"working set capped at 6 tiles")

    planner = BehaviorPlanner(city)
    lanes = [l for l in city.lanes() if l.length > 120]
    lane = lanes[0]
    print(f"\ndriving {lane.id} ({lane.length:.0f} m, "
          f"limit {lane.speed_limit * 3.6:.0f} km/h)\n")

    history = simulate_approach(planner, lane.id, t0=2.0,
                                initial_speed=10.0)
    last_state = None
    for s, v, decision in history:
        if decision.state is not last_state:
            print(f"  s={s:6.1f} m  v={v:5.1f} m/s  -> {decision.state.value}"
                  f"  ({decision.reason})")
            last_state = decision.state

    stopped = min(v for _, v, _ in history)
    light_stops = sum(1 for _, _, d in history
                      if d.state is BehaviorState.STOPPING_LIGHT)
    print(f"\nminimum speed {stopped:.1f} m/s over the drive; "
          f"{light_stops} planner ticks spent handling traffic lights")

    # Replay the drive against the streamed map: every perception query is
    # answered out of the bounded tile cache.
    n_landmarks = 0
    for s, _, _ in history[::5]:
        point = lane.centerline.point_at(min(s, lane.length))
        n_landmarks += len(streaming.landmarks_in_radius(
            float(point[0]), float(point[1]), 60.0))
    print(f"streamed perception queries: {n_landmarks} landmark hits, "
          f"cache hit rate {100 * streaming.stats.hit_rate:.0f} %, "
          f"{len(streaming.resident_tiles())} tiles resident")


if __name__ == "__main__":
    main()
