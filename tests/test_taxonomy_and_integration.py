"""Taxonomy coverage plus cross-module integration flows."""

import numpy as np
import pytest

from repro import taxonomy
from repro.core import ChangeType, VersionedMap, validate_map
from repro.core.validation import Severity
from repro.world import ChangeSpec, apply_changes, drive_route


class TestTaxonomy:
    def test_eight_subareas_two_categories(self):
        assert len(taxonomy.TABLE_I) == 8
        cats = taxonomy.by_category()
        assert set(cats) == {taxonomy.DESIGN_AND_CONSTRUCTION,
                             taxonomy.APPLICATIONS}
        assert len(cats[taxonomy.DESIGN_AND_CONSTRUCTION]) == 3
        assert len(cats[taxonomy.APPLICATIONS]) == 5

    def test_full_coverage(self):
        coverage = taxonomy.coverage()
        missing = [name for name, ok in coverage.items() if not ok]
        assert missing == []

    def test_render_contains_all_subareas(self):
        text = taxonomy.render_table()
        for area in taxonomy.TABLE_I:
            assert area.name in text

    def test_unimplemented_module_detected(self):
        fake = taxonomy.SubArea("x", "fake", ("1",), ("repro.nonexistent",))
        assert not fake.implemented()


class TestEndToEndMaintenance:
    """The survey's central loop: create -> change -> detect -> patch."""

    def test_slamcu_patch_closes_the_loop(self):
        rng = np.random.default_rng(900)
        from repro.update import Slamcu
        from repro.world import generate_highway

        hw = generate_highway(rng, length=3000.0, sign_spacing=200.0)
        scenario = apply_changes(hw, ChangeSpec(add_signs=3, remove_signs=2),
                                 rng)
        lanes = list(scenario.reality.lanes())
        trajectories = [drive_route(scenario.reality, lanes[i].id, 2900.0, rng)
                        for i in (0, 2)]
        prior = scenario.prior.copy()
        report = Slamcu(prior).run(scenario, trajectories, rng)

        vm = VersionedMap(prior)
        vm.apply(report.patch)
        # After patching, re-diffing prior against reality should show
        # fewer remaining sign changes than before.
        from repro.core import diff_maps

        remaining = [c for c in diff_maps(vm.map, scenario.reality)
                     if c.element_id.kind == "sign"
                     and c.change_type in (ChangeType.ADDED,
                                           ChangeType.REMOVED)]
        assert len(remaining) < scenario.n_changes

    def test_created_map_supports_routing_and_localization(self):
        """Probe-created lanes are good enough to route and localize on."""
        rng = np.random.default_rng(901)
        from repro.core import HDMap, Lane
        from repro.creation import ProbeMapper
        from repro.planning import LaneRouter
        from repro.sensors import ProbeGenerator
        from repro.world import generate_highway

        hw = generate_highway(rng, length=1500.0)
        lane = next(iter(hw.lanes()))
        trajectories = [drive_route(hw, lane.id, 1400.0, rng)
                        for _ in range(10)]
        traces = ProbeGenerator().generate_fleet(hw, trajectories, rng)
        result = ProbeMapper(hw).build(traces)
        assert result.lanes_found >= 1

        derived = HDMap("derived")
        for line in result.centerlines:
            derived.add(Lane(id=derived.new_id("lane"), centerline=line))
        # The derived map is spatially queryable.
        probe_lane, dist = derived.nearest_lane(*trajectories[0].positions()[50])
        assert dist < 5.0

    def test_storage_roundtrip_preserves_routability(self, city):
        from repro.planning import LaneRouter
        from repro.storage import decode_map, encode_map

        again = decode_map(encode_map(city))
        router = LaneRouter(again)
        lanes = [l for l in again.lanes() if l.length > 50]
        result = router.route_astar(lanes[0].id, lanes[-1].id)
        assert result.n_lanes > 1

    def test_generated_worlds_always_validate(self):
        from repro.world import generate_grid_city, generate_highway
        from repro.world.hdmapgen import HDMapGenSampler, MapTopologySpec

        for seed in (0, 1, 2):
            rng = np.random.default_rng(seed)
            for hdmap in (
                generate_highway(rng, length=1000.0),
                generate_grid_city(rng, 2, 2),
                HDMapGenSampler(MapTopologySpec(n_junctions=5)).sample_map(rng),
            ):
                errors = [i for i in validate_map(hdmap)
                          if i.severity is Severity.ERROR]
                assert errors == [], f"seed {seed}: {errors[:3]}"
