"""A2 — Ablations on the localization design choices.

- HDMI-Loc dash-aware rasterization: without painted-dash structure the
  raster has no longitudinal information and the filter drifts along
  track;
- landmark class weighting: sparse unambiguous features break the
  dash-period aliasing;
- edge-band matching in lane-marking localization: the road edge is what
  prevents one-lane-over aliasing.
"""

import numpy as np
from conftest import once

from repro.eval import ResultTable
from repro.geometry.raster import BitmaskRaster, GridSpec
from repro.geometry.transform import SE2
from repro.localization.hdmi_loc import (
    HdmiLocalizer,
    RASTER_CLASSES,
    observe_patch,
    rasterize_map,
)
from repro.sensors import WheelOdometry
from repro.world import drive_route, generate_highway


def _solid_raster(hdmap, resolution=0.25):
    """Ablated raster: every boundary drawn solid (no dash structure)."""
    spec = GridSpec.from_bounds(hdmap.bounds(), resolution, 10.0)
    raster = BitmaskRaster(spec, RASTER_CLASSES)
    offsets = np.array([[dx, dy] for dx in (-1, 0, 1) for dy in (-1, 0, 1)],
                       dtype=float) * resolution
    from repro.core.elements import BoundaryType

    for boundary in hdmap.boundaries():
        cls = ("road_edge"
               if boundary.boundary_type in (BoundaryType.ROAD_EDGE,
                                             BoundaryType.CURB)
               else "marking")
        pts = boundary.line.resample(resolution * 0.6).points
        dilated = (pts[:, None, :] + offsets[None, :, :]).reshape(-1, 2)
        raster.mark_points(cls, dilated)
    for lm in hdmap.landmarks():
        raster.mark_points("landmark", lm.position[None, :] + offsets)
    return raster


def _run(hdmap, raster, trajectory, odometry, seed, class_weights=None):
    rng = np.random.default_rng(seed)
    localizer = HdmiLocalizer(raster, rng)
    if class_weights is not None:
        localizer.CLASS_WEIGHTS = class_weights
    p0 = trajectory.pose_at(trajectory.start_time)
    localizer.initialize(SE2(p0.x + 1.5, p0.y + 1.0, p0.theta))
    errors = []
    for i, delta in enumerate(odometry[:300]):
        localizer.predict(delta.ds, delta.dtheta)
        if i % 2 == 0:
            patch = observe_patch(hdmap, trajectory.pose_at(delta.t), rng)
            localizer.update(patch)
        errors.append(localizer.estimate().distance_to(
            trajectory.pose_at(delta.t)))
    return float(np.median(errors[100:]))


def _experiment(rng):
    # Sparse poles: the dash structure must carry the longitudinal
    # information (with dense poles the landmark channel would mask the
    # ablation).
    hw = generate_highway(rng, length=3000.0, pole_spacing=400.0,
                          sign_spacing=500.0)
    lane = next(iter(hw.lanes()))
    trajectory = drive_route(hw, lane.id, 2900.0, rng)
    odometry = WheelOdometry().measure(trajectory, rng)

    dashed = rasterize_map(hw, 0.25)
    solid = _solid_raster(hw, 0.25)
    flat_weights = {c: 1.0 for c in RASTER_CLASSES}

    return {
        "full": _run(hw, dashed, trajectory, odometry, 5),
        "solid": _run(hw, solid, trajectory, odometry, 5),
        "flat_weights": _run(hw, dashed, trajectory, odometry, 5,
                             class_weights=flat_weights),
    }


def test_a02_localization_ablations(benchmark, rng):
    results = once(benchmark, _experiment, rng)

    table = ResultTable("A2", "HDMI-Loc design ablations")
    table.add("full system median (m)", "(best)", f"{results['full']:.2f}",
              ok=results["full"] < 1.0)
    table.add("solid raster (no dashes) (m)", "(worse: no along-track info)",
              f"{results['solid']:.2f}",
              ok=results["solid"] > results["full"])
    table.add("flat class weights (m)", "(worse or equal: aliasing)",
              f"{results['flat_weights']:.2f}",
              ok=results["flat_weights"] >= results["full"] * 0.8)
    table.print()
    assert table.all_ok()
