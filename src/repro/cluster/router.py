"""ClusterRouter: consistent-hash sharding with failover and rebalance.

The router is the thin tier in front of N shard processes (see
:mod:`repro.cluster.shard`). It owns three pieces of authoritative
routing state and nothing else — the map data itself lives in shards:

- the **ownership map**: tile → shard via rendezvous hashing
  (:func:`repro.core.tiles.consistent_hash_owner`), plus a home-tile
  index ``element id → tile`` (an element keeps its first home tile for
  the cluster's lifetime, so removes and replaces route to the same
  shard that accepted the add);
- the **journal**: every *acked* sub-patch, recorded as the effective
  ops the shard actually applied. The journal is the durability story:
  a dead shard is restarted from its base subset plus a replay of the
  journal filtered to its owned tiles, so an acked write survives any
  crash. It also resolves write ambiguity — a write that timed out may
  or may not have been applied, so the router restarts the shard from
  the journal (erasing the ambiguous effect) and resends exactly once;
- **leases**: a shard's ownership is reasserted on every successful
  call and re-verified with a ping once ``lease_s`` elapses quietly;
  a failed ping triggers the same restart-from-journal path.

Request routing: ``GetTile``/``IngestPatch`` pin to the owning shard
(multi-shard patches are split into per-shard sub-patches);
``SpatialQuery``/``Snapshot``/``ChangesSince`` scatter-gather with a
merge that deduplicates border elements by id and filters dynamic state
by *current* ownership — which is what makes rebalance safe: growing
N → N+1 starts the new shard from the journal and simply swaps the
ownership map, leaving old shards' moved-tile state in place but
unobservable.

The read path is concurrent end to end. Each shard connection is
pipelined (:class:`~repro.cluster.rpc.PipelinedConnection`): any number
of router threads keep calls in flight on the one socket, and the shard
answers out of order as its worker pool finishes. Reads therefore do
NOT hold the shard handle lock across the RPC — they take it only to
pick a target — and scatter-gather ops issue every shard call at once
and join. Eligible reads (GetTile/SpatialQuery/ChangesSince) round-
robin across the primary and live replicas, guarded by a **version
floor**: a reply below the shard version this router has already
observed is discarded (``cluster.read.replica_lag``) and the read
retries on the primary, so replica scaling never weakens version
monotonicity. Identical concurrent GetTiles coalesce into a single
flight (``cluster.read.coalesced``). ``pipeline=False`` restores the
legacy lockstep discipline as a measurement baseline.

Reads fail over to a replica when the primary dies mid-call; writes
restart the primary first (replicas receive acked patches synchronously,
so a replica is always at-or-behind the journal and catches up by
restart-replay if it diverges).
"""

from __future__ import annotations

import multiprocessing
import random
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.cluster.rpc import (
    PipelinedConnection,
    RpcError,
    ShardDead,
    ShardTimeout,
)
from repro.cluster.shard import ShardBackend, ShardConfig, shard_main
from repro.core.changes import ChangeType, MapChange
from repro.core.hdmap import HDMap
from repro.core.ids import ElementId
from repro.core.tiles import (
    TileId,
    TileScheme,
    consistent_hash_owner,
    ownership_map,
)
from repro.core.versioning import (
    AddElement,
    MapPatch,
    RemoveElement,
    ReplaceElement,
)
from repro.errors import ClusterError
from repro.obs.log import EVENT_LOG, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
)
from repro.obs.trace import TRACER, attach_context
from repro.serve.api import (
    ChangesSince,
    GetTile,
    IngestPatch,
    Request,
    Response,
    Snapshot,
    SpatialQuery,
    Status,
)
from repro.serve.metrics import ServiceMetrics
from repro.storage.binary import encode_map
from repro.storage.tilestore import TileStore
from repro.update.distribution import IngestResult, SyncDelta

_log = get_logger("cluster.router")

_CHANGE_FOR_OP = {
    AddElement: ChangeType.ADDED,
    RemoveElement: ChangeType.REMOVED,
    ReplaceElement: ChangeType.MODIFIED,
}


# ---------------------------------------------------------------------------
# Transports: the same ShardBackend behind two wire-levels.
# ---------------------------------------------------------------------------

class LocalShard:
    """In-process transport: direct dispatch, no sockets, no fork.

    Used by unit tests and doc tooling where process isolation is not
    the point. Concurrent calls are naturally pipelined (each caller
    thread dispatches straight into the thread-safe backend), but
    ``slow``-injected delays block the caller (there is no receive loop
    to time out), so timeout-driven chaos runs on :class:`ProcessShard`.
    """

    mode = "local"

    def __init__(self, config: ShardConfig) -> None:
        self._backend = ShardBackend(config).start()
        self._dead = False

    @property
    def alive(self) -> bool:
        return not self._dead

    def call(self, op: str, payload: Any = None,
             timeout_s: Optional[float] = None,
             trace_ctx: Any = None) -> Any:
        if self._dead:
            raise ShardDead("shard was killed")
        if op == "events":
            return []  # shard already logs into the router's EVENT_LOG
        if op == "telemetry":
            # Same-process spans/events already land in the router's
            # recorder/log; an empty batch keeps the harvester uniform.
            return {"spans": [], "events": [], "dropped": 0,
                    "clock": time.monotonic()}
        if op == "crash":
            self.kill()
            raise ShardDead("injected crash")
        return self._backend.dispatch(op, payload, trace_ctx)

    @property
    def late_discards(self) -> int:
        return 0  # no reader thread, no late replies to discard

    @property
    def pending(self) -> int:
        return 0

    def kill(self) -> None:
        if not self._dead:
            self._dead = True
            self._backend.stop()

    def close(self) -> None:
        self.kill()


class ProcessShard:
    """Forked shard process behind a pipelined socketpair connection.

    Any number of router threads may have calls in flight on the one
    socket at once; the shard answers ``serve`` ops out of order as its
    worker pool finishes them (see :class:`PipelinedConnection`).
    """

    mode = "process"

    def __init__(self, config: ShardConfig,
                 start_method: str = "fork") -> None:
        ctx = multiprocessing.get_context(start_method)
        parent, child = socket.socketpair()
        self._proc = ctx.Process(
            target=shard_main, args=(config, child), daemon=True,
            name=f"{config.name}-{config.index}")
        self._proc.start()
        # Close our copy of the child end immediately: EOF detection on
        # shard death depends on the child end living only in the child.
        child.close()
        self._conn = PipelinedConnection(parent)

    @property
    def alive(self) -> bool:
        return self._proc.is_alive()

    def call(self, op: str, payload: Any = None,
             timeout_s: Optional[float] = None,
             trace_ctx: Any = None) -> Any:
        return self._conn.call(op, payload, timeout_s,
                               trace_ctx=trace_ctx)

    @property
    def late_discards(self) -> int:
        """Replies the reader dropped because their caller timed out."""
        return self._conn.late_discards

    @property
    def pending(self) -> int:
        """Requests awaiting a reply in the reader's in-flight table."""
        return self._conn.inflight

    def kill(self) -> None:
        if self._proc.is_alive():
            self._proc.kill()
        self._proc.join(timeout=5.0)
        self._conn.close()

    def close(self) -> None:
        if self._proc.is_alive():
            try:
                self._conn.call("shutdown", timeout_s=2.0)
            except (ShardDead, ShardTimeout, RpcError):
                pass
            self._proc.join(timeout=2.0)
        if self._proc.is_alive():
            self._proc.kill()
            self._proc.join(timeout=5.0)
        self._conn.close()


# ---------------------------------------------------------------------------


@dataclass
class _JournalEntry:
    """One acked sub-patch: the ops a shard actually applied."""

    seq: int
    source: str
    confidence: float
    ops: List[Tuple[Optional[TileId], object]]  # (home tile, PatchOp)


class _ShardHandle:
    """Per-shard routing state: transports, lock, lease, last version."""

    def __init__(self, index: int) -> None:
        self.index = index
        # Serializes writes, restart/topology decisions, and lease pings
        # for this shard. Reads do NOT hold it across the RPC — the
        # pipelined connection multiplexes any number of concurrent
        # calls — they only take it briefly to pick a target.
        self.lock = threading.RLock()
        # Leaf lock for the last_version read-modify-write (reads finish
        # concurrently and must never let a smaller version overwrite a
        # larger one).
        self.vlock = threading.Lock()
        self.primary: Optional[Any] = None
        self.replicas: List[Any] = []
        self.lease_until = 0.0
        self.last_version = 0
        # Round-robin cursor across primary + live replicas for
        # replica-routed reads.
        self.rr = 0


class _Flight:
    """One in-progress coalesced GetTile; followers wait on ``done``."""

    __slots__ = ("done", "response")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.response: Optional[Response] = None


#: Request kinds replicas may serve (static tiles and dynamic reads
#: guarded by the version floor). Snapshot stays pinned to primaries:
#: it feeds bootstrap/journal-parity checks where the authoritative
#: copy is worth the load imbalance.
_REPLICA_READ_KINDS = (GetTile, SpatialQuery, ChangesSince)


def estimate_clock_offset(call: Callable[..., float],
                          clock: Callable[[], float] = time.monotonic,
                          pings: int = 3) -> float:
    """Estimate a peer process's monotonic clock offset via RTT pings.

    ``call("clock")`` returns the peer's ``time.monotonic()``; bracketed
    by local send/receive stamps, the offset is ``peer_ts − midpoint``.
    The estimate from the smallest round trip wins — asymmetric
    scheduling delay is the whole error term, and the tightest bracket
    bounds it best. Rebasing a harvested span onto the local clock is
    then ``start_s − offset``.
    """
    best_rtt: Optional[float] = None
    best_offset = 0.0
    for _ in range(max(1, pings)):
        t0 = clock()
        peer_ts = float(call("clock"))
        t1 = clock()
        rtt = t1 - t0
        if best_rtt is None or rtt < best_rtt:
            best_rtt = rtt
            best_offset = peer_ts - (t0 + t1) / 2.0
    return best_offset


class TelemetryHarvester:
    """Pulls spans and events out of shard processes into the router.

    Each shard process records spans into its own ring (continuations of
    router-propagated contexts, span ids namespaced per process); this
    harvester drains those rings over the ``telemetry`` op in bounded
    batches, rebases shard-monotonic timestamps onto the router clock
    with a ping-based offset estimate, tags each span with its shard and
    role (primary / replica slot), and ingests the result into the
    router-process recorder — after which ``build_tree`` /
    ``format_trace`` / ``verify_spans`` see one coherent tree per trace.

    Runs as a daemon thread on a jittered interval (so N routers never
    synchronize their harvest bursts), plus a final drain on router
    ``close()``. Spans a shard overwrote before harvest are counted into
    ``cluster.telemetry.dropped`` — loss is visible, never silent.
    """

    def __init__(self, router: "ClusterRouter", interval_s: float = 1.0,
                 batch: int = 512, jitter: float = 0.25,
                 seed: int = 0) -> None:
        self._router = router
        self.interval_s = interval_s
        self.batch = batch
        self.jitter = jitter
        self._rng = random.Random(seed)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.started = False

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "TelemetryHarvester":
        if self._thread is None:
            self.started = True
            self._thread = threading.Thread(
                target=self._loop, name="telemetry-harvester", daemon=True)
            self._thread.start()
        return self

    def stop(self, final_harvest: bool = True) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if final_harvest:
            try:
                self.harvest_once()
            except Exception:
                pass

    def _next_interval(self) -> float:
        spread = self.jitter * (2.0 * self._rng.random() - 1.0)
        return max(0.05, self.interval_s * (1.0 + spread))

    def _loop(self) -> None:
        while not self._stop.wait(self._next_interval()):
            try:
                self.harvest_once()
            except Exception:
                pass  # a dying shard mid-harvest is the router's problem

    # -- harvesting -----------------------------------------------------
    def harvest_once(self) -> Dict[str, int]:
        """One sweep over every live primary and replica."""
        router = self._router
        totals = {"spans": 0, "events": 0, "dropped": 0}
        for handle in router._handles:
            with handle.lock:
                targets: List[Tuple[str, Any]] = []
                if handle.primary is not None and handle.primary.alive:
                    targets.append(("primary", handle.primary))
                for slot, replica in enumerate(handle.replicas):
                    if replica.alive:
                        targets.append((f"replica{slot}", replica))
            for role, shard in targets:
                try:
                    offset = estimate_clock_offset(
                        lambda op, _s=shard: _s.call(
                            op, timeout_s=router.call_timeout_s))
                    batch = shard.call(
                        "telemetry",
                        {"max_spans": self.batch,
                         "max_events": self.batch},
                        timeout_s=router.call_timeout_s)
                except (ShardDead, ShardTimeout, RpcError):
                    continue
                counts = self.merge(handle.index, role, batch, offset)
                for key in totals:
                    totals[key] += counts[key]
        router.telemetry_harvests.add()
        return totals

    def merge(self, index: int, role: str, batch: Dict[str, Any],
              offset_s: float) -> Dict[str, int]:
        """Rebase, tag, and ingest one shard's telemetry batch."""
        router = self._router
        spans = list(batch.get("spans") or [])
        for span in spans:
            span["start_s"] = float(span["start_s"]) - offset_s
            if span.get("end_s") is not None:
                span["end_s"] = float(span["end_s"]) - offset_s
            attrs = span.setdefault("attrs", {})
            attrs.setdefault("shard", index)
            attrs["role"] = role
        if spans:
            TRACER.recorder.ingest(spans)
            router.telemetry_spans.add(len(spans))
        events = list(batch.get("events") or [])
        for event in events:
            event.setdefault("shard", index)
            event["role"] = role
        if events:
            EVENT_LOG.ingest(events)
            router.telemetry_events.add(len(events))
        dropped = int(batch.get("dropped") or 0)
        if dropped:
            router.telemetry_dropped.add(dropped)
        return {"spans": len(spans), "events": len(events),
                "dropped": dropped}


class ClusterRouter:
    """Routes the five request types across consistent-hashed shards.

    Drop-in for :class:`~repro.serve.service.MapService.request` from a
    client's point of view: same request/response dataclasses, with
    ``Response.version`` rewritten to the *cluster* version (a monotone
    clamp over the sum of shard versions).
    """

    def __init__(self, hdmap: HDMap, n_shards: int = 2,
                 tile_size: float = 500.0,
                 replicas: int = 0,
                 transport: str = "process",
                 n_workers: int = 2,
                 service_latency_s: float = 0.0,
                 storage_latency_s: float = 0.0,
                 stale_tile_versions: int = 0,
                 call_timeout_s: float = 10.0,
                 lease_s: float = 2.0,
                 start_method: str = "fork",
                 registry: Optional[MetricsRegistry] = None,
                 pack_path: Optional[str] = None,
                 journal_warn_threshold: int = 10_000,
                 pipeline: bool = True,
                 replica_reads: bool = True,
                 scatter: str = "concurrent",
                 clock: Callable[[], float] = time.monotonic,
                 telemetry_interval_s: Optional[float] = None,
                 telemetry_batch: int = 512) -> None:
        if n_shards < 1:
            raise ClusterError("n_shards must be >= 1")
        if replicas < 0:
            raise ClusterError("replicas must be >= 0")
        if transport not in ("process", "local"):
            raise ClusterError(f"unknown transport {transport!r}")
        if scatter not in ("concurrent", "serial"):
            raise ClusterError(f"unknown scatter mode {scatter!r}")
        self.n_shards = n_shards
        self.replicas = replicas
        self.transport = transport
        self.call_timeout_s = call_timeout_s
        self.lease_s = lease_s
        #: ``pipeline=False`` restores the legacy one-outstanding-call-
        #: per-shard read discipline (the handle lock held across the
        #: RPC) — the measurement baseline ``cluster-bench --pipeline``
        #: compares against. Writes serialize either way.
        self.pipeline = pipeline
        #: route eligible reads round-robin across primary + replicas
        #: (guarded by the per-request version floor); ``False`` keeps
        #: replicas failover-only.
        self.replica_reads = replica_reads
        #: scatter-gather dispatch: ``"concurrent"`` issues all shard
        #: calls at once and joins; ``"serial"`` iterates (baseline).
        self.scatter = scatter
        self._start_method = start_method
        self._clock = clock
        self._name = hdmap.name
        self._shard_knobs = dict(
            n_workers=n_workers, service_latency_s=service_latency_s,
            storage_latency_s=storage_latency_s,
            stale_tile_versions=stale_tile_versions)

        self._scheme = TileScheme(tile_size)
        full_store = TileStore.build(hdmap, tile_size)
        self._store_blobs: Dict[TileId, bytes] = dict(full_store._blobs)
        # Pack-backed shards: write the full base map into one pack file
        # up front; each shard (and every restart/rebalance spawn) mmaps
        # that shared file instead of receiving its blobs through the
        # fork, so spawning cost stops scaling with base-map size.
        self._pack_path = pack_path
        if pack_path is not None:
            full_store.to_pack(pack_path)
        self._partition = self._scheme.partition(hdmap)
        self._element_tile: Dict[ElementId, Optional[TileId]] = {}
        for tile, elements in self._partition.items():
            for element in elements:
                self._element_tile[element.id] = tile
        # Regulatory (non-spatial) elements have no tile; by convention
        # they live on shard 0 and survive every rebalance there.
        self._nonspatial = [e for e in hdmap.elements()
                            if e.id not in self._element_tile]
        for element in self._nonspatial:
            self._element_tile[element.id] = None
        self._all_tiles = sorted(set(self._store_blobs)
                                 | set(self._partition))
        self._owner: Dict[TileId, int] = ownership_map(
            self._all_tiles, n_shards)

        self._journal: List[_JournalEntry] = []
        self._journal_lock = threading.Lock()   # leaf lock: append/copy
        #: journal growth guard: every restart replays the whole journal,
        #: so an unbounded journal silently turns restarts O(history). The
        #: gauge makes the depth scrapeable; crossing the threshold emits
        #: one ``journal_large`` warning event.
        self.journal_warn_threshold = journal_warn_threshold
        self.journal_gauge = Gauge()
        self._journal_warned = False
        self._ingest_lock = threading.Lock()    # one writer at a time
        self._spawn_lock = threading.Lock()     # no concurrent forks
        self._version_lock = threading.Lock()
        self._version_floor = 0

        # cluster.* metrics: the standard per-kind latency/outcome
        # aggregate plus router-specific counters, and a collector for
        # merged per-shard histograms (fed by collect_shard_metrics()).
        self.metrics = ServiceMetrics()
        self.failovers = Counter()
        self.restarts = Counter()
        self.timeouts = Counter()
        self.rebalances = Counter()
        self.shards_gauge = Gauge()
        self.shards_gauge.set(n_shards)
        # Read-path concurrency instrumentation: replica_hits counts
        # reads a replica actually served, replica_lag counts reads a
        # replica answered below the version floor (retried on the
        # primary), read_coalesced counts GetTile callers that piggy-
        # backed on another caller's identical in-flight read.
        self.replica_hits = Counter()
        self.replica_lag = Counter()
        self.read_coalesced = Counter()
        self.rpc_inflight = Gauge()
        self._inflight = 0
        self._inflight_peak = 0
        self._inflight_lock = threading.Lock()
        # In-progress coalesced GetTiles keyed by (tile, encoded,
        # max_staleness); leaders insert, followers wait.
        self._flights: Dict[Tuple, _Flight] = {}
        self._flight_lock = threading.Lock()
        self._shard_latency: Dict[str, LatencyHistogram] = {}
        self._shard_outcomes: Dict[str, int] = {}
        # Telemetry plane: harvested span/event/drop accounting, plus
        # late-discard counts folded in from retired (restarted/killed)
        # connections so the collector's sum survives restarts.
        self.telemetry_spans = Counter()
        self.telemetry_events = Counter()
        self.telemetry_dropped = Counter()
        self.telemetry_harvests = Counter()
        self._late_discards_retired = 0
        self.telemetry = TelemetryHarvester(
            self, interval_s=telemetry_interval_s
            if telemetry_interval_s is not None else 1.0,
            batch=telemetry_batch)
        if registry is not None:
            self.register_into(registry)

        self._handles: List[_ShardHandle] = []
        for index in range(n_shards):
            handle = _ShardHandle(index)
            config = self._config_for(index, self._owner, n_shards)
            handle.primary = self._spawn(config)
            handle.lease_until = self._clock() + lease_s
            for _ in range(replicas):
                handle.replicas.append(self._spawn(config))
            self._handles.append(handle)
        if telemetry_interval_s is not None:
            self.telemetry.start()

    # -- lifecycle ------------------------------------------------------
    def harvest_telemetry(self) -> Dict[str, int]:
        """Pull shard spans/events into the router recorder right now."""
        return self.telemetry.harvest_once()

    def close(self) -> None:
        # Final telemetry drain before the shard processes go away —
        # without it, the tail of every trace would die with the shards.
        if self.telemetry.started or TRACER.enabled:
            self.telemetry.stop(final_harvest=True)
        else:
            self.telemetry.stop(final_harvest=False)
        for handle in self._handles:
            with handle.lock:
                for shard in [handle.primary] + handle.replicas:
                    if shard is None:
                        continue
                    try:
                        shard.close()
                    except Exception:
                        pass

    def __enter__(self) -> "ClusterRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- topology -------------------------------------------------------
    def _owner_of(self, tile: Optional[TileId],
                  owner: Dict[TileId, int], n_shards: int) -> int:
        if tile is None:
            return 0
        got = owner.get(tile)
        if got is not None:
            return got
        return consistent_hash_owner(tile, n_shards)

    def owner_of_tile(self, tile: TileId) -> int:
        """Current owning shard of ``tile``."""
        return self._owner_of(tile, self._owner, self.n_shards)

    def tiles(self) -> List[TileId]:
        """Blob-backed tiles of the static base (the GetTile universe)."""
        return sorted(self._store_blobs)

    def _centre_tile(self, element) -> Optional[TileId]:
        try:
            min_x, min_y, max_x, max_y = element.bounds()
        except NotImplementedError:
            return None
        return self._scheme.tile_of((min_x + max_x) / 2.0,
                                    (min_y + max_y) / 2.0)

    def _home_tile(self, op) -> Optional[TileId]:
        """The tile that owns this op's element (first home wins)."""
        if isinstance(op, RemoveElement):
            eid = op.element_id
            element = None
        else:
            eid = op.element.id
            element = op.element
        if eid in self._element_tile:
            return self._element_tile[eid]
        if element is None:
            return None  # remove of an unknown id → shard 0 rejects it
        return self._centre_tile(element)

    def _config_for(self, index: int, owner: Dict[TileId, int],
                    n_shards: int) -> ShardConfig:
        owned = {tile for tile, shard in owner.items() if shard == index}
        base = HDMap(f"{self._name}-shard{index}")
        for tile in sorted(owned):
            for element in self._partition.get(tile, []):
                base.add(element)
        if index == 0:
            for element in self._nonspatial:
                base.add(element)
        owned_blob_tiles = sorted(tile for tile in owned
                                  if tile in self._store_blobs)
        if self._pack_path is not None:
            blobs: Dict[TileId, bytes] = {}
        else:
            blobs = {tile: self._store_blobs[tile]
                     for tile in owned_blob_tiles}
        return ShardConfig(
            index=index, tile_size=self._scheme.tile_size,
            base_map_bytes=encode_map(base), blobs=blobs,
            replay=self._replay_for(index, owner, n_shards),
            name=f"{self._name}-shard",
            pack_path=self._pack_path,
            owned_tiles=owned_blob_tiles if self._pack_path is not None
            else [],
            **self._shard_knobs)

    def _replay_for(self, index: int, owner: Dict[TileId, int],
                    n_shards: int) -> List[MapPatch]:
        with self._journal_lock:
            entries = list(self._journal)
        out: List[MapPatch] = []
        for entry in entries:
            ops = [op for tile, op in entry.ops
                   if self._owner_of(tile, owner, n_shards) == index]
            if ops:
                out.append(MapPatch(ops=ops, source=entry.source,
                                    confidence=entry.confidence))
        return out

    # -- shard lifecycle ------------------------------------------------
    def _spawn(self, config: ShardConfig):
        # Serialized: a fork that raced another spawn would inherit the
        # other's not-yet-closed child socket end and break shard-death
        # EOF detection.
        with self._spawn_lock:
            if self.transport == "local":
                return LocalShard(config)
            return ProcessShard(config, self._start_method)

    def _retire_connection(self, shard: Any) -> None:
        """Fold a dying connection's late-discard count into the running
        total so ``cluster.rpc.late_discards`` survives the restart."""
        self._late_discards_retired += getattr(shard, "late_discards", 0)

    def _restart_primary_locked(self, handle: _ShardHandle) -> None:
        old = handle.primary
        if old is not None:
            self._retire_connection(old)
            try:
                old.kill()
            except Exception:
                pass
        config = self._config_for(handle.index, self._owner, self.n_shards)
        handle.primary = self._spawn(config)
        handle.lease_until = self._clock() + self.lease_s
        self.restarts.add()
        _log.warning("shard_restarted", shard=handle.index,
                     replayed=len(config.replay))

    def _restart_replica_locked(self, handle: _ShardHandle,
                                slot: int) -> None:
        self._retire_connection(handle.replicas[slot])
        try:
            handle.replicas[slot].kill()
        except Exception:
            pass
        config = self._config_for(handle.index, self._owner, self.n_shards)
        handle.replicas[slot] = self._spawn(config)
        self.restarts.add()
        _log.warning("replica_restarted", shard=handle.index, replica=slot)

    def _ensure_primary_locked(self, handle: _ShardHandle):
        if handle.primary is None or not handle.primary.alive:
            self._restart_primary_locked(handle)
        elif self._clock() >= handle.lease_until:
            # Lease expired quietly: reassert ownership with a ping
            # before trusting the shard with more traffic.
            try:
                handle.primary.call("ping", timeout_s=self.call_timeout_s)
                handle.lease_until = self._clock() + self.lease_s
            except (ShardDead, ShardTimeout):
                self._restart_primary_locked(handle)
        return handle.primary

    # -- rpc ------------------------------------------------------------
    def _call(self, shard, op: str, payload: Any = None,
              timeout_s: Optional[float] = None,
              attrs: Optional[Dict[str, object]] = None) -> Any:
        """All shard RPCs funnel through here so ``cluster.rpc.inflight``
        tracks router-wide concurrency regardless of transport — and so
        every shard call inside a sampled trace gets a ``cluster.rpc.<op>``
        span whose context rides the request envelope to the shard
        (``attrs`` carries the routing facts: shard index, replica slot
        or primary). A timed-out call is stamped ``timed_out`` — its
        reply, if it ever lands, is a late discard."""
        span = TRACER.span(f"cluster.rpc.{op}", **(attrs or {}))
        with self._inflight_lock:
            self._inflight += 1
            if self._inflight > self._inflight_peak:
                self._inflight_peak = self._inflight
            self.rpc_inflight.set(self._inflight)
        try:
            with span:
                try:
                    return shard.call(op, payload, timeout_s=timeout_s,
                                      trace_ctx=span.context)
                except ShardTimeout:
                    span.set("timed_out", True)
                    raise
        finally:
            with self._inflight_lock:
                self._inflight -= 1
                self.rpc_inflight.set(self._inflight)

    # -- versions -------------------------------------------------------
    def _note_version(self, handle: _ShardHandle,
                      version: Optional[int]) -> None:
        if version is None:
            return
        # vlock, not handle.lock: reads complete concurrently, and an
        # unlocked check-then-set would let a smaller version overwrite
        # a larger one.
        with handle.vlock:
            if version > handle.last_version:
                handle.last_version = version

    @property
    def version(self) -> int:
        """Monotone cluster version: clamped sum of shard versions.

        The clamp makes the sequence non-decreasing even when a crash-
        restart or rebalance changes how versions are distributed across
        shards.
        """
        total = sum(h.last_version for h in self._handles)
        with self._version_lock:
            if total > self._version_floor:
                self._version_floor = total
            return self._version_floor

    def version_vector(self) -> Dict[int, int]:
        """Last observed per-shard versions (for incremental sync)."""
        return {h.index: h.last_version for h in self._handles}

    # -- reads ----------------------------------------------------------
    def _replica_read_locked(self, handle: _ShardHandle, index: int,
                             request: Request) -> Optional[Response]:
        """Failover read: first live replica answers, or ``None``."""
        for slot, replica in enumerate(handle.replicas):
            if not replica.alive:
                continue
            try:
                response = self._call(replica, "serve", request,
                                      timeout_s=self.call_timeout_s)
            except (ShardDead, ShardTimeout):
                continue
            self.failovers.add()
            _log.warning("read_failover", shard=index,
                         replica=slot, kind=request.kind)
            self._note_version(handle, response.version)
            return response
        return None

    def _read(self, index: int, request: Request) -> Response:
        """Route a read on shard ``index``: round-robin across primary +
        live replicas when eligible, else pin to the primary. Never
        raises — routing failure becomes an ERROR response."""
        handle = self._handles[index]
        if not self.pipeline:
            # Legacy lockstep discipline: one outstanding read per
            # shard, the handle lock held across the RPC (the baseline
            # `cluster-bench --pipeline` measures against).
            with handle.lock:
                return self._read_primary(index, request)
        if (self.replica_reads and handle.replicas
                and isinstance(request, _REPLICA_READ_KINDS)):
            with handle.lock:
                choices: List[Tuple[Optional[int], Any]] = []
                if handle.primary is not None and handle.primary.alive:
                    choices.append((None, handle.primary))
                primary_ok = bool(choices)
                for slot, replica in enumerate(handle.replicas):
                    if replica.alive:
                        choices.append((slot, replica))
                if choices:
                    handle.rr += 1
                    slot, target = choices[handle.rr % len(choices)]
                else:
                    slot = None
                # Version floor: this router has already observed the
                # shard at last_version, so no read may answer below it.
                floor = handle.last_version
            if slot is not None:
                response = self._replica_serve(
                    handle, index, request, slot, target, floor,
                    primary_ok)
                if response is not None:
                    return response
        return self._read_primary(index, request)

    def _replica_serve(self, handle: _ShardHandle, index: int,
                       request: Request, slot: int, replica: Any,
                       floor: int, primary_ok: bool
                       ) -> Optional[Response]:
        """One replica attempt; ``None`` means retry on the primary."""
        try:
            response = self._call(replica, "serve", request,
                                  timeout_s=self.call_timeout_s,
                                  attrs={"shard": index, "replica": slot})
        except ShardDead:
            with handle.lock:
                # Identity check: a concurrent reader may already have
                # restarted this slot.
                if (slot < len(handle.replicas)
                        and handle.replicas[slot] is replica):
                    self._restart_replica_locked(handle, slot)
            return None
        except ShardTimeout:
            self.timeouts.add()
            return None
        if (response.version is not None
                and response.version < floor):
            # Replica lagging behind what this router has already seen
            # of the shard: serving it would break version monotonicity.
            self.replica_lag.add()
            return None
        self._note_version(handle, response.version)
        if response.ok:
            self.replica_hits.add()
        if not primary_ok:
            # The primary is down and a replica took the read — that is
            # a failover, same accounting as the pinned-read path.
            self.failovers.add()
            _log.warning("read_failover", shard=index,
                         replica=slot, kind=request.kind)
        return response

    def _read_primary(self, index: int, request: Request) -> Response:
        """Pin a read to shard ``index``'s primary; fail over to a
        replica, then to a journal-restarted primary."""
        handle = self._handles[index]
        with handle.lock:
            # A primary already observed dead costs nothing to detect;
            # prefer a live replica over paying the journal-replay
            # restart on the read path. The next write (which replicas
            # cannot take) restarts it.
            if handle.primary is None or not handle.primary.alive:
                response = self._replica_read_locked(handle, index,
                                                     request)
                if response is not None:
                    return response
            shard = self._ensure_primary_locked(handle)
        # The RPC itself runs outside the handle lock: the pipelined
        # connection multiplexes any number of concurrent calls. (Under
        # pipeline=False the caller holds the RLock around this whole
        # method, restoring the serialized discipline.)
        try:
            response = self._call(shard, "serve", request,
                                  timeout_s=self.call_timeout_s,
                                  attrs={"shard": index,
                                         "replica": "primary"})
        except (ShardDead, ShardTimeout) as exc:
            return self._read_failover(handle, index, request, shard, exc)
        handle.lease_until = self._clock() + self.lease_s
        self._note_version(handle, response.version)
        return response

    def _read_failover(self, handle: _ShardHandle, index: int,
                       request: Request, failed: Any,
                       exc: Exception) -> Response:
        if isinstance(exc, ShardTimeout):
            self.timeouts.add()
        with handle.lock:
            # Kill-mid-pipeline fails every in-flight call on the shard
            # at once; the identity check makes sure only the first
            # caller kills/restarts, not a stampede of them.
            if handle.primary is failed:
                try:
                    failed.kill()
                except Exception:
                    pass
            response = self._replica_read_locked(handle, index, request)
            if response is not None:
                return response
            if handle.primary is None or not handle.primary.alive:
                self._restart_primary_locked(handle)
            fresh = handle.primary
        try:
            response = self._call(fresh, "serve", request,
                                  timeout_s=self.call_timeout_s,
                                  attrs={"shard": index,
                                         "replica": "primary",
                                         "failover": True})
        except (ShardDead, ShardTimeout) as exc2:
            _log.error("shard_unavailable", shard=index,
                       kind=request.kind, error=str(exc2))
            return Response(
                Status.ERROR,
                error=f"shard {index} unavailable: {exc2}")
        self._note_version(handle, response.version)
        return response

    def _get_tile(self, request: GetTile) -> Response:
        """Single-flight GetTile: identical concurrent requests collapse
        onto one shard read, and followers return the leader's response
        object — byte-identical by construction. Part of the concurrent
        read path, so the legacy baseline skips it."""
        if not self.pipeline:
            return self._read(self.owner_of_tile(request.tile), request)
        key = (request.tile, request.encoded, request.max_staleness)
        with self._flight_lock:
            flight = self._flights.get(key)
            leader = flight is None
            if leader:
                flight = _Flight()
                self._flights[key] = flight
        if not leader:
            # The follower's trace shows a wait, not an RPC: its span
            # carries ``coalesced=True`` instead of a shard call.
            with TRACER.span("cluster.read.wait", coalesced=True,
                             tile=str(request.tile)):
                flight.done.wait()
            if flight.response is not None:
                self.read_coalesced.add()
                return flight.response
            # Defensive: the leader died before publishing.
            return self._read(self.owner_of_tile(request.tile), request)
        try:
            flight.response = self._read(
                self.owner_of_tile(request.tile), request)
            return flight.response
        finally:
            with self._flight_lock:
                self._flights.pop(key, None)
            flight.done.set()

    def _scatter(self, indices: List[int],
                 fn: Callable[[int], Response]) -> Dict[int, Response]:
        """Run ``fn`` once per shard index — all at once unless
        configured ``scatter="serial"`` — never raising: a failure
        becomes that shard's ERROR response."""
        def run_one(i: int) -> Response:
            try:
                return fn(i)
            except Exception as exc:  # defensive: fn should not raise
                return Response(Status.ERROR, error=str(exc))

        results: Dict[int, Response] = {}
        if self.scatter == "serial" or len(indices) == 1:
            for i in indices:
                results[i] = run_one(i)
            return results

        # Fresh threads start with an empty contextvar; re-attach the
        # caller's trace so every scattered shard call parents under it.
        ctx = TRACER.current()

        def run(i: int) -> None:
            with attach_context(ctx):
                results[i] = run_one(i)

        threads = [threading.Thread(target=run, args=(i,), daemon=True)
                   for i in indices]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return results

    def _gather(self, indices: List[int],
                request: Request) -> List[Tuple[int, Response]]:
        """Scatter one request to several shards and join."""
        responses = self._scatter(indices,
                                  lambda i: self._read(i, request))
        return [(i, responses[i]) for i in sorted(responses)]

    # -- writes ---------------------------------------------------------
    def _match_applied(self, tile_ops, changes) -> List[Tuple]:
        """Which of ``tile_ops`` the shard applied, from its change log.

        Changes are recorded in op application order, so the applied ops
        are an order-preserving subsequence match on (element id, change
        type).
        """
        out = []
        it = iter(changes)
        change: Optional[MapChange] = next(it, None)
        for tile, op in tile_ops:
            if change is None:
                break
            eid = op.element_id if isinstance(op, RemoveElement) \
                else op.element.id
            if (change.element_id == eid
                    and change.change_type is _CHANGE_FOR_OP[type(op)]):
                out.append((tile, op))
                change = next(it, None)
        return out

    def _write_shard(self, index: int, sub: MapPatch,
                     tile_ops) -> Tuple[IngestResult, List[Tuple]]:
        """Apply one sub-patch on its owning shard, exactly once.

        A timeout/death mid-write is ambiguous; the restart-from-journal
        erases any uncommitted effect, making the single retry safe.
        """
        handle = self._handles[index]
        with handle.lock:
            last_exc: Optional[Exception] = None
            for _attempt in range(2):
                try:
                    shard = self._ensure_primary_locked(handle)
                    response = self._call(
                        shard, "serve", IngestPatch(patch=sub),
                        timeout_s=self.call_timeout_s,
                        attrs={"shard": index, "replica": "primary",
                               "write": True})
                    if response.status is not Status.OK:
                        raise ClusterError(
                            f"shard {index} refused write: "
                            f"{response.error}")
                    result: IngestResult = response.payload
                    applied = list(tile_ops)
                    if result.accepted and result.dropped_ops:
                        log = self._call(shard, "changelog",
                                         timeout_s=self.call_timeout_s)
                        applied = self._match_applied(
                            tile_ops, [c for v, c in log
                                       if v == result.version])
                    handle.lease_until = self._clock() + self.lease_s
                    self._note_version(handle, result.version)
                    return result, applied
                except (ShardDead, ShardTimeout) as exc:
                    last_exc = exc
                    if isinstance(exc, ShardTimeout):
                        self.timeouts.add()
                    _log.warning("write_retry_after_restart", shard=index,
                                 error=str(exc))
                    self._restart_primary_locked(handle)
            raise ClusterError(
                f"shard {index} failed twice on write: {last_exc}")

    def _replicate_locked(self, handle: _ShardHandle,
                          patch: MapPatch) -> None:
        for slot, replica in enumerate(handle.replicas):
            try:
                self._call(replica, "apply", patch,
                           timeout_s=self.call_timeout_s,
                           attrs={"shard": handle.index, "replica": slot})
            except (ShardDead, ShardTimeout, RpcError):
                # Restart from the journal (which already holds this
                # patch): the replica comes back caught-up.
                self._restart_replica_locked(handle, slot)

    def _ingest(self, request: IngestPatch, t0: float) -> Response:
        patch = request.patch
        if not patch.ops:
            return Response(Status.OK,
                            IngestResult(False, None, 0, "empty patch"))
        with self._ingest_lock:
            owner, n_shards = self._owner, self.n_shards
            groups: Dict[int, List[Tuple[Optional[TileId], object]]] = {}
            order: List[int] = []
            for op in patch.ops:
                tile = self._home_tile(op)
                index = self._owner_of(tile, owner, n_shards)
                if index not in groups:
                    order.append(index)
                groups.setdefault(index, []).append((tile, op))
            results: List[IngestResult] = []
            for index in order:
                tile_ops = groups[index]
                sub = MapPatch(ops=[op for _, op in tile_ops],
                               source=patch.source,
                               confidence=patch.confidence)
                result, applied = self._write_shard(index, sub, tile_ops)
                if result.accepted and applied:
                    with self._journal_lock:
                        entry = _JournalEntry(
                            seq=len(self._journal), source=patch.source,
                            confidence=patch.confidence, ops=applied)
                        self._journal.append(entry)
                        depth = len(self._journal)
                    self.journal_gauge.set(depth)
                    if (depth >= self.journal_warn_threshold
                            and not self._journal_warned):
                        self._journal_warned = True
                        _log.warning(
                            "journal_large", entries=depth,
                            threshold=self.journal_warn_threshold)
                    handle = self._handles[index]
                    with handle.lock:
                        self._replicate_locked(
                            handle,
                            MapPatch(ops=[op for _, op in applied],
                                     source=patch.source,
                                     confidence=patch.confidence))
                    for tile, op in applied:
                        if isinstance(op, (AddElement, ReplaceElement)):
                            self._element_tile.setdefault(op.element.id,
                                                          tile)
                results.append(result)
        if len(results) == 1:
            merged = results[0]
        else:
            accepted = [r for r in results if r.accepted]
            merged = IngestResult(
                accepted=bool(accepted), version=None,
                dropped_ops=sum(r.dropped_ops for r in results),
                reason="; ".join(r.reason for r in results if r.reason))
        if merged.accepted:
            self.metrics.record_freshness(self._clock() - t0)
        return Response(Status.OK, merged)

    # -- scatter-gather merges ------------------------------------------
    def _spatial(self, request: SpatialQuery) -> Response:
        x, y, radius = request.x, request.y, request.radius
        bounds = (x - radius, y - radius, x + radius, y + radius)
        owner, n_shards = self._owner, self.n_shards
        targets = sorted({self._owner_of(t, owner, n_shards)
                          for t in self._scheme.tiles_for_bounds(bounds)})
        merged: List[object] = []
        seen = set()
        for index, response in self._gather(targets, request):
            if not response.ok:
                return response
            # Border elements are replicated into every tile they
            # intersect, so adjacent shards return identical copies:
            # dedup by id, shard order for determinism.
            for element in response.payload:
                if element.id not in seen:
                    seen.add(element.id)
                    merged.append(element)
        return Response(Status.OK, merged)

    def bootstrap(self) -> Tuple[HDMap, Dict[int, int]]:
        """Merged full-map snapshot plus the per-shard version vector it
        was captured at (the cluster client's bootstrap payload)."""
        owner, n_shards = self._owner, self.n_shards
        indices = list(range(n_shards))
        merged = HDMap(f"{self._name}@cluster")
        vector: Dict[int, int] = {}
        for index, response in self._gather(indices, Snapshot()):
            if not response.ok:
                raise ClusterError(
                    f"snapshot failed on shard {index}: {response.error}")
            snap: HDMap = response.payload
            vector[index] = snap.version
            self._note_version(self._handles[index], snap.version)
            for element in snap.elements():
                # Dynamic state is centre-partitioned and therefore
                # disjoint — except after a rebalance, when the old
                # owner still holds stale copies of moved elements.
                # Current ownership decides which copy is authoritative.
                home = self._element_tile.get(element.id,
                                              self._centre_tile(element))
                if self._owner_of(home, owner, n_shards) == index:
                    merged.add(element)
        merged.version = self.version
        return merged, vector

    def _snapshot(self, request: Snapshot) -> Response:
        merged, _ = self.bootstrap()
        return Response(Status.OK, merged)

    def _collect_deltas(self, since: Dict[int, int]) -> "ClusterDelta":
        from repro.cluster.client import ClusterDelta

        owner, n_shards = self._owner, self.n_shards
        deltas: Dict[int, SyncDelta] = {}
        versions: Dict[int, int] = {}
        # Every shard's ChangesSince goes out at once (subject to the
        # scatter mode); the merge below runs in shard order either way.
        responses = self._scatter(
            list(range(n_shards)),
            lambda i: self._read(
                i, ChangesSince(since_version=since.get(i, 0))))
        for index in sorted(responses):
            response = responses[index]
            if not response.ok:
                raise ClusterError(
                    f"changes_since failed on shard {index}: "
                    f"{response.error}")
            delta: SyncDelta = response.payload
            self._note_version(self._handles[index], delta.version)
            changes = []
            elements = {}
            for change in delta.changes:
                home = self._element_tile.get(change.element_id)
                if (home is None
                        and change.element_id not in self._element_tile):
                    home = self._scheme.tile_of(*change.position)
                if self._owner_of(home, owner, n_shards) != index:
                    continue  # stale copy of a rebalanced-away element
                changes.append(change)
                if change.element_id in delta.elements:
                    elements[change.element_id] = \
                        delta.elements[change.element_id]
            deltas[index] = SyncDelta(delta.version, changes, elements)
            versions[index] = delta.version
        return ClusterDelta(version=self.version, versions=versions,
                            deltas=deltas)

    def changes_since(self, since: Dict[int, int]) -> "ClusterDelta":
        """Incremental sync against a per-shard version vector."""
        return self._collect_deltas(dict(since))

    def _changes_broadcast(self, request: ChangesSince) -> Response:
        since = {index: request.since_version
                 for index in range(self.n_shards)}
        delta = self._collect_deltas(since)
        return Response(Status.OK, delta)

    # -- the front door -------------------------------------------------
    def request(self, request: Request) -> Response:
        """Route one request; returns a :class:`Response` whose
        ``version`` is the cluster version."""
        t0 = self._clock()
        # Root of the cross-process tree (client → router): inside an
        # already-active trace this is a child span; otherwise the
        # sampling decision for the whole request is made here.
        kind = request.kind
        if TRACER.current() is not None:
            span = TRACER.span(f"cluster.request.{kind}")
        else:
            span = TRACER.start_trace(f"cluster.request.{kind}")
        with span:
            try:
                if isinstance(request, GetTile):
                    response = self._get_tile(request)
                elif isinstance(request, SpatialQuery):
                    response = self._spatial(request)
                elif isinstance(request, IngestPatch):
                    response = self._ingest(request, t0)
                elif isinstance(request, Snapshot):
                    response = self._snapshot(request)
                elif isinstance(request, ChangesSince):
                    response = self._changes_broadcast(request)
                else:
                    raise ClusterError(
                        f"unknown request type {type(request).__name__}")
            except Exception as exc:
                response = Response(Status.ERROR,
                                    error=f"{type(exc).__name__}: {exc}")
            latency = self._clock() - t0
            out = Response(
                status=response.status, payload=response.payload,
                version=self.version if response.ok else response.version,
                latency_s=latency, error=response.error,
                staleness=response.staleness)
            if span.context is not None:
                span.set("status", out.status.value)
                span.set("version", out.version)
        self.metrics.record(request.kind, out.status.value, latency)
        return out

    # -- rebalance ------------------------------------------------------
    def rebalance(self, n_shards: int) -> int:
        """Grow the cluster to ``n_shards``; returns tiles moved.

        New shards boot from their owned base subset plus a journal
        replay, then the ownership map is swapped. Old shards are not
        restarted — their stale moved-tile state stays in place but is
        filtered out of every merge by current ownership. Writes are
        stopped for the duration (the ingest lock); reads keep flowing.
        """
        if n_shards < self.n_shards:
            raise ClusterError("rebalance cannot shrink the cluster")
        if n_shards == self.n_shards:
            return 0
        with self._ingest_lock:
            old_owner = self._owner
            new_owner = ownership_map(self._all_tiles, n_shards)
            moved = sum(1 for tile in self._all_tiles
                        if old_owner[tile] != new_owner[tile])
            for index in range(self.n_shards, n_shards):
                handle = _ShardHandle(index)
                config = self._config_for(index, new_owner, n_shards)
                handle.primary = self._spawn(config)
                handle.lease_until = self._clock() + self.lease_s
                for _ in range(self.replicas):
                    handle.replicas.append(self._spawn(config))
                self._handles.append(handle)
            self._owner = new_owner
            self.n_shards = n_shards
            self.shards_gauge.set(n_shards)
            self.rebalances.add()
            _log.info("rebalance_completed", shards=n_shards,
                      tiles_moved=moved,
                      total_tiles=len(self._all_tiles))
        return moved

    # -- chaos seams ----------------------------------------------------
    def kill_shard(self, index: int) -> None:
        """Injected crash: kill the primary *without* taking its lock —
        exactly like a real crash mid-request. The next touch fails over
        / restarts."""
        handle = self._handles[index]
        primary = handle.primary
        if primary is not None:
            try:
                primary.kill()
            except Exception:
                pass
        _log.warning("shard_killed", shard=index, injected=True)

    def slow_shard(self, index: int, delay_s: float,
                   count: int = 1) -> None:
        """Injected slowness: the shard's next ``count`` dispatches
        sleep ``delay_s`` before answering."""
        handle = self._handles[index]
        with handle.lock:
            try:
                handle.primary.call(
                    "slow", {"delay_s": delay_s, "count": count},
                    timeout_s=self.call_timeout_s)
            except (ShardDead, ShardTimeout, RpcError):
                pass
        _log.warning("shard_slowed", shard=index, delay_s=delay_s,
                     count=count, injected=True)

    # -- observability --------------------------------------------------
    def collect_shard_metrics(self) -> Dict[int, Dict[str, object]]:
        """Poll every shard's metrics (primary, or a live replica when
        the primary is down); fold latency histograms into the
        ``cluster.shard.latency.<kind>`` merge and sum outcome
        counters. Returns the raw per-shard snapshots."""
        merged: Dict[str, LatencyHistogram] = {}
        outcomes: Dict[str, int] = {}
        per_shard: Dict[int, Dict[str, object]] = {}
        for handle in self._handles:
            with handle.lock:
                shipped = None
                candidates = [handle.primary] + list(handle.replicas)
                for shard in candidates:
                    if shard is None or not shard.alive:
                        continue
                    try:
                        shipped = shard.call(
                            "metrics", timeout_s=self.call_timeout_s)
                        break
                    except (ShardDead, ShardTimeout, RpcError):
                        continue
                if shipped is None:
                    continue
            per_shard[handle.index] = shipped["snapshot"]
            for kind, hist in shipped["latency"].items():
                if kind in merged:
                    merged[kind].merge(hist)
                else:
                    merged[kind] = hist
            for key, value in shipped["outcomes"].items():
                outcomes[key] = outcomes.get(key, 0) + value
        self._shard_latency = merged
        self._shard_outcomes = outcomes
        return per_shard

    def shard_events(self) -> List[Dict[str, object]]:
        """Drain every shard process's event log, tagged with a
        ``shard`` label, merged by timestamp. (In-process shards log
        straight into the router's global event log instead.)"""
        out: List[Dict[str, object]] = []
        for handle in self._handles:
            with handle.lock:
                if handle.primary is None or not handle.primary.alive:
                    continue
                try:
                    events = handle.primary.call(
                        "events", timeout_s=self.call_timeout_s)
                except (ShardDead, ShardTimeout, RpcError):
                    continue
            for event in events:
                tagged = dict(event)
                tagged["shard"] = handle.index
                out.append(tagged)
        out.sort(key=lambda e: e.get("ts", 0.0))
        return out

    def shard_changelog(self, index: int) -> List[Tuple[int, MapChange]]:
        """One shard's full ``(version, change)`` log (chaos invariant
        checks read these)."""
        handle = self._handles[index]
        with handle.lock:
            shard = self._ensure_primary_locked(handle)
            return shard.call("changelog", timeout_s=self.call_timeout_s)

    def journal_entries(self) -> List[_JournalEntry]:
        with self._journal_lock:
            return list(self._journal)

    def late_discards_total(self) -> int:
        """Late replies dropped across all connections, ever — live
        counts plus the totals retired with restarted connections."""
        total = self._late_discards_retired
        for handle in self._handles:
            for shard in [handle.primary] + list(handle.replicas):
                total += getattr(shard, "late_discards", 0)
        return total

    def rpc_pending_total(self) -> int:
        """Requests sitting in reader-thread in-flight tables right now."""
        return sum(getattr(shard, "pending", 0)
                   for handle in self._handles
                   for shard in [handle.primary] + list(handle.replicas))

    def register_into(self, registry: MetricsRegistry,
                      prefix: str = "cluster") -> None:
        """Register router metrics under canonical ``cluster.*`` names:

        - ``cluster.latency.<kind>`` / ``cluster.requests.<kind>.<status>``
          / ``cluster.rejected|shed|errors`` / ``cluster.freshness``
          (the standard serving aggregate, router-side);
        - ``cluster.failovers`` / ``cluster.restarts`` /
          ``cluster.timeouts`` / ``cluster.rebalances`` /
          ``cluster.shards`` / ``cluster.journal.entries``;
        - ``cluster.rpc.inflight`` (router-wide concurrent shard calls)
          / ``cluster.read.replica_hits`` / ``cluster.read.replica_lag``
          / ``cluster.read.coalesced`` — the pipelined read path;
        - ``cluster.rpc.late_discards`` (replies dropped because their
          caller timed out, summed across connections and restarts) /
          ``cluster.rpc.pending`` (reader-thread in-flight tables);
        - ``cluster.telemetry.spans`` / ``cluster.telemetry.events`` /
          ``cluster.telemetry.dropped`` / ``cluster.telemetry.harvests``
          — the cross-process trace harvest;
        - ``cluster.shard.latency.<kind>`` — per-shard histograms merged
          by :meth:`collect_shard_metrics`, and
          ``cluster.shard.requests.<kind>.<status>`` summed across
          shards.
        """
        self.metrics.register_into(registry, prefix=prefix)
        registry.register(f"{prefix}.failovers", self.failovers)
        registry.register(f"{prefix}.restarts", self.restarts)
        registry.register(f"{prefix}.timeouts", self.timeouts)
        registry.register(f"{prefix}.rebalances", self.rebalances)
        registry.register(f"{prefix}.shards", self.shards_gauge)
        registry.register(f"{prefix}.journal.entries", self.journal_gauge)
        registry.register(f"{prefix}.rpc.inflight", self.rpc_inflight)
        registry.register(f"{prefix}.read.replica_hits",
                          self.replica_hits)
        registry.register(f"{prefix}.read.replica_lag", self.replica_lag)
        registry.register(f"{prefix}.read.coalesced", self.read_coalesced)
        registry.register(f"{prefix}.telemetry.spans",
                          self.telemetry_spans)
        registry.register(f"{prefix}.telemetry.events",
                          self.telemetry_events)
        registry.register(f"{prefix}.telemetry.dropped",
                          self.telemetry_dropped)
        registry.register(f"{prefix}.telemetry.harvests",
                          self.telemetry_harvests)

        def collect() -> Dict[str, object]:
            out: Dict[str, object] = {
                f"{prefix}.rpc.late_discards": self.late_discards_total(),
                f"{prefix}.rpc.pending": self.rpc_pending_total(),
            }
            for kind, hist in self._shard_latency.items():
                out[f"{prefix}.shard.latency.{kind}"] = hist
            for key, value in self._shard_outcomes.items():
                out[f"{prefix}.shard.requests.{key}"] = value
            return out

        registry.register_collector(collect)

    def stats(self) -> Dict[str, object]:
        return {
            "shards": self.n_shards,
            "replicas": self.replicas,
            "transport": self.transport,
            "version": self.version,
            "version_vector": self.version_vector(),
            "journal_entries": len(self.journal_entries()),
            "tiles": len(self._all_tiles),
            "failovers": self.failovers.value,
            "restarts": self.restarts.value,
            "timeouts": self.timeouts.value,
            "rebalances": self.rebalances.value,
            "replica_hits": self.replica_hits.value,
            "replica_lag": self.replica_lag.value,
            "coalesced": self.read_coalesced.value,
            "inflight_peak": self._inflight_peak,
            "late_discards": self.late_discards_total(),
            "telemetry_spans": self.telemetry_spans.value,
            "telemetry_dropped": self.telemetry_dropped.value,
        }
