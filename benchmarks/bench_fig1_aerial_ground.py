"""F1 — Figure 1 / Mátyus et al. [27]: aerial + ground lane extraction.

Paper: 0.57 m road-centre error vs 1.67 m for GPS+IMU, ~6 s/km inference.
Shape: fused aerial+ground beats the GPS+IMU baseline by ~2-3x and lands
sub-metre.
"""

import numpy as np
from conftest import once

from repro.creation import AerialGroundMapper, render_aerial
from repro.creation.aerial import gps_imu_baseline
from repro.eval import ResultTable
from repro.world import drive_route, generate_highway


def _experiment(rng):
    hw = generate_highway(rng, length=4000.0, sign_spacing=300.0)
    segment = next(iter(hw.segments()))
    truth_line = segment.reference_line
    lane = next(iter(hw.lanes()))
    trajectory = drive_route(hw, lane.id, 3900.0, rng)

    aerial, _ = render_aerial(hw, rng, resolution=0.5)
    prior = truth_line.simplify(5.0)
    result = AerialGroundMapper().run(hw, aerial, prior, truth_line,
                                      trajectory, rng)
    baseline = gps_imu_baseline(truth_line, trajectory, rng)
    return result, baseline


def test_fig1_aerial_ground_extraction(benchmark, rng):
    result, baseline = once(benchmark, _experiment, rng)

    table = ResultTable("F1", "aerial+ground road extraction [27]")
    table.add("fused error (m)", "0.57", f"{result.error.mean:.2f}",
              ok=result.error.mean < 1.0)
    table.add("GPS+IMU baseline (m)", "1.67", f"{baseline.mean:.2f}",
              ok=baseline.mean > 0.8)
    improvement = baseline.mean / max(result.error.mean, 1e-9)
    table.add("improvement factor", "~2.9x", f"{improvement:.1f}x",
              ok=improvement > 1.5)
    table.add("inference (s/km)", "6", f"{result.seconds_per_km:.2f}",
              ok=result.seconds_per_km < 60.0)
    table.print()
    assert table.all_ok()
