"""E9 — Pannen et al. [44]: crowd-based map update, single vs multi
traversal.

Paper: 300 traversals over 7 construction sites; multi-traversal
classification reaches 98.7 % sensitivity / 81.2 % specificity, far above
single-traversal. Shape: multi-traversal sensitivity and specificity both
high and both >= the single-traversal numbers.
"""

import numpy as np
from conftest import once

from repro.eval import ResultTable, sensitivity_specificity
from repro.update import CrowdUpdatePipeline
from repro.world import ChangeSpec, apply_changes, drive_route, generate_highway


def _experiment(rng):
    hw = generate_highway(rng, length=6000.0, sign_spacing=150.0)
    scenario = apply_changes(
        hw, ChangeSpec(construction_sites=7, construction_signs_per_site=5,
                       remove_signs=4), rng)
    pipeline = CrowdUpdatePipeline(scenario.prior)
    lanes = list(scenario.reality.lanes())
    # ~40 traversals split across both directions (300 in the paper).
    for k in range(40):
        lane = lanes[0] if k % 2 == 0 else lanes[2]
        traj = drive_route(scenario.reality, lane.id, 5800.0, rng, dt=0.3)
        pipeline.ingest(pipeline.traverse(scenario.reality, traj, rng))

    changed_tiles = {pipeline.tiles.tile_of(*c.position)
                     for c in scenario.true_changes}
    counts = {"single": {"tp": 0, "fp": 0, "tn": 0, "fn": 0},
              "multi": {"tp": 0, "fp": 0, "tn": 0, "fn": 0}}
    for site in pipeline._site_scores:
        truth = site in changed_tiles
        for mode, multi in (("single", False), ("multi", True)):
            decision = pipeline.site_decision(site, multi_traversal=multi)
            if decision and truth:
                counts[mode]["tp"] += 1
            elif decision and not truth:
                counts[mode]["fp"] += 1
            elif not decision and truth:
                counts[mode]["fn"] += 1
            else:
                counts[mode]["tn"] += 1
    return counts, len(pipeline._site_scores)


def test_e09_crowd_update(benchmark, rng):
    counts, n_sites = once(benchmark, _experiment, rng)
    single = sensitivity_specificity(**counts["single"])
    multi = sensitivity_specificity(**counts["multi"])

    table = ResultTable("E9", "crowd map update, multi-traversal [44]")
    table.add("multi-traversal sensitivity", "98.7 %",
              f"{100 * multi['sensitivity']:.1f} %",
              ok=multi["sensitivity"] >= 0.75)
    table.add("multi-traversal specificity", "81.2 %",
              f"{100 * multi['specificity']:.1f} %",
              ok=multi["specificity"] >= 0.6)
    table.add("single-traversal sensitivity", "(lower)",
              f"{100 * single['sensitivity']:.1f} %",
              ok=multi["sensitivity"] >= single["sensitivity"])
    table.add("single-traversal specificity", "(lower)",
              f"{100 * single['specificity']:.1f} %",
              ok=multi["specificity"] >= single["specificity"] - 0.05)
    table.add("sites evaluated", "7 construction", str(n_sites), ok=None)
    table.print()
    assert table.all_ok()
