"""Dense point-cloud map storage (the representation vector maps replace).

Traditional HD-map stacks keep a registered LiDAR point cloud for
map-matching; Pannen et al. [44] report ~200 GB for 20 000 miles
(~10 MB/mile). We synthesize an equivalent cloud from the ground-truth
geometry at a realistic surviving-point density and store it the way such
clouds are shipped (float32 x, y, z + uint8 intensity, zlib-compressed),
so the bytes/mile comparison against the vector codec is apples-to-apples.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.hdmap import HDMap
from repro.geometry.geodesy import MILE_METRES


@dataclass
class PointCloudMap:
    """A registered map point cloud."""

    points: np.ndarray  # (N, 3) float32
    intensity: np.ndarray  # (N,) uint8

    @property
    def n_points(self) -> int:
        return int(self.points.shape[0])

    def to_bytes(self, compress: bool = True) -> bytes:
        raw = (self.points.astype("<f4").tobytes()
               + self.intensity.astype(np.uint8).tobytes())
        header = struct.pack("<I", self.n_points)
        payload = zlib.compress(raw, level=6) if compress else raw
        return header + payload

    @staticmethod
    def from_bytes(data: bytes, compressed: bool = True) -> "PointCloudMap":
        n = struct.unpack("<I", data[:4])[0]
        raw = zlib.decompress(data[4:]) if compressed else data[4:]
        pts = np.frombuffer(raw[:n * 12], dtype="<f4").reshape(n, 3)
        intensity = np.frombuffer(raw[n * 12:n * 13], dtype=np.uint8)
        return PointCloudMap(points=pts.copy(), intensity=intensity.copy())


def build_pointcloud_map(hdmap: HDMap, rng: np.random.Generator,
                         points_per_m2: float = 40.0,
                         corridor_half_width: Optional[float] = None,
                         landmark_points: int = 600,
                         z_sigma: float = 0.02) -> PointCloudMap:
    """Synthesize the registered cloud a mapping run over ``hdmap`` keeps.

    Density default (~40 pts/m^2 of road surface after map cleanup) is at
    the low end of mobile-mapping practice, making the storage comparison
    conservative.
    """
    chunks = []
    intens = []
    for lane in hdmap.lanes():
        area = lane.length * lane.width
        n = int(area * points_per_m2)
        if n == 0:
            continue
        s = rng.uniform(0.0, lane.length, size=n)
        d = rng.uniform(-lane.width / 2.0, lane.width / 2.0, size=n)
        base = lane.centerline.points_at(s)
        # Normals via small station offset (cheap approximation).
        ahead = lane.centerline.points_at(np.minimum(s + 0.5, lane.length))
        direction = ahead - base
        norms = np.hypot(direction[:, 0], direction[:, 1])
        direction /= np.maximum(norms, 1e-9)[:, None]
        normal = np.stack([-direction[:, 1], direction[:, 0]], axis=1)
        xy = base + d[:, None] * normal
        z = rng.normal(0.0, z_sigma, size=n)
        chunks.append(np.column_stack([xy, z]))
        intens.append(rng.integers(20, 90, size=n, dtype=np.uint8))
    for lm in hdmap.landmarks():
        n = landmark_points
        theta = rng.uniform(0, 2 * np.pi, size=n)
        r = rng.uniform(0.0, 0.3, size=n)
        z = rng.uniform(0.0, max(lm.height, 0.5), size=n)
        xy = lm.position[None, :] + np.stack(
            [r * np.cos(theta), r * np.sin(theta)], axis=1)
        chunks.append(np.column_stack([xy, z]))
        intens.append(np.full(n, int(lm.reflectivity * 255), dtype=np.uint8))
    if not chunks:
        return PointCloudMap(points=np.zeros((0, 3), dtype=np.float32),
                             intensity=np.zeros(0, dtype=np.uint8))
    return PointCloudMap(
        points=np.concatenate(chunks).astype(np.float32),
        intensity=np.concatenate(intens),
    )


def bytes_per_mile(total_bytes: int, hdmap: HDMap) -> float:
    """Storage density normalized by *road* (segment reference) length."""
    road_metres = sum(seg.reference_line.length for seg in hdmap.segments())
    if road_metres == 0:
        raise ValueError("map has no road segments")
    return total_bytes / (road_metres / MILE_METRES)
