"""Extended Kalman filter on [x, y, theta].

The estimation backbone of the ADAS fusion localizer [54] and the
smartphone mapping pipeline [34].
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import LocalizationError
from repro.geometry.transform import SE2
from repro.geometry.vec import wrap_angle


class PoseEKF:
    """EKF over SE(2) with odometry prediction and several update types."""

    def __init__(self, pose: SE2, sigma_xy: float = 1.0,
                 sigma_theta: float = 0.1) -> None:
        self.x = np.array([pose.x, pose.y, pose.theta])
        self.P = np.diag([sigma_xy**2, sigma_xy**2, sigma_theta**2])

    @property
    def pose(self) -> SE2:
        return SE2(float(self.x[0]), float(self.x[1]),
                   wrap_angle(float(self.x[2])))

    def position_sigma(self) -> float:
        return float(np.sqrt(0.5 * (self.P[0, 0] + self.P[1, 1])))

    # ------------------------------------------------------------------
    def predict(self, ds: float, dtheta: float,
                sigma_ds: float = 0.05, sigma_dtheta: float = 0.01) -> None:
        theta = self.x[2] + dtheta / 2.0
        c, s = np.cos(theta), np.sin(theta)
        self.x[0] += ds * c
        self.x[1] += ds * s
        self.x[2] = wrap_angle(self.x[2] + dtheta)
        F = np.array([
            [1.0, 0.0, -ds * s],
            [0.0, 1.0, ds * c],
            [0.0, 0.0, 1.0],
        ])
        G = np.array([[c, 0.0], [s, 0.0], [0.0, 1.0]])
        Q = G @ np.diag([sigma_ds**2, sigma_dtheta**2]) @ G.T
        self.P = F @ self.P @ F.T + Q

    # ------------------------------------------------------------------
    def _update(self, innovation: np.ndarray, H: np.ndarray,
                R: np.ndarray, gate: Optional[float] = None) -> bool:
        """Generic EKF update; returns False if gated out."""
        S = H @ self.P @ H.T + R
        if gate is not None:
            mahal = float(innovation @ np.linalg.solve(S, innovation))
            if mahal > gate:
                return False
        K = self.P @ H.T @ np.linalg.inv(S)
        self.x = self.x + K @ innovation
        self.x[2] = wrap_angle(self.x[2])
        identity = np.eye(3)
        self.P = (identity - K @ H) @ self.P
        # Symmetrize for numerical hygiene.
        self.P = (self.P + self.P.T) / 2.0
        return True

    def update_position(self, measured: np.ndarray, sigma: float,
                        gate: Optional[float] = 13.8) -> bool:
        """GNSS-style absolute position fix (gate ~ chi2 99.9 %, 2 dof)."""
        H = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]])
        innovation = np.asarray(measured, dtype=float) - self.x[:2]
        return self._update(innovation, H, np.eye(2) * sigma**2, gate)

    def update_heading(self, measured: float, sigma: float,
                       gate: Optional[float] = 10.8) -> bool:
        H = np.array([[0.0, 0.0, 1.0]])
        innovation = np.array([wrap_angle(measured - self.x[2])])
        return self._update(innovation, H, np.array([[sigma**2]]), gate)

    def update_landmark(self, landmark_position: np.ndarray,
                        bearing: float, range_: float,
                        sigma_bearing: float, sigma_range: float,
                        gate: Optional[float] = 13.8) -> bool:
        """Range-bearing observation of a map landmark with known position."""
        dx = landmark_position[0] - self.x[0]
        dy = landmark_position[1] - self.x[1]
        q = dx * dx + dy * dy
        r_pred = np.sqrt(q)
        if r_pred < 1e-6:
            raise LocalizationError("landmark at the vehicle position")
        bearing_pred = wrap_angle(np.arctan2(dy, dx) - self.x[2])
        innovation = np.array([
            range_ - r_pred,
            wrap_angle(bearing - bearing_pred),
        ])
        H = np.array([
            [-dx / r_pred, -dy / r_pred, 0.0],
            [dy / q, -dx / q, -1.0],
        ])
        R = np.diag([sigma_range**2, sigma_bearing**2])
        return self._update(innovation, H, R, gate)

    def update_lateral(self, lane_centre_offset: float,
                       lane_heading: float, lane_point: np.ndarray,
                       sigma: float, gate: Optional[float] = 10.8) -> bool:
        """Lane-detection update: measured signed lateral offset from a lane
        centerline with known local heading (the map-matching correction of
        [37], [54])."""
        normal = np.array([-np.sin(lane_heading), np.cos(lane_heading)])
        predicted = float((self.x[:2] - lane_point) @ normal)
        H = np.array([[normal[0], normal[1], 0.0]])
        innovation = np.array([lane_centre_offset - predicted])
        return self._update(innovation, H, np.array([[sigma**2]]), gate)
