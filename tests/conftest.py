"""Shared fixtures: deterministic RNG and small reusable worlds.

World fixtures are session-scoped (they are read-only for tests) to keep
the suite fast; anything that mutates a map must copy it first.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.world import generate_factory_floor, generate_grid_city, generate_highway


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def highway():
    return generate_highway(np.random.default_rng(101), length=2000.0,
                            sign_spacing=200.0, pole_spacing=80.0)


@pytest.fixture(scope="session")
def city():
    return generate_grid_city(np.random.default_rng(202), blocks_x=3,
                              blocks_y=2, block_size=150.0)


@pytest.fixture(scope="session")
def factory():
    return generate_factory_floor(np.random.default_rng(303))
