"""Length-prefixed RPC between the router and shard processes.

Wire format, chosen for debuggability over cleverness: every frame is a
fixed 13-byte header — ``!QBI`` request id (8 bytes) + frame kind
(1 byte) + payload length (4 bytes) — followed by the body. Two frame
kinds exist:

- ``KIND_PICKLE`` (0): the body is a pickled object. Requests carry
  ``(op, payload)`` tuples — or ``(op, payload, trace_ctx)`` when the
  caller is inside a sampled trace: the optional third element is a
  picklable :class:`~repro.obs.trace.TraceContext` the shard resumes
  with ``TRACER.continue_from``, which is how one trace id spans the
  router and shard processes. Receivers accept both shapes, so an
  untraced stream is byte-identical to the pre-tracing wire format.
  Replies carry ``("ok", result)`` or ``("err", message)``.
- ``KIND_RAW_RESPONSE`` (1): an OK reply whose payload is raw bytes —
  a fixed ``!qidB`` meta block (served version, staleness, handler
  latency, trace flags) followed by the payload verbatim. Shards use
  this to forward encoded-tile pack slices to the router without a
  pickle round-trip: the payload ``memoryview`` is written straight
  from the mmap to the socket and never copied into a pickle buffer.
  The flags byte's bit 0 says the shard handled the request inside the
  propagated trace (the full context never needs to travel back — the
  router minted it); it surfaces as ``Response.trace_sampled``.

The request id is echoed back in the reply header, so a router that
timed out on a slow shard and moved on can recognise and discard the
late reply instead of mis-attributing it to the next request — without
that, one slow reply would desynchronise the connection forever.

Two connection disciplines share the wire format:

- :class:`RpcConnection` — lockstep, one request in flight (kept for
  tools and tests that want the simplest possible client);
- :class:`PipelinedConnection` — many requests in flight on one socket.
  Senders serialize on a send lock; a dedicated reader thread matches
  every reply to its waiting caller by the echoed id. A caller that
  times out abandons its id, so the late reply is dropped by the reader
  (``late_discards``) without desynchronising anyone else, and replies
  may legally arrive out of order (the shard side answers ``serve`` ops
  as its worker pool finishes them).

Failure taxonomy (what the router's failover logic keys on):

- :class:`ShardTimeout` — the reply did not arrive inside the call
  timeout. The shard may be slow or wedged; the request may or may not
  have been applied (ambiguity the router must resolve before retrying
  a write).
- :class:`ShardDead` — the peer closed the socket or the read hit a
  reset: the process is gone. Reads fail over to a replica; writes are
  re-driven against a restarted primary rebuilt from the journal.
- :class:`RpcError` — the shard handled the request and raised; the
  error travelled back cleanly (no failover, the shard is healthy).
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
from typing import Any, Dict, Optional, Tuple

from repro.serve.api import Response, Status

_HEADER = struct.Struct("!QBI")

KIND_PICKLE = 0
KIND_RAW_RESPONSE = 1

#: meta block of a raw response: served version (signed — REJECTED/SHED
#: carry −1), staleness in versions, handler latency in seconds, trace
#: flags (bit 0: handled inside the request's propagated trace)
_RAW_META = struct.Struct("!qidB")

_TRACE_FLAG_SAMPLED = 1


class RpcError(Exception):
    """The remote handler raised; the shard itself is healthy."""


class ShardDead(Exception):
    """The shard process is gone (EOF / reset on its socket)."""


class ShardTimeout(Exception):
    """No reply within the call timeout; the shard may be wedged."""


def send_frame(sock: socket.socket, request_id: int, body: Any) -> None:
    """Pickle ``body`` and write one framed message."""
    raw = pickle.dumps(body, protocol=pickle.HIGHEST_PROTOCOL)
    try:
        sock.sendall(_HEADER.pack(request_id, KIND_PICKLE, len(raw)) + raw)
    except (BrokenPipeError, ConnectionResetError, OSError) as exc:
        raise ShardDead(f"send failed: {exc}") from None


def send_raw_response(sock: socket.socket, request_id: int,
                      response: Response, sampled: bool = False) -> None:
    """Write one OK reply whose payload ships as raw bytes.

    The payload (``bytes``/``bytearray``/``memoryview`` — e.g. a pack
    mmap slice) is written directly after the meta block, so a zero-copy
    tile view goes mmap → socket without ever entering a pickle buffer.
    ``sampled`` sets the meta block's trace flag: the request travelled
    with a sampled :class:`~repro.obs.trace.TraceContext` and shard-side
    spans exist for it.
    """
    payload = memoryview(response.payload)
    flags = _TRACE_FLAG_SAMPLED if sampled else 0
    meta = _RAW_META.pack(response.version, response.staleness,
                          response.latency_s, flags)
    try:
        sock.sendall(_HEADER.pack(request_id, KIND_RAW_RESPONSE,
                                  _RAW_META.size + payload.nbytes) + meta)
        sock.sendall(payload)
    except (BrokenPipeError, ConnectionResetError, OSError) as exc:
        raise ShardDead(f"send failed: {exc}") from None


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except socket.timeout:
            raise ShardTimeout("recv timed out") from None
        except (ConnectionResetError, OSError) as exc:
            raise ShardDead(f"recv failed: {exc}") from None
        if not chunk:
            raise ShardDead("peer closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Tuple[int, Any]:
    """Read one framed message; returns ``(request_id, body)``.

    Raw-response frames are decoded into the same ``("ok", Response)``
    shape a pickled reply carries, so callers handle both uniformly.
    """
    request_id, kind, length = _HEADER.unpack(_recv_exact(sock,
                                                          _HEADER.size))
    raw = _recv_exact(sock, length)
    if kind == KIND_RAW_RESPONSE:
        if length < _RAW_META.size:
            raise ShardDead(f"short raw frame ({length} bytes)")
        version, staleness, latency_s, flags = _RAW_META.unpack(
            raw[:_RAW_META.size])
        response = Response(
            Status.OK, payload=raw[_RAW_META.size:], version=version,
            latency_s=latency_s, staleness=staleness)
        response.trace_sampled = bool(flags & _TRACE_FLAG_SAMPLED)
        return request_id, ("ok", response)
    if kind != KIND_PICKLE:
        raise ShardDead(f"unknown frame kind {kind}")
    return request_id, pickle.loads(raw)


class RpcConnection:
    """The router's end of one shard socket: lockstep request/reply.

    One request is in flight at a time (callers serialize through the
    shard handle's lock). Late replies from a previous timed-out request
    are recognised by id and discarded, so a timeout does not poison the
    stream for the caller that follows.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._next_id = 1

    def call(self, op: str, payload: Any = None,
             timeout_s: Optional[float] = None,
             trace_ctx: Any = None) -> Any:
        request_id = self._next_id
        self._next_id += 1
        self._sock.settimeout(timeout_s)
        body = (op, payload) if trace_ctx is None \
            else (op, payload, trace_ctx)
        send_frame(self._sock, request_id, body)
        while True:
            reply_id, body = recv_frame(self._sock)
            if reply_id != request_id:
                continue  # stale reply from a timed-out predecessor
            status, result = body
            if status == "err":
                raise RpcError(str(result))
            return result

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


class _Waiter:
    """One caller's slot in the pipelined in-flight table."""

    __slots__ = ("done", "body", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.body: Any = None
        self.error: Optional[Exception] = None


class PipelinedConnection:
    """The router's end of one shard socket: many requests in flight.

    Any number of threads may :meth:`call` concurrently. Each call takes
    a fresh request id, registers a waiter, and sends under the send
    lock; the reader thread delivers every reply to its waiter by the
    echoed id. The failure taxonomy is unchanged from the lockstep
    connection:

    - a call that sees no reply inside its own deadline raises
      :class:`ShardTimeout` and *abandons* its id — when the reply
      eventually lands, the reader finds no waiter and discards it
      (counted in ``late_discards``), so one slow request never
      desynchronises the stream;
    - EOF/reset kills the reader, which fails **all** in-flight waiters
      with :class:`ShardDead` at once — the kill-mid-pipeline case: the
      router's failover logic runs for each of them;
    - ``("err", …)`` replies raise :class:`RpcError` in their caller
      only.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._sock.settimeout(None)
        self._send_lock = threading.Lock()
        self._lock = threading.Lock()
        self._waiters: Dict[int, _Waiter] = {}
        self._next_id = 1
        self._dead: Optional[Exception] = None
        self.late_discards = 0
        self._reader = threading.Thread(target=self._read_loop,
                                        name="rpc-reader", daemon=True)
        self._reader.start()

    @property
    def inflight(self) -> int:
        """Requests currently awaiting a reply."""
        with self._lock:
            return len(self._waiters)

    def call(self, op: str, payload: Any = None,
             timeout_s: Optional[float] = None,
             trace_ctx: Any = None) -> Any:
        waiter = _Waiter()
        with self._lock:
            if self._dead is not None:
                raise ShardDead(str(self._dead))
            request_id = self._next_id
            self._next_id += 1
            self._waiters[request_id] = waiter
        body = (op, payload) if trace_ctx is None \
            else (op, payload, trace_ctx)
        try:
            with self._send_lock:
                send_frame(self._sock, request_id, body)
        except ShardDead:
            with self._lock:
                self._waiters.pop(request_id, None)
            raise
        if not waiter.done.wait(timeout_s):
            # Abandon the slot; the reader drops the late reply by id.
            with self._lock:
                self._waiters.pop(request_id, None)
            raise ShardTimeout(f"no reply to {op!r} within {timeout_s}s")
        if waiter.error is not None:
            raise waiter.error
        status, result = waiter.body
        if status == "err":
            raise RpcError(str(result))
        return result

    def _read_loop(self) -> None:
        while True:
            try:
                reply_id, body = recv_frame(self._sock)
            except Exception as exc:
                dead = exc if isinstance(exc, ShardDead) \
                    else ShardDead(f"reader failed: {exc}")
                with self._lock:
                    if self._dead is None:
                        self._dead = dead
                    waiters = list(self._waiters.values())
                    self._waiters.clear()
                for waiter in waiters:
                    waiter.error = ShardDead(str(dead))
                    waiter.done.set()
                return
            with self._lock:
                waiter = self._waiters.pop(reply_id, None)
            if waiter is None:
                self.late_discards += 1
                continue
            waiter.body = body
            waiter.done.set()

    def close(self) -> None:
        with self._lock:
            if self._dead is None:
                self._dead = ShardDead("connection closed")
        try:
            self._sock.close()
        except OSError:
            pass


def serve_connection(sock: socket.socket, dispatch,
                     async_dispatch=None) -> None:
    """Shard-side loop: read frames, dispatch, reply until EOF.

    ``dispatch(op, payload)`` returns the result or raises; exceptions
    are shipped back as ``("err", message)`` so a handler bug never
    kills the shard loop. A dispatch that calls ``os._exit`` (the
    injected-crash fault) simply never replies.

    ``async_dispatch(op, payload)``, when given, may return a ``Future``
    instead of a result — the reply is sent from the future's callback
    when it resolves, while this loop keeps reading. That is the
    shard-side half of RPC pipelining: ``serve`` ops overlap in the
    worker pool and are answered out of order; replies from callbacks
    and from this loop serialize on one send lock. An ``async_dispatch``
    returning ``None`` falls back to the synchronous path.

    Traced requests arrive as ``(op, payload, trace_ctx)`` 3-tuples; the
    context is handed to the dispatcher as a third positional argument
    (dispatchers that support tracing declare ``trace_ctx=None``).
    Untraced 2-tuples keep calling the two-argument form, so simple
    test dispatchers keep working unchanged.
    """
    sock.settimeout(None)
    send_lock = threading.Lock()

    def send_result(request_id: int, result: Any,
                    sampled: bool = False) -> bool:
        try:
            with send_lock:
                if isinstance(result, Response) \
                        and result.status is Status.OK \
                        and isinstance(result.payload,
                                       (bytes, bytearray, memoryview)):
                    send_raw_response(sock, request_id, result,
                                      sampled=sampled)
                else:
                    send_frame(sock, request_id, ("ok", result))
            return True
        except (ShardDead, OSError):
            return False

    def send_error(request_id: int, exc: BaseException) -> bool:
        try:
            with send_lock:
                send_frame(sock, request_id,
                           ("err", f"{type(exc).__name__}: {exc}"))
            return True
        except (ShardDead, OSError):
            return False

    while True:
        try:
            request_id, body = recv_frame(sock)
        except (ShardDead, ShardTimeout):
            return
        if len(body) == 3:
            op, payload, trace_ctx = body
        else:
            op, payload = body
            trace_ctx = None
        sampled = trace_ctx is not None
        if op == "shutdown":
            try:
                with send_lock:
                    send_frame(sock, request_id, ("ok", None))
            except ShardDead:
                pass
            return
        if async_dispatch is not None:
            try:
                if trace_ctx is not None:
                    future = async_dispatch(op, payload, trace_ctx)
                else:
                    future = async_dispatch(op, payload)
            except Exception as exc:
                if not send_error(request_id, exc):
                    return
                continue
            if future is not None:
                def _finish(fut, request_id=request_id, sampled=sampled):
                    exc = fut.exception()
                    if exc is not None:
                        send_error(request_id, exc)
                    else:
                        send_result(request_id, fut.result(),
                                    sampled=sampled)
                future.add_done_callback(_finish)
                continue
        try:
            if trace_ctx is not None:
                result = dispatch(op, payload, trace_ctx)
            else:
                result = dispatch(op, payload)
        except Exception as exc:  # ship the failure, keep serving
            if not send_error(request_id, exc):
                return
            continue
        if not send_result(request_id, result, sampled=sampled):
            return
