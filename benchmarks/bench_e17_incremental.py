"""E17 — Liu et al. [43]: incremental map fusion with time decay.

Paper: repeated-measurement fusion improves element position and semantic
confidence; the time-decay term lets the map adapt to environmental
change; unmatched elements are retained for future matching. Shape:
position error shrinks with traversals; after a world shift, the decayed
map accepts the new state faster than the no-decay baseline.
"""

import numpy as np
from conftest import once

from repro.core.ids import ElementId
from repro.eval import ResultTable
from repro.update import IncrementalFuser


def _experiment(rng):
    truth = np.array([50.0, 10.0])
    meas_sigma = 0.5

    fuser = IncrementalFuser()
    eid = ElementId("sign", 1)
    fuser.seed(eid, truth + rng.normal(0, 1.0, 2), 1.0, t=0.0)
    error_curve = []
    for k in range(15):
        fuser.observe(truth + rng.normal(0, meas_sigma, 2), meas_sigma,
                      t=float(k * 10))
        error_curve.append(float(np.hypot(
            *(fuser.elements[eid].position - truth))))

    # World shift: the sign moves 6 m; compare adaptation with/without decay.
    def adapt(use_decay: bool) -> int:
        local = IncrementalFuser(use_time_decay=use_decay,
                                 decay_per_second=0.004,
                                 promote_after=3)
        e = ElementId("sign", 2)
        local.seed(e, truth, 0.2, t=0.0, confidence=1.0)
        for k in range(10):
            local.observe(truth + rng.normal(0, 0.2, 2), 0.2, t=float(k * 10))
        moved = truth + np.array([6.0, 0.0])
        steps = 0
        # Long gap, then the new reality streams in.
        t0 = 500.0
        for k in range(40):
            t = t0 + k * 10.0
            local.miss(e, t)
            local.observe(moved + rng.normal(0, 0.2, 2), 0.2, t)
            local.prune()
            steps += 1
            has_new = any(
                np.hypot(*(el.position - moved)) < 1.0
                and el.confidence >= 0.5
                for el in local.elements.values())
            old_gone = e not in local.elements
            if has_new and old_gone:
                return steps
        return steps

    return error_curve, adapt(True), adapt(False)


def test_e17_incremental_fusion(benchmark, rng):
    error_curve, steps_decay, steps_no_decay = once(benchmark, _experiment,
                                                    rng)

    table = ResultTable("E17", "incremental fusion with time decay [43]")
    table.add("error after 1 obs (m)", "(higher)", f"{error_curve[0]:.2f}",
              ok=None)
    table.add("error after 15 obs (m)", "(lower)", f"{error_curve[-1]:.2f}",
              ok=error_curve[-1] < error_curve[0])
    table.add("converged below sigma", "yes", f"{error_curve[-1]:.2f} < 0.5",
              ok=error_curve[-1] < 0.5)
    table.add("traversals to adapt (decay)", "(faster)", str(steps_decay),
              ok=steps_decay <= steps_no_decay)
    table.add("traversals to adapt (no decay)", "(slower)",
              str(steps_no_decay), ok=None)
    table.print()
    assert table.all_ok()
