"""Automatic LiDAR road-structure mapping (Zhao et al. [32]).

The paper's five steps, on the synthetic substrate:

1. *Generate a 3-D point cloud* — accumulate ground-channel LiDAR returns
   along the drive, registered with dead-reckoned odometry poses (no GNSS,
   which is why absolute error grows with scene length, reaching the
   paper's ~1.8 m average over 0.1-10 km scenes).
2. *Convert to a 2-D projection* — splat points into an intensity grid.
3. *Eliminate ground data* — drop asphalt-intensity cells, keep paint/curb.
4. *Extract road boundaries* — walk the trajectory and take the outermost
   surviving cells along the local normal on each side.
5. *Probabilistic fusion* — per-station Gaussian fusion of repeated
   boundary evidence into one polyline per side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.elements import BoundaryType, LaneBoundary
from repro.core.hdmap import HDMap
from repro.errors import UpdateError
from repro.eval.metrics import ErrorStats, error_stats
from repro.geometry.polyline import Polyline
from repro.geometry.raster import GridSpec, RasterGrid
from repro.geometry.transform import SE2
from repro.sensors.lidar import LidarScanner
from repro.sensors.odometry import WheelOdometry
from repro.world.traffic import Trajectory


@dataclass
class LidarMappingResult:
    """Extracted boundaries plus accuracy against the true map."""

    left_boundary: Optional[Polyline]
    right_boundary: Optional[Polyline]
    cloud_points: int
    boundary_error: ErrorStats
    trajectory_drift: float  # final dead-reckoning position error


class LidarMappingPipeline:
    """The 5-step mapping pipeline."""

    def __init__(self, scanner: Optional[LidarScanner] = None,
                 odometry: Optional[WheelOdometry] = None,
                 grid_resolution: float = 0.4,
                 scan_stride_s: float = 1.0,
                 edge_intensity_band: Tuple[float, float] = (0.28, 0.52)) -> None:
        self.scanner = scanner if scanner is not None else LidarScanner()
        # Default ego-motion source is LiDAR odometry (scan matching), an
        # order of magnitude better than wheel odometry — Zhao et al.'s
        # multibeam rig registers scans against each other.
        self.odometry = odometry if odometry is not None else WheelOdometry(
            scale_sigma=0.002, theta_sigma_per_m=1e-4)
        self.grid_resolution = grid_resolution
        self.scan_stride_s = scan_stride_s
        self.edge_intensity_band = edge_intensity_band

    # ------------------------------------------------------------------
    def run(self, reality: HDMap, trajectory: Trajectory,
            rng: np.random.Generator) -> LidarMappingResult:
        dr_poses = self._dead_reckon(trajectory, rng)

        # Step 1: accumulate the registered cloud (2-D here; the paper's
        # step 2 projection is implicit in our planar substrate).
        cloud_xy: List[np.ndarray] = []
        cloud_intensity: List[np.ndarray] = []
        t = trajectory.start_time
        while t <= trajectory.end_time:
            true_pose = trajectory.pose_at(t)
            dr_pose = _interp_pose(dr_poses, t)
            scan = self.scanner.scan(reality, true_pose, rng, t=t)
            world = dr_pose.apply(scan.ground.points)
            cloud_xy.append(world)
            cloud_intensity.append(scan.ground.intensity)
            t += self.scan_stride_s
        points = np.concatenate(cloud_xy)
        intensity = np.concatenate(cloud_intensity)

        # Step 2+3: project into a grid, keep only curb/road-edge-band
        # returns (asphalt and retro-reflective paint are both eliminated).
        lo, hi = self.edge_intensity_band
        keep = (intensity >= lo) & (intensity < hi)
        strong = points[keep]
        if strong.shape[0] < 10:
            raise UpdateError("no boundary evidence extracted")
        bounds = (strong[:, 0].min(), strong[:, 1].min(),
                  strong[:, 0].max(), strong[:, 1].max())
        spec = GridSpec.from_bounds(bounds, self.grid_resolution, padding=2.0)
        grid = RasterGrid(spec)
        grid.add_points(strong, 1.0)

        # Step 4: boundary extraction along the (dead-reckoned) trajectory.
        left_pts, right_pts = self._extract_boundaries(grid, dr_poses)

        # Step 5: probabilistic fusion — moving-average smoothing of the
        # per-station evidence (each station already fuses multiple cells).
        left = _fuse_polyline(left_pts)
        right = _fuse_polyline(right_pts)

        errors = self._score(reality, left, right)
        final_t = trajectory.end_time
        drift = _interp_pose(dr_poses, final_t).distance_to(
            trajectory.pose_at(final_t))
        return LidarMappingResult(
            left_boundary=left,
            right_boundary=right,
            cloud_points=int(points.shape[0]),
            boundary_error=errors,
            trajectory_drift=drift,
        )

    # ------------------------------------------------------------------
    def _dead_reckon(self, trajectory: Trajectory,
                     rng: np.random.Generator) -> List[Tuple[float, SE2]]:
        deltas = self.odometry.measure(trajectory, rng)
        pose = trajectory.pose_at(trajectory.start_time)
        track = [(trajectory.start_time, pose)]
        for d in deltas:
            mid_theta = pose.theta + d.dtheta / 2.0
            pose = SE2(pose.x + d.ds * np.cos(mid_theta),
                       pose.y + d.ds * np.sin(mid_theta),
                       pose.theta + d.dtheta)
            track.append((d.t, pose))
        return track

    def _extract_boundaries(self, grid: RasterGrid,
                            dr_poses: List[Tuple[float, SE2]]
                            ) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        left: List[np.ndarray] = []
        right: List[np.ndarray] = []
        max_lateral = 15.0
        step = grid.spec.resolution
        for _, pose in dr_poses[:: max(1, len(dr_poses) // 400)]:
            normal = np.array([-np.sin(pose.theta), np.cos(pose.theta)])
            origin = np.array([pose.x, pose.y])
            for side, store in ((1.0, left), (-1.0, right)):
                best = None
                d = 1.0
                while d <= max_lateral:
                    p = origin + side * d * normal
                    if grid.sample(p[None, :])[0] > 0:
                        best = p  # outermost hit wins: keep scanning
                    d += step
                if best is not None:
                    store.append(best)
        return left, right

    def _score(self, reality: HDMap, left: Optional[Polyline],
               right: Optional[Polyline]) -> ErrorStats:
        edges = [b.line for b in reality.boundaries()
                 if b.boundary_type in (BoundaryType.ROAD_EDGE,
                                        BoundaryType.CURB)]
        if not edges:
            raise UpdateError("true map has no road edges to score against")
        errors: List[float] = []
        for extracted in (left, right):
            if extracted is None:
                continue
            for p in extracted.resample(10.0).points:
                errors.append(min(edge.distance_to(p) for edge in edges))
        if not errors:
            raise UpdateError("no boundaries extracted")
        return error_stats(errors)


def _interp_pose(track: List[Tuple[float, SE2]], t: float) -> SE2:
    times = np.array([x[0] for x in track])
    i = int(np.clip(np.searchsorted(times, t) - 1, 0, len(track) - 2))
    t0, p0 = track[i]
    t1, p1 = track[i + 1]
    u = float(np.clip((t - t0) / max(t1 - t0, 1e-9), 0.0, 1.0))
    dtheta = np.arctan2(np.sin(p1.theta - p0.theta), np.cos(p1.theta - p0.theta))
    return SE2(p0.x + u * (p1.x - p0.x), p0.y + u * (p1.y - p0.y),
               p0.theta + u * dtheta)


def _fuse_polyline(points: List[np.ndarray],
                   window: int = 5) -> Optional[Polyline]:
    if len(points) < max(window, 2):
        return None
    arr = np.array(points)
    kernel = np.ones(window) / window
    sm_x = np.convolve(arr[:, 0], kernel, mode="valid")
    sm_y = np.convolve(arr[:, 1], kernel, mode="valid")
    smoothed = np.stack([sm_x, sm_y], axis=1)
    try:
        return Polyline(smoothed)
    except Exception:
        return None
