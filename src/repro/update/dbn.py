"""Discrete dynamic Bayesian network substrate for change inference.

SLAMCU [41] frames map-change detection as inference in a DBN whose nodes
move from *unknown* to *estimated* as measurements arrive. The reusable
core is a per-feature discrete filter: a hidden state (e.g. PRESENT /
REMOVED) with a transition prior and per-step observation likelihoods,
updated by the forward algorithm.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


class FeatureState(enum.Enum):
    PRESENT = 0
    REMOVED = 1


@dataclass
class DiscreteDBN:
    """Forward-filtered discrete hidden-state chain.

    ``transition[i, j]`` = P(state_t = j | state_{t-1} = i); ``belief`` is
    the current filtered distribution.
    """

    transition: np.ndarray
    belief: np.ndarray

    def __post_init__(self) -> None:
        self.transition = np.asarray(self.transition, dtype=float)
        self.belief = np.asarray(self.belief, dtype=float)
        n = self.transition.shape[0]
        if self.transition.shape != (n, n):
            raise ValueError("transition must be square")
        if not np.allclose(self.transition.sum(axis=1), 1.0):
            raise ValueError("transition rows must sum to 1")
        if self.belief.shape != (n,):
            raise ValueError("belief size must match transition")
        self.belief = self.belief / self.belief.sum()

    @staticmethod
    def presence_chain(p_disappear: float = 0.02,
                       p_reappear: float = 0.0,
                       prior_present: float = 0.95) -> "DiscreteDBN":
        """The two-state PRESENT/REMOVED chain SLAMCU runs per feature."""
        return DiscreteDBN(
            transition=np.array([
                [1.0 - p_disappear, p_disappear],
                [p_reappear, 1.0 - p_reappear],
            ]),
            belief=np.array([prior_present, 1.0 - prior_present]),
        )

    def predict(self) -> None:
        self.belief = self.belief @ self.transition

    def update(self, likelihood: Sequence[float]) -> None:
        lk = np.asarray(likelihood, dtype=float)
        if lk.shape != self.belief.shape:
            raise ValueError("likelihood size mismatch")
        post = self.belief * lk
        total = post.sum()
        if total <= 0:
            return  # uninformative measurement
        self.belief = post / total

    def step(self, likelihood: Sequence[float]) -> None:
        self.predict()
        self.update(likelihood)

    def probability(self, state: int) -> float:
        return float(self.belief[state])

    def map_state(self) -> int:
        return int(np.argmax(self.belief))
