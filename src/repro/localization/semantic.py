"""Coarse-to-fine semantic localization (Guo et al. [56]).

Stage 1 (*initialization*): a coarse GNSS fix seeds a grid of candidate
poses; each is scored by aligning the observed semantic features against
the HD map, and the best cell wins. Stage 2 (*tracking*): the pose is
refined each frame with a semantic point-to-landmark ICP step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.hdmap import HDMap
from repro.geometry.transform import SE2
from repro.geometry.vec import wrap_angle


@dataclass(frozen=True)
class SemanticObservation:
    """Body-frame semantic points with class labels."""

    points: np.ndarray  # (N, 2)
    labels: Tuple[str, ...]  # class per point


def observe_semantics(reality: HDMap, pose: SE2, rng: np.random.Generator,
                      radius: float = 40.0, noise_sigma: float = 0.12,
                      detection_prob: float = 0.85) -> SemanticObservation:
    """Sensor surrogate: landmarks near the true pose, labelled by kind."""
    inv = pose.inverse()
    pts: List[np.ndarray] = []
    labels: List[str] = []
    for lm in reality.landmarks_in_radius(pose.x, pose.y, radius):
        if rng.uniform() > detection_prob:
            continue
        body = inv.apply(lm.position) + rng.normal(0.0, noise_sigma, size=2)
        pts.append(body)
        labels.append(lm.id.kind)
    if not pts:
        return SemanticObservation(np.zeros((0, 2)), ())
    return SemanticObservation(np.array(pts), tuple(labels))


class SemanticAligner:
    """Two-stage semantic localizer against the HD map."""

    def __init__(self, hdmap: HDMap, search_radius: float = 60.0) -> None:
        self.map = hdmap
        self.search_radius = search_radius

    # ------------------------------------------------------------------
    def _map_points(self, around: SE2) -> Dict[str, np.ndarray]:
        by_class: Dict[str, List[np.ndarray]] = {}
        for lm in self.map.landmarks_in_radius(around.x, around.y,
                                               self.search_radius):
            by_class.setdefault(lm.id.kind, []).append(lm.position)
        return {k: np.array(v) for k, v in by_class.items()}

    def score_pose(self, pose: SE2, obs: SemanticObservation,
                   map_points: Optional[Dict[str, np.ndarray]] = None,
                   sigma: float = 0.8) -> float:
        """Sum of per-point Gaussian agreement with same-class landmarks."""
        if obs.points.shape[0] == 0:
            return 0.0
        if map_points is None:
            map_points = self._map_points(pose)
        world = pose.apply(obs.points)
        score = 0.0
        for p, label in zip(world, obs.labels):
            candidates = map_points.get(label)
            if candidates is None or candidates.shape[0] == 0:
                continue
            d2 = np.min((candidates[:, 0] - p[0])**2
                        + (candidates[:, 1] - p[1])**2)
            score += float(np.exp(-0.5 * d2 / sigma**2))
        return score

    # ------------------------------------------------------------------
    def initialize(self, coarse: SE2, obs: SemanticObservation,
                   search_extent: float = 12.0, grid_step: float = 1.5,
                   n_headings: int = 9,
                   heading_extent: float = np.radians(12.0)) -> SE2:
        """Stage 1: grid search around the coarse GNSS pose."""
        map_points = self._map_points(coarse)
        offsets = np.arange(-search_extent, search_extent + grid_step / 2,
                            grid_step)
        headings = np.linspace(-heading_extent, heading_extent, n_headings)
        best_pose = coarse
        best_score = -1.0
        for dx in offsets:
            for dy in offsets:
                for dh in headings:
                    cand = SE2(coarse.x + dx, coarse.y + dy,
                               wrap_angle(coarse.theta + dh))
                    s = self.score_pose(cand, obs, map_points)
                    if s > best_score:
                        best_score, best_pose = s, cand
        return self.refine(best_pose, obs)

    # ------------------------------------------------------------------
    def refine(self, pose: SE2, obs: SemanticObservation,
               iterations: int = 8, max_pair_distance: float = 3.0) -> SE2:
        """Stage 2: semantic point-to-landmark ICP refinement."""
        if obs.points.shape[0] < 2:
            return pose
        current = pose
        map_points = self._map_points(pose)
        for _ in range(iterations):
            world = current.apply(obs.points)
            src = []
            dst = []
            for p, label in zip(world, obs.labels):
                candidates = map_points.get(label)
                if candidates is None or candidates.shape[0] == 0:
                    continue
                d = np.hypot(candidates[:, 0] - p[0], candidates[:, 1] - p[1])
                i = int(np.argmin(d))
                if d[i] <= max_pair_distance:
                    src.append(p)
                    dst.append(candidates[i])
            if len(src) < 2:
                return current
            correction = _umeyama_se2(np.array(src), np.array(dst))
            current = correction @ current
            if (abs(correction.x) < 1e-4 and abs(correction.y) < 1e-4
                    and abs(correction.theta) < 1e-5):
                break
        return current


def _umeyama_se2(src: np.ndarray, dst: np.ndarray) -> SE2:
    """Rigid SE(2) transform best mapping ``src`` points onto ``dst``."""
    mu_s = src.mean(axis=0)
    mu_d = dst.mean(axis=0)
    s = src - mu_s
    d = dst - mu_d
    cos_sum = float(np.sum(s[:, 0] * d[:, 0] + s[:, 1] * d[:, 1]))
    sin_sum = float(np.sum(s[:, 0] * d[:, 1] - s[:, 1] * d[:, 0]))
    theta = float(np.arctan2(sin_sum, cos_sum))
    c, sn = np.cos(theta), np.sin(theta)
    rot_mu = np.array([c * mu_s[0] - sn * mu_s[1], sn * mu_s[0] + c * mu_s[1]])
    t = mu_d - rot_mu
    return SE2(float(t[0]), float(t[1]), theta)
