"""Cluster-side incremental sync: version vectors over per-shard deltas.

A single :class:`~repro.update.distribution.MapDistributionServer` has
one scalar version, so a vehicle syncs with "everything since N". A
cluster has one independent version sequence *per shard*, so the cluster
client tracks a **version vector** ``{shard: synced version}`` and the
router answers with a :class:`ClusterDelta` — one atomic
:class:`~repro.update.distribution.SyncDelta` per shard, ownership-
filtered so every element appears in exactly one shard's delta.

Convergence under rebalance: a new shard's history replays the journal,
so its delta since 0 can repeat changes the client already applied via
the previous owner. Applying a delta is idempotent per element (add of a
present element is a replace; remove of an absent one is a no-op), so
repeated delivery converges on the same local map — the count of applied
changes may overshoot, the state never diverges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.core.changes import MapChange
from repro.core.hdmap import HDMap
from repro.errors import ClusterError
from repro.update.distribution import SyncDelta

if TYPE_CHECKING:  # circular at runtime: router builds ClusterDelta
    from repro.cluster.router import ClusterRouter


@dataclass
class ClusterDelta:
    """One incremental-sync payload spanning every shard.

    ``version`` is the aggregate cluster version at capture;
    ``versions[i]`` is shard *i*'s version its ``deltas[i]`` was captured
    at. Each per-shard delta is atomic (captured under that shard's
    server lock); the vector makes the whole payload resumable.
    """

    version: int
    versions: Dict[int, int]
    deltas: Dict[int, SyncDelta]

    def changes(self) -> List[Tuple[int, MapChange]]:
        """All changes as ``(shard, change)``, ordered by shard index
        then per-shard log order (the merge order `apply` uses)."""
        out: List[Tuple[int, MapChange]] = []
        for index in sorted(self.deltas):
            out.extend((index, change)
                       for change in self.deltas[index].changes)
        return out

    def __len__(self) -> int:
        return sum(len(d.changes) for d in self.deltas.values())


@dataclass
class ClusterMapClient:
    """A vehicle's local map kept current against a sharded cluster.

    The cluster analogue of
    :class:`~repro.update.distribution.VehicleMapClient`: bootstrap is a
    merged snapshot plus the version vector it was captured at; ``sync``
    fetches and applies one :class:`ClusterDelta`.
    """

    router: "ClusterRouter"
    local: HDMap = None  # type: ignore[assignment]
    vector: Dict[int, int] = field(default_factory=dict)
    bytes_downloaded: int = 0

    CHANGE_RECORD_BYTES = 48

    def __post_init__(self) -> None:
        if self.local is None:
            self.bootstrap()

    def bootstrap(self) -> None:
        """Full merged download (what incremental sync avoids)."""
        from repro.storage.binary import encode_map

        snapshot, vector = self.router.bootstrap()
        self.bytes_downloaded += len(encode_map(snapshot))
        self.local = snapshot
        self.vector = vector

    def sync(self) -> int:
        """Incremental update; returns the number of changes applied."""
        return self.apply_delta(self.router.changes_since(self.vector))

    def apply_delta(self, delta: ClusterDelta) -> int:
        """Apply one :class:`ClusterDelta`; returns changes applied.

        Per-shard deltas at or before the client's synced version for
        that shard are skipped, so out-of-order delivery can never roll
        a shard's slice backwards.
        """
        if self.local is None:
            raise ClusterError("client has no local map; bootstrap first")
        applied = 0
        for index in sorted(delta.deltas):
            shard_delta = delta.deltas[index]
            if shard_delta.version <= self.vector.get(index, -1):
                continue
            for change in shard_delta.changes:
                eid = change.element_id
                self.bytes_downloaded += self.CHANGE_RECORD_BYTES
                element = shard_delta.elements.get(eid)
                in_local = eid in self.local
                if element is not None:
                    if in_local:
                        self.local.replace(element)
                    else:
                        self.local.add(element)
                elif in_local:
                    self.local.remove(eid)
                applied += 1
            self.vector[index] = shard_delta.version
        return applied

    def is_consistent(self) -> bool:
        """Local matches the cluster's merged snapshot id-for-id."""
        merged, _ = self.router.bootstrap()
        local_ids = {e.id for e in self.local.elements()}
        return {e.id for e in merged.elements()} == local_ids
