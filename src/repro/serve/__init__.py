"""Fleet-scale map serving: the concurrent front door of the HD-map database.

The survey's closing open problem is distributing "enormous map data" to
whole vehicle fleets [73]; ``repro.update.distribution`` and
``repro.storage.tilestore`` model the single-vehicle side. This package
adds the serving layer between them and the fleet:

- :mod:`repro.serve.api` — typed request/response messages
  (``GetTile``, ``SpatialQuery``, ``ChangesSince``, ``IngestPatch``,
  ``Snapshot``) with priorities and status codes;
- :mod:`repro.serve.cache` — a sharded, read-write-locked tile cache;
- :mod:`repro.serve.admission` — bounded queueing with backpressure and
  load shedding of stale low-priority requests;
- :mod:`repro.serve.metrics` — thread-safe latency histograms and counters;
- :mod:`repro.serve.service` — the worker-pool ``MapService`` tying the
  above together;
- :mod:`repro.serve.fleet` — a synthetic-vehicle load generator and report.
"""

from repro.serve.admission import AdmissionController, AdmissionPolicy
from repro.serve.api import (
    ChangesSince,
    GetTile,
    IngestPatch,
    Priority,
    Request,
    Response,
    Snapshot,
    SpatialQuery,
    Status,
)
from repro.serve.cache import RWLock, ShardedTileCache
from repro.serve.fleet import FleetReport, FleetSimulator, VehicleReport
from repro.serve.metrics import Counter, LatencyHistogram, ServiceMetrics
from repro.serve.service import MapService

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "ChangesSince",
    "Counter",
    "FleetReport",
    "FleetSimulator",
    "GetTile",
    "IngestPatch",
    "LatencyHistogram",
    "MapService",
    "Priority",
    "Request",
    "Response",
    "RWLock",
    "ServiceMetrics",
    "ShardedTileCache",
    "Snapshot",
    "SpatialQuery",
    "Status",
    "VehicleReport",
]
