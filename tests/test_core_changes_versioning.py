"""Change records, diffing, patches, versioning, tiles, validation."""

import numpy as np
import pytest

from repro.core import (
    ChangeType,
    HDMap,
    Lane,
    MapPatch,
    SignType,
    TileScheme,
    TrafficSign,
    VersionedMap,
    diff_maps,
    match_changes,
    validate_map,
)
from repro.core.changes import MapChange
from repro.core.elements import LaneBoundary
from repro.core.ids import ElementId
from repro.core.validation import Severity
from repro.errors import MapValidationError, UnknownElementError
from repro.geometry.polyline import straight


def _base_map():
    hdmap = HDMap("base")
    hdmap.create(Lane, centerline=straight([0, 0], [100, 0]))
    hdmap.create(TrafficSign, position=np.array([20.0, 5.0]),
                 sign_type=SignType.STOP)
    hdmap.create(TrafficSign, position=np.array([80.0, 5.0]),
                 sign_type=SignType.SPEED_LIMIT, value=13.89)
    return hdmap


class TestDiff:
    def test_identical_maps_no_changes(self):
        a = _base_map()
        assert diff_maps(a, a.copy()) == []

    def test_added_removed(self):
        a = _base_map()
        b = a.copy()
        sign = next(iter(b.signs()))
        b.remove(sign.id)
        b.create(TrafficSign, position=np.array([50.0, -5.0]),
                 sign_type=SignType.DIRECTION)
        changes = diff_maps(a, b)
        types = sorted(c.change_type.value for c in changes)
        assert types == ["added", "removed"]

    def test_moved(self):
        a = _base_map()
        b = a.copy()
        sign = next(iter(b.signs()))
        sign.position = sign.position + np.array([2.0, 0.0])
        b.replace(sign)
        changes = diff_maps(a, b)
        assert len(changes) == 1
        assert changes[0].change_type is ChangeType.MOVED
        assert changes[0].magnitude == pytest.approx(2.0)

    def test_small_move_below_tolerance_ignored(self):
        a = _base_map()
        b = a.copy()
        sign = next(iter(b.signs()))
        sign.position = sign.position + np.array([0.05, 0.0])
        b.replace(sign)
        assert diff_maps(a, b, move_tolerance=0.1) == []

    def test_lane_attribute_change_is_modified(self):
        a = _base_map()
        b = a.copy()
        lane = next(iter(b.lanes()))
        lane.speed_limit = 5.0
        b.replace(lane)
        changes = diff_maps(a, b)
        assert changes[0].change_type is ChangeType.MODIFIED


class TestMatchChanges:
    def _change(self, ctype, x, y):
        return MapChange(ctype, ElementId("sign", 1), (x, y))

    def test_perfect_match(self):
        truth = [self._change(ChangeType.ADDED, 10, 10)]
        detected = [self._change(ChangeType.ADDED, 11, 10)]
        counts = match_changes(detected, truth, radius=5.0)
        assert counts == {"tp": 1, "fp": 0, "fn": 0}

    def test_type_mismatch_is_fp(self):
        truth = [self._change(ChangeType.ADDED, 10, 10)]
        detected = [self._change(ChangeType.REMOVED, 10, 10)]
        counts = match_changes(detected, truth, radius=5.0)
        assert counts == {"tp": 0, "fp": 1, "fn": 1}

    def test_each_truth_matched_once(self):
        truth = [self._change(ChangeType.ADDED, 10, 10)]
        detected = [self._change(ChangeType.ADDED, 10, 10),
                    self._change(ChangeType.ADDED, 10.5, 10)]
        counts = match_changes(detected, truth, radius=5.0)
        assert counts["tp"] == 1
        assert counts["fp"] == 1


class TestVersioning:
    def test_apply_add_and_log(self):
        vm = VersionedMap(_base_map())
        patch = MapPatch(source="test")
        patch.add(TrafficSign(id=vm.map.new_id("sign"),
                              position=np.array([60.0, 5.0]),
                              sign_type=SignType.DIRECTION))
        version = vm.apply(patch)
        assert version == 1
        assert len(vm.changes_since(0)) == 1

    def test_apply_remove(self):
        vm = VersionedMap(_base_map())
        sign = next(iter(vm.map.signs()))
        vm.apply(MapPatch().remove(sign.id))
        assert sign.id not in vm.map

    def test_failed_patch_rolls_back(self):
        vm = VersionedMap(_base_map())
        sign = next(iter(vm.map.signs()))
        bad = MapPatch()
        bad.remove(sign.id)
        bad.remove(ElementId("sign", 999))  # will fail
        with pytest.raises(UnknownElementError):
            vm.apply(bad)
        assert sign.id in vm.map  # rollback restored it
        assert vm.version == 0

    def test_changes_since_filters_versions(self):
        vm = VersionedMap(_base_map())
        s1, s2 = list(vm.map.signs())
        vm.apply(MapPatch().remove(s1.id))
        vm.apply(MapPatch().remove(s2.id))
        assert len(vm.changes_since(1)) == 1
        assert len(vm.changes_since(0)) == 2


class TestTiles:
    def test_tile_of(self):
        scheme = TileScheme(100.0)
        assert scheme.tile_of(50, 50) == scheme.tile_of(99, 1)
        assert scheme.tile_of(-1, 0).tx == -1

    def test_partition_covers_all_spatial_elements(self):
        hdmap = _base_map()
        scheme = TileScheme(50.0)
        partition = scheme.partition(hdmap)
        total = sum(len(v) for v in partition.values())
        assert total == len(hdmap)

    def test_tiles_for_bounds(self):
        scheme = TileScheme(100.0)
        tiles = scheme.tiles_for_bounds((0, 0, 250, 50))
        assert len(tiles) == 3

    def test_bad_tile_size(self):
        with pytest.raises(ValueError):
            TileScheme(0.0)


class TestValidation:
    def test_valid_map_passes(self, highway):
        errors = [i for i in validate_map(highway)
                  if i.severity is Severity.ERROR]
        assert errors == []

    def test_dangling_boundary_reference(self):
        hdmap = HDMap("bad")
        hdmap.create(Lane, centerline=straight([0, 0], [50, 0]),
                     left_boundary=ElementId("boundary", 99))
        issues = validate_map(hdmap)
        assert any(i.check == "lane_references" for i in issues)
        with pytest.raises(MapValidationError):
            validate_map(hdmap, raise_on_error=True)

    def test_implausible_width(self):
        hdmap = HDMap("bad")
        hdmap.create(Lane, centerline=straight([0, 0], [50, 0]), width=12.0)
        issues = validate_map(hdmap)
        assert any("width" in i.message for i in issues)

    def test_swapped_boundaries_warn(self):
        hdmap = HDMap("bad")
        left = hdmap.create(LaneBoundary, line=straight([0, -2], [50, -2]))
        right = hdmap.create(LaneBoundary, line=straight([0, 2], [50, 2]))
        hdmap.create(Lane, centerline=straight([0, 0], [50, 0]),
                     left_boundary=left.id, right_boundary=right.id)
        issues = validate_map(hdmap)
        assert any(i.check == "boundary_consistency" for i in issues)

    def test_regulatory_missing_lane(self):
        hdmap = _base_map()
        from repro.core import RuleType

        hdmap.create_regulatory(rule_type=RuleType.STOP,
                                lanes=[ElementId("lane", 999)])
        issues = validate_map(hdmap)
        assert any(i.check == "regulatory" for i in issues)
