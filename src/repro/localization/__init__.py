"""Localization: the survey's most populated application area.

Substrates (:class:`ParticleFilter2D`, :class:`PoseEKF`) plus one module
per surveyed technique family — lane-marking LiDAR localization [50],
landmark triangulation and HRLs [53], [72], geometric-strength analysis
[49], lane-surface particles [48], bitwise raster matching (HDMI-Loc)
[23], monocular vector-map localization (MLVHM) [22], lane-level map
matching with integrity [59], ADAS multi-sensor fusion [54], cooperative
LDM exchange [55], and coarse-to-fine semantic alignment [56].
"""

from repro.localization.particle_filter import ParticleFilter2D
from repro.localization.ekf import PoseEKF
from repro.localization.map_matching import (
    LaneMatch,
    LaneMatcher,
    match_line_segments,
)
from repro.localization.landmarks import (
    LandmarkLocalizer,
    associate_detections,
    detect_hrl,
    triangulate_pose,
)
from repro.localization.geometric import (
    LandmarkLayout,
    geometric_dilution,
    simulate_layout_error,
)
from repro.localization.lane_marking import (
    LaneMarkingLocalizer,
    extract_marking_points,
    hough_lines,
)
from repro.localization.hdmi_loc import HdmiLocalizer, rasterize_map
from repro.localization.mlvhm import MonocularLocalizer
from repro.localization.surfaces import LaneSurfaceFilter
from repro.localization.adas import AdasFusionLocalizer
from repro.localization.cooperative import CooperativeLocalizer, LdmMessage
from repro.localization.semantic import SemanticAligner

__all__ = [
    "AdasFusionLocalizer",
    "CooperativeLocalizer",
    "HdmiLocalizer",
    "LandmarkLayout",
    "LandmarkLocalizer",
    "LaneMarkingLocalizer",
    "LaneMatch",
    "LaneMatcher",
    "LaneSurfaceFilter",
    "LdmMessage",
    "MonocularLocalizer",
    "ParticleFilter2D",
    "PoseEKF",
    "SemanticAligner",
    "associate_detections",
    "detect_hrl",
    "extract_marking_points",
    "geometric_dilution",
    "hough_lines",
    "match_line_segments",
    "rasterize_map",
    "simulate_layout_error",
    "triangulate_pose",
]
