"""repro.perf: instrumentation, runner, kernel equivalence, serve memoization.

The equivalence classes here are the heart of the optimization PR: every
vectorized hot-path kernel must produce **bit-identical** output to its
frozen pre-optimization twin in :mod:`repro.perf.reference` on the same
rng stream. Anything weaker would let a "fast but subtly different"
kernel slip into the physics.
"""

import json
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.index import GridIndex
from repro.geometry.polyline import Polyline
from repro.geometry.transform import SE2
from repro.localization.geometric import (
    LandmarkLayout,
    LayoutPattern,
    simulate_layout_error,
    solve_position,
    solve_positions,
)
from repro.localization.lane_marking import _batch_signed_laterals
from repro.localization.map_matching import match_line_segments
from repro.perf import PerfRegistry, timed
from repro.perf import reference
from repro.perf.runner import (
    BenchResult,
    check_baseline,
    load_report,
    run_bench,
    write_report,
)
from repro.sensors.lidar import (
    LidarScanner,
    _points_to_segments_min_distance,
)
from repro.serve import GetTile, IngestPatch, MapService, Status
from repro.storage import TileStore
from repro.storage.binary import encode_map
from repro.update.distribution import MapDistributionServer
from repro.world import generate_grid_city

from tests.test_serve import _add_sign_patch


# ----------------------------------------------------------------------
# Instrumentation
# ----------------------------------------------------------------------
class TestInstrument:
    def test_context_manager_accumulates(self):
        reg = PerfRegistry(enabled=True)
        with timed("outer", reg):
            with timed("inner", reg):
                time.sleep(0.002)
        snap = reg.snapshot()
        assert snap["outer"]["calls"] == 1
        assert snap["inner"]["calls"] == 1
        # Nesting: outer envelops inner.
        assert snap["outer"]["total_ns"] >= snap["inner"]["total_ns"]

    def test_decorator_counts_calls(self):
        reg = PerfRegistry(enabled=True)

        @timed("fn", reg)
        def fn(x):
            return x + 1

        assert [fn(i) for i in range(5)] == [1, 2, 3, 4, 5]
        snap = reg.snapshot()
        assert snap["fn"]["calls"] == 5
        assert snap["fn"]["total_ns"] > 0

    def test_disabled_registry_records_nothing(self):
        reg = PerfRegistry(enabled=False)

        @timed("fn", reg)
        def fn():
            return 42

        with timed("ctx", reg):
            fn()
        assert reg.snapshot() == {}

    def test_enable_disable_reset_cycle(self):
        reg = PerfRegistry()
        reg.enable()
        with timed("a", reg):
            pass
        reg.disable()
        with timed("a", reg):
            pass
        assert reg.snapshot()["a"]["calls"] == 1
        reg.reset()
        assert reg.snapshot() == {}

    def test_threads_accumulate_independently_then_merge(self):
        reg = PerfRegistry(enabled=True)

        def work():
            for _ in range(10):
                with timed("shared", reg):
                    pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        work()
        assert reg.snapshot()["shared"]["calls"] == 50


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
class TestRunner:
    def test_run_bench_counts_reps(self):
        calls = []
        result = run_bench("k", lambda: calls.append(1),
                           repetitions=5, warmup=2)
        assert len(calls) == 7  # warmup included in calls, not samples
        assert len(result.samples_s) == 5
        assert result.min_s <= result.median_s <= result.max_s

    def test_p95_linear_interpolation(self):
        r = BenchResult("k", samples_s=[float(i) for i in range(1, 21)])
        # rank = 0.95 * 19 = 18.05 over sorted 1..20 -> 19.05
        assert r.p95_s == pytest.approx(19.05)
        assert BenchResult("k", samples_s=[3.0]).p95_s == 3.0
        assert BenchResult("k").p95_s == 0.0

    def test_write_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "perf.json")
        results = [BenchResult("a", [0.1, 0.2, 0.3]),
                   BenchResult("b", [0.5])]
        report = write_report(path, results, speedups={"a": 3.5},
                              counters={"a": {"calls": 7}})
        loaded = load_report(path)
        assert loaded == json.loads(json.dumps(report))
        assert loaded["kernels"]["a"]["median_s"] == pytest.approx(0.2)
        assert loaded["speedups"]["a"] == 3.5
        assert loaded["counters"]["a"]["calls"] == 7

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "other/9", "kernels": {}}')
        with pytest.raises(ValueError, match="schema"):
            load_report(str(path))

    def test_check_baseline_gates_regressions(self):
        fresh = {"kernels": {"a": {"median_s": 0.30},
                             "b": {"median_s": 0.10},
                             "new": {"median_s": 1.0}}}
        base = {"kernels": {"a": {"median_s": 0.10},
                            "b": {"median_s": 0.10}}}
        failures = check_baseline(fresh, base, ["a", "b", "new", "gone"],
                                  max_regression=2.5)
        # a regressed 3.0x; new has no baseline (skipped); gone is missing
        # from the fresh report (fails).
        assert len(failures) == 2
        assert any("a:" in f and "3.00x" in f for f in failures)
        assert any("gone" in f for f in failures)
        assert check_baseline(fresh, base, ["b"]) == []


# ----------------------------------------------------------------------
# Kernel equivalence: optimized vs frozen reference, bit-identical.
# ----------------------------------------------------------------------
class TestProjectBatchEquivalence:
    def test_bit_identical_to_scalar_project(self):
        rng = np.random.default_rng(3)
        s = np.linspace(0.0, 200.0, 80)
        line = Polyline(np.stack(
            [s, 9.0 * np.sin(s / 25.0) + rng.normal(0.0, 0.2, s.size)],
            axis=1))
        points = np.stack([rng.uniform(-10.0, 210.0, 500),
                           rng.uniform(-20.0, 20.0, 500)], axis=1)
        stations, laterals = line.project_batch(points)
        ref_s, ref_d = reference.project_scalar(line, points)
        np.testing.assert_array_equal(stations, ref_s)
        np.testing.assert_array_equal(laterals, ref_d)

    def test_chunking_does_not_change_results(self):
        rng = np.random.default_rng(4)
        line = Polyline(rng.uniform(0.0, 100.0, (300, 2)).cumsum(axis=0))
        points = rng.uniform(0.0, 3000.0, (64, 2))
        full_s, full_d = line.project_batch(points)
        tiny_s, tiny_d = line.project_batch(points, max_pairs=512)
        np.testing.assert_array_equal(full_s, tiny_s)
        np.testing.assert_array_equal(full_d, tiny_d)

    def test_empty_batch(self):
        line = Polyline(np.array([[0.0, 0.0], [10.0, 0.0]]))
        stations, laterals = line.project_batch(np.zeros((0, 2)))
        assert stations.shape == (0,)
        assert laterals.shape == (0,)

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_property_agrees_with_scalar(self, data):
        n = data.draw(st.integers(min_value=2, max_value=12))
        pts = np.array([
            [data.draw(st.floats(-1e3, 1e3)), data.draw(st.floats(-1e3, 1e3))]
            for _ in range(n)])
        seg = np.diff(pts, axis=0)
        if not np.all(np.hypot(seg[:, 0], seg[:, 1]) > 1e-6):
            pts = np.cumsum(np.abs(pts) + 1.0, axis=0)
        line = Polyline(pts)
        m = data.draw(st.integers(min_value=1, max_value=8))
        query = np.array([
            [data.draw(st.floats(-2e3, 2e3)), data.draw(st.floats(-2e3, 2e3))]
            for _ in range(m)])
        stations, laterals = line.project_batch(query)
        ref_s, ref_d = reference.project_scalar(line, query)
        np.testing.assert_allclose(stations, ref_s, atol=1e-9)
        np.testing.assert_allclose(laterals, ref_d, atol=1e-9)


class TestLidarEquivalence:
    @pytest.mark.parametrize("pose", [
        SE2(150.0, 150.0, 0.3),
        SE2(310.0, 160.0, -1.2),
        SE2(75.0, 290.0, 2.8),
    ])
    def test_scan_bit_identical_to_reference(self, city, pose):
        scanner = LidarScanner()
        opt = scanner.scan(city, pose, np.random.default_rng(11))
        ref = reference.scan_reference(scanner, city, pose,
                                       np.random.default_rng(11))
        np.testing.assert_array_equal(opt.ground.points, ref.ground.points)
        np.testing.assert_array_equal(opt.ground.intensity,
                                      ref.ground.intensity)
        np.testing.assert_array_equal(opt.ground.ring, ref.ground.ring)
        np.testing.assert_array_equal(opt.objects.angles, ref.objects.angles)
        np.testing.assert_array_equal(opt.objects.ranges, ref.objects.ranges)
        np.testing.assert_array_equal(opt.objects.intensity,
                                      ref.objects.intensity)

    def test_repeated_scan_at_fixed_cell_stays_identical(self, city):
        """The scan-context cache must not change results on reuse."""
        scanner = LidarScanner()
        pose = SE2(150.0, 150.0, 0.3)
        first = scanner.scan(city, pose, np.random.default_rng(5))
        again = scanner.scan(city, pose, np.random.default_rng(5))
        np.testing.assert_array_equal(first.ground.intensity,
                                      again.ground.intensity)

    def test_cache_invalidated_on_map_mutation(self, city):
        scanner = LidarScanner()
        pose = SE2(150.0, 150.0, 0.3)
        world = city.copy()
        scanner.scan(world, pose, np.random.default_rng(5))
        # Remove every boundary near the pose; a stale context would keep
        # returning painted intensities.
        for element in list(world.elements_in_radius(pose.x, pose.y, 60.0,
                                                     kind="boundary")):
            world.remove(element.id)
        fresh = scanner.scan(world, pose, np.random.default_rng(5))
        ref = reference.scan_reference(scanner, world, pose,
                                       np.random.default_rng(5))
        np.testing.assert_array_equal(fresh.ground.intensity,
                                      ref.ground.intensity)

    def test_min_distance_empty_segments_returns_inf(self):
        points = np.array([[0.0, 0.0], [3.0, 4.0]])
        empty = np.zeros((0, 2))
        d = _points_to_segments_min_distance(points, empty, empty)
        assert d.shape == (2,)
        assert np.all(np.isinf(d))

    def test_min_distance_chunked_matches_reference(self):
        rng = np.random.default_rng(8)
        points = rng.uniform(0.0, 100.0, (37, 2))
        a = rng.uniform(0.0, 100.0, (53, 2))
        b = a + rng.uniform(-5.0, 5.0, (53, 2))
        expect = reference.points_to_segments_min_distance_reference(
            points, a, b)
        got = _points_to_segments_min_distance(points, a, b)
        chunked = _points_to_segments_min_distance(points, a, b, max_pairs=64)
        np.testing.assert_array_equal(got, expect)
        np.testing.assert_array_equal(chunked, expect)


class TestParticleWeightEquivalence:
    def test_batched_laterals_match_scalar(self, city):
        rng = np.random.default_rng(21)
        pose = SE2(150.0, 150.0, 0.3)
        states = np.stack([rng.normal(pose.x, 2.0, 100),
                           rng.normal(pose.y, 2.0, 100),
                           rng.normal(pose.theta, 0.1, 100)], axis=1)
        boundaries = _fixture_boundaries(city, pose)
        groups = boundaries["paint"] + boundaries["edge"]
        assert groups, "fixture city must have boundaries near the pose"
        for a_pts, b_pts in groups:
            lateral, valid = _batch_signed_laterals(states, a_pts, b_pts)
            for i in range(states.shape[0]):
                expect = reference._signed_lateral_reference(
                    a_pts, b_pts, *states[i])
                if expect is None:
                    assert not valid[i]
                else:
                    assert valid[i]
                    assert lateral[i] == expect

    def test_weights_bit_identical_to_reference(self, city):
        rng = np.random.default_rng(22)
        pose = SE2(150.0, 150.0, 0.3)
        states = np.stack([rng.normal(pose.x, 1.5, 250),
                           rng.normal(pose.y, 1.5, 250),
                           rng.normal(pose.theta, 0.05, 250)], axis=1)
        boundaries = _fixture_boundaries(city, pose)
        measurements = [(1.7, "paint"), (-1.9, "paint"), (5.2, "edge")]
        sigma = 0.12

        laterals = {
            cls: [_batch_signed_laterals(states, a_pts, b_pts)
                  for a_pts, b_pts in boundaries.get(cls, ())]
            for cls in ("paint", "edge")
        }
        total = np.zeros(states.shape[0])
        for m, cls in measurements:
            best = np.full(states.shape[0], np.inf)
            for lat, valid in laterals[cls]:
                err = np.where(valid, np.abs(lat - m), np.inf)
                np.minimum(best, err, out=best)
            scale = 2.0 if cls == "edge" else 1.0
            term = scale * (np.minimum(best, 3.0 * sigma) / sigma)**2
            total += np.where(np.isfinite(best), term, 0.0)
        log_w = -0.5 * total
        log_w -= log_w.max()
        batched = np.exp(log_w)

        expect = reference.particle_weights_reference(
            states, measurements, boundaries, sigma)
        np.testing.assert_array_equal(batched, expect)


class TestMatchAndGeometricEquivalence:
    @staticmethod
    def _segment_world(rng, n_obs, n_ref):
        def segs(n):
            a = rng.uniform(0.0, 80.0, (n, 2))
            angle = rng.uniform(0.0, np.pi, n)
            length = rng.uniform(2.0, 12.0, n)
            b = a + np.stack([length * np.cos(angle),
                              length * np.sin(angle)], axis=1)
            return [(a[i], b[i]) for i in range(n)]
        return segs(n_obs), segs(n_ref)

    def test_match_line_segments_matches_reference(self):
        rng = np.random.default_rng(31)
        for _ in range(20):
            observed, ref_lines = self._segment_world(rng, 6, 18)
            got = match_line_segments(observed, ref_lines)
            expect = reference.match_line_segments_reference(
                observed, ref_lines)
            if expect is None:
                assert got is None
            else:
                assert got is not None
                assert got.x == expect.x
                assert got.y == expect.y
                assert got.theta == expect.theta

    def test_solve_positions_matches_sequential(self):
        rng = np.random.default_rng(41)
        layout = LandmarkLayout.generate(LayoutPattern.RANDOM, 6, 40.0, rng)
        true_ranges = np.hypot(layout.positions[:, 0],
                               layout.positions[:, 1])
        measured = true_ranges + rng.normal(0.0, 0.3, (16, true_ranges.size))
        batch = solve_positions(layout, measured)
        for k in range(measured.shape[0]):
            single = solve_position(layout, measured[k])
            np.testing.assert_allclose(batch[k], single, atol=1e-7)

    def test_simulate_layout_error_matches_reference(self):
        rng = np.random.default_rng(42)
        layout = LandmarkLayout.generate(LayoutPattern.RANDOM, 5, 35.0, rng)
        got = simulate_layout_error(layout, 0.4,
                                    np.random.default_rng(9), trials=64)
        expect = reference.simulate_layout_error_reference(
            layout, 0.4, np.random.default_rng(9), trials=64)
        assert got == pytest.approx(expect, rel=1e-7)


# ----------------------------------------------------------------------
# GridIndex determinism and nearest() clamp
# ----------------------------------------------------------------------
class TestGridIndexDeterminism:
    @staticmethod
    def _build(keys_bounds):
        index = GridIndex(cell_size=10.0)
        for key, bounds in keys_bounds:
            index.insert(key, bounds)
        return index

    @settings(max_examples=30, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(0, 500),
                  st.tuples(st.floats(0.0, 90.0), st.floats(0.0, 90.0))),
        min_size=1, max_size=40, unique_by=lambda kb: kb[0]))
    def test_same_hits_as_repr_sorted_reference(self, items):
        keys_bounds = [((k % 7, k), (x, y, x + 8.0, y + 8.0))
                       for k, (x, y) in items]
        index = self._build(keys_bounds)
        query = (20.0, 20.0, 70.0, 70.0)
        got = index.query_box(query)
        expect = reference.query_box_repr_sorted(index, query)
        assert set(got) == set(expect)
        assert len(got) == len(set(got))

    def test_order_is_insertion_order_and_rebuild_stable(self):
        rng = np.random.default_rng(51)
        keys_bounds = []
        for i in rng.permutation(30):
            x, y = rng.uniform(0.0, 50.0, 2)
            keys_bounds.append((("e", int(i)), (x, y, x + 5.0, y + 5.0)))
        first = self._build(keys_bounds)
        second = self._build(keys_bounds)
        query = (0.0, 0.0, 60.0, 60.0)
        hits = first.query_box(query)
        assert hits == second.query_box(query)
        inserted_order = [k for k, _ in keys_bounds]
        assert hits == sorted(hits, key=inserted_order.index)

    def test_nearest_respects_max_radius_clamp(self):
        index = GridIndex(cell_size=1.0)
        index.insert("near", (5.0, 0.0, 5.0, 0.0))
        index.insert("far", (500.0, 0.0, 500.0, 0.0))
        centres = {"near": (5.0, 0.0), "far": (500.0, 0.0)}

        calls = []

        def dist(key):
            calls.append(key)
            cx, cy = centres[key]
            return float(np.hypot(cx, cy))

        key, d = index.nearest(0.0, 0.0, dist, max_radius=20.0)
        assert (key, d) == ("near", 5.0)
        # The clamped verification ring must never reach the far key.
        assert "far" not in calls

    def test_nearest_falls_back_to_full_scan(self):
        index = GridIndex(cell_size=1.0)
        index.insert("only", (300.0, 0.0, 300.0, 0.0))
        key, d = index.nearest(0.0, 0.0, lambda k: 300.0, max_radius=4.0)
        assert key == "only"
        assert d == 300.0


# ----------------------------------------------------------------------
# Serving: encoded-payload memoization + metrics
# ----------------------------------------------------------------------
class TestServeEncodedMemoization:
    def test_encoded_payload_memoized_per_version(self, city):
        store = TileStore.build(city, tile_size=150.0)
        server = MapDistributionServer(city.copy())
        with MapService(server, store, n_workers=2) as service:
            tile = store.tiles()[0]
            first = service.request(GetTile(tile, encoded=True))
            assert first.status is Status.OK
            assert isinstance(first.payload, bytes)
            decoded_resp = service.request(GetTile(tile))
            assert first.payload == encode_map(decoded_resp.payload)

            again = service.request(GetTile(tile, encoded=True))
            assert again.payload == first.payload
            stats = service.cache.as_dict()
            assert stats["serialization_builds"] == 1
            assert stats["serialization_hits"] == 1

    def test_ingest_publish_invalidates_encoded(self, city):
        store = TileStore.build(city, tile_size=150.0)
        server = MapDistributionServer(city.copy())
        with MapService(server, store, n_workers=2) as service:
            tile = store.tiles()[0]
            service.request(GetTile(tile, encoded=True))
            assert service.cache.as_dict()["serialization_builds"] == 1

            resp = service.request(IngestPatch(_add_sign_patch(server)))
            assert resp.status is Status.OK

            service.request(GetTile(tile, encoded=True))
            stats = service.cache.as_dict()
            # The version bump + invalidation force a re-encode.
            assert stats["serialization_builds"] == 2

    def test_metrics_snapshot_includes_cache_section(self, city):
        store = TileStore.build(city, tile_size=150.0)
        server = MapDistributionServer(city.copy())
        with MapService(server, store, n_workers=2) as service:
            tile = store.tiles()[0]
            service.request(GetTile(tile, encoded=True))
            service.request(GetTile(tile, encoded=True))
            snap = service.metrics.snapshot()
            assert snap["cache"]["serialization_builds"] == 1
            assert snap["cache"]["serialization_hits"] == 1
            assert snap["cache"]["misses"] >= 1


def _fixture_boundaries(city, pose):
    from repro.perf.suite import _fixture_boundaries as fixture
    return fixture(city, pose)
