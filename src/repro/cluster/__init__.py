"""``repro.cluster``: multi-process sharded serving with a routing tier.

The single-node stack tops out at one process's worth of workers; this
package splits the map by consistent-hashed tile ownership into N shard
processes — each a full ``MapDistributionServer`` + ``TileStore`` +
``MapService`` over its tile subset — fronted by a thin
:class:`ClusterRouter` that pins point requests to the owning shard,
scatter-gathers the rest, journals every acked write, and restarts or
fails over shards from that journal. See ``DESIGN.md`` ("Cluster") for
the ownership/failover walkthrough.
"""

from repro.cluster.client import ClusterDelta, ClusterMapClient
from repro.cluster.router import (
    ClusterRouter,
    LocalShard,
    ProcessShard,
    TelemetryHarvester,
    estimate_clock_offset,
)
from repro.cluster.rpc import (
    PipelinedConnection,
    RpcConnection,
    RpcError,
    ShardDead,
    ShardTimeout,
)
from repro.cluster.shard import ShardBackend, ShardConfig, shard_main

__all__ = [
    "ClusterDelta",
    "ClusterMapClient",
    "ClusterRouter",
    "LocalShard",
    "PipelinedConnection",
    "ProcessShard",
    "RpcConnection",
    "RpcError",
    "ShardBackend",
    "ShardConfig",
    "ShardDead",
    "ShardTimeout",
    "TelemetryHarvester",
    "estimate_clock_offset",
    "shard_main",
]
