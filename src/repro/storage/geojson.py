"""GeoJSON-flavoured text serialization of HD maps.

One feature per element; element ids, kinds and typed attributes are kept
in ``properties`` so a round trip is lossless for every element type in
:mod:`repro.core.elements`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.core.elements import (
    BoundaryType,
    Crosswalk,
    Lane,
    LaneBoundary,
    LaneType,
    MapElement,
    Node,
    Pole,
    RoadMarking,
    RoadSegment,
    SignType,
    StopLine,
    TrafficLight,
    TrafficSign,
)
from repro.core.hdmap import HDMap
from repro.core.ids import ElementId
from repro.core.regulatory import RegulatoryElement, RuleType
from repro.errors import StorageError
from repro.geometry.polyline import Polyline

FORMAT_VERSION = 1


def _coords(line: Polyline) -> List[List[float]]:
    return [[round(float(x), 4), round(float(y), 4)] for x, y in line.points]


def _point(position: np.ndarray) -> List[float]:
    return [round(float(position[0]), 4), round(float(position[1]), 4)]


def _id_str(eid: Optional[ElementId]) -> Optional[str]:
    return None if eid is None else str(eid)


def _element_to_feature(element: MapElement) -> Dict:
    props: Dict[str, object] = {"id": str(element.id), "kind": element.id.kind}
    geometry: Dict[str, object]
    if isinstance(element, Node):
        geometry = {"type": "Point", "coordinates": _point(element.position)}
    elif isinstance(element, LaneBoundary):
        geometry = {"type": "LineString", "coordinates": _coords(element.line)}
        props.update(boundary_type=element.boundary_type.value,
                     reflectivity=element.reflectivity)
    elif isinstance(element, Lane):
        geometry = {"type": "LineString", "coordinates": _coords(element.centerline)}
        props.update(
            left_boundary=_id_str(element.left_boundary),
            right_boundary=_id_str(element.right_boundary),
            width=element.width,
            lane_type=element.lane_type.value,
            speed_limit=element.speed_limit,
            segment=_id_str(element.segment),
        )
    elif isinstance(element, RoadSegment):
        geometry = {"type": "LineString",
                    "coordinates": _coords(element.reference_line)}
        props.update(
            start_node=_id_str(element.start_node),
            end_node=_id_str(element.end_node),
            forward_lanes=[str(i) for i in element.forward_lanes],
            backward_lanes=[str(i) for i in element.backward_lanes],
        )
    elif isinstance(element, TrafficSign):
        geometry = {"type": "Point", "coordinates": _point(element.position)}
        props.update(sign_type=element.sign_type.value, value=element.value,
                     facing=element.facing, height=element.height,
                     reflectivity=element.reflectivity)
    elif isinstance(element, TrafficLight):
        geometry = {"type": "Point", "coordinates": _point(element.position)}
        props.update(facing=element.facing, cycle=list(element.cycle),
                     phase_offset=element.phase_offset, height=element.height)
    elif isinstance(element, Pole):
        geometry = {"type": "Point", "coordinates": _point(element.position)}
        props.update(height=element.height, reflectivity=element.reflectivity)
    elif isinstance(element, RoadMarking):
        geometry = {"type": "Point", "coordinates": _point(element.position)}
        props.update(marking_type=element.marking_type,
                     reflectivity=element.reflectivity)
    elif isinstance(element, Crosswalk):
        geometry = {"type": "Polygon",
                    "coordinates": [[list(map(float, p)) for p in element.polygon]]}
    elif isinstance(element, StopLine):
        geometry = {"type": "LineString", "coordinates": _coords(element.line)}
    elif isinstance(element, RegulatoryElement):
        geometry = {"type": "Point", "coordinates": [0.0, 0.0]}
        props.update(
            rule_type=element.rule_type.value,
            lanes=[str(i) for i in element.lanes],
            evidence=[str(i) for i in element.evidence],
            value=element.value,
            yields_to=[str(i) for i in element.yields_to],
        )
    else:
        raise StorageError(f"cannot serialize element type {type(element).__name__}")
    attributes = getattr(element, "attributes", None)
    if attributes:
        props["attributes"] = attributes
    return {"type": "Feature", "geometry": geometry, "properties": props}


def map_to_dict(hdmap: HDMap) -> Dict:
    """Serialize a map to a GeoJSON-style dict."""
    return {
        "type": "FeatureCollection",
        "format_version": FORMAT_VERSION,
        "name": hdmap.name,
        "map_version": hdmap.version,
        "features": [_element_to_feature(e) for e in hdmap.elements()],
    }


def _opt_id(value: Optional[str]) -> Optional[ElementId]:
    return None if value is None else ElementId.parse(value)


def _feature_to_element(feature: Dict) -> MapElement:
    props = feature["properties"]
    geometry = feature["geometry"]
    eid = ElementId.parse(props["id"])
    kind = props["kind"]
    coords = geometry.get("coordinates")
    if kind == "node":
        return Node(id=eid, position=np.asarray(coords, dtype=float))
    if kind == "boundary":
        return LaneBoundary(
            id=eid, line=Polyline(coords),
            boundary_type=BoundaryType(props["boundary_type"]),
            reflectivity=float(props["reflectivity"]),
        )
    if kind == "lane":
        return Lane(
            id=eid, centerline=Polyline(coords),
            left_boundary=_opt_id(props.get("left_boundary")),
            right_boundary=_opt_id(props.get("right_boundary")),
            width=float(props["width"]),
            lane_type=LaneType(props["lane_type"]),
            speed_limit=float(props["speed_limit"]),
            segment=_opt_id(props.get("segment")),
        )
    if kind == "segment":
        return RoadSegment(
            id=eid,
            start_node=_opt_id(props.get("start_node")),
            end_node=_opt_id(props.get("end_node")),
            reference_line=Polyline(coords),
            forward_lanes=[ElementId.parse(s) for s in props["forward_lanes"]],
            backward_lanes=[ElementId.parse(s) for s in props["backward_lanes"]],
        )
    if kind == "sign":
        return TrafficSign(
            id=eid, position=np.asarray(coords, dtype=float),
            sign_type=SignType(props["sign_type"]),
            value=props.get("value"),
            facing=float(props["facing"]),
            height=float(props["height"]),
            reflectivity=float(props["reflectivity"]),
        )
    if kind == "light":
        return TrafficLight(
            id=eid, position=np.asarray(coords, dtype=float),
            facing=float(props["facing"]),
            cycle=tuple(props["cycle"]),
            phase_offset=float(props["phase_offset"]),
            height=float(props["height"]),
        )
    if kind == "pole":
        return Pole(id=eid, position=np.asarray(coords, dtype=float),
                    height=float(props["height"]),
                    reflectivity=float(props["reflectivity"]))
    if kind == "marking":
        return RoadMarking(id=eid, position=np.asarray(coords, dtype=float),
                           marking_type=props["marking_type"],
                           reflectivity=float(props["reflectivity"]))
    if kind == "crosswalk":
        return Crosswalk(id=eid, polygon=np.asarray(coords[0], dtype=float))
    if kind == "stopline":
        return StopLine(id=eid, line=Polyline(coords))
    if kind == "regulatory":
        return RegulatoryElement(
            id=eid,
            rule_type=RuleType(props["rule_type"]),
            lanes=[ElementId.parse(s) for s in props["lanes"]],
            evidence=[ElementId.parse(s) for s in props["evidence"]],
            value=props.get("value"),
            yields_to=[ElementId.parse(s) for s in props["yields_to"]],
        )
    raise StorageError(f"unknown element kind {kind!r}")


def map_from_dict(data: Dict) -> HDMap:
    """Deserialize a map produced by :func:`map_to_dict`."""
    if data.get("type") != "FeatureCollection":
        raise StorageError("not a FeatureCollection document")
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise StorageError(f"unsupported format version {version!r}")
    hdmap = HDMap(data.get("name", "map"))
    hdmap.version = int(data.get("map_version", 0))
    for feature in data["features"]:
        hdmap.add(_feature_to_element(feature))
    return hdmap


def save_map(hdmap: HDMap, path: Union[str, Path]) -> int:
    """Write a map as JSON; returns the byte size written."""
    text = json.dumps(map_to_dict(hdmap), separators=(",", ":"))
    Path(path).write_text(text)
    return len(text.encode())


def load_map(path: Union[str, Path]) -> HDMap:
    with open(path) as f:
        return map_from_dict(json.load(f))
