"""F2 — Figure 2 / SLAMCU [41]: position-error histogram of new map
features + change-estimation accuracy.

Paper (20 km highway, traffic signs): mean position error 0.8 m, sigma
0.9 m, 96.12 % change accuracy; Figure 2 is the right-skewed unimodal
error histogram. Shape: ~1 m mean error, high change accuracy, histogram
mode in the sub-1 m bins.
"""

import numpy as np
from conftest import once

from repro.eval import ResultTable, error_histogram
from repro.eval.harness import render_histogram
from repro.update import Slamcu
from repro.world import ChangeSpec, apply_changes, drive_route, generate_highway


def _experiment(rng):
    hw = generate_highway(rng, length=20000.0, sign_spacing=250.0,
                          pole_spacing=500.0)
    scenario = apply_changes(hw, ChangeSpec(add_signs=12, remove_signs=8),
                             rng)
    lanes = list(scenario.reality.lanes())
    trajectories = [
        drive_route(scenario.reality, lanes[0].id, 19500.0, rng, dt=0.2),
        drive_route(scenario.reality, lanes[2].id, 19500.0, rng, dt=0.2),
    ]
    slamcu = Slamcu(scenario.prior.copy(), localization_sigma=0.35,
                    new_feature_min_obs=3)
    report = slamcu.run(scenario, trajectories, rng, frame_dt=0.5)
    return scenario, report


def test_fig2_slamcu_error_histogram(benchmark, rng):
    scenario, report = once(benchmark, _experiment, rng)
    errors = report.new_feature_errors

    print()
    print("SLAMCU position error of estimated new map features "
          "(regenerates Figure 2):")
    if report.position_errors:
        counts, edges = error_histogram(report.position_errors,
                                        bin_width=0.25, max_value=3.0)
        print(render_histogram(counts, edges))
        mode_bin = int(np.argmax(counts))
        mode_ok = edges[mode_bin] < 1.0  # mode in the sub-metre bins
    else:
        mode_ok = False

    table = ResultTable("F2", "SLAMCU map-change update [41]")
    table.add("new-feature mean error (m)", "0.8", f"{errors.mean:.2f}",
              ok=(not np.isnan(errors.mean)) and errors.mean < 1.6)
    table.add("new-feature error sigma (m)", "0.9", f"{errors.std:.2f}",
              ok=errors.std < 1.8)
    table.add("histogram mode", "sub-metre bin", "sub-metre bin" if mode_ok
              else "above 1 m", ok=mode_ok)
    table.add("change accuracy", "96.12 %",
              f"{100 * report.change_accuracy:.1f} %",
              ok=report.change_accuracy > 0.7)
    table.add("true changes", str(scenario.n_changes),
              f"{len(report.detected_changes)} detected", ok=None)
    table.print()
    assert table.all_ok()
