"""Geometric-strength analysis of map-feature layouts (Zheng & Wang [49]).

How well a landmark layout constrains the vehicle position is a pure
geometry question: the dilution of precision (DOP) of the measurement
Jacobian. This module computes DOP for a layout and runs Monte-Carlo
position solves to measure the error empirically — reproducing the paper's
findings that feature *count* and *distance* dominate, and that spread-out
(random) layouts beat collinear ones.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import LocalizationError


class LayoutPattern(enum.Enum):
    RANDOM = "random"  # uniform around the vehicle
    COLLINEAR = "collinear"  # all features along one roadside line
    CLUSTERED = "clustered"  # one tight angular cluster
    FORWARD_ARC = "forward_arc"  # spread over the forward field of view


@dataclass
class LandmarkLayout:
    """A set of landmark positions relative to the vehicle at the origin."""

    positions: np.ndarray  # (N, 2)

    @property
    def count(self) -> int:
        return int(self.positions.shape[0])

    @property
    def mean_distance(self) -> float:
        return float(np.mean(np.hypot(self.positions[:, 0],
                                      self.positions[:, 1])))

    @staticmethod
    def generate(pattern: LayoutPattern, n: int, distance: float,
                 rng: np.random.Generator) -> "LandmarkLayout":
        if n < 2:
            raise LocalizationError("a layout needs at least 2 landmarks")
        if pattern is LayoutPattern.RANDOM:
            angles = rng.uniform(-np.pi, np.pi, n)
            radii = distance * rng.uniform(0.6, 1.4, n)
        elif pattern is LayoutPattern.COLLINEAR:
            # Roadside line parallel to travel, offset `distance` laterally.
            xs = np.linspace(-distance * 1.5, distance * 1.5, n)
            pts = np.stack([xs, np.full(n, distance)], axis=1)
            return LandmarkLayout(pts)
        elif pattern is LayoutPattern.CLUSTERED:
            centre = rng.uniform(-np.pi, np.pi)
            angles = centre + rng.normal(0.0, 0.06, n)
            radii = distance * rng.uniform(0.9, 1.1, n)
        elif pattern is LayoutPattern.FORWARD_ARC:
            angles = rng.uniform(-np.pi / 4, np.pi / 4, n)
            radii = distance * rng.uniform(0.8, 1.2, n)
        else:
            raise LocalizationError(f"unknown pattern {pattern}")
        pts = np.stack([radii * np.cos(angles), radii * np.sin(angles)], axis=1)
        return LandmarkLayout(pts)


def geometric_dilution(layout: LandmarkLayout) -> float:
    """Position DOP for range measurements to the layout's landmarks.

    DOP = sqrt(trace((H^T H)^{-1})) with unit-vector rows H; lower is a
    geometrically stronger layout.
    """
    p = layout.positions
    ranges = np.hypot(p[:, 0], p[:, 1])
    if np.any(ranges < 1e-9):
        raise LocalizationError("landmark at the vehicle position")
    H = p / ranges[:, None]
    M = H.T @ H
    try:
        cov = np.linalg.inv(M)
    except np.linalg.LinAlgError:
        return float("inf")
    trace = float(np.trace(cov))
    return float(np.sqrt(trace)) if trace >= 0 else float("inf")


def solve_position(layout: LandmarkLayout, measured_ranges: np.ndarray,
                   iterations: int = 15) -> np.ndarray:
    """Least-squares position fix from ranges to known landmarks."""
    x = np.zeros(2)
    for _ in range(iterations):
        d = layout.positions - x
        r_pred = np.hypot(d[:, 0], d[:, 1])
        H = -d / np.maximum(r_pred, 1e-9)[:, None]
        residual = measured_ranges - r_pred
        delta, *_ = np.linalg.lstsq(H, residual, rcond=None)
        x = x + delta
        if float(np.abs(delta).max()) < 1e-9:
            break
    return x


def solve_positions(layout: LandmarkLayout, measured_ranges: np.ndarray,
                    iterations: int = 15) -> np.ndarray:
    """Batched Gauss-Newton position fixes for (T, N) range sets.

    Vectorized twin of :func:`solve_position`: all trials iterate together,
    each trial freezing once its own update falls below the convergence
    threshold (mirroring the scalar early ``break``). The per-iteration
    least-squares step uses the SVD pseudo-inverse, which computes the same
    minimum-norm solution ``lstsq`` does.
    """
    measured = np.asarray(measured_ranges, dtype=float)
    squeeze = measured.ndim == 1
    if squeeze:
        measured = measured[None, :]
    n_trials = measured.shape[0]
    x = np.zeros((n_trials, 2))
    active = np.ones(n_trials, dtype=bool)
    for _ in range(iterations):
        idx = np.nonzero(active)[0]
        if idx.size == 0:
            break
        d = layout.positions[None, :, :] - x[idx, None, :]  # (t, N, 2)
        r_pred = np.hypot(d[..., 0], d[..., 1])
        H = -d / np.maximum(r_pred, 1e-9)[..., None]
        residual = measured[idx] - r_pred
        delta = np.einsum("tij,tj->ti", np.linalg.pinv(H), residual)
        x[idx] += delta
        converged = np.abs(delta).max(axis=1) < 1e-9
        active[idx[converged]] = False
    return x[0] if squeeze else x


def simulate_layout_error(layout: LandmarkLayout, range_sigma: float,
                          rng: np.random.Generator,
                          trials: int = 200) -> float:
    """Monte-Carlo RMS position error for a layout at a given range noise.

    The noise matrix is drawn in one call — ``rng.normal`` fills row-major,
    so trial ``k``'s row consumes the same stream slice the former
    per-trial draws did — and all trials solve together.
    """
    true_ranges = np.hypot(layout.positions[:, 0], layout.positions[:, 1])
    noise = rng.normal(0.0, range_sigma, size=(trials, true_ranges.size))
    estimates = solve_positions(layout, true_ranges[None, :] + noise)
    errors = np.hypot(estimates[:, 0], estimates[:, 1])
    return float(np.sqrt(np.mean(errors**2)))
