"""Map versioning: patches of element operations applied atomically.

Update pipelines (Section II-B(2) of the survey) never mutate a map ad hoc;
they produce a :class:`MapPatch` that a :class:`VersionedMap` applies as one
version bump, recording every change in the change log. This mirrors the
"detected changes are reported to the HD map database for sharing with
other vehicles" flow of SLAMCU [41] and the job-based updating of Pannen
et al. [44].
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.changes import ChangeLog, ChangeType, MapChange, _element_position
from repro.core.elements import MapElement
from repro.core.hdmap import HDMap
from repro.core.ids import ElementId
from repro.errors import UpdateError


@dataclass
class AddElement:
    element: MapElement


@dataclass
class RemoveElement:
    element_id: ElementId


@dataclass
class ReplaceElement:
    element: MapElement


PatchOp = object  # AddElement | RemoveElement | ReplaceElement


@dataclass
class MapPatch:
    """An ordered batch of element operations with provenance metadata."""

    ops: List[PatchOp] = field(default_factory=list)
    source: str = ""  # which pipeline produced this patch
    confidence: float = 1.0

    def add(self, element: MapElement) -> "MapPatch":
        self.ops.append(AddElement(element))
        return self

    def remove(self, element_id: ElementId) -> "MapPatch":
        self.ops.append(RemoveElement(element_id))
        return self

    def replace(self, element: MapElement) -> "MapPatch":
        self.ops.append(ReplaceElement(element))
        return self

    def __len__(self) -> int:
        return len(self.ops)


class VersionedMap:
    """An :class:`HDMap` plus a change log and patch application."""

    def __init__(self, hdmap: Optional[HDMap] = None, name: str = "map") -> None:
        self.map = hdmap if hdmap is not None else HDMap(name)
        self.log = ChangeLog()

    @property
    def version(self) -> int:
        return self.map.version

    def apply(self, patch: MapPatch) -> int:
        """Apply a patch atomically; returns the new version.

        If any operation fails, already-applied operations are rolled back
        and the map version is unchanged.
        """
        applied: List[PatchOp] = []
        undo: List[PatchOp] = []
        try:
            for op in patch.ops:
                if isinstance(op, AddElement):
                    self.map.add(op.element)
                    undo.append(RemoveElement(op.element.id))
                elif isinstance(op, RemoveElement):
                    removed = self.map.remove(op.element_id)
                    undo.append(AddElement(removed))
                elif isinstance(op, ReplaceElement):
                    old = self.map.get(op.element.id)
                    self.map.replace(op.element)
                    undo.append(ReplaceElement(old))
                else:
                    raise UpdateError(f"unknown patch op {op!r}")
                applied.append(op)
        except Exception:
            for op in reversed(undo):
                if isinstance(op, AddElement):
                    self.map.add(op.element)
                elif isinstance(op, RemoveElement):
                    self.map.remove(op.element_id)
                elif isinstance(op, ReplaceElement):
                    self.map.replace(op.element)
            raise

        self.map.version += 1
        for op in applied:
            self.log.record(self.map.version, _change_for_op(op))
        return self.map.version

    def changes_since(self, version: int) -> List[MapChange]:
        return self.log.changes_since(version)


def _change_for_op(op: PatchOp) -> MapChange:
    if isinstance(op, AddElement):
        return MapChange(ChangeType.ADDED, op.element.id,
                         _element_position(op.element))
    if isinstance(op, RemoveElement):
        return MapChange(ChangeType.REMOVED, op.element_id, (0.0, 0.0))
    if isinstance(op, ReplaceElement):
        return MapChange(ChangeType.MODIFIED, op.element.id,
                         _element_position(op.element))
    raise UpdateError(f"unknown patch op {op!r}")
