"""Perception (HDNET, cooperative), ATV updates, and WMoF depth filter."""

import numpy as np
import pytest

from repro.geometry.transform import SE2
from repro.perception import (
    CooperativePerception,
    HdnetDetector,
    LidarObjectDetector,
    RoadsideCamera,
    predict_road_prior,
)
from repro.sensors import LidarScanner, make_depth_scene
from repro.sensors.lidar import Obstacle
from repro.depthmap import WeightedModeFilter
from repro.depthmap.wmof import nearest_neighbour_upsample
from repro.atv import AtvSignUpdater, OccupancyGrid, VisualSlam
from repro.geometry.raster import GridSpec
from repro.world import ChangeSpec, apply_changes, drive_lane_sequence


@pytest.fixture(scope="module")
def perception_scene(highway):
    """A pose on the highway with one on-road obstacle ahead."""
    lane = next(iter(highway.lanes()))
    s = 300.0
    pose = SE2(*lane.centerline.point_at(s), lane.centerline.heading_at(s))
    obstacle = Obstacle(position=pose.apply(np.array([18.0, 0.0])),
                        radius=1.0, reflectivity=0.45)
    return pose, obstacle


class TestDetector:
    def test_detects_obstacle(self, highway, perception_scene, rng):
        pose, obstacle = perception_scene
        scan = LidarScanner(dropout=0.0).scan(highway, pose, rng,
                                              obstacles=[obstacle])
        detections = LidarObjectDetector().detect(scan, pose)
        d_to_ob = [float(np.hypot(*(d.position - obstacle.position)))
                   for d in detections]
        assert min(d_to_ob) < 1.5

    def test_clusters_poles_as_candidates(self, highway, perception_scene, rng):
        pose, _ = perception_scene
        scan = LidarScanner(dropout=0.0).scan(highway, pose, rng)
        detections = LidarObjectDetector().detect(scan, pose)
        # Without a map, roadside poles look like objects (the clutter
        # HDNET's prior removes).
        assert detections


class TestHdnet:
    def _score_detections(self, detector, highway, pose, obstacle, rng):
        scan = LidarScanner(dropout=0.0).scan(highway, pose, rng,
                                              obstacles=[obstacle])
        detections = detector.detect(scan, pose)
        tp_scores = [d.score for d in detections
                     if np.hypot(*(d.position - obstacle.position)) < 1.5]
        fp_scores = [d.score for d in detections
                     if np.hypot(*(d.position - obstacle.position)) >= 1.5]
        return (max(tp_scores) if tp_scores else 0.0,
                max(fp_scores) if fp_scores else 0.0)

    def test_map_prior_suppresses_clutter(self, highway, perception_scene, rng):
        pose, obstacle = perception_scene
        with_map = HdnetDetector(highway, mode="map")
        without = HdnetDetector(None, mode="none")
        tp_map, fp_map = self._score_detections(with_map, highway, pose,
                                                obstacle, rng)
        tp_none, fp_none = self._score_detections(without, highway, pose,
                                                  obstacle, rng)
        assert tp_map > 0.0  # still finds the true object
        assert fp_map < fp_none  # and kills mapped-furniture clutter

    def test_predicted_prior_between_map_and_none(self, highway,
                                                  perception_scene, rng):
        pose, obstacle = perception_scene
        predicted = HdnetDetector(None, mode="predicted")
        tp, fp = self._score_detections(predicted, highway, pose,
                                        obstacle, rng)
        assert tp > 0.0

    def test_road_prior_prediction_covers_road(self, highway,
                                               perception_scene, rng):
        pose, _ = perception_scene
        scan = LidarScanner().scan(highway, pose, rng)
        prior = predict_road_prior(scan, pose)
        on_road_point = pose.apply(np.array([10.0, 0.0]))
        off_road_point = pose.apply(np.array([10.0, 30.0]))
        assert prior.on_road(on_road_point)
        assert not prior.on_road(off_road_point)

    def test_mode_validation(self, highway):
        with pytest.raises(ValueError):
            HdnetDetector(highway, mode="bogus")
        with pytest.raises(ValueError):
            HdnetDetector(None, mode="map")


class TestCooperativePerception:
    def test_fusion_beats_single_source(self, rng):
        truth = np.array([30.0, 5.0])
        velocity = np.array([2.0, 0.0])
        camera = RoadsideCamera(position=np.array([25.0, 20.0]), sigma=0.4)
        solo = CooperativePerception()
        fused = CooperativePerception()
        pos = truth.copy()
        for step in range(20):
            pos = pos + velocity * 0.5
            vehicle_meas = (pos + rng.normal(0, 0.5, 2), 0.5)
            cam_obs = camera.observe([Obstacle(position=pos)], rng)
            solo.step(0.5, [vehicle_meas])
            measurements = [vehicle_meas] + [(m, camera.sigma) for m in cam_obs]
            fused.step(0.5, measurements)
        solo_err = solo.position_errors([pos])[0]
        fused_err = fused.position_errors([pos])[0]
        assert fused_err <= solo_err * 1.2  # fusion should not hurt
        assert fused.confirmed_tracks()[0].hits > solo.confirmed_tracks()[0].hits

    def test_occluded_object_only_seen_by_roadside(self, rng):
        camera = RoadsideCamera(position=np.array([0.0, 0.0]),
                                coverage_radius=50.0, detection_prob=1.0)
        tracker = CooperativePerception()
        hidden = np.array([10.0, 10.0])
        for _ in range(5):
            obs = camera.observe([Obstacle(position=hidden)], rng)
            tracker.step(0.5, [(m, camera.sigma) for m in obs])
        assert tracker.position_errors([hidden], min_hits=3)[0] < 1.0


class TestOccupancyGrid:
    def test_ray_marks_free_and_occupied(self):
        grid = OccupancyGrid(GridSpec.from_bounds((0, 0, 20, 20), 0.5))
        origin = np.array([1.0, 10.0])
        hit = np.array([15.0, 10.0])
        for _ in range(5):
            grid.integrate_ray(origin, hit)
        prob = grid.probability()
        hit_cell = grid.spec.world_to_cell(hit[None, :])[0]
        mid_cell = grid.spec.world_to_cell(np.array([[8.0, 10.0]]))[0]
        assert prob[hit_cell[1], hit_cell[0]] > 0.9
        assert prob[mid_cell[1], mid_cell[0]] < 0.2

    def test_agreement_of_identical_grids(self):
        spec = GridSpec.from_bounds((0, 0, 10, 10), 0.5)
        a, b = OccupancyGrid(spec), OccupancyGrid(spec)
        for grid in (a, b):
            grid.integrate_ray(np.array([1.0, 5.0]), np.array([8.0, 5.0]))
        assert a.occupancy_agreement(b) == pytest.approx(1.0)


class TestVisualSlam:
    def test_anchoring_bounds_drift(self, rng):
        anchors = [np.array([x, 0.0]) for x in range(0, 101, 20)]
        slam_anchored = VisualSlam(anchors)
        slam_free = VisualSlam([])
        for slam in (slam_anchored, slam_free):
            slam.start(SE2(0, 0, 0))
        truth = SE2(0, 0, 0)
        for k in range(100):
            ds, dtheta = 1.0, 0.0
            noisy_ds = ds * 1.02  # 2 % scale error
            truth = SE2(truth.x + ds, truth.y, 0.0)
            pos = np.array([truth.x, truth.y])
            slam_anchored.step(k * 1.0, noisy_ds, dtheta, pos, rng)
            slam_free.step(k * 1.0, noisy_ds, dtheta, pos, rng)
        err_anchored = slam_anchored.pose.distance_to(truth)
        err_free = slam_free.pose.distance_to(truth)
        assert err_anchored < err_free
        assert err_anchored < 0.5


class TestAtvSignUpdate:
    def test_detects_factory_sign_changes(self, factory, rng):
        scenario = apply_changes(factory,
                                 ChangeSpec(add_signs=2, remove_signs=2), rng)
        lanes = sorted(scenario.reality.lanes(), key=lambda l: l.id)
        aisle_lanes = [l for l in lanes if l.length > 30][:3]
        from repro.world.traffic import drive_lane_sequence as drive

        updater = AtvSignUpdater(scenario.prior.copy())
        reports = []
        for lane in aisle_lanes:
            traj = drive(scenario.reality, [lane.id], rng=rng,
                         lateral_sigma=0.05)
            anchors = [np.array([0.0, lane.centerline.start[1]])]
            slam = VisualSlam(anchors)
            reports.append(updater.run(scenario, traj, slam, rng))
        # Across the aisles driven, at least some true changes are found
        # with decent precision.
        found = sum(len(r.detected_changes) for r in reports)
        assert found >= 1
        assert all(r.precision >= 0.5 or not r.detected_changes
                   for r in reports)


class TestWmof:
    @pytest.fixture(scope="class")
    def frame(self):
        return make_depth_scene(np.random.default_rng(9), height=120,
                                width=160, factor=4, noise_sigma=0.15)

    def test_beats_nearest_neighbour(self, frame):
        wmof = WeightedModeFilter()
        out, stats = wmof.upsample(frame)
        nn = nearest_neighbour_upsample(frame)
        nn_mae = float(np.abs(nn - frame.depth_true).mean())
        assert stats.mae < nn_mae

    def test_kills_outliers(self, frame):
        wmof = WeightedModeFilter()
        _, stats = wmof.upsample(frame)
        nn = nearest_neighbour_upsample(frame)
        nn_outliers = float((np.abs(nn - frame.depth_true) > 1.0).mean())
        assert stats.outlier_fraction < nn_outliers

    def test_tiled_equals_full_output(self, frame):
        wmof = WeightedModeFilter()
        tiled, _ = wmof.upsample(frame, tiled=True)
        full, _ = wmof.upsample(frame, tiled=False)
        assert np.allclose(tiled, full)

    def test_tiled_working_set_much_smaller(self, frame):
        wmof = WeightedModeFilter()
        _, tiled_stats = wmof.upsample(frame, tiled=True)
        _, full_stats = wmof.upsample(frame, tiled=False)
        assert tiled_stats.working_bytes < full_stats.working_bytes / 10
