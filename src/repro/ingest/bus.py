"""Tile-partitioned observation bus: bounded queues, dedup, backpressure.

The fleet-to-map path has to absorb "heavy traffic from millions of users"
without an unbounded backlog, and the MEC/RSU design of the source paper
aggregates crowd reports *per region* before they reach the map maker
[47]. :class:`ObservationBus` is that regional aggregation point in
process form:

- observations are partitioned by the tile of their position, so one
  tile's evidence always lands in one partition and downstream per-tile
  state needs no cross-worker locking;
- each partition is a *bounded* queue — when a partition overflows, the
  oldest unleased observation of that partition is shed (count exported),
  because stale evidence is the cheapest to lose;
- duplicate uplinks are dropped at the door via a sliding window over
  ``(vehicle, seq)`` dedup keys;
- :meth:`poll` leases a tile-coherent :class:`ObservationBatch`;
  the batch is redelivered if it is nacked (retry with backoff) or its
  lease expires (worker crash), which is what makes delivery
  at-least-once end to end.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from collections import OrderedDict, deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.core.tiles import TileId, TileScheme
from repro.errors import IngestError
from repro.ingest.observation import Observation, ObservationBatch
from repro.obs.log import get_logger
from repro.obs.metrics import Counter
from repro.obs.trace import TRACER

_log = get_logger("ingest.bus")


class _Partition:
    """One bounded partition: pending queue + dedup window + delivery state."""

    __slots__ = ("cond", "pending", "recent", "inflight", "retry")

    def __init__(self, lock: threading.Lock) -> None:
        self.cond = threading.Condition(lock)
        self.pending: Deque[Observation] = deque()
        self.recent: "OrderedDict[Tuple[str, int], None]" = OrderedDict()
        # batch_id -> (batch, lease deadline)
        self.inflight: Dict[int, Tuple[ObservationBatch, float]] = {}
        # (ready_time, tiebreak, batch) min-heap of nacked batches
        self.retry: List[Tuple[float, int, ObservationBatch]] = []


class ObservationBus:
    """Partitioned, bounded, deduplicating observation transport."""

    def __init__(self, tile_size: float = 250.0, n_partitions: int = 4,
                 capacity_per_partition: int = 1024,
                 dedup_window: int = 8192,
                 lease_timeout_s: float = 5.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if n_partitions < 1:
            raise IngestError("n_partitions must be >= 1")
        if capacity_per_partition < 1:
            raise IngestError("capacity_per_partition must be >= 1")
        self.scheme = TileScheme(tile_size)
        self.n_partitions = n_partitions
        self.capacity_per_partition = capacity_per_partition
        self.dedup_window = dedup_window
        self.lease_timeout_s = lease_timeout_s
        self._clock = clock
        self._partitions = [_Partition(threading.Lock())
                            for _ in range(n_partitions)]
        self._retry_tiebreak = itertools.count()
        self._closed = False
        self.published = Counter()
        self.deduplicated = Counter()
        self.shed_oldest = Counter()
        self.redelivered = Counter()
        self.acked_batches = Counter()

    # -- producer side --------------------------------------------------
    def partition_of(self, tile: TileId) -> int:
        """Stable tile -> partition assignment (one tile, one partition)."""
        return ((tile.tx * 73856093) ^ (tile.ty * 19349663)) \
            % self.n_partitions

    def publish(self, obs: Observation) -> bool:
        """Enqueue one observation; returns False if deduplicated.

        A full partition sheds its *oldest* pending observation to admit
        the new one (freshest-evidence-wins backpressure); the shed count
        is exported, never silent.
        """
        if self._closed:
            raise IngestError("bus is closed")
        tile = self.scheme.tile_of(*obs.position)
        part = self._partitions[self.partition_of(tile)]
        with part.cond:
            key = obs.dedup_key
            if key in part.recent:
                self.deduplicated.add()
                return False
            part.recent[key] = None
            while len(part.recent) > self.dedup_window:
                part.recent.popitem(last=False)
            if len(part.pending) >= self.capacity_per_partition:
                part.pending.popleft()
                self.shed_oldest.add()
                _log.warning("observation_shed",
                             partition=self.partition_of(tile),
                             capacity=self.capacity_per_partition)
            if TRACER.enabled:
                # Stamp the observation with a trace identity: a child of
                # the caller's active trace, or a fresh sampled root. The
                # enqueue span itself is instantaneous — the queue wait is
                # reconstructed by the pipeline as an `ingest.wait` span.
                cm = (TRACER.span("ingest.enqueue")
                      if TRACER.current() is not None
                      else TRACER.start_trace("ingest.enqueue"))
                with cm as sp:
                    if sp.context is not None:
                        sp.set("vehicle", obs.vehicle)
                        sp.set("seq", obs.seq)
                        sp.set("tile", str(tile))
                        obs.trace_ctx = sp.context
            obs.enqueued_at = self._clock()
            part.pending.append(obs)
            self.published.add()
            part.cond.notify()
        return True

    # -- consumer side --------------------------------------------------
    def _ready_retry(self, part: _Partition,
                     now: float) -> Optional[ObservationBatch]:
        if part.retry and part.retry[0][0] <= now:
            _, _, batch = heapq.heappop(part.retry)
            return batch
        return None

    def _build_batch(self, part: _Partition, partition: int,
                     max_batch: int) -> Optional[ObservationBatch]:
        """Lease a tile-coherent batch off the pending queue."""
        if not part.pending:
            return None
        head_tile = self.scheme.tile_of(*part.pending[0].position)
        taken: List[Observation] = []
        kept: List[Observation] = []
        while part.pending and len(taken) < max_batch:
            obs = part.pending.popleft()
            if self.scheme.tile_of(*obs.position) == head_tile:
                taken.append(obs)
            else:
                kept.append(obs)
        for obs in reversed(kept):
            part.pending.appendleft(obs)
        return ObservationBatch(tile=head_tile, partition=partition,
                                observations=taken)

    def poll(self, partition: int, max_batch: int = 32,
             timeout: Optional[float] = None) -> Optional[ObservationBatch]:
        """Lease the next batch of ``partition`` (retries first).

        Returns None when the bus is closed with nothing pending, or when
        ``timeout`` elapses. The leased batch must be :meth:`ack`-ed or
        :meth:`nack`-ed; otherwise its lease expires after
        ``lease_timeout_s`` and it is redelivered.
        """
        part = self._partitions[partition]
        deadline = None if timeout is None else self._clock() + timeout
        with part.cond:
            while True:
                now = self._clock()
                batch = self._ready_retry(part, now)
                if batch is None:
                    batch = self._build_batch(part, partition, max_batch)
                if batch is not None:
                    part.inflight[batch.batch_id] = (
                        batch, now + self.lease_timeout_s)
                    return batch
                if self._closed and not part.retry:
                    return None
                wait: Optional[float] = None
                if part.retry:
                    wait = max(0.0, part.retry[0][0] - now)
                if deadline is not None:
                    remaining = deadline - now
                    if remaining <= 0:
                        return None
                    wait = remaining if wait is None else min(wait, remaining)
                part.cond.wait(wait)

    def ack(self, batch: ObservationBatch) -> None:
        """Mark a batch done; it will never be redelivered."""
        part = self._partitions[batch.partition]
        with part.cond:
            if part.inflight.pop(batch.batch_id, None) is not None:
                self.acked_batches.add()

    def nack(self, batch: ObservationBatch, delay_s: float = 0.0,
             count_attempt: bool = True) -> None:
        """Schedule a failed batch for redelivery after ``delay_s``.

        ``count_attempt=False`` redelivers without charging the batch's
        retry budget — used when the batch itself did not fail (e.g. a
        stage circuit breaker refused to run it), so a systemic outage
        cannot dead-letter healthy batches.
        """
        part = self._partitions[batch.partition]
        with part.cond:
            if part.inflight.pop(batch.batch_id, None) is None:
                return  # already acked or lease-expired elsewhere
            if count_attempt:
                batch.attempts += 1
            heapq.heappush(part.retry, (self._clock() + delay_s,
                                        next(self._retry_tiebreak), batch))
            self.redelivered.add()
            part.cond.notify()

    def redeliver_expired(self) -> int:
        """Requeue every in-flight batch whose lease expired (crashed
        worker); returns how many were redelivered."""
        now = self._clock()
        total = 0
        for part in self._partitions:
            with part.cond:
                expired = [bid for bid, (_, dl) in part.inflight.items()
                           if dl <= now]
                for bid in expired:
                    batch, _ = part.inflight.pop(bid)
                    batch.attempts += 1
                    heapq.heappush(part.retry,
                                   (now, next(self._retry_tiebreak), batch))
                    self.redelivered.add()
                    total += 1
                if expired:
                    part.cond.notify_all()
        return total

    # -- introspection --------------------------------------------------
    def depth(self, partition: int) -> int:
        part = self._partitions[partition]
        with part.cond:
            return len(part.pending) + len(part.retry)

    def total_depth(self) -> int:
        return sum(self.depth(p) for p in range(self.n_partitions))

    def in_flight(self) -> int:
        total = 0
        for part in self._partitions:
            with part.cond:
                total += len(part.inflight)
        return total

    def partition_drained(self, partition: int) -> bool:
        """Nothing pending, retrying, or leased in one partition."""
        part = self._partitions[partition]
        with part.cond:
            return not (part.pending or part.retry or part.inflight)

    def is_drained(self) -> bool:
        """Nothing pending, retrying, or leased anywhere."""
        return all(self.partition_drained(p)
                   for p in range(self.n_partitions))

    def close(self) -> None:
        """Stop admitting; wake all pollers so they can drain and exit."""
        self._closed = True
        for part in self._partitions:
            with part.cond:
                part.cond.notify_all()
