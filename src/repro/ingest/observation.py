"""Fleet observations: the unit of work flowing through the ingest bus.

Every connected vehicle reports two kinds of landmark evidence (the inputs
every surveyed maintenance pipeline consumes — SLAMCU [41], Pannen et al.
[42][44], Liu et al. [43]):

- a *detection*: a sensed landmark at a world position with a measurement
  sigma, possibly one the prior map does not know about;
- a *miss*: a prior-map element that was in the sensor's field of view but
  was not observed — the evidence that something was removed.

Observations carry a ``(vehicle, seq)`` dedup key so at-least-once
transports (retries, duplicate uplinks from flaky cellular links) collapse
to exactly-once evidence, and an ``enqueued_at`` wall-clock stamp set by
the bus that anchors the end-to-end map-freshness lag metric.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.ids import ElementId
from repro.core.tiles import TileId
from repro.errors import IngestError
from repro.obs.trace import TraceContext


class ObservationKind:
    DETECTION = "detection"
    MISS = "miss"

    ALL = (DETECTION, MISS)


@dataclass
class Observation:
    """One vehicle report: a landmark detection or an expected-miss.

    ``position`` is the world-frame estimate (the vehicle's localized
    pose applied to the body-frame measurement); ``sigma`` its 1-D
    standard deviation in metres. ``element_id`` is the prior-map
    association hint — required for MISS (which element was expected),
    optional for DETECTION (unknown for newly appeared landmarks).
    """

    kind: str
    position: Tuple[float, float]
    sigma: float
    vehicle: str
    seq: int
    t: float
    element_id: Optional[ElementId] = None
    sign_type: str = "direction"
    enqueued_at: float = 0.0  # stamped by the bus at publish time
    #: trace identity stamped by the bus (sampled observations only);
    #: pipeline stages continue the trace from it across worker threads.
    trace_ctx: Optional[TraceContext] = None

    @property
    def dedup_key(self) -> Tuple[str, int]:
        """At-least-once transports dedup on (vehicle, sequence number)."""
        return (self.vehicle, self.seq)

    def validate(self) -> None:
        """Raise :class:`IngestError` for malformed (poison) observations."""
        if self.kind not in ObservationKind.ALL:
            raise IngestError(f"unknown observation kind {self.kind!r}")
        x, y = self.position
        if not (math.isfinite(x) and math.isfinite(y)):
            raise IngestError(
                f"non-finite observation position ({x!r}, {y!r}) "
                f"from {self.vehicle}#{self.seq}")
        if not (math.isfinite(self.sigma) and self.sigma > 0):
            raise IngestError(
                f"invalid observation sigma {self.sigma!r} "
                f"from {self.vehicle}#{self.seq}")
        if self.kind == ObservationKind.MISS and self.element_id is None:
            raise IngestError(
                f"miss observation without an expected element id "
                f"from {self.vehicle}#{self.seq}")


_batch_ids = itertools.count(1)


@dataclass
class ObservationBatch:
    """A tile-coherent batch leased from one bus partition.

    Batches are the at-least-once delivery unit: a batch stays *in
    flight* from :meth:`~repro.ingest.bus.ObservationBus.poll` until it
    is acked, and is redelivered (with ``attempts`` incremented) after a
    nack or an expired lease.
    """

    tile: TileId
    partition: int
    observations: List[Observation] = field(default_factory=list)
    batch_id: int = field(default_factory=lambda: next(_batch_ids))
    attempts: int = 0

    @property
    def enqueued_at(self) -> float:
        """Enqueue stamp of the oldest observation in the batch — the
        anchor of the freshness-lag measurement."""
        if not self.observations:
            return 0.0
        return min(o.enqueued_at for o in self.observations)

    @property
    def trace_ctx(self) -> Optional[TraceContext]:
        """Trace context of the first sampled observation in the batch
        (the batch's stage spans attach to that observation's trace)."""
        for obs in self.observations:
            if obs.trace_ctx is not None:
                return obs.trace_ctx
        return None

    def __len__(self) -> int:
        return len(self.observations)
