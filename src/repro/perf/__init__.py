"""Performance instrumentation and benchmark-regression harness.

Three pieces:

- :mod:`repro.perf.instrument` — per-kernel call/ns counters behind a
  near-zero-cost ``timed()`` decorator/context manager (disabled unless a
  perf run enables the registry);
- :mod:`repro.perf.runner` — a microbenchmark runner (warmup, repetition,
  median/p95) that emits machine-readable ``BENCH_PERF.json`` and gates
  against a checked-in baseline;
- :mod:`repro.perf.suite` — the curated hot-path suite (LiDAR scan,
  particle-filter weighting, polyline projection, grid-index query, serve
  ``GetTile``/``SpatialQuery`` under concurrency) plus
  :mod:`repro.perf.reference`, the frozen pre-optimization kernels the
  equivalence tests and speedup numbers are measured against.

This ``__init__`` must stay import-light: geometry and sensor kernels
import :mod:`repro.perf.instrument` at module load, so importing the suite
(which pulls in the world generator and serving layer) here would create
an import cycle. Suite/runner symbols load lazily on first attribute
access.
"""

from __future__ import annotations

from repro.perf.instrument import REGISTRY, PerfRegistry, timed

_LAZY = {
    "BenchResult": "repro.perf.runner",
    "check_baseline": "repro.perf.runner",
    "load_report": "repro.perf.runner",
    "run_bench": "repro.perf.runner",
    "write_report": "repro.perf.runner",
    "HEADLINE_KERNELS": "repro.perf.suite",
    "run_perf_suite": "repro.perf.suite",
}

__all__ = ["PerfRegistry", "REGISTRY", "timed"] + sorted(_LAZY)


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.perf' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
