"""Storage accounting across representations."""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.hdmap import HDMap
from repro.storage.binary import encode_map
from repro.storage.geojson import map_to_dict
from repro.storage.pointcloud import (
    build_pointcloud_map,
    bytes_per_mile,
)


@dataclass(frozen=True)
class StorageReport:
    """Bytes (total and per mile) for each representation of one map."""

    road_miles: float
    pointcloud_bytes: int
    geojson_bytes: int
    binary_bytes: int
    binary_simplified_bytes: int

    @property
    def pointcloud_per_mile(self) -> float:
        return self.pointcloud_bytes / self.road_miles

    @property
    def geojson_per_mile(self) -> float:
        return self.geojson_bytes / self.road_miles

    @property
    def binary_per_mile(self) -> float:
        return self.binary_bytes / self.road_miles

    @property
    def binary_simplified_per_mile(self) -> float:
        return self.binary_simplified_bytes / self.road_miles

    @property
    def reduction_factor(self) -> float:
        """Point cloud vs compact vector (the Li et al. two-orders claim)."""
        return self.pointcloud_bytes / max(self.binary_simplified_bytes, 1)


def storage_report(hdmap: HDMap, rng: Optional[np.random.Generator] = None,
                   simplify_tolerance: float = 0.05) -> StorageReport:
    """Measure one map under every representation."""
    if rng is None:
        rng = np.random.default_rng(0)
    from repro.geometry.geodesy import MILE_METRES

    road_metres = sum(seg.reference_line.length for seg in hdmap.segments())
    road_miles = road_metres / MILE_METRES
    cloud = build_pointcloud_map(hdmap, rng)
    return StorageReport(
        road_miles=road_miles,
        pointcloud_bytes=len(cloud.to_bytes()),
        geojson_bytes=len(json.dumps(map_to_dict(hdmap),
                                     separators=(",", ":")).encode()),
        binary_bytes=len(encode_map(hdmap)),
        binary_simplified_bytes=len(encode_map(hdmap, simplify_tolerance)),
    )
