"""Serving layer: admission control, sharded cache, MapService, fleet runs."""

import threading

import numpy as np
import pytest

from repro.core import MapPatch, SignType, TrafficSign
from repro.core.tiles import TileId
from repro.errors import StorageError
from repro.serve import (
    AdmissionController,
    AdmissionPolicy,
    ChangesSince,
    Counter,
    GetTile,
    IngestPatch,
    LatencyHistogram,
    MapService,
    FleetSimulator,
    Priority,
    Snapshot,
    SpatialQuery,
    Status,
)
from repro.serve.cache import RWLock, ShardedTileCache
from repro.storage import StreamingMap, TileStore
from repro.storage.tilestore import TileStoreStats
from repro.update.distribution import MapDistributionServer, VehicleMapClient


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def _add_sign_patch(server, source="crowd", confidence=0.9,
                    position=(10.0, 5.0)):
    patch = MapPatch(source=source, confidence=confidence)
    patch.add(TrafficSign(id=server.new_element_id("sign"),
                          position=np.asarray(position, dtype=float),
                          sign_type=SignType.DIRECTION))
    return patch


# ----------------------------------------------------------------------
class TestAdmissionControl:
    def test_backpressure_when_full(self):
        queue = AdmissionController(AdmissionPolicy(max_queue=2),
                                    clock=FakeClock())
        assert queue.offer("a")
        assert queue.offer("b")
        assert not queue.offer("c")  # bounded: overflow is rejected
        assert queue.rejected.value == 1
        assert queue.depth() == 2

    def test_fifo_order(self):
        queue = AdmissionController(clock=FakeClock())
        for name in ("a", "b", "c"):
            queue.offer(name)
        assert [queue.take(0) for _ in range(3)] == ["a", "b", "c"]

    def test_stale_low_priority_is_shed(self):
        clock = FakeClock()
        shed = []
        queue = AdmissionController(AdmissionPolicy(max_age_s=0.5),
                                    on_shed=shed.append, clock=clock)
        queue.offer("stale-low", Priority.LOW)
        queue.offer("fresh-normal", Priority.NORMAL)
        clock.advance(1.0)  # both now aged past max_age_s
        # The LOW request is shed; NORMAL survives regardless of age.
        assert queue.take(0) == "fresh-normal"
        assert shed == ["stale-low"]
        assert queue.shed.value == 1

    def test_young_low_priority_survives(self):
        clock = FakeClock()
        queue = AdmissionController(AdmissionPolicy(max_age_s=0.5),
                                    clock=clock)
        queue.offer("low", Priority.LOW)
        clock.advance(0.4)
        assert queue.take(0) == "low"
        assert queue.shed.value == 0

    def test_closed_queue_rejects_and_drains(self):
        queue = AdmissionController(clock=FakeClock())
        queue.offer("a")
        queue.close()
        assert not queue.offer("b")
        assert queue.take(0) == "a"
        assert queue.take(0) is None  # closed and drained

    def test_take_timeout_returns_none(self):
        queue = AdmissionController()  # real clock: wait path
        assert queue.take(timeout=0.01) is None

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(max_queue=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(max_age_s=-1.0)


# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_concurrent_increments(self):
        counter = Counter()

        def bump():
            for _ in range(1000):
                counter.add()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 4000

    def test_histogram_percentiles(self):
        hist = LatencyHistogram(bounds=(0.001, 0.01, 0.1))
        for _ in range(90):
            hist.record(0.0005)
        for _ in range(10):
            hist.record(0.05)
        assert hist.count == 100
        assert hist.percentile(50) == 0.001
        # The p99 falls in the (0.01, 0.1] bucket, but the bucket bound is
        # clamped to the exact observed maximum.
        assert hist.percentile(99) == 0.05
        assert hist.as_dict()["count"] == 100

    def test_histogram_tracks_exact_min_max(self):
        hist = LatencyHistogram(bounds=(0.001, 0.01, 0.1))
        assert hist.min_s == 0.0 and hist.max_s == 0.0  # empty
        for v in (0.004, 0.0002, 0.05):
            hist.record(v)
        assert hist.min_s == 0.0002
        assert hist.max_s == 0.05
        snap = hist.snapshot()
        assert snap["count"] == 3
        assert snap["min_s"] == 0.0002
        assert snap["max_s"] == 0.05
        assert snap["p99_s"] <= snap["max_s"]

    def test_histogram_overflow_bucket(self):
        hist = LatencyHistogram(bounds=(0.001,))
        hist.record(5.0)
        # Overflow percentiles report the observed maximum, never inf.
        assert hist.percentile(99) == 5.0

    def test_tilestore_stats_as_dict_and_threaded_updates(self):
        stats = TileStoreStats()

        def churn():
            for _ in range(500):
                stats.record_hit()
                stats.record_load()

        threads = [threading.Thread(target=churn) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        exported = stats.as_dict()
        assert exported["hits"] == exported["loads"] == 2000
        assert exported["hit_rate"] == pytest.approx(0.5)


# ----------------------------------------------------------------------
class TestShardedTileCache:
    def test_loads_once_then_hits(self, city):
        store = TileStore.build(city, tile_size=150.0)
        loads = []

        def loader(tile):
            loads.append(tile)
            return store.load_tile(tile)

        cache = ShardedTileCache(loader, n_shards=4, tiles_per_shard=8)
        tile = store.tiles()[0]
        first = cache.get(tile)
        second = cache.get(tile)
        assert loads == [tile]
        assert first is second
        assert cache.hits.value == 1 and cache.misses.value == 1

    def test_eviction_bounds_residency(self, city):
        store = TileStore.build(city, tile_size=100.0)
        cache = ShardedTileCache(store.load_tile, n_shards=2,
                                 tiles_per_shard=2)
        for tile in store.tiles():
            cache.get(tile)
        assert len(cache.resident_tiles()) <= 4
        assert cache.evictions.value > 0

    def test_invalidate_reloads(self, city):
        store = TileStore.build(city, tile_size=150.0)
        cache = ShardedTileCache(store.load_tile)
        tile = store.tiles()[0]
        cache.get(tile)
        cache.invalidate([tile])
        assert tile not in cache.resident_tiles()
        cache.get(tile)
        assert cache.misses.value == 2

    def test_concurrent_readers_agree(self, city):
        store = TileStore.build(city, tile_size=150.0)
        cache = ShardedTileCache(store.load_tile, n_shards=4,
                                 tiles_per_shard=16)
        tiles = store.tiles()
        errors = []

        def reader(seed):
            rng = np.random.default_rng(seed)
            for _ in range(50):
                tile = tiles[int(rng.integers(0, len(tiles)))]
                shard = cache.get(tile)
                direct = store.load_tile(tile)
                if {e.id for e in shard.elements()} != \
                        {e.id for e in direct.elements()}:
                    errors.append(tile)

        threads = [threading.Thread(target=reader, args=(s,))
                   for s in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

    def test_invalidate_mid_encoded_build_is_safe(self, city):
        from repro.storage.binary import encode_map

        store = TileStore.build(city, tile_size=150.0)
        cache = ShardedTileCache(store.load_tile, n_shards=2,
                                 tiles_per_shard=8)
        tile = store.tiles()[0]
        encoding = threading.Event()
        invalidated = threading.Event()

        def encoder(hdmap):
            encoding.set()
            assert invalidated.wait(timeout=5.0)
            return encode_map(hdmap)

        result = {}

        def build():
            result["payload"] = cache.get_encoded(tile, 1, encoder)

        builder = threading.Thread(target=build)
        builder.start()
        assert encoding.wait(timeout=5.0)
        # The encoder runs outside every shard lock, so invalidating the
        # tile mid-build must neither deadlock nor corrupt the memo.
        cache.invalidate_encoded([tile])
        invalidated.set()
        builder.join(timeout=5.0)
        assert not builder.is_alive()
        assert result["payload"] == encode_map(store.load_tile(tile))
        # The racing build installs (tile, 1) after the invalidation; a
        # read at the bumped version must rebuild, not serve that entry.
        assert cache.get_encoded(tile, 2, lambda m: b"v2") == b"v2"
        assert cache.serialization_builds.value == 2

    def test_concurrent_encodes_collapse_to_one_build(self, city):
        import time

        from repro.storage.binary import encode_map

        store = TileStore.build(city, tile_size=150.0)
        cache = ShardedTileCache(store.load_tile, n_shards=2,
                                 tiles_per_shard=8)
        tile = store.tiles()[0]
        builds = []
        entered = threading.Event()
        release = threading.Event()

        def encoder(hdmap):
            builds.append(tile)
            entered.set()
            assert release.wait(timeout=5.0)
            return encode_map(hdmap)

        n = 6
        payloads = [None] * n

        def one(slot):
            payloads[slot] = cache.get_encoded(tile, 1, encoder)

        threads = [threading.Thread(target=one, args=(s,))
                   for s in range(n)]
        threads[0].start()
        assert entered.wait(timeout=5.0)  # the leader is inside the encoder
        for t in threads[1:]:
            t.start()
        time.sleep(0.3)  # followers park on the in-flight build
        release.set()
        for t in threads:
            t.join()
        want = encode_map(store.load_tile(tile))
        assert payloads == [want] * n
        assert len(builds) == 1
        assert cache.serialization_builds.value == 1
        assert cache.coalesced.value == n - 1
        assert cache.as_dict()["coalesced"] == n - 1

    def test_rwlock_excludes_writers(self):
        lock = RWLock()
        log = []
        with lock.read():
            with lock.read():  # readers share
                log.append("nested-read")
        with lock.write():
            log.append("write")
        assert log == ["nested-read", "write"]

    def test_shard_validation(self):
        with pytest.raises(StorageError):
            ShardedTileCache(lambda t: None, n_shards=0)


# ----------------------------------------------------------------------
def _world_service(city, **kwargs):
    store = TileStore.build(city, tile_size=150.0)
    server = MapDistributionServer(city.copy())
    kwargs.setdefault("n_workers", 2)
    return MapService(server, store, **kwargs), store, server


class TestMapService:
    def test_get_tile_matches_store(self, city):
        service, store, _ = _world_service(city)
        with service:
            tile = store.tiles()[0]
            resp = service.request(GetTile(tile))
        assert resp.ok
        assert {e.id for e in resp.payload.elements()} == \
            {e.id for e in store.load_tile(tile).elements()}

    def test_missing_tile_is_none_payload(self, city):
        service, _, _ = _world_service(city)
        with service:
            resp = service.request(GetTile(TileId(999, 999)))
        assert resp.ok and resp.payload is None

    def test_spatial_query_matches_streaming_map(self, city):
        """Regression: the serve-layer cache answers exactly as StreamingMap."""
        service, store, _ = _world_service(city)
        streaming = StreamingMap(store, max_tiles=9)
        with service:
            for point in [(100.0, 100.0), (250.0, 200.0), (400.0, 120.0)]:
                resp = service.request(
                    SpatialQuery(point[0], point[1], 60.0))
                assert resp.ok
                served = {e.id for e in resp.payload}
                direct = {e.id for e in
                          streaming.elements_in_radius(*point, 60.0)}
                assert served == direct
                lm = service.request(SpatialQuery(point[0], point[1], 60.0,
                                                  landmarks_only=True))
                assert {e.id for e in lm.payload} == \
                    {e.id for e in
                     streaming.landmarks_in_radius(*point, 60.0)}

    def test_spatial_short_circuits_absent_tiles(self, city):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        service, store, _ = _world_service(city, registry=registry)
        with service:
            # a radius around the map corner covers tiles outside the
            # built world; those must not be faulted into the cache
            min_x, min_y, _, _ = city.bounds()
            radius = 400.0
            resp = service.request(SpatialQuery(min_x, min_y, radius))
            assert resp.ok
            covered = list(store.scheme.tiles_for_bounds(
                (min_x - radius, min_y - radius,
                 min_x + radius, min_y + radius)))
            present = [t for t in covered if store.contains(t)]
            absent = [t for t in covered if not store.contains(t)]
            assert absent, "query should cover tiles outside the world"
            assert service.spatial_tiles_scanned.value == len(present)
            assert set(service.cache.resident_tiles()).isdisjoint(absent)
            assert registry.snapshot()["serve.spatial.tiles_scanned"] == \
                len(present)

    def test_ingest_then_changes_since(self, city):
        service, _, server = _world_service(city)
        with service:
            before = server.version
            resp = service.request(IngestPatch(_add_sign_patch(server)))
            assert resp.ok and resp.payload.accepted
            assert resp.version == before + 1
            delta = service.request(ChangesSince(before))
            assert delta.ok
            assert delta.payload.version == before + 1
            assert len(delta.payload.changes) == 1

    def test_snapshot_is_a_copy(self, city):
        service, _, server = _world_service(city)
        with service:
            resp = service.request(Snapshot())
        assert resp.ok
        assert resp.payload is not server.db.map
        assert len(resp.payload) == len(server.db.map)
        assert resp.version == server.version

    def test_error_response_keeps_worker_alive(self, city):
        service, _, _ = _world_service(city)
        with service:
            bad = service.request(SpatialQuery(float("nan"), 0.0, -5.0))
            good = service.request(SpatialQuery(100.0, 100.0, 30.0))
        # Whatever the handler does with a degenerate query, the pool
        # must keep serving afterwards.
        assert good.ok
        assert bad.status in (Status.OK, Status.ERROR)

    def test_backpressure_rejects_when_not_started(self, city):
        service, store, _ = _world_service(
            city, policy=AdmissionPolicy(max_queue=2))
        tile = store.tiles()[0]
        futures = [service.submit(GetTile(tile)) for _ in range(3)]
        assert not futures[0].done() and not futures[1].done()
        rejected = futures[2].result(timeout=1.0)
        assert rejected.status is Status.REJECTED
        assert service.metrics.rejected.value == 1
        with service:  # starting drains the two admitted requests
            assert futures[0].result(timeout=5.0).ok
            assert futures[1].result(timeout=5.0).ok

    def test_metrics_record_latency_per_kind(self, city):
        service, store, _ = _world_service(city)
        with service:
            service.request(GetTile(store.tiles()[0]))
            service.request(Snapshot())
        exported = service.metrics.as_dict()
        assert exported["outcomes"]["GetTile.ok"] == 1
        assert exported["outcomes"]["Snapshot.ok"] == 1
        assert exported["latency"]["GetTile"]["count"] == 1


# ----------------------------------------------------------------------
class TestConcurrentConsistency:
    def test_concurrent_ingest_and_sync_clients_consistent(self, city):
        """N writer + N reader threads; every client ends consistent."""
        server = MapDistributionServer(city.copy())
        n_clients, n_patches = 3, 25
        clients = [VehicleMapClient(server) for _ in range(n_clients)]
        stop = threading.Event()
        failures = []

        def writer():
            for k in range(n_patches):
                result = server.ingest(_add_sign_patch(
                    server, position=(5.0 * k, 3.0)))
                if not result.accepted:
                    failures.append("rejected ingest")
            stop.set()

        def reader(client):
            last = client.synced_version
            while not stop.is_set():
                client.sync()
                if client.synced_version < last:
                    failures.append("version went backwards")
                last = client.synced_version

        threads = [threading.Thread(target=writer)]
        threads += [threading.Thread(target=reader, args=(c,))
                    for c in clients]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures
        assert server.version == n_patches
        for client in clients:
            client.sync()
            assert client.is_consistent()

    def test_fleet_run_zero_violations(self, city):
        service, _, server = _world_service(city, n_workers=3)
        with service:
            fleet = FleetSimulator(service, city, n_vehicles=3,
                                   route_length_m=600.0, step_s=3.0,
                                   sync_every=3, ingest_every=4, seed=5)
            report = fleet.run()
        assert report.error_total == 0
        assert report.consistency_violations == 0
        assert report.version_regressions == 0
        assert report.ok_total == report.requests_total
        assert sum(r.patches_sent for r in report.vehicles) > 0
        assert server.version > 0
        assert report.cache_hit_rate > 0.5  # coherent drives re-hit tiles

    def test_delta_since_is_atomic_suffix(self, city):
        server = MapDistributionServer(city.copy())
        for k in range(4):
            server.ingest(_add_sign_patch(server, position=(10.0 * k, 4.0)))
        delta = server.delta_since(2)
        assert delta.version == 4
        assert len(delta.changes) == 2
        assert set(delta.elements) == {c.element_id for c in delta.changes}
        for eid, element in delta.elements.items():
            assert element is not None and element.id == eid
