"""Map integrity validation and the reference-free constraint engine.

The survey notes that "satisfying the basic needs cannot ensure the quality
of HD maps" [3] — creation pipelines make mistakes, so a map is checked
before publication. Two layers live here:

- the original whole-map checks: ``validate_map`` runs every registered
  check and returns a list of :class:`ValidationIssue`;
  ``raise_on_error=True`` turns errors into
  :class:`~repro.errors.MapValidationError`;
- :class:`ConstraintEngine`, the *reference-free constraint* layer in the
  spirit of the geo-data-driven verification workflow (PAPERS.md): maps
  and patches are validated against internal consistency constraints —
  no ground truth required. Five named constraints
  (:data:`ALL_CONSTRAINTS`) each yield structured
  :class:`ConstraintViolation` records with element ids and severities;
  ERROR-severity violations are what the online publish gate in
  :mod:`repro.ingest.verify` quarantines on. ``check_map`` scans a whole
  map; ``check_patch`` scopes the scan to the elements a
  :class:`~repro.core.versioning.MapPatch` touches (plus their direct
  references), which is what keeps the gate's added publish latency
  bounded.

Thresholds are calibrated so every map the :mod:`repro.world` generators
produce is constraint-clean — the engine flags corruption, not style.
``docs/MAP_QUALITY.md`` is the operator-facing catalog of each
constraint's rule, rationale, thresholds, and metric names.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Set

import numpy as np

from repro.core.elements import Lane, LaneBoundary, MapElement, PointLandmark, RoadSegment
from repro.core.hdmap import HDMap
from repro.core.ids import ElementId
from repro.core.regulatory import RegulatoryElement, RuleType
from repro.core.versioning import AddElement, MapPatch, RemoveElement, ReplaceElement
from repro.errors import MapValidationError

_isfinite = math.isfinite  # bound once: used per published patch


class Severity(enum.Enum):
    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class ValidationIssue:
    severity: Severity
    check: str
    element_id: Optional[ElementId]
    message: str

    def __str__(self) -> str:
        where = f" [{self.element_id}]" if self.element_id else ""
        return f"{self.severity.value}:{self.check}{where}: {self.message}"


Check = Callable[[HDMap], Iterator[ValidationIssue]]

# Physical plausibility limits.
MIN_LANE_WIDTH = 2.0
MAX_LANE_WIDTH = 7.0
MAX_SPEED_LIMIT = 42.0  # m/s ~ 150 km/h


def _check_lane_references(hdmap: HDMap) -> Iterator[ValidationIssue]:
    """Lanes must reference boundaries and segments that exist."""
    for lane in hdmap.lanes():
        for ref, label in ((lane.left_boundary, "left_boundary"),
                           (lane.right_boundary, "right_boundary"),
                           (lane.segment, "segment")):
            if ref is not None and ref not in hdmap:
                yield ValidationIssue(
                    Severity.ERROR, "lane_references", lane.id,
                    f"{label} {ref} does not exist",
                )


def _check_lane_geometry(hdmap: HDMap) -> Iterator[ValidationIssue]:
    for lane in hdmap.lanes():
        if not (MIN_LANE_WIDTH <= lane.width <= MAX_LANE_WIDTH):
            yield ValidationIssue(
                Severity.ERROR, "lane_geometry", lane.id,
                f"implausible lane width {lane.width:.2f} m",
            )
        if lane.length < 1.0:
            yield ValidationIssue(
                Severity.WARNING, "lane_geometry", lane.id,
                f"very short lane ({lane.length:.2f} m)",
            )
        if not (0.0 < lane.speed_limit <= MAX_SPEED_LIMIT):
            yield ValidationIssue(
                Severity.ERROR, "lane_geometry", lane.id,
                f"implausible speed limit {lane.speed_limit:.1f} m/s",
            )


def _check_boundary_consistency(hdmap: HDMap) -> Iterator[ValidationIssue]:
    """Boundaries referenced by a lane should flank its centerline."""
    for lane in hdmap.lanes():
        mid = lane.centerline.point_at(lane.length / 2.0)
        for ref, expect_left in ((lane.left_boundary, True),
                                 (lane.right_boundary, False)):
            if ref is None or ref not in hdmap:
                continue
            boundary = hdmap.get(ref)
            if not isinstance(boundary, LaneBoundary):
                yield ValidationIssue(
                    Severity.ERROR, "boundary_consistency", lane.id,
                    f"{ref} is not a LaneBoundary",
                )
                continue
            mid_b = boundary.line.point_at(boundary.line.length / 2.0)
            _, lateral = lane.centerline.project(mid_b)
            if expect_left and lateral < 0:
                yield ValidationIssue(
                    Severity.WARNING, "boundary_consistency", lane.id,
                    f"left boundary {ref} lies to the right of the centerline",
                )
            if not expect_left and lateral > 0:
                yield ValidationIssue(
                    Severity.WARNING, "boundary_consistency", lane.id,
                    f"right boundary {ref} lies to the left of the centerline",
                )


def _check_segment_bundles(hdmap: HDMap) -> Iterator[ValidationIssue]:
    """Segment lane bundles must reference existing lanes that point back."""
    for segment in hdmap.segments():
        for lane_id in list(segment.forward_lanes) + list(segment.backward_lanes):
            if lane_id not in hdmap:
                yield ValidationIssue(
                    Severity.ERROR, "segment_bundles", segment.id,
                    f"bundle references missing lane {lane_id}",
                )
                continue
            lane = hdmap.get(lane_id)
            if isinstance(lane, Lane) and lane.segment != segment.id:
                yield ValidationIssue(
                    Severity.WARNING, "segment_bundles", segment.id,
                    f"lane {lane_id} does not point back to this segment",
                )
        for node_ref in (segment.start_node, segment.end_node):
            if node_ref is not None and node_ref not in hdmap:
                yield ValidationIssue(
                    Severity.ERROR, "segment_bundles", segment.id,
                    f"missing node {node_ref}",
                )


def _check_connectivity(hdmap: HDMap) -> Iterator[ValidationIssue]:
    """Warn about dead-end lanes (no successor), excluding map boundary."""
    try:
        min_x, min_y, max_x, max_y = hdmap.bounds()
    except Exception:
        return
    margin = 30.0
    for lane in hdmap.lanes():
        if hdmap.successors(lane.id):
            continue
        ex, ey = lane.centerline.end
        at_edge = (
            ex < min_x + margin or ex > max_x - margin
            or ey < min_y + margin or ey > max_y - margin
        )
        if not at_edge:
            yield ValidationIssue(
                Severity.WARNING, "connectivity", lane.id,
                "interior lane has no successor",
            )


def _check_regulatory(hdmap: HDMap) -> Iterator[ValidationIssue]:
    for rule in hdmap.regulatory_elements():
        for lane_id in rule.lanes:
            if lane_id not in hdmap:
                yield ValidationIssue(
                    Severity.ERROR, "regulatory", rule.id,
                    f"rule governs missing lane {lane_id}",
                )
        for ev in rule.evidence:
            if ev not in hdmap:
                yield ValidationIssue(
                    Severity.ERROR, "regulatory", rule.id,
                    f"rule cites missing evidence {ev}",
                )


ALL_CHECKS: List[Check] = [
    _check_lane_references,
    _check_lane_geometry,
    _check_boundary_consistency,
    _check_segment_bundles,
    _check_connectivity,
    _check_regulatory,
]


def validate_map(hdmap: HDMap, raise_on_error: bool = False) -> List[ValidationIssue]:
    """Run all integrity checks; optionally raise if any ERROR is found."""
    issues: List[ValidationIssue] = []
    for check in ALL_CHECKS:
        issues.extend(check(hdmap))
    if raise_on_error:
        errors = [i for i in issues if i.severity is Severity.ERROR]
        if errors:
            summary = "; ".join(str(e) for e in errors[:5])
            raise MapValidationError(
                f"{len(errors)} validation error(s): {summary}"
            )
    return issues


# ---------------------------------------------------------------------------
# Reference-free constraint engine (the online publish gate's brain)
# ---------------------------------------------------------------------------

#: Canonical constraint names — also the metric suffixes under
#: ``ingest.verify.constraint.<name>`` and the catalog keys in
#: docs/MAP_QUALITY.md.
C_LANE_WIDTH = "lane_width"
C_BOUNDARY_CONTINUITY = "boundary_continuity"
C_TOPOLOGY_REACHABILITY = "topology_reachability"
C_REGULATORY_ATTACHMENT = "regulatory_attachment"
C_LAYER_AGREEMENT = "layer_agreement"

ALL_CONSTRAINTS = (
    C_LANE_WIDTH,
    C_BOUNDARY_CONTINUITY,
    C_TOPOLOGY_REACHABILITY,
    C_REGULATORY_ATTACHMENT,
    C_LAYER_AGREEMENT,
)


@dataclass(frozen=True)
class ConstraintViolation:
    """One constraint breach, attributable to one element."""

    constraint: str
    severity: Severity
    element_id: Optional[ElementId]
    message: str

    def __str__(self) -> str:
        where = f" [{self.element_id}]" if self.element_id else ""
        return (f"{self.severity.value}:{self.constraint}{where}: "
                f"{self.message}")

    def as_dict(self) -> Dict[str, str]:
        """JSON-serializable form (quarantine journal records)."""
        return {
            "constraint": self.constraint,
            "severity": self.severity.value,
            "element_id": str(self.element_id) if self.element_id else "",
            "message": self.message,
        }


@dataclass
class ConstraintReport:
    """Consolidated outcome of one ``check_map``/``check_patch`` run.

    A multi-violation patch produces exactly one report; ``ok`` is the
    gate decision (no ERROR-severity violation — warnings inform but
    never block).
    """

    violations: List[ConstraintViolation] = field(default_factory=list)
    checked: int = 0  # elements examined

    @property
    def errors(self) -> List[ConstraintViolation]:
        return [v for v in self.violations
                if v.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[ConstraintViolation]:
        return [v for v in self.violations
                if v.severity is Severity.WARNING]

    def ok(self) -> bool:
        return not self.errors

    def counts(self) -> Dict[str, int]:
        """Violations per constraint name (zero-count names omitted)."""
        out: Dict[str, int] = {}
        for violation in self.violations:
            out[violation.constraint] = out.get(violation.constraint, 0) + 1
        return out

    def as_dict(self) -> Dict[str, object]:
        return {
            "checked": self.checked,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "violations": [v.as_dict() for v in self.violations],
        }

    def summary(self) -> str:
        if not self.violations:
            return f"clean ({self.checked} element(s) checked)"
        parts = ", ".join(f"{name}={n}"
                          for name, n in sorted(self.counts().items()))
        return (f"{len(self.errors)} error(s), {len(self.warnings)} "
                f"warning(s) over {self.checked} element(s): {parts}")


#: Shared result for the clean single-op patch fast path: reports are
#: read-only after construction, so every clean add can return the same
#: instance without a per-patch allocation.
_CLEAN_SINGLE_OP = ConstraintReport([], 1)


class _PatchView:
    """Reference resolution over ``base`` as if a patch were applied.

    Only the mapping protocol the constraints use (``get`` /
    ``__contains__``) — never materializes a map copy, which is what
    keeps ``check_patch`` O(patch), not O(map).
    """

    def __init__(self, base: HDMap, overlay: Dict[ElementId, MapElement],
                 removed: Set[ElementId]) -> None:
        self._base = base
        self._overlay = overlay
        self._removed = removed

    def __contains__(self, element_id: ElementId) -> bool:
        if element_id in self._overlay:
            return True
        if element_id in self._removed:
            return False
        return element_id in self._base

    def get(self, element_id: ElementId) -> Optional[MapElement]:
        element = self._overlay.get(element_id)
        if element is not None:
            return element
        if element_id in self._removed:
            return None
        try:
            return self._base.get(element_id)
        except Exception:
            return None


def _finite_points(points: np.ndarray) -> bool:
    return bool(np.isfinite(np.asarray(points, dtype=float)).all())


class ConstraintEngine:
    """Reference-free constraint checks over maps and patches.

    Every threshold is a constructor knob so operators can tighten or
    relax the gate per deployment; the defaults are calibrated against
    the :mod:`repro.world` generators (see docs/MAP_QUALITY.md for the
    rationale behind each number).
    """

    def __init__(self,
                 min_lane_width: float = MIN_LANE_WIDTH,
                 max_lane_width: float = MAX_LANE_WIDTH,
                 min_lane_length_m: float = 1.0,
                 min_boundary_length_m: float = 1.0,
                 max_boundary_gap_m: float = 50.0,
                 boundary_reversal_deg: float = 150.0,
                 max_boundary_offset_widths: float = 2.0,
                 min_boundary_offset_widths: float = 0.05,
                 max_speed_limit: float = MAX_SPEED_LIMIT) -> None:
        self.min_lane_width = min_lane_width
        self.max_lane_width = max_lane_width
        self.min_lane_length_m = min_lane_length_m
        self.min_boundary_length_m = min_boundary_length_m
        self.max_boundary_gap_m = max_boundary_gap_m
        self.boundary_reversal_deg = boundary_reversal_deg
        self.max_boundary_offset_widths = max_boundary_offset_widths
        self.min_boundary_offset_widths = min_boundary_offset_widths
        self.max_speed_limit = max_speed_limit

    # -- per-constraint checks (view is HDMap or _PatchView) ------------
    def _lane_width(self, lane: Lane) -> Iterator[ConstraintViolation]:
        """Physical plausibility of a lane's own geometry. Bounds are
        inclusive: a width exactly at min/max passes."""
        width = float(lane.width)
        if not math.isfinite(width) or \
                not (self.min_lane_width <= width <= self.max_lane_width):
            yield ConstraintViolation(
                C_LANE_WIDTH, Severity.ERROR, lane.id,
                f"lane width {width:.2f} m outside "
                f"[{self.min_lane_width:g}, {self.max_lane_width:g}] m")
        if lane.centerline is None:
            yield ConstraintViolation(
                C_LANE_WIDTH, Severity.ERROR, lane.id,
                "lane has no centerline")
            return
        if not _finite_points(lane.centerline.points):
            yield ConstraintViolation(
                C_LANE_WIDTH, Severity.ERROR, lane.id,
                "centerline has non-finite coordinates")
        elif lane.centerline.length < self.min_lane_length_m:
            yield ConstraintViolation(
                C_LANE_WIDTH, Severity.ERROR, lane.id,
                f"degenerate lane: centerline {lane.centerline.length:.3f} "
                f"m < {self.min_lane_length_m:g} m")

    def _boundary_continuity(self, boundary: LaneBoundary
                             ) -> Iterator[ConstraintViolation]:
        """A boundary must be one continuous, forward-running chain."""
        if boundary.line is None:
            yield ConstraintViolation(
                C_BOUNDARY_CONTINUITY, Severity.ERROR, boundary.id,
                "boundary has no geometry")
            return
        points = np.asarray(boundary.line.points, dtype=float)
        if not _finite_points(points):
            yield ConstraintViolation(
                C_BOUNDARY_CONTINUITY, Severity.ERROR, boundary.id,
                "boundary has non-finite coordinates")
            return
        if boundary.line.length < self.min_boundary_length_m:
            yield ConstraintViolation(
                C_BOUNDARY_CONTINUITY, Severity.ERROR, boundary.id,
                f"zero-length boundary ({boundary.line.length:.3f} m < "
                f"{self.min_boundary_length_m:g} m)")
            return
        seg = np.diff(points, axis=0)
        seg_len = np.hypot(seg[:, 0], seg[:, 1])
        worst_gap = float(seg_len.max())
        if worst_gap > self.max_boundary_gap_m:
            yield ConstraintViolation(
                C_BOUNDARY_CONTINUITY, Severity.ERROR, boundary.id,
                f"broken chain: {worst_gap:.1f} m jump between "
                f"consecutive vertices (> {self.max_boundary_gap_m:g} m)")
        if len(seg) > 1:
            # A chain stitched from mismatched pieces doubles back on
            # itself; legitimate boundaries never reverse heading by
            # more than ``boundary_reversal_deg`` between segments.
            cos_limit = math.cos(math.radians(self.boundary_reversal_deg))
            dots = (seg[:-1] * seg[1:]).sum(axis=1) / \
                (seg_len[:-1] * seg_len[1:])
            if float(dots.min()) < cos_limit:
                angle = math.degrees(math.acos(
                    max(-1.0, min(1.0, float(dots.min())))))
                yield ConstraintViolation(
                    C_BOUNDARY_CONTINUITY, Severity.ERROR, boundary.id,
                    f"broken chain: heading reverses {angle:.0f} deg "
                    f"(> {self.boundary_reversal_deg:g} deg) mid-boundary")

    def _topology_references(self, view, lane: Lane
                             ) -> Iterator[ConstraintViolation]:
        """A lane's references must resolve or the network is unroutable."""
        for ref, label in ((lane.left_boundary, "left_boundary"),
                           (lane.right_boundary, "right_boundary"),
                           (lane.segment, "segment")):
            if ref is not None and ref not in view:
                yield ConstraintViolation(
                    C_TOPOLOGY_REACHABILITY, Severity.ERROR, lane.id,
                    f"{label} {ref} does not resolve")

    def _topology_segment(self, view, segment: RoadSegment
                          ) -> Iterator[ConstraintViolation]:
        for lane_id in list(segment.forward_lanes) + \
                list(segment.backward_lanes):
            if lane_id not in view:
                yield ConstraintViolation(
                    C_TOPOLOGY_REACHABILITY, Severity.ERROR, segment.id,
                    f"bundle references missing lane {lane_id}")
        for node_ref in (segment.start_node, segment.end_node):
            if node_ref is not None and node_ref not in view:
                yield ConstraintViolation(
                    C_TOPOLOGY_REACHABILITY, Severity.ERROR, segment.id,
                    f"missing node {node_ref}")

    def _regulatory_attachment(self, view, rule: RegulatoryElement
                               ) -> Iterator[ConstraintViolation]:
        """Rules must govern at least one real lane and cite real
        evidence — an orphaned rule is undecidable for a planner."""
        if not rule.lanes:
            yield ConstraintViolation(
                C_REGULATORY_ATTACHMENT, Severity.ERROR, rule.id,
                "orphaned regulatory element: governs no lanes")
        for lane_id in rule.lanes:
            if lane_id not in view:
                yield ConstraintViolation(
                    C_REGULATORY_ATTACHMENT, Severity.ERROR, rule.id,
                    f"rule governs missing lane {lane_id}")
        for ev in rule.evidence:
            if ev not in view:
                yield ConstraintViolation(
                    C_REGULATORY_ATTACHMENT, Severity.ERROR, rule.id,
                    f"rule cites missing evidence {ev}")

    def _layer_agreement(self, view, lane: Lane
                         ) -> Iterator[ConstraintViolation]:
        """The physical layer (boundaries) must agree with the
        relational layer (the lane that binds them)."""
        speed = float(lane.speed_limit)
        if not math.isfinite(speed) or \
                not (0.0 < speed <= self.max_speed_limit):
            yield ConstraintViolation(
                C_LAYER_AGREEMENT, Severity.ERROR, lane.id,
                f"implausible speed limit {speed:.1f} m/s")
        if lane.centerline is None or \
                not _finite_points(lane.centerline.points) or \
                lane.centerline.length <= 0.0 or \
                not math.isfinite(float(lane.width)) or lane.width <= 0.0:
            return  # geometry already condemned by lane_width
        mid = lane.centerline.point_at(lane.centerline.length / 2.0)
        for ref, expect_left in ((lane.left_boundary, True),
                                 (lane.right_boundary, False)):
            if ref is None or ref not in view:
                continue  # dangling refs are topology's finding
            boundary = view.get(ref)
            if not isinstance(boundary, LaneBoundary):
                yield ConstraintViolation(
                    C_LAYER_AGREEMENT, Severity.ERROR, lane.id,
                    f"{ref} is not a LaneBoundary")
                continue
            if boundary.line is None or \
                    not _finite_points(boundary.line.points):
                continue  # condemned by boundary_continuity
            mid_b = boundary.line.point_at(boundary.line.length / 2.0)
            _, lateral = lane.centerline.project(mid_b)
            offset_widths = abs(lateral) / float(lane.width)
            if offset_widths > self.max_boundary_offset_widths:
                yield ConstraintViolation(
                    C_LAYER_AGREEMENT, Severity.ERROR, lane.id,
                    f"boundary {ref} sits {abs(lateral):.1f} m off the "
                    f"centerline ({offset_widths:.1f} widths > "
                    f"{self.max_boundary_offset_widths:g})")
            elif offset_widths < self.min_boundary_offset_widths:
                yield ConstraintViolation(
                    C_LAYER_AGREEMENT, Severity.ERROR, lane.id,
                    f"boundary {ref} collapsed onto the centerline "
                    f"({abs(lateral):.2f} m lateral offset)")
            elif (expect_left and lateral < 0) or \
                    (not expect_left and lateral > 0):
                side = "left" if expect_left else "right"
                yield ConstraintViolation(
                    C_LAYER_AGREEMENT, Severity.WARNING, lane.id,
                    f"{side} boundary {ref} lies on the wrong side of "
                    f"the centerline")
        rule_for_lane = getattr(lane, "speed_rule", None)
        if rule_for_lane is not None:  # pragma: no cover - future layers
            pass

    def _point_landmark(self, landmark: PointLandmark
                        ) -> List[ConstraintViolation]:
        # Pure-python on purpose: this is the publish hot path (every
        # sign add the pipeline emits), and numpy round-trips on a
        # 2-vector cost more than the whole remaining gate. Indexing
        # beats iteration/unpacking on ndarray positions; isfinite
        # rejects NaN/inf (and, via TypeError, anything non-numeric).
        position = landmark.position
        try:
            valid = len(position) == 2 and \
                _isfinite(position[0]) and _isfinite(position[1])
        except (TypeError, ValueError, IndexError):
            valid = False
        if valid:
            return []
        return [ConstraintViolation(
            C_LAYER_AGREEMENT, Severity.ERROR, landmark.id,
            "landmark position is not a finite 2-D point")]

    def _regulatory_value(self, view, rule: RegulatoryElement
                          ) -> Iterator[ConstraintViolation]:
        """SPEED_LIMIT rules should roughly agree with their lanes."""
        if rule.rule_type is not RuleType.SPEED_LIMIT or rule.value is None:
            return
        value = float(rule.value)
        if not math.isfinite(value) or \
                not (0.0 < value <= self.max_speed_limit):
            yield ConstraintViolation(
                C_LAYER_AGREEMENT, Severity.ERROR, rule.id,
                f"speed-limit rule posts implausible {value:.1f} m/s")

    # -- element dispatch -----------------------------------------------
    def _check_element(self, view, element: MapElement
                       ) -> List[ConstraintViolation]:
        # PointLandmark first: signs are what the ingest pipeline emits,
        # so this branch is the publish hot path.
        if isinstance(element, PointLandmark):
            return self._point_landmark(element)
        out: List[ConstraintViolation] = []
        if isinstance(element, Lane):
            out.extend(self._lane_width(element))
            out.extend(self._topology_references(view, element))
            out.extend(self._layer_agreement(view, element))
        elif isinstance(element, LaneBoundary):
            out.extend(self._boundary_continuity(element))
        elif isinstance(element, RoadSegment):
            out.extend(self._topology_segment(view, element))
        elif isinstance(element, RegulatoryElement):
            out.extend(self._regulatory_attachment(view, element))
            out.extend(self._regulatory_value(view, element))
        return out

    def _check_removal(self, view, base: HDMap, element_id: ElementId
                       ) -> List[ConstraintViolation]:
        """A removal must not leave dangling references behind.

        The scan is scoped by the removed element's kind: removing a
        point landmark only needs the (small) regulatory layer checked,
        so ingest's sign removals stay O(rules), not O(map).
        """
        out: List[ConstraintViolation] = []
        kind = element_id.kind
        if kind == "lane":
            for segment in base.segments():
                if element_id in segment.forward_lanes or \
                        element_id in segment.backward_lanes:
                    out.append(ConstraintViolation(
                        C_TOPOLOGY_REACHABILITY, Severity.ERROR,
                        element_id,
                        f"removal orphans segment {segment.id} bundle"))
        elif kind == "boundary":
            for lane in base.lanes():
                if element_id in (lane.left_boundary, lane.right_boundary):
                    out.append(ConstraintViolation(
                        C_TOPOLOGY_REACHABILITY, Severity.ERROR,
                        element_id,
                        f"removal dangles boundary ref of lane {lane.id}"))
        for rule in base.regulatory_elements():
            if element_id in rule.lanes:
                out.append(ConstraintViolation(
                    C_REGULATORY_ATTACHMENT, Severity.ERROR, element_id,
                    f"removal orphans rule {rule.id} (governed lane)"))
            elif element_id in rule.evidence:
                out.append(ConstraintViolation(
                    C_REGULATORY_ATTACHMENT, Severity.WARNING, element_id,
                    f"removal drops evidence of rule {rule.id}"))
        return out

    # -- entry points -----------------------------------------------------
    def check_map(self, hdmap: HDMap) -> ConstraintReport:
        """Scan every element; adds isolation warnings the patch path
        cannot know about (they need whole-map topology)."""
        violations: List[ConstraintViolation] = []
        checked = 0
        for element in hdmap.elements():
            checked += 1
            violations.extend(self._check_element(hdmap, element))
        # Reachability over the derived topology: an interior island in
        # an otherwise-connected network is suspicious, but maps whose
        # lanes are *all* unconnected (a highway of parallel carriageways,
        # a factory floor) are legitimately connection-free.
        lanes = list(hdmap.lanes())
        connected = sum(1 for lane in lanes
                        if hdmap.successors(lane.id)
                        or hdmap.predecessors(lane.id))
        if connected:
            for lane in lanes:
                if not hdmap.successors(lane.id) and \
                        not hdmap.predecessors(lane.id):
                    violations.append(ConstraintViolation(
                        C_TOPOLOGY_REACHABILITY, Severity.WARNING, lane.id,
                        "lane is unreachable from the rest of the network"))
        return ConstraintReport(violations, checked)

    def check_patch(self, hdmap: HDMap, patch: MapPatch) -> ConstraintReport:
        """Scoped scan of one patch against a base map.

        All violations across all ops land in one consolidated report;
        the base map is never mutated.
        """
        ops = patch.ops
        if len(ops) == 1 and type(ops[0]) is AddElement:
            # Single-add fast path (the pipeline's sign emissions):
            # the base map alone resolves every reference, exactly as
            # check_map does, so the overlay/view machinery is skipped.
            element = ops[0].element
            if isinstance(element, PointLandmark):
                # The landmark check inlined (see _point_landmark):
                # clean sign adds resolve here without another frame,
                # a violations list, or a fresh report.
                position = element.position
                try:
                    if len(position) == 2 and _isfinite(position[0]) \
                            and _isfinite(position[1]):
                        return _CLEAN_SINGLE_OP
                except (TypeError, ValueError, IndexError):
                    pass
                return ConstraintReport(self._point_landmark(element), 1)
            violations = self._check_element(hdmap, element)
            if not violations:
                # Shared clean report: nothing downstream mutates a
                # report, so one instance serves every clean add.
                return _CLEAN_SINGLE_OP
            return ConstraintReport(violations, 1)
        overlay: Dict[ElementId, MapElement] = {}
        removed: Set[ElementId] = set()
        for op in patch.ops:
            if isinstance(op, (AddElement, ReplaceElement)):
                overlay[op.element.id] = op.element
                removed.discard(op.element.id)
            elif isinstance(op, RemoveElement):
                removed.add(op.element_id)
                overlay.pop(op.element_id, None)
        view = _PatchView(hdmap, overlay, removed)
        violations: List[ConstraintViolation] = []
        checked = 0
        for element in overlay.values():
            checked += 1
            violations.extend(self._check_element(view, element))
        for element_id in removed:
            checked += 1
            violations.extend(self._check_removal(view, hdmap, element_id))
        return ConstraintReport(violations, checked)
