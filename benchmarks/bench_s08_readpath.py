"""S8 — Concurrent read path: replica scaling, scatter-gather, coalescing.

The paper's distribution tier serves a fleet whose read load dwarfs its
write load: base-map tiles are fetched continuously while change-feed
publishes trickle. PR 8 makes that read path concurrent end to end, and
this bench certifies each layer's speedup on the synthetic substrate:

- **replica read scaling** — round-robining ``GetTile`` across primary
  + 1 replica per shard (with the version-floor staleness guard) must
  clear 2x the replica-less lockstep router at the same shard count;
- **pipelined scatter-gather** — a ``ChangesSince`` broadcast across 6
  slow shards issued concurrently must beat the serial per-shard walk
  by >= 3x (ideal: 6x, one service sleep instead of six);
- **single-flight coalescing** — a burst of identical concurrent
  ``GetTile`` requests collapses onto one shard read with byte-identical
  responses (zero divergence), so a thundering herd on a hot tile costs
  one backend fetch.
"""

import threading
import time

import numpy as np
from conftest import once

from repro.cli import _cluster_read_throughput
from repro.cluster import ClusterRouter
from repro.eval import ResultTable
from repro.serve.api import GetTile
from repro.world import generate_grid_city

_SEED = 7
_REQUESTS = 320
_CLIENTS = 16
_SERVICE_LATENCY_S = 0.02
_SCATTER_SHARDS = 6
_BURST = 8


def _replica_throughput(city, **kw):
    router = ClusterRouter(city, n_shards=2, tile_size=120.0,
                           transport="process", n_workers=2,
                           service_latency_s=_SERVICE_LATENCY_S, **kw)
    try:
        throughput, errors, _ = _cluster_read_throughput(
            router, _REQUESTS, _CLIENTS)
        assert errors == 0
        return throughput, router.replica_hits.value
    finally:
        router.close()


def _experiment(rng):
    city = generate_grid_city(np.random.default_rng(_SEED), 3, 2,
                              block_size=150.0)

    # Layer 2: replica-less lockstep baseline vs pipelined + 1 replica.
    base_tp, _ = _replica_throughput(city, replicas=0, pipeline=False)
    repl_tp, replica_hits = _replica_throughput(
        city, replicas=1, pipeline=True, replica_reads=True)

    router = ClusterRouter(city, n_shards=_SCATTER_SHARDS, tile_size=120.0,
                           transport="process", n_workers=2,
                           service_latency_s=_SERVICE_LATENCY_S)
    try:
        # Layer 1: scatter-gather broadcast, concurrent measured first so
        # connection warmup flatters the serial baseline (conservative).
        def broadcast(mode, rounds=8):
            router.scatter = mode
            t0 = time.perf_counter()
            for _ in range(rounds):
                delta = router.changes_since(
                    {i: 0 for i in range(_SCATTER_SHARDS)})
                assert len(delta.deltas) == _SCATTER_SHARDS
            return (time.perf_counter() - t0) / rounds

        concurrent_s = broadcast("concurrent")
        serial_s = broadcast("serial")

        # Layer 3: thundering herd on one hot tile.
        tile = router.tiles()[0]
        payloads = [None] * _BURST
        barrier = threading.Barrier(_BURST)

        def one(slot):
            barrier.wait()
            response = router.request(GetTile(tile=tile, encoded=True))
            payloads[slot] = response.payload if response.ok else None

        threads = [threading.Thread(target=one, args=(s,))
                   for s in range(_BURST)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        reference = router.request(GetTile(tile=tile, encoded=True)).payload
        divergent = sum(1 for p in payloads
                        if p is None or bytes(p) != bytes(reference))
        coalesced = router.read_coalesced.value
    finally:
        router.close()
    return (base_tp, repl_tp, replica_hits, serial_s, concurrent_s,
            coalesced, divergent)


def test_s08_readpath(benchmark, rng):
    (base_tp, repl_tp, replica_hits, serial_s, concurrent_s,
     coalesced, divergent) = once(benchmark, _experiment, rng)

    table = ResultTable("S8", "concurrent read path: replicas + pipelining")
    factor = repl_tp / base_tp if base_tp > 0 else 0.0
    table.add("GetTile throughput, lockstep no-replica", "> 0 req/s",
              f"{base_tp:.1f} req/s", ok=base_tp > 0)
    table.add("read scaling with 1 replica/shard", ">= 2x",
              f"{factor:.2f}x", ok=factor >= 2.0)
    table.add("replica reads served", "> 0", str(replica_hits),
              ok=replica_hits > 0)
    speedup = serial_s / concurrent_s if concurrent_s > 0 else 0.0
    table.add(f"scatter-gather speedup, {_SCATTER_SHARDS} slow shards",
              ">= 3x", f"{speedup:.2f}x", ok=speedup >= 3.0)
    table.add("hot-tile burst coalesced", "> 0 coalesced",
              str(coalesced), ok=coalesced > 0)
    table.add("coalesced response divergence", "0 divergent",
              str(divergent), ok=divergent == 0)
    table.print()
    assert table.all_ok()
