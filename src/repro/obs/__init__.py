"""Unified observability: tracing, metrics registry, structured events.

The HD-map ecosystem of the source paper is one closed loop — creation,
maintenance, serving — and its operational questions span layers:
*where did this tile request go*, *why is this observation's freshness
lag high*, *which worker kept restarting*. This package is the single
cross-cutting layer those questions are answered from:

- :mod:`repro.obs.metrics` — the shared thread-safe primitives
  (:class:`Counter`, :class:`Gauge`, :class:`LatencyHistogram` with
  cross-worker ``merge()``) and the :class:`MetricsRegistry` that
  serve/ingest/perf metrics register into under canonical dotted names,
  with ``snapshot()``, Prometheus-text, and JSON exporters;
- :mod:`repro.obs.trace` — :class:`TraceContext` propagation via
  ``contextvars`` (and explicit hand-off across thread boundaries),
  sampled spans recorded into a lock-free-append :class:`SpanRecorder`
  ring with a JSONL sink, plus span-tree tooling
  (:func:`build_tree`, :func:`format_trace`, :func:`verify_spans`);
- :mod:`repro.obs.log` — a leveled, key-value, thread-safe event log
  with trace correlation, replacing ad-hoc silent failure paths
  (supervisor restarts, dead letters, retries, load shedding).

Everything here is stdlib-only and import-leaf: the serve, ingest,
storage, and perf layers import ``repro.obs``, never the reverse.
These surfaces are also the evidence base for fault certification:
:mod:`repro.chaos` checks its degradation invariants against the event
log, metrics, and the database change log — never against harness
bookkeeping — and ``docs/OPERATIONS.md`` keys its symptom → knob
entries to the canonical metric names registered here.
"""

from repro.obs.log import (
    DEBUG,
    ERROR,
    EVENT_LOG,
    INFO,
    WARNING,
    BoundLogger,
    EventLog,
    configure_logging,
    get_logger,
)
from repro.obs.metrics import (
    DEFAULT_BOUNDS,
    FRESHNESS_BOUNDS,
    Counter,
    Gauge,
    HotCounter,
    LatencyHistogram,
    MetricsRegistry,
    register_perf_registry,
    validate_prometheus_text,
)
from repro.obs.trace import (
    NOOP_SPAN,
    TRACER,
    Span,
    SpanRecorder,
    TraceContext,
    Tracer,
    attach_context,
    build_tree,
    configure_tracing,
    format_trace,
    load_spans_jsonl,
    verify_spans,
)

__all__ = [
    "BoundLogger",
    "Counter",
    "DEBUG",
    "DEFAULT_BOUNDS",
    "ERROR",
    "EVENT_LOG",
    "EventLog",
    "FRESHNESS_BOUNDS",
    "Gauge",
    "HotCounter",
    "INFO",
    "LatencyHistogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "Span",
    "SpanRecorder",
    "TRACER",
    "TraceContext",
    "Tracer",
    "WARNING",
    "attach_context",
    "build_tree",
    "configure_logging",
    "configure_tracing",
    "format_trace",
    "get_logger",
    "load_spans_jsonl",
    "register_perf_registry",
    "validate_prometheus_text",
    "verify_spans",
]
