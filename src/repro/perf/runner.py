"""Microbenchmark runner: warmup, repetition, median/p95, baseline gating.

The runner measures named kernels (callables) and emits a machine-readable
``BENCH_PERF.json``::

    {
      "schema": "repro.perf/1",
      "kernels": {"<name>": {"median_s": ..., "p95_s": ..., ...}, ...},
      "speedups": {"<name>": <reference_median / optimized_median>, ...},
      "counters": {"<kernel>": {"calls": ..., "total_ns": ...}, ...}
    }

``check_baseline`` compares a fresh report against a checked-in baseline
and fails on median regressions beyond a multiplier — the CI perf gate.
"""

from __future__ import annotations

import json
import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

SCHEMA = "repro.perf/1"


@dataclass
class BenchResult:
    """Timing summary for one named kernel."""

    name: str
    samples_s: List[float] = field(default_factory=list)

    @property
    def median_s(self) -> float:
        return statistics.median(self.samples_s) if self.samples_s else 0.0

    @property
    def mean_s(self) -> float:
        return statistics.fmean(self.samples_s) if self.samples_s else 0.0

    @property
    def min_s(self) -> float:
        return min(self.samples_s) if self.samples_s else 0.0

    @property
    def max_s(self) -> float:
        return max(self.samples_s) if self.samples_s else 0.0

    @property
    def p95_s(self) -> float:
        """95th percentile by linear interpolation over sorted samples."""
        if not self.samples_s:
            return 0.0
        ordered = sorted(self.samples_s)
        if len(ordered) == 1:
            return ordered[0]
        rank = 0.95 * (len(ordered) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] + frac * (ordered[hi] - ordered[lo])

    def as_dict(self) -> Dict[str, float]:
        return {
            "median_s": self.median_s,
            "p95_s": self.p95_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
            "reps": len(self.samples_s),
        }


def run_bench(name: str, fn: Callable[[], object], repetitions: int = 20,
              warmup: int = 3) -> BenchResult:
    """Time ``fn`` ``repetitions`` times after ``warmup`` discarded calls."""
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    for _ in range(warmup):
        fn()
    result = BenchResult(name)
    for _ in range(repetitions):
        start = time.perf_counter()
        fn()
        result.samples_s.append(time.perf_counter() - start)
    return result


def write_report(path: str, results: Sequence[BenchResult],
                 speedups: Optional[Dict[str, float]] = None,
                 counters: Optional[Dict[str, Dict[str, float]]] = None
                 ) -> Dict[str, object]:
    """Serialize results (plus optional speedups/counters) to ``path``."""
    report: Dict[str, object] = {
        "schema": SCHEMA,
        "kernels": {r.name: r.as_dict() for r in results},
    }
    if speedups is not None:
        report["speedups"] = {k: float(v) for k, v in speedups.items()}
    if counters is not None:
        report["counters"] = counters
    with open(path, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    return report


def load_report(path: str) -> Dict[str, object]:
    with open(path, "r", encoding="utf-8") as f:
        report = json.load(f)
    if report.get("schema") != SCHEMA:
        raise ValueError(f"unexpected perf report schema in {path!r}: "
                         f"{report.get('schema')!r}")
    return report


def check_baseline(report: Dict[str, object], baseline: Dict[str, object],
                   kernels: Sequence[str],
                   max_regression: float = 2.5) -> List[str]:
    """Median-regression check for the named kernels.

    Returns a list of human-readable failures (empty = gate passes). A
    kernel missing from the fresh report fails; one missing from the
    baseline is skipped (new kernels gate once the baseline is refreshed).
    """
    failures: List[str] = []
    fresh = report.get("kernels", {})
    base = baseline.get("kernels", {})
    for name in kernels:
        if name not in fresh:
            failures.append(f"{name}: missing from fresh report")
            continue
        if name not in base:
            continue
        fresh_median = float(fresh[name]["median_s"])
        base_median = float(base[name]["median_s"])
        if base_median <= 0.0:
            continue
        ratio = fresh_median / base_median
        if ratio > max_regression:
            failures.append(
                f"{name}: median {fresh_median:.6f}s is {ratio:.2f}x the "
                f"baseline {base_median:.6f}s (limit {max_regression}x)")
    return failures
