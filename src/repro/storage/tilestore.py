"""Tile-based map streaming with an LRU working set.

The survey closes on the open problem of managing "enormous map data"
efficiently [73]: a vehicle cannot hold a country-scale HD map in memory.
``TileStore`` shards a map into compact-binary tiles; ``StreamingMap``
serves spatial queries out of a bounded LRU working set, loading and
evicting tiles as the query position moves — the access pattern a driving
vehicle produces.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.elements import Lane, MapElement, PointLandmark
from repro.core.hdmap import HDMap
from repro.core.tiles import TileId, TileScheme
from repro.errors import StorageError
from repro.storage.binary import decode_map, encode_map


@dataclass
class TileStoreStats:
    """Hit/load/eviction counters, safe to update from multiple threads.

    The plain integer fields stay readable directly; writers should go
    through the ``record_*`` methods, which serialize the read-modify-write
    under a lock (the serve layer updates one stats object from a worker
    pool).
    """

    loads: int = 0
    evictions: int = 0
    hits: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def record_hit(self) -> None:
        with self._lock:
            self.hits += 1

    def record_load(self) -> None:
        with self._lock:
            self.loads += 1

    def record_eviction(self) -> None:
        with self._lock:
            self.evictions += 1

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.loads
        return self.hits / total if total else 0.0

    def __getstate__(self) -> Dict[str, int]:
        """Picklable counter state (the lock is dropped and recreated on
        load) so stats can cross a shard process boundary intact."""
        with self._lock:
            return {"loads": self.loads, "evictions": self.evictions,
                    "hits": self.hits}

    def __setstate__(self, state: Dict[str, int]) -> None:
        self.loads = state["loads"]
        self.evictions = state["evictions"]
        self.hits = state["hits"]
        self._lock = threading.Lock()

    def as_dict(self) -> Dict[str, float]:
        """Point-in-time counter values for metrics export."""
        with self._lock:
            loads, evictions, hits = self.loads, self.evictions, self.hits
        total = hits + loads
        return {
            "loads": loads,
            "evictions": evictions,
            "hits": hits,
            "hit_rate": hits / total if total else 0.0,
        }


class TileStore:
    """Immutable sharded storage: one compact blob per non-empty tile."""

    def __init__(self, tile_size: float = 500.0) -> None:
        self.scheme = TileScheme(tile_size)
        self._blobs: Dict[TileId, bytes] = {}

    @staticmethod
    def build(hdmap: HDMap, tile_size: float = 500.0) -> "TileStore":
        """Shard ``hdmap`` into per-tile blobs.

        Elements spanning several tiles are replicated into each one they
        intersect (queries deduplicate by element id), so border elements
        are always found regardless of which tile a query lands in.
        """
        store = TileStore(tile_size)
        members: Dict[TileId, List[MapElement]] = {}
        for element in hdmap.elements():
            try:
                bounds = element.bounds()
            except NotImplementedError:
                continue  # regulatory elements are not spatial
            for tile in store.scheme.tiles_for_bounds(bounds):
                members.setdefault(tile, []).append(element)
        for tile, elements in members.items():
            shard = HDMap(f"{hdmap.name}@{tile}")
            for element in elements:
                shard.add(element)
            store._blobs[tile] = encode_map(shard)
        return store

    @staticmethod
    def from_blobs(blobs: Dict[TileId, bytes],
                   tile_size: float = 500.0) -> "TileStore":
        """A store over pre-encoded tile blobs (no re-partitioning).

        The cluster layer uses this to hand each shard process exactly
        its owned tiles' blobs — byte-identical to the slices of a
        full-map :meth:`build`, so ``GetTile`` payloads do not depend on
        which shard serves them.
        """
        store = TileStore(tile_size)
        store._blobs = dict(blobs)
        return store

    def tiles(self) -> List[TileId]:
        return sorted(self._blobs)

    def total_bytes(self) -> int:
        return sum(len(b) for b in self._blobs.values())

    def blob_bytes(self, tile: TileId) -> int:
        return len(self._blobs.get(tile, b""))

    def largest_tile(self) -> Optional[Tuple[TileId, int]]:
        """The heaviest shard — the serving hot spot to watch for."""
        if not self._blobs:
            return None
        tile = max(self._blobs, key=lambda t: len(self._blobs[t]))
        return tile, len(self._blobs[tile])

    def load_tile(self, tile: TileId) -> Optional[HDMap]:
        blob = self._blobs.get(tile)
        if blob is None:
            return None
        return decode_map(blob)


class StreamingMap:
    """A bounded-memory map view backed by a :class:`TileStore`.

    Queries hit only the tiles intersecting the query region; tiles are
    decoded on demand and evicted LRU once ``max_tiles`` are resident.
    """

    def __init__(self, store: TileStore, max_tiles: int = 9) -> None:
        if max_tiles < 1:
            raise StorageError("max_tiles must be >= 1")
        self.store = store
        self.max_tiles = max_tiles
        self._resident: "OrderedDict[TileId, Optional[HDMap]]" = OrderedDict()
        self.stats = TileStoreStats()

    # ------------------------------------------------------------------
    def _tile(self, tile: TileId) -> Optional[HDMap]:
        if tile in self._resident:
            self._resident.move_to_end(tile)
            self.stats.record_hit()
            return self._resident[tile]
        shard = self.store.load_tile(tile)
        self.stats.record_load()
        self._resident[tile] = shard
        while len(self._resident) > self.max_tiles:
            self._resident.popitem(last=False)
            self.stats.record_eviction()
        return shard

    def resident_tiles(self) -> List[TileId]:
        return list(self._resident)

    def resident_bytes(self) -> int:
        """Approximate working-set size: encoded size of resident tiles."""
        return sum(len(self.store._blobs.get(t, b""))
                   for t in self._resident)

    # ------------------------------------------------------------------
    def elements_in_radius(self, x: float, y: float, radius: float
                           ) -> List[MapElement]:
        out: List[MapElement] = []
        seen = set()
        bounds = (x - radius, y - radius, x + radius, y + radius)
        for tile in self.store.scheme.tiles_for_bounds(bounds):
            shard = self._tile(tile)
            if shard is None:
                continue
            for element in shard.elements_in_radius(x, y, radius):
                if element.id not in seen:
                    seen.add(element.id)
                    out.append(element)
        return out

    def landmarks_in_radius(self, x: float, y: float, radius: float
                            ) -> List[PointLandmark]:
        out: List[PointLandmark] = []
        seen = set()
        bounds = (x - radius, y - radius, x + radius, y + radius)
        for tile in self.store.scheme.tiles_for_bounds(bounds):
            shard = self._tile(tile)
            if shard is None:
                continue
            for lm in shard.landmarks_in_radius(x, y, radius):
                if lm.id not in seen:
                    seen.add(lm.id)
                    out.append(lm)
        return out

    def nearest_lane(self, x: float, y: float,
                     search_radius: float = 100.0) -> Tuple[Lane, float]:
        best: Optional[Lane] = None
        best_d = float("inf")
        point = np.array([x, y])
        for element in self.elements_in_radius(x, y, search_radius):
            if isinstance(element, Lane):
                d = element.centerline.distance_to(point)
                if d < best_d:
                    best, best_d = element, d
        if best is None:
            raise StorageError(
                f"no lane within {search_radius} m of ({x:.0f}, {y:.0f})")
        return best, best_d
