"""Surveyed localization techniques against the synthetic world."""

import numpy as np
import pytest

from repro.geometry.polyline import straight
from repro.geometry.transform import SE2
from repro.localization import (
    AdasFusionLocalizer,
    CooperativeLocalizer,
    HdmiLocalizer,
    LandmarkLocalizer,
    LaneMarkingLocalizer,
    LaneMatcher,
    LaneSurfaceFilter,
    MonocularLocalizer,
    SemanticAligner,
    associate_detections,
    detect_hrl,
    match_line_segments,
    rasterize_map,
    triangulate_pose,
)
from repro.localization.geometric import (
    LandmarkLayout,
    LayoutPattern,
    geometric_dilution,
    simulate_layout_error,
)
from repro.localization.hdmi_loc import observe_patch
from repro.localization.landmarks import RangeBearing
from repro.localization.lane_marking import extract_marking_points, hough_lines
from repro.localization.semantic import observe_semantics
from repro.sensors import Camera, LidarScanner, WheelOdometry
from repro.sensors.gnss import GnssFix
from repro.world import drive_route


@pytest.fixture(scope="module")
def hw_drive(highway):
    rng = np.random.default_rng(55)
    lane = next(iter(highway.lanes()))
    traj = drive_route(highway, lane.id, 800.0, rng)
    odo = WheelOdometry().measure(traj, rng)
    return traj, odo


class TestLaneMatcher:
    def test_match_on_lane(self, highway):
        lane = next(iter(highway.lanes()))
        s = 100.0
        pose = SE2(*lane.centerline.point_at(s), lane.centerline.heading_at(s))
        match = LaneMatcher(highway).match(pose)
        assert match is not None
        assert match.lane_id == lane.id
        assert match.integrity > 0.5

    def test_heading_disambiguates_direction(self, highway):
        lane = next(iter(highway.lanes()))
        s = 100.0
        base = lane.centerline.point_at(s)
        wrong_heading = lane.centerline.heading_at(s) + np.pi
        match = LaneMatcher(highway).match(SE2(*base, wrong_heading))
        # Opposite heading should match an opposite-direction lane.
        assert match is None or match.lane_id != lane.id

    def test_between_lanes_is_ambiguous(self, highway):
        lane = next(iter(highway.lanes()))
        s = 100.0
        base = lane.centerline.point_at(s)
        normal = lane.centerline.normal_at(s)
        # Stand on the divider between the two same-direction lanes (they
        # sit to the right of the first forward lane).
        pose = SE2(*(base - 1.85 * normal), lane.centerline.heading_at(s))
        match = LaneMatcher(highway).match(pose)
        assert match is not None
        assert match.integrity < 0.6

    def test_no_candidates_far_away(self, highway):
        match = LaneMatcher(highway).match(SE2(1e5, 1e5, 0.0))
        assert match is None


class TestLineSegmentMatching:
    def test_recovers_translation(self):
        ref = [(np.array([0.0, 0.0]), np.array([50.0, 0.0])),
               (np.array([0.0, 3.5]), np.array([50.0, 3.5])),
               (np.array([10.0, -5.0]), np.array([10.0, 10.0]))]
        shift = np.array([0.4, -0.6])
        obs = [(a + shift, b + shift) for a, b in ref]
        correction = match_line_segments(obs, ref)
        assert correction is not None
        # The operational contract: the correction maps observed midpoints
        # back onto the reference lines (point-to-line, so a residual
        # rotation along a line's direction is legitimate).
        for (a_o, b_o), (a_r, b_r) in zip(obs, ref):
            mid = correction.apply((a_o + b_o) / 2.0)
            direction = (b_r - a_r) / np.linalg.norm(b_r - a_r)
            normal = np.array([-direction[1], direction[0]])
            assert abs(float((mid - a_r) @ normal)) < 0.1

    def test_needs_two_segments(self):
        ref = [(np.array([0.0, 0.0]), np.array([50.0, 0.0]))]
        assert match_line_segments(ref, []) is None


class TestHrlPipeline:
    def test_detect_hrl_finds_poles(self, highway, rng):
        scanner = LidarScanner(dropout=0.0)
        lane = next(iter(highway.lanes()))
        pose = SE2(*lane.centerline.point_at(250.0),
                   lane.centerline.heading_at(250.0))
        scan = scanner.scan(highway, pose, rng)
        detections = detect_hrl(scan)
        assert detections
        pairs = associate_detections(detections, pose, highway)
        assert pairs

    def test_triangulation_accuracy(self, rng):
        from repro.core.elements import Pole
        from repro.core.hdmap import HDMap

        hdmap = HDMap("t")
        landmarks = [np.array([20.0, 10.0]), np.array([25.0, -12.0]),
                     np.array([-8.0, 15.0])]
        poles = [hdmap.create(Pole, position=p) for p in landmarks]
        truth = SE2(1.0, 2.0, 0.3)
        pairs = []
        for pole in poles:
            body = truth.inverse().apply(pole.position)
            pairs.append((RangeBearing(float(np.hypot(*body)),
                                       float(np.arctan2(body[1], body[0]))),
                          pole))
        est = triangulate_pose(pairs, SE2(0.0, 0.0, 0.0))
        assert est.distance_to(truth) < 1e-6

    def test_localizer_tracks_drive(self, highway, hw_drive, rng):
        traj, odo = hw_drive
        scanner = LidarScanner()
        loc = LandmarkLocalizer(highway, rng)
        p0 = traj.pose_at(traj.start_time)
        loc.initialize(SE2(p0.x + 1.0, p0.y - 1.0, p0.theta))
        errors = []
        for i, d in enumerate(odo[:150]):
            loc.predict(d.ds, d.dtheta)
            if i % 10 == 0:
                scan = scanner.scan(highway, traj.pose_at(d.t), rng)
                loc.update(detect_hrl(scan))
            errors.append(loc.estimate().distance_to(traj.pose_at(d.t)))
        assert float(np.median(errors[50:])) < 1.0


class TestGeometricAnalysis:
    def test_more_features_lower_dop(self, rng):
        few = LandmarkLayout.generate(LayoutPattern.RANDOM, 3, 30.0, rng)
        many = LandmarkLayout.generate(LayoutPattern.RANDOM, 20, 30.0, rng)
        assert geometric_dilution(many) < geometric_dilution(few)

    def test_clustered_worse_than_random(self, rng):
        random = LandmarkLayout.generate(LayoutPattern.RANDOM, 8, 30.0, rng)
        clustered = LandmarkLayout.generate(LayoutPattern.CLUSTERED, 8, 30.0, rng)
        assert geometric_dilution(clustered) > geometric_dilution(random)

    def test_monte_carlo_matches_dop_ordering(self, rng):
        random = LandmarkLayout.generate(LayoutPattern.RANDOM, 8, 30.0, rng)
        clustered = LandmarkLayout.generate(LayoutPattern.CLUSTERED, 8, 30.0, rng)
        e_random = simulate_layout_error(random, 0.1, rng)
        e_clustered = simulate_layout_error(clustered, 0.1, rng)
        assert e_clustered > e_random

    def test_needs_two_landmarks(self, rng):
        from repro.errors import LocalizationError

        with pytest.raises(LocalizationError):
            LandmarkLayout.generate(LayoutPattern.RANDOM, 1, 30.0, rng)


class TestLaneMarking:
    def test_extract_and_hough(self, highway, rng):
        scanner = LidarScanner(intensity_sigma=0.03)
        lane = next(iter(highway.lanes()))
        pose = SE2(*lane.centerline.point_at(300.0),
                   lane.centerline.heading_at(300.0))
        scan = scanner.scan(highway, pose, rng)
        points = extract_marking_points(scan)
        assert points.shape[0] > 10
        lines = hough_lines(points)
        assert lines
        # Nearest marking line should be within a lane half-width.
        offsets = sorted(abs(l.lateral_offset()) for l in lines)
        assert offsets[0] < 2.5

    def test_localizer_lateral_accuracy(self, highway, hw_drive, rng):
        traj, odo = hw_drive
        scanner = LidarScanner()
        loc = LaneMarkingLocalizer(highway, rng)
        p0 = traj.pose_at(traj.start_time)
        loc.initialize(SE2(p0.x + 0.8, p0.y + 0.8, p0.theta))
        lateral_errors = []
        for i, d in enumerate(odo[:120]):
            loc.predict(d.ds, d.dtheta)
            true_pose = traj.pose_at(d.t)
            if i % 5 == 0:
                scan = scanner.scan(highway, true_pose, rng)
                loc.update_markings(scan)
                loc.update_gnss(np.array([true_pose.x, true_pose.y]), 2.0)
            est = loc.estimate()
            body = true_pose.inverse().apply(np.array([est.x, est.y]))
            lateral_errors.append(abs(body[1]))
        assert float(np.median(lateral_errors[40:])) < 0.5


class TestHdmiLoc:
    def test_raster_storage_much_smaller_than_cloud(self, highway, rng):
        from repro.storage import build_pointcloud_map

        raster = rasterize_map(highway, resolution=0.25)
        cloud = build_pointcloud_map(highway, rng)
        assert raster.nbytes() < len(cloud.to_bytes())

    def test_tracks_submetre(self, highway, hw_drive):
        rng = np.random.default_rng(66)
        traj, odo = hw_drive
        raster = rasterize_map(highway, 0.25)
        loc = HdmiLocalizer(raster, rng)
        p0 = traj.pose_at(traj.start_time)
        loc.initialize(SE2(p0.x + 1.5, p0.y + 1.0, p0.theta))
        errors = []
        for i, d in enumerate(odo[:200]):
            loc.predict(d.ds, d.dtheta)
            if i % 2 == 0:
                patch = observe_patch(highway, traj.pose_at(d.t), rng)
                loc.update(patch)
            errors.append(loc.estimate().distance_to(traj.pose_at(d.t)))
        assert float(np.median(errors[80:])) < 1.0


class TestMonocularAndAdas:
    def test_mlvhm_beats_dead_reckoning(self, highway, hw_drive):
        rng = np.random.default_rng(77)
        traj, _ = hw_drive
        # MLVHM assumes calibrated vehicle odometry: an uncalibrated 1 %
        # wheel-scale bias is a correlated error its EKF cannot absorb.
        odo = WheelOdometry(scale_sigma=0.002).measure(traj, rng)
        camera = Camera()
        p0 = traj.pose_at(traj.start_time)
        start = SE2(p0.x + 1.0, p0.y - 0.5, p0.theta)
        loc = MonocularLocalizer(highway, start)
        dr = SE2(start.x, start.y, start.theta)
        errors, dr_errors = [], []
        for i, d in enumerate(odo[:200]):
            loc.predict(d.ds, d.dtheta)
            mid = dr.theta + d.dtheta / 2
            dr = SE2(dr.x + d.ds * np.cos(mid), dr.y + d.ds * np.sin(mid),
                     dr.theta + d.dtheta)
            true_pose = traj.pose_at(d.t)
            if i % 5 == 0:
                obs = camera.observe_lanes(highway, true_pose, rng, t=d.t)
                if obs:
                    loc.update_lane(obs)
                dets = camera.observe_signs(highway, true_pose, rng, t=d.t)
                loc.update_signs(dets)
            if i % 20 == 0:
                # Low-cost commercial GNSS keeps the longitudinal bounded
                # between sign encounters (signs are 200 m apart here).
                loc.update_gnss(np.array([true_pose.x, true_pose.y])
                                + rng.normal(0, 2.0, 2), 2.5)
            errors.append(loc.pose.distance_to(true_pose))
            dr_errors.append(dr.distance_to(true_pose))
        assert np.median(errors[100:]) < np.median(dr_errors[100:])
        assert np.median(errors[100:]) < 2.0

    def test_adas_gates_suspend_bad_stream(self, highway):
        from repro.localization.adas import GateMonitor

        monitor = GateMonitor(fail_limit=2, recover_after=3)
        assert monitor.allowed("gnss")
        monitor.report("gnss", False)
        monitor.report("gnss", False)
        assert not monitor.allowed("gnss")  # suspended
        assert not monitor.allowed("gnss")
        assert not monitor.allowed("gnss")
        assert monitor.allowed("gnss")  # recovered

    def test_adas_fusion_converges(self, highway, hw_drive):
        rng = np.random.default_rng(88)
        traj, odo = hw_drive
        camera = Camera()
        p0 = traj.pose_at(traj.start_time)
        loc = AdasFusionLocalizer(highway, SE2(p0.x + 2.0, p0.y, p0.theta))
        errors = []
        for i, d in enumerate(odo[:200]):
            loc.predict(d.ds, d.dtheta)
            true_pose = traj.pose_at(d.t)
            if i % 10 == 0:
                fix = GnssFix(d.t, np.array([true_pose.x, true_pose.y])
                              + rng.normal(0, 0.8, 2), 0.8)
                loc.update_gnss(fix)
            if i % 5 == 0:
                obs = camera.observe_lanes(highway, true_pose, rng, t=d.t)
                if obs:
                    loc.update_lane(obs)
                dets = camera.observe_signs(highway, true_pose, rng, t=d.t)
                loc.update_landmarks(dets)
            errors.append(loc.pose.distance_to(true_pose))
        # Bounded by GNSS rate + odometry noise at highway speed; the gate
        # keeps it stable and well under raw automotive GNSS error.
        assert float(np.median(errors[100:])) < 1.8


class TestSurfaceFilter:
    def test_particles_stay_on_road(self, highway, hw_drive):
        rng = np.random.default_rng(99)
        traj, odo = hw_drive
        pf = LaneSurfaceFilter(highway, rng, n_particles=120)
        p0 = traj.pose_at(traj.start_time)
        pf.initialize(p0)
        for i, d in enumerate(odo[:80]):
            pf.predict(d.ds, d.dtheta)
            true_pose = traj.pose_at(d.t)
            if i % 10 == 0:
                pf.update_gnss(np.array([true_pose.x, true_pose.y]), 1.5)
        # Most particles must sit within a lane corridor.
        on_road = 0
        for state in pf.filter.states:
            lane, dist = highway.nearest_lane(float(state[0]), float(state[1]))
            on_road += dist <= lane.width
        assert on_road / pf.filter.n > 0.8

    def test_lane_vote_matches_truth(self, highway, hw_drive):
        rng = np.random.default_rng(111)
        traj, odo = hw_drive
        pf = LaneSurfaceFilter(highway, rng, n_particles=120)
        p0 = traj.pose_at(traj.start_time)
        pf.initialize(p0, sigma_xy=1.0)
        for i, d in enumerate(odo[:50]):
            pf.predict(d.ds, d.dtheta)
            true_pose = traj.pose_at(d.t)
            if i % 5 == 0:
                pf.update_gnss(np.array([true_pose.x, true_pose.y]), 1.0)
        vote = pf.lane_vote()
        true_lane, _ = highway.nearest_lane(traj.pose_at(odo[49].t).x,
                                            traj.pose_at(odo[49].t).y)
        assert vote == true_lane.id


class TestCooperative:
    def test_ci_never_overconfident(self):
        from repro.localization.cooperative import covariance_intersection

        mean, cov = covariance_intersection(
            np.zeros(2), np.eye(2), np.zeros(2), np.eye(2))
        # Fusing two unit-covariance estimates with unknown correlation
        # cannot drop below the tighter input.
        assert np.trace(cov) >= 1.9

    def test_bias_estimator_removes_bias(self, rng):
        from repro.localization.cooperative import BiasEstimator

        est = BiasEstimator()
        bias = np.array([1.2, -0.8])
        for _ in range(30):
            gnss = np.array([10.0, 10.0]) + bias + rng.normal(0, 0.05, 2)
            est.observe(gnss, np.array([5.0, 0.0]), np.array([15.0, 10.0]))
        corrected = est.correct(np.array([10.0, 10.0]) + bias)
        assert np.hypot(*(corrected - [10.0, 10.0])) < 0.2

    def test_cooperation_beats_standalone(self, rng):
        truth = [np.array([0.0, 0.0]), np.array([20.0, 0.0]),
                 np.array([40.0, 0.0])]
        biases = [rng.normal(0, 1.5, 2) for _ in truth]
        solo_err = []
        coop = [CooperativeLocalizer(i, t + rng.normal(0, 2.0, 2),
                                     use_bias_estimator=False)
                for i, t in enumerate(truth)]
        for step in range(25):
            for i, loc in enumerate(coop):
                fix = GnssFix(step * 1.0,
                              truth[i] + biases[i] + rng.normal(0, 0.5, 2),
                              1.5)
                loc.update_gnss(fix)
            # Pairwise LDM exchange with accurate relative ranging.
            for i, sender in enumerate(coop):
                for j, receiver in enumerate(coop):
                    if i == j:
                        continue
                    rel = truth[j] - truth[i]
                    msg = sender.broadcast(rel, 0.2, rng, j)
                    receiver.receive(msg)
        coop_err = float(np.mean([loc.error_to(truth[i])
                                  for i, loc in enumerate(coop)]))
        # Standalone baseline: same fixes, no exchange.
        solo = [CooperativeLocalizer(i, t + rng.normal(0, 2.0, 2),
                                     use_bias_estimator=False)
                for i, t in enumerate(truth)]
        for step in range(25):
            for i, loc in enumerate(solo):
                fix = GnssFix(step * 1.0,
                              truth[i] + biases[i] + rng.normal(0, 0.5, 2),
                              1.5)
                loc.update_gnss(fix)
        solo_err = float(np.mean([loc.error_to(truth[i])
                                  for i, loc in enumerate(solo)]))
        assert coop_err <= solo_err * 1.1  # cooperation should not hurt


class TestSemantic:
    def test_initialize_recovers_from_coarse(self, highway):
        rng = np.random.default_rng(13)
        lane = next(iter(highway.lanes()))
        pose = SE2(*lane.centerline.point_at(400.0),
                   lane.centerline.heading_at(400.0))
        obs = observe_semantics(highway, pose, rng, radius=70.0,
                                detection_prob=1.0)
        assert obs.points.shape[0] >= 3  # poles every 80 m guarantee this
        coarse = SE2(pose.x + 5.0, pose.y - 4.0, pose.theta + 0.05)
        aligner = SemanticAligner(highway)
        est = aligner.initialize(coarse, obs)
        assert est.distance_to(pose) < 1.0
        assert est.distance_to(pose) < coarse.distance_to(pose)

    def test_refine_improves(self, highway):
        rng = np.random.default_rng(14)
        lane = next(iter(highway.lanes()))
        pose = SE2(*lane.centerline.point_at(500.0),
                   lane.centerline.heading_at(500.0))
        obs = observe_semantics(highway, pose, rng, radius=70.0,
                                detection_prob=1.0)
        assert obs.points.shape[0] >= 3
        rough = SE2(pose.x + 1.0, pose.y + 1.0, pose.theta)
        refined = SemanticAligner(highway).refine(rough, obs)
        assert refined.distance_to(pose) < rough.distance_to(pose)
