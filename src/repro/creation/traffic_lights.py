"""Map-prior traffic-light recognition (Hirabayashi et al. [33]).

Three parts, as in the paper's Autoware implementation: (1) the HD map
supplies each light's 3-D position, so detection is restricted to a small
region of interest around its projection — killing clutter false
positives; (2) a detector (surrogate with the SSD's operating point)
classifies the colour state; (3) an *inter-frame filter* majority-votes
the state over a sliding window, suppressing single-frame flicker.

Scored as average precision of (detection, correct colour) against ground
truth — the paper reports ~97 % with the map versus much lower without.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.elements import LightState, TrafficLight
from repro.core.hdmap import HDMap
from repro.core.ids import ElementId
from repro.eval.metrics import average_precision
from repro.geometry.transform import SE2
from repro.geometry.vec import wrap_angle
from repro.sensors.camera import Camera, LightObservation
from repro.world.traffic import Trajectory


@dataclass
class RecognitionEvent:
    """One per-frame recognition: light id (if resolved), state, score."""

    t: float
    light_id: Optional[ElementId]
    state: LightState
    score: float
    correct: bool


@dataclass
class RecognitionResult:
    events: List[RecognitionEvent]
    average_precision: float
    n_frames: int


class InterFrameFilter:
    """Majority vote of the recent states per light."""

    def __init__(self, window: int = 5) -> None:
        self.window = window
        self._history: Dict[ElementId, Deque[LightState]] = defaultdict(
            lambda: deque(maxlen=self.window))

    def push(self, light_id: ElementId, state: LightState) -> LightState:
        history = self._history[light_id]
        history.append(state)
        counts: Dict[LightState, int] = {}
        for s in history:
            counts[s] = counts.get(s, 0) + 1
        return max(counts.items(), key=lambda kv: kv[1])[0]


class TrafficLightRecognizer:
    """Recognition with (or without) the HD-map ROI prior."""

    def __init__(self, hdmap: Optional[HDMap], camera: Optional[Camera] = None,
                 roi_bearing: float = np.radians(4.0),
                 roi_range_rel: float = 0.25,
                 use_interframe_filter: bool = True) -> None:
        self.map = hdmap  # None = no-map baseline
        self.camera = camera if camera is not None else Camera(
            detection_prob=0.93, false_positive_rate=0.5,
            light_state_accuracy=0.93)
        self.roi_bearing = roi_bearing
        self.roi_range_rel = roi_range_rel
        self.filter = InterFrameFilter() if use_interframe_filter else None

    # ------------------------------------------------------------------
    def _expected_lights(self, pose: SE2) -> List[TrafficLight]:
        if self.map is None:
            return []
        return [lm for lm in self.map.landmarks_in_radius(
                    pose.x, pose.y, self.camera.max_range)
                if isinstance(lm, TrafficLight)
                and self.camera.in_view(pose, lm.position)]

    def process_frame(self, reality: HDMap, pose: SE2, t: float,
                      rng: np.random.Generator) -> List[RecognitionEvent]:
        observations = self.camera.observe_lights(reality, pose, rng, t=t)
        # Clutter: phantom light observations (brake lights, reflections).
        n_clutter = rng.poisson(0.4)
        states = [LightState.RED, LightState.YELLOW, LightState.GREEN]
        for _ in range(int(n_clutter)):
            observations.append(LightObservation(
                t=t,
                bearing=float(rng.uniform(-self.camera.fov / 2,
                                          self.camera.fov / 2)),
                range=float(rng.uniform(8.0, self.camera.max_range)),
                state=states[int(rng.integers(0, 3))],
                true_id=None,
            ))

        expected = self._expected_lights(pose)
        events: List[RecognitionEvent] = []
        for obs in observations:
            light_id: Optional[ElementId] = None
            # Detector-confidence model (the SSD operating point): phantom
            # detections look less light-like and score lower on average.
            if obs.true_id is None:
                score = float(rng.uniform(0.3, 0.75))
            else:
                score = float(rng.uniform(0.6, 0.98))
            if self.map is not None:
                match = self._match_roi(pose, obs, expected)
                if match is None:
                    continue  # outside every ROI: suppressed by the prior
                light_id = match.id
                score = min(1.0, score + 0.25)  # ROI-confirmed confidence
            else:
                light_id = obs.true_id
            state = obs.state
            if self.filter is not None and light_id is not None:
                state = self.filter.push(light_id, state)
            correct = False
            if obs.true_id is not None and light_id == obs.true_id:
                true_light = reality.get(obs.true_id)
                assert isinstance(true_light, TrafficLight)
                correct = state is true_light.state_at(t)
            events.append(RecognitionEvent(
                t=t, light_id=light_id, state=state, score=score,
                correct=correct,
            ))
        return events

    def _match_roi(self, pose: SE2, obs: LightObservation,
                   expected: Sequence[TrafficLight]) -> Optional[TrafficLight]:
        best = None
        best_cost = 1.0
        for light in expected:
            rel = light.position - np.array([pose.x, pose.y])
            bearing = wrap_angle(float(np.arctan2(rel[1], rel[0])) - pose.theta)
            rng_ = float(np.hypot(*rel))
            db = abs(wrap_angle(obs.bearing - bearing))
            dr = abs(obs.range - rng_) / max(rng_, 1.0)
            if db <= self.roi_bearing and dr <= self.roi_range_rel:
                cost = db / self.roi_bearing + dr / self.roi_range_rel
                if cost < best_cost * 2:
                    best, best_cost = light, cost
        return best

    # ------------------------------------------------------------------
    def run(self, reality: HDMap, trajectory: Trajectory,
            rng: np.random.Generator, frame_dt: float = 0.5
            ) -> RecognitionResult:
        events: List[RecognitionEvent] = []
        t = trajectory.start_time
        n_frames = 0
        while t <= trajectory.end_time:
            pose = trajectory.pose_at(t)
            events.extend(self.process_frame(reality, pose, t, rng))
            t += frame_dt
            n_frames += 1
        ap = average_precision([e.score for e in events],
                               [e.correct for e in events])
        return RecognitionResult(events=events, average_precision=ap,
                                 n_frames=n_frames)
