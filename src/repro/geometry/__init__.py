"""Geometric substrate: vectors, transforms, polylines, Frenet frames,
geodesy, rasterization, and spatial indexing.

Everything in the library that touches coordinates goes through this
subpackage, so HD-map elements, sensors, and estimators share one set of
conventions:

- 2-D east-north planar coordinates in metres (a local ENU frame),
- headings in radians, counter-clockwise, zero along +x (east),
- polylines as ``(N, 2)`` float arrays ordered along the direction of travel.
"""

from repro.geometry.vec import (
    angle_diff,
    heading_to_unit,
    norm,
    perp_left,
    rotate2d,
    unit,
    wrap_angle,
)
from repro.geometry.transform import SE2, SE3
from repro.geometry.polyline import Polyline
from repro.geometry.frenet import FrenetFrame
from repro.geometry.geodesy import LocalProjector, WGS84_A, WGS84_F
from repro.geometry.raster import BitmaskRaster, RasterGrid
from repro.geometry.index import GridIndex

__all__ = [
    "SE2",
    "SE3",
    "Polyline",
    "FrenetFrame",
    "LocalProjector",
    "WGS84_A",
    "WGS84_F",
    "BitmaskRaster",
    "RasterGrid",
    "GridIndex",
    "angle_diff",
    "heading_to_unit",
    "norm",
    "perp_left",
    "rotate2d",
    "unit",
    "wrap_angle",
]
