"""E1 — Dabeer et al. [29]: crowdsourced mapping with corrective feedback.

Paper: mean absolute accuracy below 20 cm from cost-effective sensors.
Shape: fleet triangulation + feedback reaches the sub-half-metre band,
beats a single vehicle clearly, and improves with fleet size.
"""

import numpy as np
from conftest import once

from repro.creation import CrowdMapper
from repro.eval import ResultTable
from repro.world import drive_route, generate_highway


def _experiment(rng):
    hw = generate_highway(rng, length=2500.0, sign_spacing=150.0)
    lane = next(iter(hw.lanes()))
    mapper = CrowdMapper()
    results = {}
    for fleet in (1, 10, 40):
        contribs = [
            mapper.collect(hw, drive_route(hw, lane.id, 2400.0, rng), v, rng)
            for v in range(fleet)
        ]
        results[fleet] = mapper.fuse(contribs, hw)
    return results


def test_e01_crowdsourced_mapping(benchmark, rng):
    results = once(benchmark, _experiment, rng)

    table = ResultTable("E1", "crowdsourced sign mapping [29]")
    solo = results[1].error.mean
    fleet = results[40].error.mean
    table.add("fleet (40) mean error (m)", "< 0.20", f"{fleet:.3f}",
              ok=fleet < 0.5)
    table.add("single vehicle (m)", "(worse)", f"{solo:.3f}",
              ok=solo > fleet)
    mid = results[10].error.mean
    table.add("fleet scaling", "monotone", f"1:{solo:.2f} 10:{mid:.2f} "
              f"40:{fleet:.2f}", ok=fleet <= mid <= solo * 1.2)
    table.add("signs matched", "all", f"{results[40].matched}",
              ok=results[40].matched >= 10)
    table.print()
    assert table.all_ok()
