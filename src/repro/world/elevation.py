"""Elevation profiles along a route.

Predictive cruise control (Chu et al. [61]) exploits the slope information
an HD map carries. ``ElevationProfile`` models height as a function of
station along a route; the synthetic generator produces rolling-terrain
profiles with controllable hill wavelength and grade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class ElevationProfile:
    """Piecewise-linear elevation vs station (metres vs metres)."""

    stations: np.ndarray
    heights: np.ndarray

    def __post_init__(self) -> None:
        self.stations = np.asarray(self.stations, dtype=float)
        self.heights = np.asarray(self.heights, dtype=float)
        if self.stations.ndim != 1 or self.stations.shape != self.heights.shape:
            raise ValueError("stations and heights must be matching 1-D arrays")
        if self.stations.size < 2:
            raise ValueError("profile needs at least two samples")
        if np.any(np.diff(self.stations) <= 0):
            raise ValueError("stations must be strictly increasing")

    @property
    def length(self) -> float:
        return float(self.stations[-1] - self.stations[0])

    def height_at(self, s: float) -> float:
        return float(np.interp(s, self.stations, self.heights))

    def slope_at(self, s: float, window: float = 10.0) -> float:
        """Grade (rise/run) around station ``s``."""
        s0 = max(float(self.stations[0]), s - window / 2.0)
        s1 = min(float(self.stations[-1]), s + window / 2.0)
        if s1 - s0 < 1e-9:
            return 0.0
        return (self.height_at(s1) - self.height_at(s0)) / (s1 - s0)

    def slopes(self, stations: np.ndarray, window: float = 10.0) -> np.ndarray:
        return np.array([self.slope_at(float(s), window) for s in stations])

    @staticmethod
    def flat(length: float) -> "ElevationProfile":
        return ElevationProfile(np.array([0.0, length]), np.zeros(2))

    @staticmethod
    def rolling(length: float, rng: np.random.Generator,
                max_grade: float = 0.05, wavelength: float = 2000.0,
                sample_spacing: float = 50.0) -> "ElevationProfile":
        """Random rolling terrain: sum of a few sinusoids, grade-limited.

        ``max_grade`` bounds the steepest slope (5 % default, a typical
        motorway design limit).
        """
        n = max(3, int(np.ceil(length / sample_spacing)) + 1)
        s = np.linspace(0.0, length, n)
        h = np.zeros(n)
        for k in range(1, 4):
            wl = wavelength / k
            amp = (max_grade * wl / (2.0 * np.pi)) * float(rng.uniform(0.2, 0.5))
            phase = float(rng.uniform(0, 2 * np.pi))
            h += amp * np.sin(2 * np.pi * s / wl + phase)
        return ElevationProfile(s, h)
