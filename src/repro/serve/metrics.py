"""Serving metrics: thread-safe counters and latency histograms.

The primitives (:class:`Counter`, :class:`Gauge`,
:class:`LatencyHistogram`, and the shared bucket bounds) live in
:mod:`repro.obs.metrics` — the unified observability layer — and are
re-exported here for backward compatibility; this module keeps the
serving-specific :class:`ServiceMetrics` aggregate. The service keeps
one :class:`LatencyHistogram` and a counter per request kind plus global
admission counters, which together give the per-request-type latency
distribution, QPS, and error/shed rates of a run, and the whole
aggregate can be registered into a
:class:`~repro.obs.metrics.MetricsRegistry` under canonical
``serve.*`` names via :meth:`ServiceMetrics.register_into`.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from repro.obs.metrics import (  # noqa: F401  (compatibility re-exports)
    DEFAULT_BOUNDS,
    FRESHNESS_BOUNDS,
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
)


class ServiceMetrics:
    """Per-request-type latency/outcome metrics plus admission counters.

    ``freshness`` is the map-freshness lag histogram: the wall time from a
    fleet observation entering the ingestion pipeline to the moment the
    resulting patch is visible to ``ChangesSince`` on this service. The
    ingest layer feeds it via :meth:`record_freshness`; it stays empty for
    services with no live ingestion behind them.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._latency: Dict[str, LatencyHistogram] = {}
        self._outcomes: Dict[Tuple[str, str], Counter] = {}
        self.rejected = Counter()   # backpressure at submit
        self.shed = Counter()       # stale low-priority dropped by workers
        self.errors = Counter()
        self.freshness = LatencyHistogram(FRESHNESS_BOUNDS)
        self._cache = None

    def attach_cache(self, cache) -> None:
        """Surface a tile cache's counters in :meth:`snapshot`."""
        self._cache = cache

    # Pickling crosses the shard RPC boundary: locks are rebuilt on the
    # receiving side and the attached cache (live object, process-local)
    # is dropped — only the counters/histograms travel.
    def __getstate__(self) -> Dict[str, object]:
        with self._lock:
            return {
                "latency": dict(self._latency),
                "outcomes": dict(self._outcomes),
                "rejected": self.rejected,
                "shed": self.shed,
                "errors": self.errors,
                "freshness": self.freshness,
            }

    def __setstate__(self, state: Dict[str, object]) -> None:
        self._lock = threading.Lock()
        self._latency = dict(state["latency"])  # type: ignore[arg-type]
        self._outcomes = dict(state["outcomes"])  # type: ignore[arg-type]
        self.rejected = state["rejected"]
        self.shed = state["shed"]
        self.errors = state["errors"]
        self.freshness = state["freshness"]
        self._cache = None

    def record_freshness(self, lag_s: float) -> None:
        """Record one observation-enqueue -> served-version lag."""
        self.freshness.record(lag_s)

    def _histogram(self, kind: str) -> LatencyHistogram:
        with self._lock:
            hist = self._latency.get(kind)
            if hist is None:
                hist = self._latency[kind] = LatencyHistogram()
            return hist

    def _outcome(self, kind: str, status: str) -> Counter:
        with self._lock:
            counter = self._outcomes.get((kind, status))
            if counter is None:
                counter = self._outcomes[(kind, status)] = Counter()
            return counter

    def record(self, kind: str, status: str, latency_s: float) -> None:
        self._outcome(kind, status).add()
        if status == "ok":
            self._histogram(kind).record(latency_s)
        elif status == "error":
            self.errors.add()
        elif status == "shed":
            self.shed.add()
        elif status == "rejected":
            self.rejected.add()

    def latency_histograms(self) -> Dict[str, LatencyHistogram]:
        """Live per-request-kind latency histograms (plus ``freshness``).

        Histograms are picklable, so a shard process can ship this dict
        over the cluster RPC and the router can fold each one into its
        cluster-wide aggregate with :meth:`LatencyHistogram.merge`.
        """
        with self._lock:
            out = dict(self._latency)
        out["freshness"] = self.freshness
        return out

    def outcome_counts(self) -> Dict[str, int]:
        """``{"<kind>.<status>": count}`` for cross-process aggregation."""
        with self._lock:
            return {f"{kind}.{status}": counter.value
                    for (kind, status), counter in self._outcomes.items()}

    def completed(self) -> int:
        """Requests answered OK across all kinds."""
        with self._lock:
            counters = [c for (_, status), c in self._outcomes.items()
                        if status == "ok"]
        return sum(c.value for c in counters)

    def throughput(self, elapsed_s: float) -> float:
        """OK responses per second over ``elapsed_s``."""
        return self.completed() / elapsed_s if elapsed_s > 0 else 0.0

    def as_dict(self) -> Dict[str, object]:
        with self._lock:
            kinds = sorted(self._latency)
            outcomes = {f"{kind}.{status}": counter.value
                        for (kind, status), counter in
                        sorted(self._outcomes.items())}
        out: Dict[str, object] = {
            "latency": {kind: self._histogram(kind).as_dict()
                        for kind in kinds},
            "outcomes": outcomes,
            "rejected": self.rejected.value,
            "shed": self.shed.value,
            "errors": self.errors.value,
        }
        if self.freshness.count:
            out["freshness"] = self.freshness.snapshot()
        return out

    def snapshot(self) -> Dict[str, object]:
        """as_dict() plus the attached cache's counters.

        The ``cache`` section carries the serving cache's decode counters
        and the serialization-memo ``serialization_hits`` /
        ``serialization_builds`` split, making encoded-payload memoization
        observable per service.
        """
        out = self.as_dict()
        if self._cache is not None:
            out["cache"] = self._cache.as_dict()
        return out

    # -- unified registry ----------------------------------------------
    def register_into(self, registry: MetricsRegistry,
                      prefix: str = "serve") -> None:
        """Register this aggregate under canonical ``<prefix>.*`` names.

        Static admission counters and the freshness histogram register
        directly; per-request-kind latency histograms and outcome
        counters (minted lazily on first request of a kind) and the
        attached cache's counters are contributed through a collector,
        so the export always reflects the kinds actually served:

        - ``serve.rejected`` / ``serve.shed`` / ``serve.errors``
        - ``serve.freshness``
        - ``serve.latency.<kind>`` (histogram per request kind)
        - ``serve.requests.<kind>.<status>`` (outcome counters)
        - ``serve.cache.hits|misses|evictions|serialization_hits|...``
        """
        registry.register(f"{prefix}.rejected", self.rejected)
        registry.register(f"{prefix}.shed", self.shed)
        registry.register(f"{prefix}.errors", self.errors)
        registry.register(f"{prefix}.freshness", self.freshness)

        def collect() -> Dict[str, object]:
            with self._lock:
                latency = dict(self._latency)
                outcomes = dict(self._outcomes)
            out: Dict[str, object] = {}
            for kind, hist in latency.items():
                out[f"{prefix}.latency.{kind}"] = hist
            for (kind, status), counter in outcomes.items():
                out[f"{prefix}.requests.{kind}.{status}"] = counter
            if self._cache is not None:
                for name, value in self._cache.as_dict().items():
                    out[f"{prefix}.cache.{name}"] = value
            return out

        registry.register_collector(collect)
