"""Decentralized cooperative localization with local dynamic maps
(Hery et al. [55]).

Vehicles exchange LDM messages — their pose estimate, covariance, and
relative observations of each other. Because exchanged estimates share
error sources, naive fusion is overconfident; covariance intersection
handles the unknown correlation, and a GNSS-bias estimator anchored on
geo-referenced HD-map features removes the common-mode bias.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.hdmap import HDMap
from repro.geometry.transform import SE2
from repro.localization.ekf import PoseEKF
from repro.sensors.gnss import GnssFix


@dataclass(frozen=True)
class LdmMessage:
    """One broadcast: sender's estimate + its observation of the receiver."""

    sender_id: int
    position: np.ndarray  # sender's own position estimate
    covariance: np.ndarray  # (2, 2)
    relative_to_receiver: np.ndarray  # receiver position - sender position, measured
    relative_sigma: float


def covariance_intersection(mean_a: np.ndarray, cov_a: np.ndarray,
                            mean_b: np.ndarray, cov_b: np.ndarray,
                            omega_steps: int = 11
                            ) -> Tuple[np.ndarray, np.ndarray]:
    """CI fusion of two estimates with unknown cross-correlation.

    Chooses the convex weight minimizing the fused covariance trace.
    """
    best = None
    for omega in np.linspace(0.05, 0.95, omega_steps):
        info = omega * np.linalg.inv(cov_a) + (1 - omega) * np.linalg.inv(cov_b)
        cov = np.linalg.inv(info)
        mean = cov @ (omega * np.linalg.solve(cov_a, mean_a)
                      + (1 - omega) * np.linalg.solve(cov_b, mean_b))
        trace = float(np.trace(cov))
        if best is None or trace < best[0]:
            best = (trace, mean, cov)
    assert best is not None
    return best[1], best[2]


class BiasEstimator:
    """Estimates the common GNSS bias from geo-referenced map features.

    Whenever the vehicle observes a mapped landmark (known world position)
    at a measured body-frame offset, the discrepancy between
    ``gnss_position + offset`` and the landmark's map position is a direct
    sample of the GNSS bias; an exponential average tracks it.
    """

    def __init__(self, alpha: float = 0.15) -> None:
        self.alpha = alpha
        self.bias = np.zeros(2)
        self.n_samples = 0

    def observe(self, gnss_position: np.ndarray, measured_world_offset: np.ndarray,
                landmark_position: np.ndarray) -> None:
        sample = (gnss_position + measured_world_offset) - landmark_position
        if self.n_samples == 0:
            self.bias = sample.astype(float)
        else:
            self.bias = (1 - self.alpha) * self.bias + self.alpha * sample
        self.n_samples += 1

    def correct(self, position: np.ndarray) -> np.ndarray:
        return position - self.bias


class CooperativeLocalizer:
    """One vehicle's cooperative position estimator."""

    def __init__(self, vehicle_id: int, initial: np.ndarray,
                 sigma: float = 2.0, use_bias_estimator: bool = True) -> None:
        self.vehicle_id = vehicle_id
        self.mean = np.asarray(initial, dtype=float)
        self.cov = np.eye(2) * sigma**2
        self.bias_estimator = BiasEstimator() if use_bias_estimator else None

    # ------------------------------------------------------------------
    def update_gnss(self, fix: GnssFix) -> None:
        position = fix.position
        if self.bias_estimator is not None:
            position = self.bias_estimator.correct(position)
        R = np.eye(2) * fix.sigma**2
        S = self.cov + R
        K = self.cov @ np.linalg.inv(S)
        self.mean = self.mean + K @ (position - self.mean)
        self.cov = (np.eye(2) - K) @ self.cov
        self.cov = (self.cov + self.cov.T) / 2.0

    def observe_map_feature(self, raw_gnss: np.ndarray,
                            measured_world_offset: np.ndarray,
                            landmark_position: np.ndarray) -> None:
        if self.bias_estimator is not None:
            self.bias_estimator.observe(raw_gnss, measured_world_offset,
                                        landmark_position)

    def receive(self, message: LdmMessage) -> None:
        """Fuse a neighbour's estimate of *our* position via CI."""
        remote_mean = message.position + message.relative_to_receiver
        remote_cov = message.covariance + np.eye(2) * message.relative_sigma**2
        self.mean, self.cov = covariance_intersection(
            self.mean, self.cov, remote_mean, remote_cov)

    def broadcast(self, true_relative: np.ndarray, relative_sigma: float,
                  rng: np.random.Generator, receiver_id: int) -> LdmMessage:
        """Create the message this vehicle sends about a neighbour."""
        measured = true_relative + rng.normal(0.0, relative_sigma, size=2)
        return LdmMessage(
            sender_id=self.vehicle_id,
            position=self.mean.copy(),
            covariance=self.cov.copy(),
            relative_to_receiver=measured,
            relative_sigma=relative_sigma,
        )

    def predict(self, delta: np.ndarray, sigma: float) -> None:
        self.mean = self.mean + np.asarray(delta, dtype=float)
        self.cov = self.cov + np.eye(2) * sigma**2

    def error_to(self, truth: np.ndarray) -> float:
        return float(np.hypot(*(self.mean - truth)))
