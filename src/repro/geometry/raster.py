"""Raster grids over a metric extent.

Two raster types back several surveyed systems:

- :class:`RasterGrid` — a float grid used for occupancy maps, aerial-image
  surrogates (Mátyus et al. [27]), and Diff-Net-style rasterized map
  comparison [46].
- :class:`BitmaskRaster` — an 8-bit-per-cell label raster where each *bit*
  marks one element class, the exact representation HDMI-Loc [23] uses to
  shrink vector maps into matchable top-view images.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.errors import GeometryError
from repro.geometry.polyline import Polyline


@dataclass(frozen=True)
class GridSpec:
    """Geometry of a raster: origin (min corner), resolution, and shape."""

    origin_x: float
    origin_y: float
    resolution: float  # metres per cell
    width: int  # cells in x
    height: int  # cells in y

    @staticmethod
    def from_bounds(bounds: Tuple[float, float, float, float],
                    resolution: float, padding: float = 0.0) -> "GridSpec":
        min_x, min_y, max_x, max_y = bounds
        min_x -= padding
        min_y -= padding
        max_x += padding
        max_y += padding
        if resolution <= 0:
            raise GeometryError("resolution must be positive")
        width = max(1, int(np.ceil((max_x - min_x) / resolution)))
        height = max(1, int(np.ceil((max_y - min_y) / resolution)))
        return GridSpec(min_x, min_y, resolution, width, height)

    def world_to_cell(self, points: np.ndarray) -> np.ndarray:
        """Map world points to integer ``(col, row)`` cells (may be out of range)."""
        pts = np.asarray(points, dtype=float)
        cols = np.floor((pts[..., 0] - self.origin_x) / self.resolution).astype(int)
        rows = np.floor((pts[..., 1] - self.origin_y) / self.resolution).astype(int)
        return np.stack([cols, rows], axis=-1)

    def cell_to_world(self, cells: np.ndarray) -> np.ndarray:
        """Centre of each ``(col, row)`` cell in world coordinates."""
        c = np.asarray(cells, dtype=float)
        x = self.origin_x + (c[..., 0] + 0.5) * self.resolution
        y = self.origin_y + (c[..., 1] + 0.5) * self.resolution
        return np.stack([x, y], axis=-1)

    def in_range(self, cells: np.ndarray) -> np.ndarray:
        c = np.asarray(cells)
        return (
            (c[..., 0] >= 0)
            & (c[..., 0] < self.width)
            & (c[..., 1] >= 0)
            & (c[..., 1] < self.height)
        )


class RasterGrid:
    """A float-valued raster over a metric extent."""

    def __init__(self, spec: GridSpec, fill: float = 0.0,
                 dtype: np.dtype = np.float64) -> None:
        self.spec = spec
        self.data = np.full((spec.height, spec.width), fill, dtype=dtype)

    @property
    def resolution(self) -> float:
        return self.spec.resolution

    def set_points(self, points: np.ndarray, value: float = 1.0) -> int:
        """Set the cells containing ``points`` to ``value``; returns #cells hit."""
        cells = self.spec.world_to_cell(points)
        ok = self.spec.in_range(cells)
        cells = cells[ok]
        self.data[cells[:, 1], cells[:, 0]] = value
        return int(cells.shape[0])

    def add_points(self, points: np.ndarray, value: float = 1.0) -> None:
        """Accumulate ``value`` into the cells containing ``points``."""
        cells = self.spec.world_to_cell(points)
        ok = self.spec.in_range(cells)
        cells = cells[ok]
        np.add.at(self.data, (cells[:, 1], cells[:, 0]), value)

    def draw_polyline(self, line: Polyline, value: float = 1.0,
                      thickness: float = 0.0) -> None:
        """Rasterize a polyline (optionally thickened to ``thickness`` metres)."""
        spacing = self.spec.resolution * 0.5
        sampled = line.resample(spacing)
        if thickness <= self.spec.resolution:
            self.set_points(sampled.points, value)
            return
        half = thickness / 2.0
        offsets = np.arange(-half, half + spacing / 2, spacing)
        for off in offsets:
            try:
                self.set_points(sampled.offset(float(off)).points, value)
            except GeometryError:
                continue

    def sample(self, points: np.ndarray, outside: float = 0.0) -> np.ndarray:
        """Value of the cell containing each point (``outside`` if out of range)."""
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        cells = self.spec.world_to_cell(pts)
        ok = self.spec.in_range(cells)
        out = np.full(pts.shape[0], outside, dtype=float)
        sel = cells[ok]
        out[ok] = self.data[sel[:, 1], sel[:, 0]]
        return out

    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def copy(self) -> "RasterGrid":
        clone = RasterGrid(self.spec, dtype=self.data.dtype)
        clone.data = self.data.copy()
        return clone


class BitmaskRaster:
    """An 8-bit label raster: each bit flags the presence of one class.

    This is the HDMI-Loc [23] map representation: the full vector map is
    collapsed to one byte per cell, one bit per semantic class, making
    storage tiny and matching a cheap bitwise AND.
    """

    MAX_CLASSES = 8

    def __init__(self, spec: GridSpec, class_names: Sequence[str]) -> None:
        if not 0 < len(class_names) <= self.MAX_CLASSES:
            raise GeometryError(
                f"BitmaskRaster supports 1..{self.MAX_CLASSES} classes, "
                f"got {len(class_names)}"
            )
        if len(set(class_names)) != len(class_names):
            raise GeometryError("class names must be unique")
        self.spec = spec
        self.class_names = tuple(class_names)
        self._bit = {name: 1 << i for i, name in enumerate(class_names)}
        self.data = np.zeros((spec.height, spec.width), dtype=np.uint8)

    def bit_of(self, class_name: str) -> int:
        try:
            return self._bit[class_name]
        except KeyError:
            raise GeometryError(f"unknown raster class {class_name!r}") from None

    def mark_points(self, class_name: str, points: np.ndarray) -> None:
        bit = self.bit_of(class_name)
        cells = self.spec.world_to_cell(points)
        ok = self.spec.in_range(cells)
        cells = cells[ok]
        self.data[cells[:, 1], cells[:, 0]] |= bit

    def mark_polyline(self, class_name: str, line: Polyline,
                      thickness: float = 0.0) -> None:
        spacing = self.spec.resolution * 0.5
        sampled = line.resample(spacing)
        if thickness <= self.spec.resolution:
            self.mark_points(class_name, sampled.points)
            return
        half = thickness / 2.0
        for off in np.arange(-half, half + spacing / 2, spacing):
            try:
                self.mark_points(class_name, sampled.offset(float(off)).points)
            except GeometryError:
                continue

    def layer(self, class_name: str) -> np.ndarray:
        """Boolean mask of one class."""
        bit = self.bit_of(class_name)
        return (self.data & bit) != 0

    def match_score(self, observed: "BitmaskRaster") -> float:
        """Fraction of observed labelled cells that agree with this raster.

        This is the bitwise matching measure HDMI-Loc's particle filter
        maximizes: AND the observation with the map and count surviving bits.
        """
        if observed.data.shape != self.data.shape:
            raise GeometryError("rasters must share a grid to be matched")
        obs_bits = int(np.unpackbits(observed.data).sum())
        if obs_bits == 0:
            return 0.0
        agree = int(np.unpackbits(self.data & observed.data).sum())
        return agree / obs_bits

    def shifted(self, dx_cells: int, dy_cells: int) -> "BitmaskRaster":
        """Copy of the raster translated by whole cells (zeros shifted in)."""
        out = BitmaskRaster(self.spec, self.class_names)
        h, w = self.data.shape
        src_y = slice(max(0, -dy_cells), min(h, h - dy_cells))
        src_x = slice(max(0, -dx_cells), min(w, w - dx_cells))
        dst_y = slice(max(0, dy_cells), min(h, h + dy_cells))
        dst_x = slice(max(0, dx_cells), min(w, w + dx_cells))
        out.data[dst_y, dst_x] = self.data[src_y, src_x]
        return out

    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def occupied_nbytes(self, tile: int = 64) -> int:
        """Bytes when stored as non-empty ``tile``-sized blocks + index.

        Corridor maps occupy a thin band of a huge bounding box; shipping
        the raster as sparse tiles (as HDMI-Loc's image database does) is
        the honest storage figure.
        """
        h, w = self.data.shape
        total = 0
        n_tiles = 0
        for r0 in range(0, h, tile):
            for c0 in range(0, w, tile):
                block = self.data[r0:r0 + tile, c0:c0 + tile]
                n_tiles += 1
                if block.any():
                    total += block.size  # one byte per cell
        return total + n_tiles  # plus a 1-byte presence index per tile
