"""Perception: HD maps as priors for understanding the surroundings.

- :mod:`repro.perception.detector` — base LiDAR object detector;
- :mod:`repro.perception.hdnet` — HDNET [6]: geometric/semantic map priors
  boosting 3-D (here planar) object detection, with an online map-prior
  prediction fallback when no HD map is available;
- :mod:`repro.perception.cooperative` — Masi et al. [63]: roadside-camera
  + vehicle fusion with Kalman object tracking.
"""

from repro.perception.detector import Detection, LidarObjectDetector
from repro.perception.hdnet import HdnetDetector, predict_road_prior
from repro.perception.cooperative import (
    CooperativePerception,
    RoadsideCamera,
    TrackedObject,
)

__all__ = [
    "CooperativePerception",
    "Detection",
    "HdnetDetector",
    "LidarObjectDetector",
    "RoadsideCamera",
    "TrackedObject",
    "predict_road_prior",
]
