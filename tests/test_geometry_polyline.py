import math

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.polyline import Polyline, arc, straight
from repro.geometry.transform import SE2


@pytest.fixture
def line():
    return straight([0.0, 0.0], [100.0, 0.0], spacing=5.0)


class TestConstruction:
    def test_length(self, line):
        assert line.length == pytest.approx(100.0)

    def test_rejects_single_point(self):
        with pytest.raises(GeometryError):
            Polyline([[0.0, 0.0]])

    def test_rejects_bad_shape(self):
        with pytest.raises(GeometryError):
            Polyline(np.zeros((4, 3)))

    def test_drops_duplicate_vertices(self):
        p = Polyline([[0, 0], [1, 0], [1, 0], [2, 0]])
        assert len(p) == 3
        assert p.length == pytest.approx(2.0)

    def test_fully_degenerate_raises(self):
        with pytest.raises(GeometryError):
            Polyline([[1, 1], [1, 1]])

    def test_points_read_only(self, line):
        with pytest.raises(ValueError):
            line.points[0, 0] = 99.0

    def test_equality_and_hash(self):
        a = Polyline([[0, 0], [1, 0]])
        b = Polyline([[0, 0], [1, 0]])
        assert a == b
        assert hash(a) == hash(b)


class TestParameterization:
    def test_point_at_clamps(self, line):
        assert np.allclose(line.point_at(-5.0), [0.0, 0.0])
        assert np.allclose(line.point_at(500.0), [100.0, 0.0])

    def test_point_at_midpoint(self, line):
        assert np.allclose(line.point_at(50.0), [50.0, 0.0])

    def test_points_at_vectorized(self, line):
        pts = line.points_at(np.array([0.0, 25.0, 100.0]))
        assert np.allclose(pts, [[0, 0], [25, 0], [100, 0]])

    def test_heading_and_normal(self, line):
        assert line.heading_at(10.0) == pytest.approx(0.0)
        assert np.allclose(line.normal_at(10.0), [0.0, 1.0])

    def test_curvature_of_arc(self):
        a = arc([0.0, 0.0], radius=50.0, start_angle=0.0,
                end_angle=math.pi, n=200)
        k = a.curvature_at(a.length / 2.0, window=5.0)
        assert abs(k) == pytest.approx(1.0 / 50.0, rel=0.08)

    def test_curvature_of_straight_is_zero(self, line):
        assert line.curvature_at(50.0) == pytest.approx(0.0, abs=1e-9)


class TestProjection:
    def test_project_interior(self, line):
        s, d = line.project([30.0, 2.0])
        assert s == pytest.approx(30.0)
        assert d == pytest.approx(2.0)  # left is positive

    def test_project_right_side_negative(self, line):
        _, d = line.project([30.0, -2.0])
        assert d == pytest.approx(-2.0)

    def test_distance_to_beyond_endpoint(self, line):
        assert line.distance_to([110.0, 0.0]) == pytest.approx(10.0)
        assert line.distance_to([103.0, 4.0]) == pytest.approx(5.0)

    def test_project_clamps_station(self, line):
        s, _ = line.project([-10.0, 1.0])
        assert s == 0.0


class TestDerivation:
    def test_resample_preserves_endpoints(self, line):
        r = line.resample(3.0)
        assert np.allclose(r.start, line.start)
        assert np.allclose(r.end, line.end)
        assert r.length == pytest.approx(line.length, rel=1e-6)

    def test_resample_rejects_nonpositive(self, line):
        with pytest.raises(GeometryError):
            line.resample(0.0)

    def test_offset_left_shifts_up(self, line):
        off = line.offset(2.5)
        assert np.allclose(off.points[:, 1], 2.5, atol=1e-9)

    def test_offset_of_arc_changes_radius(self):
        a = arc([0, 0], 50.0, 0.0, math.pi / 2, n=100)
        inner = a.offset(-5.0)  # right of CCW arc = outward
        r = np.hypot(inner.points[:, 0], inner.points[:, 1])
        assert np.allclose(r, 55.0, atol=0.1)

    def test_reversed(self, line):
        rev = line.reversed()
        assert np.allclose(rev.start, line.end)
        assert rev.length == pytest.approx(line.length)

    def test_slice(self, line):
        part = line.slice(20.0, 60.0)
        assert part.length == pytest.approx(40.0)
        assert np.allclose(part.start, [20.0, 0.0])

    def test_slice_invalid(self, line):
        with pytest.raises(GeometryError):
            line.slice(60.0, 20.0)

    def test_transformed(self, line):
        moved = line.transformed(SE2(0.0, 5.0, 0.0))
        assert np.allclose(moved.points[:, 1], 5.0)

    def test_simplify_straight_collapses(self, line):
        simple = line.simplify(0.01)
        assert len(simple) == 2

    def test_simplify_keeps_corner(self):
        p = Polyline([[0, 0], [10, 0], [10, 10]])
        simple = p.simplify(0.5)
        assert len(simple) == 3

    def test_concat(self, line):
        other = straight([100.0, 0.0], [100.0, 50.0], spacing=5.0)
        joined = line.concat(other)
        assert joined.length == pytest.approx(150.0)

    def test_hausdorff_symmetric_offset(self, line):
        shifted = line.offset(1.0)
        assert line.hausdorff_distance(shifted) == pytest.approx(1.0, abs=0.05)

    def test_mean_distance(self, line):
        shifted = line.offset(0.8)
        assert shifted.mean_distance_to_polyline(line) == pytest.approx(0.8, abs=0.05)


def test_bounds(line):
    assert line.bounds() == (0.0, 0.0, 100.0, 0.0)


def test_arc_needs_two_samples():
    with pytest.raises(GeometryError):
        arc([0, 0], 10.0, 0.0, 1.0, n=1)
