"""Streaming fleet-to-map ingestion: the continuous maintenance loop.

The surveyed map-maintenance ecosystem is a *loop* — fleets stream
observations, changes are detected and fused, patches are versioned and
redistributed (SLAMCU [41], Pannen et al. [42][44], Liu et al. [43], the
MEC/RSU crowd-sensing design [47]). ``repro.update`` holds the algorithms
and ``repro.serve`` the distribution front door; this package is the
concurrent path between them:

- :mod:`repro.ingest.observation` — the :class:`Observation` /
  :class:`ObservationBatch` work units with dedup keys;
- :mod:`repro.ingest.bus` — :class:`ObservationBus`, a tile-partitioned,
  bounded, deduplicating transport with batch leases (at-least-once);
- :mod:`repro.ingest.stages` — the validate -> associate -> fuse ->
  classify -> emit stage chain reusing ``IncrementalFuser``,
  ``DiscreteDBN``, and ``ChangeClassifier``;
- :mod:`repro.ingest.publisher` — :class:`PatchPublisher`, exactly-once
  (per patch key) publication under a configurable ``ConflictPolicy``,
  retrying :class:`TransientPublishError` with exponential backoff;
- :mod:`repro.ingest.pipeline` — :class:`IngestPipeline`: supervised
  stage workers, retry with exponential backoff, a dead-letter queue;
- :mod:`repro.ingest.verify` — :class:`VerifyGate` /
  :class:`QuarantineStore`: the mandatory reference-free constraint
  gate between fuse and publish; violating patches are journaled with
  a structured report, never published (see docs/MAP_QUALITY.md);
- :mod:`repro.ingest.breaker` — :class:`CircuitBreaker` per pipeline
  stage (closed -> open -> half-open), failing fast via
  :class:`StageCircuitOpen` while a stage is sick;
- :mod:`repro.ingest.metrics` — per-stage latency, queue-depth gauges,
  and the map-freshness-lag histogram;
- :mod:`repro.ingest.fleetsource` — a synthetic producer fleet closing
  the world -> sensors -> ingest -> serve loop end to end.

Failure behavior under injected faults is certified by
:mod:`repro.chaos`; ``docs/OPERATIONS.md`` maps the symptoms to knobs.
"""

from repro.ingest.breaker import CircuitBreaker, StageCircuitOpen
from repro.ingest.bus import ObservationBus
from repro.ingest.fleetsource import FleetObservationSource, SourceReport
from repro.ingest.metrics import Gauge, IngestMetrics
from repro.ingest.observation import (
    Observation,
    ObservationBatch,
    ObservationKind,
)
from repro.ingest.pipeline import DeadLetterQueue, IngestPipeline
from repro.ingest.publisher import (
    ConfirmedPatch,
    PatchPublisher,
    PublishResult,
    TransientPublishError,
)
from repro.ingest.stages import (
    AssociateStage,
    ClassifyStage,
    EmitStage,
    FuseStage,
    IngestConfig,
    Stage,
    TileState,
    ValidateStage,
    VerifyStage,
)
from repro.ingest.verify import QuarantineStore, VerifyGate

__all__ = [
    "AssociateStage",
    "CircuitBreaker",
    "ClassifyStage",
    "ConfirmedPatch",
    "DeadLetterQueue",
    "EmitStage",
    "FleetObservationSource",
    "FuseStage",
    "Gauge",
    "IngestConfig",
    "IngestMetrics",
    "IngestPipeline",
    "Observation",
    "ObservationBatch",
    "ObservationBus",
    "ObservationKind",
    "PatchPublisher",
    "PublishResult",
    "QuarantineStore",
    "SourceReport",
    "Stage",
    "StageCircuitOpen",
    "TileState",
    "TransientPublishError",
    "ValidateStage",
    "VerifyGate",
    "VerifyStage",
]
