"""Raster-differencing map change detection (Diff-Net [46]).

Diff-Net projects map elements into rasterized images and lets a DNN
compare them with camera features to emit changes in one step. The
reproduction keeps the rasterize-and-difference architecture with a
classical comparator: the prior map and the camera evidence are both
rasterized around the vehicle, blurred (tolerance to small misalignment),
differenced, and thresholded into change regions with scores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import ndimage

from repro.core.changes import ChangeType, MapChange
from repro.core.hdmap import HDMap
from repro.core.ids import ElementId
from repro.geometry.raster import GridSpec, RasterGrid
from repro.geometry.transform import SE2


@dataclass
class DiffRegion:
    """One detected change region."""

    position: Tuple[float, float]
    change_type: ChangeType  # ADDED (world has it, map lacks it) / REMOVED
    score: float

    def to_change(self) -> MapChange:
        return MapChange(self.change_type, ElementId("diff", 0),
                         self.position, detail="diffnet")


class DiffNet:
    """Rasterize prior vs observation, difference, extract regions."""

    def __init__(self, window: float = 60.0, resolution: float = 0.5,
                 blur_px: float = 1.2, threshold: float = 0.35,
                 min_region_cells: int = 3) -> None:
        self.window = window
        self.resolution = resolution
        self.blur_px = blur_px
        self.threshold = threshold
        self.min_region_cells = min_region_cells

    # ------------------------------------------------------------------
    def _raster(self, points: np.ndarray, spec: GridSpec) -> np.ndarray:
        grid = RasterGrid(spec)
        if points.shape[0]:
            grid.set_points(points, 1.0)
        blurred = ndimage.gaussian_filter(grid.data, self.blur_px)
        # Normalize so one isolated feature peaks at ~1.0 regardless of the
        # blur width (otherwise the change threshold depends on blur_px).
        return blurred / self._impulse_peak()

    def _impulse_peak(self) -> float:
        impulse = np.zeros((33, 33))
        impulse[16, 16] = 1.0
        return float(ndimage.gaussian_filter(impulse, self.blur_px).max())

    def _landmark_points(self, hdmap: HDMap, pose: SE2) -> np.ndarray:
        pts = [lm.position for lm in hdmap.landmarks_in_radius(
            pose.x, pose.y, self.window)]
        return np.array(pts) if pts else np.zeros((0, 2))

    # ------------------------------------------------------------------
    def compare(self, prior: HDMap, pose: SE2,
                observed_points: np.ndarray) -> List[DiffRegion]:
        """Detect changes around ``pose``.

        ``observed_points`` are world-frame landmark detections from the
        camera/LiDAR front end this frame (with localization noise already
        in them).
        """
        half = self.window
        spec = GridSpec.from_bounds(
            (pose.x - half, pose.y - half, pose.x + half, pose.y + half),
            self.resolution)
        map_raster = self._raster(self._landmark_points(prior, pose), spec)
        obs_raster = self._raster(np.asarray(observed_points, dtype=float)
                                  if len(observed_points) else
                                  np.zeros((0, 2)), spec)
        diff = obs_raster - map_raster
        regions: List[DiffRegion] = []
        regions.extend(self._extract(diff, spec, ChangeType.ADDED))
        regions.extend(self._extract(-diff, spec, ChangeType.REMOVED))
        return regions

    def _extract(self, signed_diff: np.ndarray, spec: GridSpec,
                 change_type: ChangeType) -> List[DiffRegion]:
        mask = signed_diff > self.threshold
        labelled, n = ndimage.label(mask)
        regions = []
        for k in range(1, n + 1):
            cells = np.argwhere(labelled == k)
            if cells.shape[0] < self.min_region_cells:
                continue
            centre_cell = cells.mean(axis=0)  # (row, col)
            world = spec.cell_to_world(
                np.array([centre_cell[1], centre_cell[0]]))
            score = float(signed_diff[labelled == k].max())
            regions.append(DiffRegion(
                position=(float(world[0]), float(world[1])),
                change_type=change_type,
                score=min(1.0, score),
            ))
        return regions
