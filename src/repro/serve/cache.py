"""Sharded read-write-locked tile cache for the serving layer.

A single ``StreamingMap`` LRU is correct for one vehicle but serializes a
fleet: every query mutates one ``OrderedDict``. Here the tile plane is hashed
across independent shards; each shard takes a shared (read) lock on the hit
path and an exclusive (write) lock only to install or evict entries, so
concurrent readers of hot tiles never queue behind each other.

Recency is tracked with a per-tile logical timestamp written on the read
path. A CPython dict store of an int is atomic under the GIL, so hits can
refresh recency without upgrading to the write lock; eviction (under the
write lock) removes the least-recently-touched tile.

Encoded-payload builds are single-flight: concurrent requests for the
same ``(tile, version)`` collapse onto one encoder invocation — followers
wait on the builder's result instead of serializing the tile N times
(the ``coalesced`` counter says how often that saved an encode).
"""

from __future__ import annotations

import itertools
import threading
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.core.hdmap import HDMap
from repro.core.tiles import TileId
from repro.errors import StorageError
from repro.obs.metrics import Counter
from repro.obs.trace import TRACER


class RWLock:
    """Many concurrent readers or one exclusive writer, writer-preferring.

    Writers that are waiting block new readers, so a stream of cache hits
    cannot starve an eviction or invalidation.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @contextmanager
    def read(self) -> Iterator[None]:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        with self._cond:
            self._writers_waiting += 1
            while self._writer_active or self._readers:
                self._cond.wait()
            self._writers_waiting -= 1
            self._writer_active = True
        try:
            yield
        finally:
            with self._cond:
                self._writer_active = False
                self._cond.notify_all()


#: Sentinel distinguishing "builder has not published yet / failed" from
#: a legitimate ``None`` result (absent tile).
_PENDING = object()


class _EncodeFlight:
    """One in-progress encode; followers wait on ``done`` and share
    ``result``. ``_PENDING`` after ``done`` means the builder raised —
    waiters take another lap and one of them becomes the new builder."""

    __slots__ = ("done", "result")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result = _PENDING


class _Shard:
    __slots__ = ("lock", "items", "recency", "encoded", "revalidate",
                 "building")

    def __init__(self) -> None:
        self.lock = RWLock()
        self.items: Dict[TileId, Optional[HDMap]] = {}
        self.recency: Dict[TileId, int] = {}
        # Serialized payloads keyed (tile, version): repeat encoded reads of
        # an unchanged tile skip re-serialization entirely.
        self.encoded: Dict[Tuple[TileId, int], bytes] = {}
        # Tiles that served a stale payload and owe the next reader a
        # fresh re-encode (the "revalidate" half of stale-while-revalidate).
        self.revalidate: Set[TileId] = set()
        # Single-flight: (tile, version) -> the in-progress encode that
        # concurrent requesters wait on instead of duplicating the build.
        self.building: Dict[Tuple[TileId, int], _EncodeFlight] = {}


class ShardedTileCache:
    """A bounded tile cache partitioned into independently locked shards."""

    def __init__(self, loader: Callable[[TileId], Optional[HDMap]],
                 n_shards: int = 8, tiles_per_shard: int = 16) -> None:
        if n_shards < 1 or tiles_per_shard < 1:
            raise StorageError("n_shards and tiles_per_shard must be >= 1")
        self._loader = loader
        self._shards = [_Shard() for _ in range(n_shards)]
        self.tiles_per_shard = tiles_per_shard
        self._clock = itertools.count(1)
        self.hits = Counter()
        self.misses = Counter()
        self.evictions = Counter()
        self.serialization_hits = Counter()
        self.serialization_builds = Counter()
        self.serialization_stale_hits = Counter()
        self.coalesced = Counter()

    def _shard_for(self, tile: TileId) -> _Shard:
        return self._shards[hash((tile.tx, tile.ty)) % len(self._shards)]

    def get(self, tile: TileId) -> Optional[HDMap]:
        """Cached decoded tile, loading through ``loader`` on a miss.

        Two threads missing the same tile may both invoke the loader; the
        second install is discarded. The loader runs outside every lock so a
        slow (remote) blob fetch never blocks hits on other tiles.
        """
        span = TRACER.span("serve.cache.get")
        if span.context is None:
            return self._get(tile)[0]
        with span:
            value, hit = self._get(tile)
            span.set("tile", str(tile))
            span.set("hit", hit)
            return value

    def _get(self, tile: TileId) -> Tuple[Optional[HDMap], bool]:
        """(tile, was-a-hit) — the untraced lookup behind :meth:`get`."""
        shard = self._shard_for(tile)
        with shard.lock.read():
            if tile in shard.items:
                shard.recency[tile] = next(self._clock)
                self.hits.add()
                return shard.items[tile], True
        value = self._loader(tile)
        self.misses.add()
        with shard.lock.write():
            if tile not in shard.items:
                shard.items[tile] = value
                shard.recency[tile] = next(self._clock)
                while len(shard.items) > self.tiles_per_shard:
                    victim = min(shard.recency, key=shard.recency.get)
                    del shard.items[victim]
                    del shard.recency[victim]
                    self.evictions.add()
            else:
                value = shard.items[tile]
        return value, False

    def get_encoded(self, tile: TileId, version: int,
                    encoder: Callable[[HDMap], bytes]) -> Optional[bytes]:
        """Serialized tile payload, memoized per ``(tile, version)``.

        A hit returns the cached blob under the shared lock without touching
        the encoder. On a miss the decoded tile is fetched through
        :meth:`get` and encoded *outside* every lock. Concurrent misses on
        the same ``(tile, version)`` are **single-flight**: one caller
        builds, the rest wait on its result (counted in ``coalesced``), so
        a hot tile is never encoded twice at once. Returns None for tiles
        the loader does not have.
        """
        return self.get_encoded_swr(tile, version, encoder, 0)[0]

    def get_encoded_swr(self, tile: TileId, version: int,
                        encoder: Callable[[HDMap], bytes],
                        max_staleness: int = 0
                        ) -> Tuple[Optional[bytes], int]:
        """:meth:`get_encoded` with a stale-while-revalidate bound.

        Returns ``(payload, staleness)`` where ``staleness`` is how many
        versions behind ``version`` the payload was built at. With
        ``max_staleness > 0``, a miss at the current version may be
        answered from the newest memoized payload up to that many
        versions old — the encoder is skipped entirely on the serving
        path — and the tile is marked for revalidation: the *next*
        encoded read re-encodes fresh (and drops the superseded
        versions), so a tile serves at most one burst of stale reads per
        version bump and staleness never exceeds the bound.
        """
        span = TRACER.span("serve.cache.get_encoded")
        if span.context is None:
            return self._get_encoded(tile, version, encoder, max_staleness)
        with span:
            payload, staleness = self._get_encoded(tile, version, encoder,
                                                   max_staleness)
            span.set("tile", str(tile))
            span.set("version", version)
            if staleness:
                span.set("staleness", staleness)
            return payload, staleness

    def _find_stale(self, shard: _Shard, tile: TileId, version: int,
                    max_staleness: int) -> Tuple[Optional[bytes], int]:
        """Newest within-bound older payload of ``tile`` (caller holds
        the read lock); ``(None, 0)`` when there is none."""
        best_version = -1
        best_payload: Optional[bytes] = None
        for (t, v), blob in shard.encoded.items():
            if t == tile and v < version and version - v <= max_staleness \
                    and v > best_version:
                best_version, best_payload = v, blob
        if best_payload is None:
            return None, 0
        return best_payload, version - best_version

    def _get_encoded(self, tile: TileId, version: int,
                     encoder: Callable[[HDMap], bytes],
                     max_staleness: int = 0) -> Tuple[Optional[bytes], int]:
        shard = self._shard_for(tile)
        key = (tile, version)
        while True:
            with shard.lock.read():
                payload = shard.encoded.get(key)
                if payload is not None:
                    self.serialization_hits.add()
                    return payload, 0
                if max_staleness > 0 and tile not in shard.revalidate:
                    stale, staleness = self._find_stale(shard, tile, version,
                                                        max_staleness)
                else:
                    stale, staleness = None, 0
            if stale is not None:
                with shard.lock.write():
                    shard.revalidate.add(tile)
                self.serialization_stale_hits.add()
                return stale, staleness
            # Single-flight: claim the builder slot for this
            # (tile, version), or wait on whoever already holds it.
            with shard.lock.write():
                payload = shard.encoded.get(key)
                if payload is not None:
                    self.serialization_hits.add()
                    return payload, 0
                flight = shard.building.get(key)
                builder = flight is None
                if builder:
                    flight = _EncodeFlight()
                    shard.building[key] = flight
            if not builder:
                flight.done.wait()
                if flight.result is not _PENDING:
                    self.coalesced.add()
                    return flight.result, 0
                continue  # the builder raised; take another lap
            try:
                payload = self._build_encoded(shard, tile, key, encoder)
                flight.result = payload
                return payload, 0
            finally:
                with shard.lock.write():
                    shard.building.pop(key, None)
                flight.done.set()

    def _build_encoded(self, shard: _Shard, tile: TileId,
                       key: Tuple[TileId, int],
                       encoder: Callable[[HDMap], bytes]
                       ) -> Optional[bytes]:
        """The single-flight builder's leg: load, encode (outside every
        lock), install. Returns None for tiles the loader lacks."""
        decoded = self.get(tile)
        if decoded is None:
            return None
        payload = encoder(decoded)
        self.serialization_builds.add()
        version = key[1]
        with shard.lock.write():
            existing = shard.encoded.get(key)
            if existing is not None:
                shard.revalidate.discard(tile)
                return existing
            shard.encoded[key] = payload
            # A fresh build supersedes every older version of this tile.
            for old in [k for k in shard.encoded
                        if k[0] == tile and k[1] < version]:
                del shard.encoded[old]
            shard.revalidate.discard(tile)
            # Bound the memo like the decoded side; dict order is insertion
            # order, so the oldest entry (stalest version first) goes.
            while len(shard.encoded) > self.tiles_per_shard:
                shard.encoded.pop(next(iter(shard.encoded)))
        return payload

    def invalidate_encoded(self,
                           tiles: Optional[List[TileId]] = None) -> None:
        """Drop encoded payloads (all, or those of specific tiles)."""
        if tiles is None:
            for shard in self._shards:
                with shard.lock.write():
                    shard.encoded.clear()
                    shard.revalidate.clear()
            return
        wanted = set(tiles)
        for tile in wanted:
            shard = self._shard_for(tile)
            with shard.lock.write():
                for key in [k for k in shard.encoded if k[0] in wanted]:
                    del shard.encoded[key]
                shard.revalidate.discard(tile)

    def invalidate(self, tiles: Optional[List[TileId]] = None) -> None:
        """Drop specific tiles (or everything when ``tiles`` is None)."""
        if tiles is None:
            for shard in self._shards:
                with shard.lock.write():
                    shard.items.clear()
                    shard.recency.clear()
                    shard.encoded.clear()
                    shard.revalidate.clear()
            return
        for tile in tiles:
            shard = self._shard_for(tile)
            with shard.lock.write():
                shard.items.pop(tile, None)
                shard.recency.pop(tile, None)
                for key in [k for k in shard.encoded if k[0] == tile]:
                    del shard.encoded[key]
                shard.revalidate.discard(tile)

    def resident_tiles(self) -> List[TileId]:
        out: List[TileId] = []
        for shard in self._shards:
            with shard.lock.read():
                out.extend(shard.items)
        return sorted(out)

    @property
    def hit_rate(self) -> float:
        hits, misses = self.hits.value, self.misses.value
        total = hits + misses
        return hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits.value,
            "misses": self.misses.value,
            "evictions": self.evictions.value,
            "hit_rate": self.hit_rate,
            "resident": len(self.resident_tiles()),
            "serialization_hits": self.serialization_hits.value,
            "serialization_builds": self.serialization_builds.value,
            "serialization_stale_hits": self.serialization_stale_hits.value,
            "coalesced": self.coalesced.value,
        }
