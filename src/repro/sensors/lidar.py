"""Multi-ring LiDAR model with ground-intensity and object returns.

Two return channels reproduce what the surveyed LiDAR pipelines consume:

- **ground returns** — rings of ground hits at fixed radii (the geometry of
  a multi-layer scanner's downward beams). Each hit carries an intensity:
  high on retro-reflective paint (lane markings, Ghallabi et al. [50]),
  medium on curbs/road edges (Zhao et al. [32]), low on asphalt, with
  nothing but clutter off the road.
- **object returns** — a horizontal sweep ray-cast against vertical
  landmarks (signs, lights, poles — the HRLs of [53]) and any dynamic
  obstacles supplied by the caller (for the perception experiments [6]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.elements import BoundaryType, LaneBoundary, PointLandmark
from repro.core.hdmap import HDMap
from repro.geometry.transform import SE2

ASPHALT_INTENSITY = 0.18
OFFROAD_INTENSITY = 0.08
PAINT_HALF_WIDTH = 0.15  # painted line half width, metres
CURB_HALF_WIDTH = 0.25
LANDMARK_RADIUS = 0.25  # landmark cylinder radius for ray casting


@dataclass(frozen=True)
class Obstacle:
    """A dynamic object (vehicle, pedestrian) visible to the LiDAR."""

    position: np.ndarray
    radius: float = 1.0
    reflectivity: float = 0.4
    velocity: np.ndarray = field(default_factory=lambda: np.zeros(2))
    kind: str = "vehicle"
    on_road: bool = True


@dataclass(frozen=True)
class GroundReturns:
    """Ground-channel hits, sensor frame."""

    points: np.ndarray  # (N, 2) sensor-frame coordinates
    intensity: np.ndarray  # (N,)
    ring: np.ndarray  # (N,) ring index


@dataclass(frozen=True)
class ObjectReturns:
    """Object-channel hits: polar in the sensor frame."""

    angles: np.ndarray  # (M,)
    ranges: np.ndarray  # (M,)
    intensity: np.ndarray  # (M,)

    def points(self) -> np.ndarray:
        return np.stack([
            self.ranges * np.cos(self.angles),
            self.ranges * np.sin(self.angles),
        ], axis=1)


@dataclass(frozen=True)
class LidarScan:
    t: float
    ground: GroundReturns
    objects: ObjectReturns
    max_range: float


class LidarScanner:
    """Scans the ground-truth map from a vehicle pose."""

    def __init__(self, n_azimuth: int = 360,
                 ground_ring_radii: Sequence[float] = (4.0, 6.5, 9.0, 12.0, 16.0, 21.0),
                 max_range: float = 60.0,
                 range_sigma: float = 0.02,
                 intensity_sigma: float = 0.05,
                 dropout: float = 0.02) -> None:
        self.n_azimuth = n_azimuth
        self.ground_ring_radii = tuple(ground_ring_radii)
        self.max_range = max_range
        self.range_sigma = range_sigma
        self.intensity_sigma = intensity_sigma
        self.dropout = dropout

    # ------------------------------------------------------------------
    def scan(self, hdmap: HDMap, pose: SE2, rng: np.random.Generator,
             t: float = 0.0,
             obstacles: Optional[Sequence[Obstacle]] = None) -> LidarScan:
        ground = self._scan_ground(hdmap, pose, rng)
        objects = self._scan_objects(hdmap, pose, rng, obstacles or ())
        return LidarScan(t=t, ground=ground, objects=objects,
                         max_range=self.max_range)

    # ------------------------------------------------------------------
    def _scan_ground(self, hdmap: HDMap, pose: SE2,
                     rng: np.random.Generator) -> GroundReturns:
        azimuths = np.linspace(-np.pi, np.pi, self.n_azimuth, endpoint=False)
        max_r = max(self.ground_ring_radii) + 2.0
        cx, cy = pose.x, pose.y

        # Pre-fetch nearby geometry once per scan, cropping each polyline to
        # the segments actually within scan range (long boundaries have huge
        # bounding boxes, so index hits alone are not enough).
        centre = np.array([cx, cy])
        crop_r = max_r + 5.0

        def _crop(pts: np.ndarray) -> Optional[Tuple[np.ndarray, np.ndarray]]:
            a, b = pts[:-1], pts[1:]
            seg_mid = (a + b) / 2.0
            reach = np.hypot(*(b - a).T) / 2.0 + crop_r
            near = np.hypot(*(seg_mid - centre).T) <= reach
            if not near.any():
                return None
            return a[near], b[near]

        nearby = hdmap.elements_in_radius(cx, cy, crop_r)
        paint_segments: List[Tuple[np.ndarray, np.ndarray, float, float]] = []
        lane_lines: List[Tuple[np.ndarray, np.ndarray]] = []
        for element in nearby:
            if isinstance(element, LaneBoundary):
                half = (CURB_HALF_WIDTH
                        if element.boundary_type in (BoundaryType.CURB,
                                                     BoundaryType.ROAD_EDGE)
                        else PAINT_HALF_WIDTH)
                cropped = _crop(element.line.points)
                if cropped is not None:
                    paint_segments.append((cropped[0], cropped[1],
                                           element.reflectivity, half))
            elif element.id.kind == "lane":
                cropped = _crop(element.centerline.points)
                if cropped is not None:
                    lane_lines.append(cropped)

        all_points = []
        all_intensity = []
        all_ring = []
        for ring_idx, radius in enumerate(self.ground_ring_radii):
            keep = rng.uniform(size=azimuths.size) >= self.dropout
            az = azimuths[keep]
            r = radius + rng.normal(0.0, self.range_sigma * 2.0, size=az.size)
            local = np.stack([r * np.cos(az), r * np.sin(az)], axis=1)
            world = pose.apply(local)

            # Distance to nearest painted line decides the intensity.
            best_refl = np.full(world.shape[0], -1.0)
            for a, b, refl, half in paint_segments:
                d = _points_to_segments_min_distance(world, a, b)
                hit = d <= half
                best_refl = np.where(hit & (refl > best_refl), refl, best_refl)

            on_road = np.zeros(world.shape[0], dtype=bool)
            for a, b in lane_lines:
                d = _points_to_segments_min_distance(world, a, b)
                on_road |= d <= 2.2  # within a lane half-width-ish

            intensity = np.where(
                best_refl >= 0.0, best_refl,
                np.where(on_road, ASPHALT_INTENSITY, OFFROAD_INTENSITY),
            )
            intensity = np.clip(
                intensity + rng.normal(0.0, self.intensity_sigma,
                                       size=intensity.size), 0.0, 1.0)
            all_points.append(local)
            all_intensity.append(intensity)
            all_ring.append(np.full(local.shape[0], ring_idx, dtype=int))

        return GroundReturns(
            points=np.concatenate(all_points, axis=0),
            intensity=np.concatenate(all_intensity, axis=0),
            ring=np.concatenate(all_ring, axis=0),
        )

    # ------------------------------------------------------------------
    def _scan_objects(self, hdmap: HDMap, pose: SE2,
                      rng: np.random.Generator,
                      obstacles: Sequence[Obstacle]) -> ObjectReturns:
        landmarks = hdmap.landmarks_in_radius(pose.x, pose.y, self.max_range)
        # Cylinders: (centre, radius, reflectivity).
        cylinders = [
            (lm.position, LANDMARK_RADIUS, lm.reflectivity)
            for lm in landmarks
            if not _is_flat(lm)
        ]
        cylinders.extend(
            (ob.position, ob.radius, ob.reflectivity) for ob in obstacles
        )
        if not cylinders:
            empty = np.zeros(0)
            return ObjectReturns(empty, empty, empty)

        azimuths = np.linspace(-np.pi, np.pi, self.n_azimuth, endpoint=False)
        dirs = np.stack([np.cos(azimuths + pose.theta),
                         np.sin(azimuths + pose.theta)], axis=1)
        origin = np.array([pose.x, pose.y])

        best_range = np.full(azimuths.size, np.inf)
        best_refl = np.zeros(azimuths.size)
        for centre, radius, refl in cylinders:
            rel = np.asarray(centre, dtype=float) - origin
            # |o + t d - c|^2 = r^2  ->  t^2 - 2 t (d.rel) + |rel|^2 - r^2 = 0
            b = dirs @ rel
            c = float(rel @ rel) - radius * radius
            disc = b * b - c
            ok = disc >= 0.0
            t_hit = b - np.sqrt(np.where(ok, disc, 0.0))
            valid = ok & (t_hit > 0.1) & (t_hit < self.max_range)
            closer = valid & (t_hit < best_range)
            best_range = np.where(closer, t_hit, best_range)
            best_refl = np.where(closer, refl, best_refl)

        hit = np.isfinite(best_range)
        hit &= rng.uniform(size=hit.size) >= self.dropout
        angles = azimuths[hit]
        ranges = best_range[hit] + rng.normal(0.0, self.range_sigma,
                                              size=int(hit.sum()))
        intensity = np.clip(
            best_refl[hit] + rng.normal(0.0, self.intensity_sigma,
                                        size=int(hit.sum())), 0.0, 1.0)
        return ObjectReturns(angles=angles, ranges=ranges, intensity=intensity)


def _is_flat(landmark: PointLandmark) -> bool:
    """Road markings lie on the ground; they never produce object returns."""
    return landmark.height <= 0.05


def _points_to_segments_min_distance(points: np.ndarray, a: np.ndarray,
                                     b: np.ndarray) -> np.ndarray:
    """Min distance from each of P points to any of S segments, vectorized.

    ``points``: (P, 2); ``a``/``b``: (S, 2) segment endpoints. Returns (P,).
    """
    d = b - a  # (S, 2)
    denom = np.einsum("ij,ij->i", d, d)  # (S,)
    rel = points[:, None, :] - a[None, :, :]  # (P, S, 2)
    t = np.einsum("psj,sj->ps", rel, d) / np.maximum(denom[None, :], 1e-300)
    t = np.clip(t, 0.0, 1.0)
    closest = a[None, :, :] + t[..., None] * d[None, :, :]
    diff = points[:, None, :] - closest
    dist2 = np.einsum("psj,psj->ps", diff, diff)
    return np.sqrt(dist2.min(axis=1))
