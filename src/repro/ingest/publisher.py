"""Idempotent patch publication into the authoritative map database.

The last hop of the maintenance loop: confirmed :class:`ConfirmedPatch`
objects are ingested into :class:`~repro.update.distribution.MapDistributionServer`
under a configurable :class:`~repro.update.distribution.ConflictPolicy`,
after which the serving layer's ``ChangesSince`` immediately reflects them
(both read the same versioned database).

Delivery upstream is at-least-once, so the same logical change can reach
the publisher more than once (batch redelivery after a worker crash, a
retry that half-succeeded). The publisher makes publication *exactly-once
per patch key*: a key that was ever accepted is never applied again, and
the suppression is counted, never silent. It also closes the freshness
measurement: the lag from the oldest contributing observation's enqueue
stamp to the version the patch became servable at.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Set, Tuple

from repro.core.versioning import MapPatch
from repro.ingest.metrics import IngestMetrics
from repro.obs.log import get_logger
from repro.obs.trace import TRACER
from repro.serve.metrics import ServiceMetrics
from repro.update.distribution import (
    ConflictPolicy,
    IngestResult,
    MapDistributionServer,
)

_log = get_logger("ingest.publisher")


@dataclass
class ConfirmedPatch:
    """A pipeline-confirmed patch plus its idempotency key.

    ``key`` deterministically names the logical change (tile + change type
    + target), so redelivered emissions collide instead of duplicating.
    ``enqueued_at`` is the bus enqueue stamp of the oldest observation
    that contributed — the start of the freshness-lag clock.
    """

    key: str
    patch: MapPatch
    enqueued_at: float = 0.0


@dataclass
class PublishResult:
    published: bool
    duplicate: bool
    version: Optional[int]
    result: Optional[IngestResult] = None


class PatchPublisher:
    """Exactly-once (per key) publisher in front of the map database."""

    def __init__(self, server: MapDistributionServer,
                 policy: Optional[ConflictPolicy] = None,
                 metrics: Optional[IngestMetrics] = None,
                 service_metrics: Optional[ServiceMetrics] = None,
                 add_conflation_radius: float = 6.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.server = server
        self.policy = policy
        self.metrics = metrics
        self.service_metrics = service_metrics
        self.add_conflation_radius = add_conflation_radius
        self._clock = clock
        self._lock = threading.Lock()
        self._published_keys: Set[str] = set()
        self._published_add_positions: List[Tuple[float, float]] = []

    def _conflated_add(self, patch: MapPatch) -> bool:
        """A single-AddElement patch whose landmark sits within the
        conflation radius of an already-published add is the same physical
        change reported through a different tile/cluster — suppress it."""
        if self.add_conflation_radius <= 0 or len(patch.ops) != 1:
            return False
        op = patch.ops[0]
        position = getattr(getattr(op, "element", None), "position", None)
        if position is None:
            return False
        x, y = float(position[0]), float(position[1])
        return any(math.hypot(px - x, py - y) <= self.add_conflation_radius
                   for px, py in self._published_add_positions)

    def _remember_adds(self, patch: MapPatch) -> None:
        for op in patch.ops:
            position = getattr(getattr(op, "element", None), "position",
                               None)
            if position is not None:
                self._published_add_positions.append(
                    (float(position[0]), float(position[1])))

    def seen(self, key: str) -> bool:
        with self._lock:
            return key in self._published_keys

    def published_count(self) -> int:
        with self._lock:
            return len(self._published_keys)

    def publish(self, confirmed: ConfirmedPatch) -> PublishResult:
        """Ingest one confirmed patch; duplicates are suppressed.

        The key set is checked and the ingest performed under one lock,
        so two redeliveries racing on the same key cannot both apply.
        Keys are only recorded for *accepted* patches — a patch rejected
        by the conflict policy may legitimately be retried later.
        """
        span = TRACER.span("ingest.publish")
        if span.context is None:
            return self._publish(confirmed)
        with span:
            out = self._publish(confirmed)
            span.set("key", confirmed.key)
            span.set("published", out.published)
            span.set("duplicate", out.duplicate)
            if out.version is not None:
                span.set("version", out.version)
            return out

    def _publish(self, confirmed: ConfirmedPatch) -> PublishResult:
        with self._lock:
            if confirmed.key in self._published_keys or \
                    self._conflated_add(confirmed.patch):
                if self.metrics is not None:
                    self.metrics.patches_duplicate.add()
                return PublishResult(False, True, None)
            result = self.server.ingest(confirmed.patch, policy=self.policy)
            if result.accepted:
                self._published_keys.add(confirmed.key)
                self._remember_adds(confirmed.patch)
        if not result.accepted:
            if self.metrics is not None:
                self.metrics.patches_conflicted.add()
            _log.warning("patch_conflicted", key=confirmed.key,
                         reason=result.reason or "")
            return PublishResult(False, False, None, result)
        if self.metrics is not None:
            self.metrics.patches_published.add()
        if confirmed.enqueued_at > 0.0:
            lag = max(0.0, self._clock() - confirmed.enqueued_at)
            if self.metrics is not None:
                self.metrics.record_freshness(lag)
            if self.service_metrics is not None:
                self.service_metrics.record_freshness(lag)
        return PublishResult(True, False, result.version, result)
