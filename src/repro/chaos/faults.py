"""Deterministic, seedable fault plans for the serve→ingest loop.

A :class:`FaultPlan` is a set of :class:`FaultSpec` entries, each naming
one *fault point* — a fixed place in the stack where the chaos harness
may inject a failure — with a firing probability, an activation offset,
an optional total budget, and a point-specific magnitude. The plan is
pure decision logic: it never touches the stack itself. The injectors in
:mod:`repro.chaos.harness` ask ``plan.point(name).roll(key)`` at each
opportunity and act on the answer.

Determinism is the whole design: every ``(fault point, key)`` pair gets
its own :class:`random.Random` stream derived from the plan seed by
stable hashing, so the decision sequence for, say, vehicle ``v2``'s
dropped observations does not depend on thread interleaving, wall time,
or what any other fault point did. Two runs of the same plan against the
same workload inject the same faults. A plan with no specs
(:meth:`FaultPlan.none`) is inert by construction — every ``roll`` is
False without consuming randomness — which is what makes the
faults-disabled chaos run byte-identical to a plain pipeline run.

Fault-point catalog (wired in :mod:`repro.chaos.harness`):

==========================  ==============================================
``sensor.drop``             observation silently lost before the bus
``sensor.duplicate``        observation uplinked twice
``sensor.corrupt``          sigma becomes non-finite (poison on arrival)
``sensor.delay``            observation held back and delivered out of order
``sensor.clock_skew``       observation timestamp skewed by ``magnitude`` s
``bus.slow_consumer``       worker stalls ``magnitude`` s holding the lease
``bus.lease_storm``         stall long enough that leases expire en masse
``pipeline.worker_crash``   worker thread dies mid-batch (lease left hanging)
``pipeline.poison``         burst of ``magnitude`` invalid observations
``publish.transient``       database ingest raises TransientPublishError
``publish.conflict``        rogue writer floods conflicting patches
``serve.hot_shard``         request burst concentrated on one tile
``serve.invalidation_storm``encoded-payload memo invalidated repeatedly
``serve.spike``             request burst beyond admission capacity
``cluster.shard_crash``     a shard process is killed mid-stream
``cluster.slow_shard``      a shard stalls past the router call timeout
``cluster.rebalance``       the cluster grows by one shard mid-stream
``geometry.degenerate_lane``  corrupt patch: near-zero-length, sliver lane
``geometry.broken_boundary``  corrupt patch: discontinuous boundary chain
``geometry.orphan_regulatory``  corrupt patch: rule with dangling refs
==========================  ==============================================

The ``cluster.*`` points are wired in :mod:`repro.chaos.cluster` (they
target the sharded :class:`~repro.cluster.router.ClusterRouter` rather
than the single-node loop). The ``geometry.*`` points inject malformed
patches upstream of the :class:`~repro.ingest.verify.VerifyGate`
(wired in both harnesses); the gate must quarantine every one.
"""

from __future__ import annotations

import hashlib
import random
import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

SENSOR_DROP = "sensor.drop"
SENSOR_DUPLICATE = "sensor.duplicate"
SENSOR_CORRUPT = "sensor.corrupt"
SENSOR_DELAY = "sensor.delay"
SENSOR_CLOCK_SKEW = "sensor.clock_skew"
BUS_SLOW_CONSUMER = "bus.slow_consumer"
BUS_LEASE_STORM = "bus.lease_storm"
PIPELINE_WORKER_CRASH = "pipeline.worker_crash"
PIPELINE_POISON = "pipeline.poison"
PUBLISH_TRANSIENT = "publish.transient"
PUBLISH_CONFLICT = "publish.conflict"
SERVE_HOT_SHARD = "serve.hot_shard"
SERVE_INVALIDATION_STORM = "serve.invalidation_storm"
SERVE_SPIKE = "serve.spike"
CLUSTER_SHARD_CRASH = "cluster.shard_crash"
CLUSTER_SLOW_SHARD = "cluster.slow_shard"
CLUSTER_REBALANCE = "cluster.rebalance"
GEOMETRY_DEGENERATE_LANE = "geometry.degenerate_lane"
GEOMETRY_BROKEN_BOUNDARY = "geometry.broken_boundary"
GEOMETRY_ORPHAN_REGULATORY = "geometry.orphan_regulatory"

ALL_FAULT_POINTS: Tuple[str, ...] = (
    SENSOR_DROP,
    SENSOR_DUPLICATE,
    SENSOR_CORRUPT,
    SENSOR_DELAY,
    SENSOR_CLOCK_SKEW,
    BUS_SLOW_CONSUMER,
    BUS_LEASE_STORM,
    PIPELINE_WORKER_CRASH,
    PIPELINE_POISON,
    PUBLISH_TRANSIENT,
    PUBLISH_CONFLICT,
    SERVE_HOT_SHARD,
    SERVE_INVALIDATION_STORM,
    SERVE_SPIKE,
    CLUSTER_SHARD_CRASH,
    CLUSTER_SLOW_SHARD,
    CLUSTER_REBALANCE,
    GEOMETRY_DEGENERATE_LANE,
    GEOMETRY_BROKEN_BOUNDARY,
    GEOMETRY_ORPHAN_REGULATORY,
)

#: The seven structural fault classes, mapping to the stack layer each
#: fault point wraps. chaos-bench certifies the invariants per class
#: (the ``shard`` class runs against the sharded cluster harness; the
#: ``geometry`` class injects corrupt-geometry patches upstream of the
#: constraint verify gate).
FAULT_CLASSES: Dict[str, Tuple[str, ...]] = {
    "sensor": (SENSOR_DROP, SENSOR_DUPLICATE, SENSOR_CORRUPT,
               SENSOR_DELAY, SENSOR_CLOCK_SKEW),
    "bus": (BUS_SLOW_CONSUMER, BUS_LEASE_STORM),
    "pipeline": (PIPELINE_WORKER_CRASH, PIPELINE_POISON),
    "publish": (PUBLISH_TRANSIENT, PUBLISH_CONFLICT),
    "serve": (SERVE_HOT_SHARD, SERVE_INVALIDATION_STORM, SERVE_SPIKE),
    "shard": (CLUSTER_SHARD_CRASH, CLUSTER_SLOW_SHARD, CLUSTER_REBALANCE),
    "geometry": (GEOMETRY_DEGENERATE_LANE, GEOMETRY_BROKEN_BOUNDARY,
                 GEOMETRY_ORPHAN_REGULATORY),
}


@dataclass(frozen=True)
class FaultSpec:
    """One timed/probabilistic fault at one fault point.

    ``probability`` is evaluated per opportunity on the key's decision
    stream; ``after`` skips the first N opportunities of every stream
    (letting a run warm up before the fault window opens); ``max_count``
    caps total fires across all streams; ``magnitude`` is the
    point-specific knob — seconds of delay/skew/stall, burst size, or
    request count, as documented per fault point.
    """

    point: str
    probability: float = 1.0
    after: int = 0
    max_count: Optional[int] = None
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        if self.point not in ALL_FAULT_POINTS:
            raise ValueError(f"unknown fault point {self.point!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.after < 0:
            raise ValueError("after must be >= 0")
        if self.max_count is not None and self.max_count < 0:
            raise ValueError("max_count must be >= 0")


def _stream_seed(seed: int, point: str, key: str) -> int:
    digest = hashlib.blake2b(f"{seed}|{point}|{key}".encode(),
                             digest_size=8).digest()
    return int.from_bytes(digest, "big")


class FaultPoint:
    """The decision stream(s) of one fault point under one plan.

    ``roll(key)`` answers "does the fault fire at this opportunity?".
    Streams are keyed (e.g. per vehicle) so each key's sequence of
    decisions is independently deterministic; an inactive point (no spec
    in the plan) always answers False and keeps no state.
    """

    def __init__(self, name: str, spec: Optional[FaultSpec],
                 seed: int) -> None:
        self.name = name
        self.spec = spec
        self._seed = seed
        self._lock = threading.Lock()
        self._streams: Dict[str, random.Random] = {}
        self._decisions: Dict[str, int] = {}
        self._fired = 0

    @property
    def active(self) -> bool:
        return self.spec is not None

    @property
    def fired(self) -> int:
        with self._lock:
            return self._fired

    @property
    def magnitude(self) -> float:
        return self.spec.magnitude if self.spec is not None else 0.0

    def roll(self, key: str = "") -> bool:
        """One injection decision on ``key``'s stream."""
        spec = self.spec
        if spec is None:
            return False
        with self._lock:
            if spec.max_count is not None and self._fired >= spec.max_count:
                return False
            stream = self._streams.get(key)
            if stream is None:
                stream = self._streams[key] = random.Random(
                    _stream_seed(self._seed, self.name, key))
            index = self._decisions.get(key, 0)
            self._decisions[key] = index + 1
            draw = stream.random()
            if index < spec.after:
                return False
            if draw >= spec.probability:
                return False
            self._fired += 1
            return True


class FaultPlan:
    """A seeded set of fault specs; the unit chaos-bench runs."""

    def __init__(self, specs: Iterable[FaultSpec] = (),
                 seed: int = 0) -> None:
        self.seed = seed
        self.specs: Dict[str, FaultSpec] = {}
        for spec in specs:
            if spec.point in self.specs:
                raise ValueError(f"duplicate spec for {spec.point!r}")
            self.specs[spec.point] = spec
        self._points: Dict[str, FaultPoint] = {
            name: FaultPoint(name, self.specs.get(name), seed)
            for name in ALL_FAULT_POINTS}

    @classmethod
    def none(cls, seed: int = 0) -> "FaultPlan":
        """The inert plan: every fault point answers False."""
        return cls((), seed)

    def point(self, name: str) -> FaultPoint:
        try:
            return self._points[name]
        except KeyError:
            raise ValueError(f"unknown fault point {name!r}") from None

    def active(self, name: str) -> bool:
        return self.point(name).active

    @property
    def is_inert(self) -> bool:
        return not self.specs

    def fired_counts(self) -> Dict[str, int]:
        """Fires per *active* fault point (inactive points omitted)."""
        return {name: point.fired
                for name, point in self._points.items() if point.active}

    def describe(self) -> str:
        if self.is_inert:
            return f"no faults (seed {self.seed})"
        parts = []
        for name in ALL_FAULT_POINTS:
            spec = self.specs.get(name)
            if spec is None:
                continue
            bits = [f"p={spec.probability:g}"]
            if spec.after:
                bits.append(f"after={spec.after}")
            if spec.max_count is not None:
                bits.append(f"max={spec.max_count}")
            if spec.magnitude:
                bits.append(f"mag={spec.magnitude:g}")
            parts.append(f"{name}({', '.join(bits)})")
        return f"seed {self.seed}: " + ", ".join(parts)


def curated_matrix(seed: int = 7) -> List[Tuple[str, FaultPlan]]:
    """The fault matrix chaos-bench certifies: one plan per fault class.

    Magnitudes assume the default :class:`~repro.chaos.harness.ChaosWorkload`
    (1 s bus leases, 4-attempt retry budget, 3-attempt publish budget,
    32-deep serve admission queue); probabilities are tuned so every
    fault point in the class actually fires on the small default
    workload while the run still drains in seconds.
    """
    return [
        ("sensor", FaultPlan([
            FaultSpec(SENSOR_DROP, probability=0.05),
            FaultSpec(SENSOR_DUPLICATE, probability=0.05),
            FaultSpec(SENSOR_CORRUPT, probability=1.0, after=5, max_count=2),
            FaultSpec(SENSOR_DELAY, probability=0.03, magnitude=25),
            FaultSpec(SENSOR_CLOCK_SKEW, probability=0.03, magnitude=30.0),
        ], seed)),
        ("bus", FaultPlan([
            FaultSpec(BUS_SLOW_CONSUMER, probability=0.2, magnitude=0.02),
            FaultSpec(BUS_LEASE_STORM, probability=1.0, after=1,
                      max_count=1, magnitude=1.5),
        ], seed)),
        ("pipeline", FaultPlan([
            FaultSpec(PIPELINE_WORKER_CRASH, probability=1.0, after=2,
                      max_count=2),
            FaultSpec(PIPELINE_POISON, probability=1.0, max_count=2,
                      magnitude=4),
        ], seed)),
        ("publish", FaultPlan([
            FaultSpec(PUBLISH_TRANSIENT, probability=0.35, max_count=6),
            FaultSpec(PUBLISH_CONFLICT, probability=1.0, max_count=4,
                      magnitude=3),
        ], seed)),
        ("serve", FaultPlan([
            FaultSpec(SERVE_HOT_SHARD, probability=0.5),
            FaultSpec(SERVE_INVALIDATION_STORM, probability=0.15),
            FaultSpec(SERVE_SPIKE, probability=1.0, after=40, max_count=2,
                      magnitude=40),
        ], seed)),
        ("shard", FaultPlan([
            FaultSpec(CLUSTER_SHARD_CRASH, probability=1.0, after=8,
                      max_count=2),
            FaultSpec(CLUSTER_SLOW_SHARD, probability=1.0, after=20,
                      max_count=1, magnitude=3.0),
            FaultSpec(CLUSTER_REBALANCE, probability=1.0, after=30,
                      max_count=1),
        ], seed)),
        ("geometry", FaultPlan([
            FaultSpec(GEOMETRY_DEGENERATE_LANE, probability=1.0,
                      max_count=2),
            FaultSpec(GEOMETRY_BROKEN_BOUNDARY, probability=1.0,
                      max_count=2),
            FaultSpec(GEOMETRY_ORPHAN_REGULATORY, probability=1.0,
                      max_count=2),
        ], seed)),
    ]
