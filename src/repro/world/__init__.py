"""Ground-truth world substrate.

The surveyed systems were evaluated on real roads we do not have; this
subpackage provides the synthetic equivalent: parametric road networks with
known-true geometry (the error-free reference every experiment scores
against), trajectories driven over them, elevation profiles, and change
scenarios (construction sites, sign swaps) for the maintenance pipelines.
"""

from repro.world.builder import RoadSpec, WorldBuilder
from repro.world.elevation import ElevationProfile
from repro.world.generator import (
    generate_factory_floor,
    generate_grid_city,
    generate_highway,
)
from repro.world.hdmapgen import (
    HDMapGenSampler,
    MapStatistics,
    MapTopologySpec,
    map_statistics,
)
from repro.world.osm import OsmDocument, import_osm
from repro.world.scenario import ChangeSpec, Scenario, apply_changes
from repro.world.traffic import TimedPose, Trajectory, drive_lane_sequence, drive_route

__all__ = [
    "ChangeSpec",
    "ElevationProfile",
    "HDMapGenSampler",
    "MapStatistics",
    "MapTopologySpec",
    "OsmDocument",
    "import_osm",
    "map_statistics",
    "RoadSpec",
    "Scenario",
    "TimedPose",
    "Trajectory",
    "WorldBuilder",
    "apply_changes",
    "drive_lane_sequence",
    "drive_route",
    "generate_factory_floor",
    "generate_grid_city",
    "generate_highway",
]
