"""Sensor models: noise characteristics and measurement geometry."""

import numpy as np
import pytest

from repro.geometry.polyline import straight
from repro.geometry.transform import SE2
from repro.sensors import (
    Camera,
    GnssSensor,
    ImuSensor,
    LidarScanner,
    ProbeGenerator,
    SensorGrade,
    WheelOdometry,
    make_depth_scene,
)
from repro.sensors.imu import dead_reckon
from repro.world.traffic import drive_polyline


@pytest.fixture(scope="module")
def traj():
    path = straight([0, 0], [600, 0], spacing=5.0)
    return drive_polyline(path, speed=15.0, dt=0.1)


class TestGnss:
    def test_grades_ordered_by_error(self, traj):
        errors = {}
        for grade in SensorGrade:
            rng = np.random.default_rng(4)
            fixes = GnssSensor(grade, rate_hz=2.0).measure(traj, rng)
            errs = []
            for f in fixes:
                pose = traj.pose_at(f.t)
                errs.append(np.hypot(f.position[0] - pose.x,
                                     f.position[1] - pose.y))
            errors[grade] = float(np.mean(errs))
        assert errors[SensorGrade.SURVEY] < 0.05
        assert errors[SensorGrade.SURVEY] < errors[SensorGrade.AUTOMOTIVE]
        assert errors[SensorGrade.AUTOMOTIVE] < errors[SensorGrade.SMARTPHONE]

    def test_fix_rate(self, traj, rng):
        fixes = GnssSensor(rate_hz=5.0).measure(traj, rng)
        dts = np.diff([f.t for f in fixes])
        assert np.allclose(dts, 0.2)

    def test_bias_survives_averaging(self, traj, rng):
        """Averaging one trace's fixes must NOT reach white-noise accuracy.

        This is the property that caps GPS-only probe mapping (Massow et
        al.): the per-trace mean error stays at bias level, far above
        white_sigma / sqrt(N).
        """
        sensor = GnssSensor(SensorGrade.AUTOMOTIVE, rate_hz=2.0)
        mean_errors = []
        for _ in range(15):
            fixes = sensor.measure(traj, rng)
            errs = np.array([
                f.position - [traj.pose_at(f.t).x, traj.pose_at(f.t).y]
                for f in fixes
            ])
            mean_errors.append(float(np.hypot(*errs.mean(axis=0))))
        n = len(fixes)
        white_floor = sensor.noise.white_sigma / np.sqrt(n)
        assert float(np.median(mean_errors)) > 5 * white_floor


class TestImuOdometry:
    def test_imu_rate(self, traj, rng):
        readings = ImuSensor(rate_hz=20.0).measure(traj, rng)
        dts = np.diff([r.t for r in readings])
        assert np.allclose(dts, 0.05, atol=1e-6)

    def test_dead_reckoning_drifts(self, traj):
        rng = np.random.default_rng(7)
        readings = ImuSensor(SensorGrade.SMARTPHONE).measure(traj, rng)
        start = traj.pose_at(readings[0].t)
        track = dead_reckon(readings, start, 15.0)
        final_t, final_pose = track[-1]
        true_final = traj.pose_at(final_t)
        drift = final_pose.distance_to(true_final)
        assert drift > 0.5  # phones drift within 40 s

    def test_odometry_straight_line(self, traj, rng):
        deltas = WheelOdometry(rate_hz=10.0).measure(traj, rng)
        total = sum(d.ds for d in deltas)
        assert total == pytest.approx(traj.path_length(), rel=0.05)
        assert abs(sum(d.dtheta for d in deltas)) < 0.3


class TestLidar:
    def test_scan_channels(self, highway, rng):
        scanner = LidarScanner()
        lane = next(iter(highway.lanes()))
        pose = SE2(*lane.centerline.point_at(200.0), lane.centerline.heading_at(200.0))
        scan = scanner.scan(highway, pose, rng)
        assert scan.ground.points.shape[0] > 1000
        assert scan.objects.ranges.shape[0] >= 0

    def test_ground_intensity_separates_paint(self, highway, rng):
        scanner = LidarScanner(intensity_sigma=0.02)
        lane = next(iter(highway.lanes()))
        pose = SE2(*lane.centerline.point_at(300.0),
                   lane.centerline.heading_at(300.0))
        scan = scanner.scan(highway, pose, rng)
        frac_paint = float((scan.ground.intensity > 0.5).mean())
        assert 0.005 < frac_paint < 0.4

    def test_object_returns_hit_poles(self, highway, rng):
        scanner = LidarScanner(dropout=0.0)
        lane = next(iter(highway.lanes()))
        pose = SE2(*lane.centerline.point_at(250.0),
                   lane.centerline.heading_at(250.0))
        scan = scanner.scan(highway, pose, rng)
        # Highway has poles every 80 m within the 60 m range: expect hits.
        assert scan.objects.ranges.size > 0
        assert scan.objects.ranges.max() <= scanner.max_range + 1.0

    def test_obstacles_visible(self, highway, rng):
        from repro.sensors.lidar import Obstacle

        scanner = LidarScanner(dropout=0.0)
        lane = next(iter(highway.lanes()))
        pose = SE2(*lane.centerline.point_at(100.0),
                   lane.centerline.heading_at(100.0))
        ahead = pose.apply(np.array([15.0, 0.0]))
        scan = scanner.scan(highway, pose, rng,
                            obstacles=[Obstacle(position=ahead, radius=1.0)])
        near_15 = np.abs(scan.objects.ranges - 14.0) < 2.5
        assert near_15.any()


class TestCamera:
    def test_lane_observation_geometry(self, highway, rng):
        camera = Camera(lane_detection_prob=1.0, lane_offset_sigma=0.0)
        lane = next(iter(highway.lanes()))
        s = 150.0
        base = lane.centerline.point_at(s)
        heading = lane.centerline.heading_at(s)
        normal = lane.centerline.normal_at(s)
        pose = SE2(*(base + 0.5 * normal), heading)  # 0.5 m left of centre
        obs = camera.observe_lanes(highway, pose, rng)
        assert obs is not None
        # lane_centre_offset is the vehicle's signed offset (left positive).
        assert obs.lane_centre_offset == pytest.approx(0.5, abs=0.1)

    def test_sign_detection_range_and_fov(self, highway, rng):
        camera = Camera(detection_prob=1.0, false_positive_rate=0.0)
        sign = next(iter(highway.signs()))
        # Stand 20 m before the sign facing it.
        facing = np.arctan2(0, 1)
        pose = SE2(sign.position[0] - 20.0, sign.position[1], 0.0)
        dets = camera.observe_signs(highway, pose, rng)
        ours = [d for d in dets if d.true_id == sign.id]
        assert len(ours) == 1
        assert ours[0].range == pytest.approx(20.0, rel=0.2)

    def test_false_positives_have_no_true_id(self, highway, rng):
        camera = Camera(detection_prob=0.0, false_positive_rate=5.0)
        pose = SE2(0.0, 0.0, 0.0)
        dets = camera.observe_signs(highway, pose, rng)
        assert dets
        assert all(d.true_id is None for d in dets)

    def test_light_state_confusion(self, city, rng):
        camera = Camera(detection_prob=1.0, light_state_accuracy=0.0)
        light = next(iter(city.lights()))
        pose = SE2(light.position[0] - 15.0, light.position[1], 0.0)
        obs = camera.observe_lights(city, pose, rng, t=3.0)
        ours = [o for o in obs if o.true_id == light.id]
        if ours:  # always misclassifies with accuracy 0
            assert ours[0].state is not light.state_at(3.0)


class TestProbeAndDepth:
    def test_probe_trace_channels(self, highway, traj, rng):
        gen = ProbeGenerator(with_sensors=True)
        # Use a highway trajectory so lane observations exist.
        lane = next(iter(highway.lanes()))
        from repro.world import drive_lane_sequence

        htraj = drive_lane_sequence(highway, [lane.id], rng=rng)
        trace = gen.generate(highway, htraj, 7, rng)
        assert trace.vehicle_id == 7
        assert len(trace.fixes) > 10
        assert len(trace.lane_observations) > 5

    def test_depth_scene_shapes(self, rng):
        frame = make_depth_scene(rng, height=120, width=160, factor=4)
        assert frame.depth_true.shape == (120, 160)
        assert frame.depth_low.shape == (30, 40)
        assert frame.guide.shape == (120, 160)

    def test_depth_edges_align_with_guide(self, rng):
        frame = make_depth_scene(rng, height=120, width=160, factor=4,
                                 noise_sigma=0.0)
        depth_edges = np.abs(np.diff(frame.depth_true, axis=1)) > 0.5
        guide_edges = np.abs(np.diff(frame.guide, axis=1)) > 0.05
        overlap = (depth_edges & guide_edges).sum() / max(depth_edges.sum(), 1)
        assert overlap > 0.8
