"""S9 — Cluster telemetry plane: cheap sampling, faithful merged trees.

The tracing layer's cost model (bench S4) holds on a single node; this
bench certifies the *distributed* claims from ``repro.cluster``:

- **overhead** — sampled tracing on the cluster read path (trace
  context pickled into every RPC envelope, router-side ``cluster.rpc``
  spans, a live background :class:`TelemetryHarvester`) must not
  meaningfully move median read-round latency. Rounds are interleaved
  traced/untraced so machine drift hits both modes equally; the gate is
  deliberately loose (local transport, tiny rounds amplify noise) —
  the tight 5% gate runs against the process transport in
  ``cluster-bench --trace-sample-rate`` under CI;
- **reconstruction** — after a harvest, one guaranteed-sampled
  ``GetTile`` must reconstruct as a single verify-clean span tree whose
  parent chain crosses the transport: ``cluster.request.GetTile ->
  cluster.rpc.serve -> shard.serve -> serve.request.GetTile``.
"""

import statistics
import threading

from conftest import once

from repro.cluster import ClusterRouter
from repro.eval import ResultTable
from repro.obs import TRACER, configure_tracing, verify_spans
from repro.serve.api import GetTile
from repro.world import generate_grid_city

_ROUNDS = 20
_REQUESTS_PER_ROUND = 60
_CLIENTS = 4
_SERVICE_LATENCY_S = 0.002
_MAX_OVERHEAD = 0.25  # loose local-transport gate; CI gates 5% (process)


def _read_round(router, tiles):
    import time

    share = _REQUESTS_PER_ROUND // _CLIENTS

    def worker(me):
        for k in range(share):
            response = router.request(
                GetTile(tile=tiles[(me + k) % len(tiles)], encoded=True))
            assert response.ok, response.error

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(_CLIENTS)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return time.perf_counter() - t0


def _experiment(rng):
    world = generate_grid_city(rng, blocks_x=3, blocks_y=2,
                               block_size=150.0)
    configure_tracing(enabled=False, reset=True)
    router = ClusterRouter(world, n_shards=2, tile_size=250.0,
                           transport="local",
                           service_latency_s=_SERVICE_LATENCY_S)
    elapsed = {"off": [], "on": []}
    try:
        tiles = sorted(router.tiles())
        _read_round(router, tiles)  # warmup
        for _ in range(_ROUNDS):
            for mode in ("off", "on"):
                if mode == "on":
                    configure_tracing(enabled=True, sample_rate=0.01)
                else:
                    TRACER.configure(enabled=False)
                elapsed[mode].append(_read_round(router, tiles))

        # One fully sampled request, then harvest and reconstruct.
        configure_tracing(enabled=True, sample_rate=1.0, reset=True)
        assert router.request(GetTile(tile=tiles[0], encoded=True)).ok
        router.harvest_telemetry()
        spans = [s.as_dict() for s in TRACER.recorder.spans()]
    finally:
        router.close()
        configure_tracing(enabled=False, reset=True)
    return elapsed, spans


def test_s09_cluster_tracing(benchmark, rng):
    elapsed, spans = once(benchmark, _experiment, rng)
    off_s = statistics.median(elapsed["off"])
    on_s = statistics.median(elapsed["on"])
    overhead = on_s / off_s - 1.0 if off_s > 0 else 0.0

    problems = verify_spans(spans)
    by_id = {s["span_id"]: s for s in spans}
    chain = []
    for span in spans:
        if span["name"] != "serve.request.GetTile":
            continue
        names = [span["name"]]
        node = span
        while node.get("parent_id") in by_id:
            node = by_id[node["parent_id"]]
            names.append(node["name"])
        chain = list(reversed(names))
        break
    expected = ["cluster.request.GetTile", "cluster.rpc.serve",
                "shard.serve", "serve.request.GetTile"]

    table = ResultTable("S9", "cluster tracing overhead + merged tree")
    table.add(f"median read round ({_REQUESTS_PER_ROUND} reqs), "
              f"tracing off", "reported", f"{1e3 * off_s:.2f} ms",
              ok=off_s > 0)
    table.add("overhead at 1% sampling + live harvester",
              f"< {100 * _MAX_OVERHEAD:g}%",
              f"{100 * overhead:+.1f}% ({1e3 * on_s:.2f} ms)",
              ok=overhead <= _MAX_OVERHEAD)
    table.add("merged span dump structurally clean", "0 problems",
              f"{len(problems)} ({len(spans)} spans)", ok=not problems)
    table.add("cross-transport parent chain", " -> ".join(expected),
              " -> ".join(chain) if chain else "(missing)",
              ok=chain == expected)
    table.print()
    assert table.all_ok()
