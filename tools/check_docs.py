#!/usr/bin/env python
"""Docs-consistency gate: the CLI, metric names, and knobs the docs
promise must exist in the code.

Three checks, run by CI's lint job (and locally via
``PYTHONPATH=src python tools/check_docs.py``):

1. every ``python -m repro`` subcommand registered by
   :func:`repro.cli.build_parser` is mentioned in README.md;
2. every canonical metric name written in the operator handbooks
   (docs/OPERATIONS.md and docs/MAP_QUALITY.md — backticked
   ``serve.* / ingest.* / perf.* / log.*`` tokens, with ``<placeholder>``
   segments) resolves against the registry universe of a real
   serve+ingest workload — the same one ``obs smoke`` gates on — so a
   handbook can never name a metric the code stopped registering; the
   ``ingest.verify.*`` constraint universe resolves because the
   per-constraint counters are pre-seeded from the canonical catalog;
3. every knob a handbook tells an operator to turn — backticked
   ``Ctor(arg=…)`` snippets and ``--flag`` mentions — is a real
   constructor/function argument or a real CLI flag.

Exits non-zero listing every stale reference.
"""

from __future__ import annotations

import inspect
import os
import re
import sys
import tempfile
from typing import List, Set

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

#: Modules knob snippets may resolve against, in lookup order.
KNOB_NAMESPACES = (
    "repro.serve",
    "repro.ingest",
    "repro.chaos",
    "repro.obs",
    "repro.update.distribution",
    "repro.cluster",
    "repro.pack",
)

#: Operator-facing handbooks whose metric names and knobs must resolve.
HANDBOOKS = (
    os.path.join("docs", "OPERATIONS.md"),
    os.path.join("docs", "MAP_QUALITY.md"),
)

METRIC_TOKEN = re.compile(
    r"`((?:serve|ingest|perf|log|cluster|pack)\.[A-Za-z0-9_.<>]+)`")
KNOB_CALL = re.compile(
    r"`([A-Za-z][A-Za-z0-9_]*)\(([a-z][a-z0-9_]*)=")
CLI_FLAG = re.compile(r"`(--[a-z][a-z0-9-]+)`")


def _read(path: str) -> str:
    with open(os.path.join(REPO, path), encoding="utf-8") as fh:
        return fh.read()


def check_cli_in_readme(errors: List[str]) -> None:
    from repro.cli import build_parser

    parser = build_parser()
    subcommands: Set[str] = set()
    for action in parser._subparsers._group_actions:
        subcommands.update(action.choices)
    readme = _read("README.md")
    for name in sorted(subcommands):
        if name not in readme:
            errors.append(
                f"README.md: CLI subcommand `{name}` is not mentioned")


def _metric_universe() -> Set[str]:
    """Registered names of a real workload (dynamic names included)."""
    import numpy as np

    from repro.cli import _obs_workload
    from repro.storage import save_map
    from repro.world import generate_grid_city

    from repro.obs import MetricsRegistry
    from repro.serve import GetTile, MapService
    from repro.storage import TileStore
    from repro.update.distribution import MapDistributionServer

    city = generate_grid_city(np.random.default_rng(7), 2, 2,
                              block_size=150.0)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "city.json")
        save_map(city, path)
        registry = _obs_workload(path, seed=7)
    names = set(registry.snapshot())

    # The fleet workload never issues GetTile; cover its dynamic
    # per-kind names from a one-request service of its own.
    extra = MetricsRegistry()
    server = MapDistributionServer(city.copy())
    store = TileStore.build(city, tile_size=250.0)
    with MapService(server, store, n_workers=1, registry=extra) as service:
        service.request(GetTile(store.tiles()[0]))
    names |= set(extra.snapshot())

    # cluster.* names come from a tiny in-process cluster: replicated
    # reads mint the concurrent-read-path metrics (replica hits, lag,
    # coalescing, inflight), one write mints the per-kind router
    # metrics, one metrics poll mints the merged per-shard names.
    from repro.cluster import ClusterRouter
    from repro.core import MapPatch, SignType, TrafficSign
    from repro.serve import IngestPatch

    cluster_registry = MetricsRegistry()
    router = ClusterRouter(city, n_shards=2, tile_size=250.0,
                           transport="local", replicas=1,
                           registry=cluster_registry)
    try:
        for _ in range(4):  # round-robin across primary + replica
            router.request(GetTile(router.tiles()[0]))
        import numpy as np
        patch = MapPatch(source="docs-check", confidence=0.9)
        patch.add(TrafficSign(id=city.new_id("docs-check-sign"),
                              position=np.array([10.0, 10.0]),
                              sign_type=SignType.DIRECTION))
        router.request(IngestPatch(patch=patch))
        router.collect_shard_metrics()
        names |= set(cluster_registry.snapshot())
    finally:
        router.close()

    # pack.* names come from a tiny pack-backed store: one zero-copy
    # read and one decode touch every serving counter.
    from repro.storage.tilestore import TileStore as _TileStore

    pack_registry = MetricsRegistry()
    with tempfile.TemporaryDirectory() as tmp:
        pack_path = os.path.join(tmp, "docs-check.pack")
        _TileStore.build(city, tile_size=250.0).to_pack(pack_path)
        packed = _TileStore.from_pack(pack_path)
        tile = packed.tiles()[0]
        packed.encoded_view(tile)
        packed.load_tile(tile)
        packed.pack_reader.register_into(pack_registry)
        names |= set(pack_registry.snapshot())
    return names


def check_handbook_metrics(errors: List[str]) -> None:
    universe = _metric_universe()
    for handbook in HANDBOOKS:
        label = os.path.basename(handbook)
        doc = _read(handbook)
        for token in sorted(set(METRIC_TOKEN.findall(doc))):
            if "<" in token:
                # <placeholder> segments may span dots (perf kernel
                # names are dotted); re.escape leaves the <...> markers
                # intact.
                pattern = re.compile(
                    "^" + re.sub(r"<[a-z]+>", r"[A-Za-z0-9_.]+",
                                 re.escape(token)) + "$")
                if not any(pattern.match(name) for name in universe):
                    errors.append(
                        f"{label}: metric pattern `{token}` matches "
                        f"nothing in the registry")
            elif token not in universe:
                errors.append(
                    f"{label}: metric `{token}` is not registered")


def _resolve_knob_target(name: str):
    import importlib

    for namespace in KNOB_NAMESPACES:
        module = importlib.import_module(namespace)
        target = getattr(module, name, None)
        if target is not None:
            return target
    return None


def check_handbook_knobs(errors: List[str]) -> None:
    from repro.cli import build_parser

    flags: Set[str] = set()
    parser = build_parser()
    for action in parser._subparsers._group_actions:
        for sub in action.choices.values():
            for sub_action in sub._actions:
                flags.update(sub_action.option_strings)
            if sub._subparsers is not None:
                for nested in sub._subparsers._group_actions:
                    for leaf in nested.choices.values():
                        for leaf_action in leaf._actions:
                            flags.update(leaf_action.option_strings)

    for handbook in HANDBOOKS:
        label = os.path.basename(handbook)
        doc = _read(handbook)
        for name, arg in sorted(set(KNOB_CALL.findall(doc))):
            target = _resolve_knob_target(name)
            if target is None:
                errors.append(
                    f"{label}: knob target `{name}` not found in "
                    f"{', '.join(KNOB_NAMESPACES)}")
                continue
            callee = target.__init__ if inspect.isclass(target) else target
            params = inspect.signature(callee).parameters
            if arg not in params:
                errors.append(
                    f"{label}: `{name}({arg}=…)` — no such argument")
        for flag in sorted(set(CLI_FLAG.findall(doc))):
            if flag not in flags:
                errors.append(
                    f"{label}: CLI flag `{flag}` does not exist")


def main() -> int:
    errors: List[str] = []
    check_cli_in_readme(errors)
    check_handbook_knobs(errors)
    check_handbook_metrics(errors)
    if errors:
        for line in errors:
            print(f"FAIL {line}")
        print(f"docs check failed: {len(errors)} stale reference(s)")
        return 1
    print("docs check passed: CLI, metrics, and knobs all resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
