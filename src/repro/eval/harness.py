"""Experiment result records and table formatting.

Every benchmark prints a :class:`ResultTable` whose rows pair the paper's
reported figure with the value measured on the synthetic substrate, so
EXPERIMENTS.md can be regenerated from bench output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence


@dataclass
class ExperimentResult:
    """One row: a named quantity, the paper's value, and ours."""

    quantity: str
    paper: str
    measured: str
    ok: Optional[bool] = None  # did the shape criterion hold?

    def status(self) -> str:
        if self.ok is None:
            return ""
        return "PASS" if self.ok else "FAIL"


@dataclass
class ResultTable:
    """A printable experiment table."""

    experiment_id: str
    title: str
    rows: List[ExperimentResult] = field(default_factory=list)

    def add(self, quantity: str, paper: str, measured: str,
            ok: Optional[bool] = None) -> None:
        self.rows.append(ExperimentResult(quantity, paper, measured, ok))

    def all_ok(self) -> bool:
        return all(r.ok for r in self.rows if r.ok is not None)

    def render(self) -> str:
        headers = ["quantity", "paper", "measured", "status"]
        body = [[r.quantity, r.paper, r.measured, r.status()] for r in self.rows]
        widths = [max(len(h), *(len(row[i]) for row in body)) if body else len(h)
                  for i, h in enumerate(headers)]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def print(self) -> None:
        print()
        print(self.render())


def render_histogram(counts: Sequence[int], edges: Sequence[float],
                     width: int = 40, label: str = "error (m)") -> str:
    """ASCII histogram — used to regenerate Figure 2 in bench output."""
    counts = list(counts)
    peak = max(counts) if counts else 1
    lines = [f"{label:>12} | count"]
    for i, c in enumerate(counts):
        bar = "#" * int(round(width * c / max(peak, 1)))
        lines.append(f"{edges[i]:6.2f}-{edges[i + 1]:5.2f} | {c:5d} {bar}")
    return "\n".join(lines)
