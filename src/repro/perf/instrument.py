"""Lightweight hot-path instrumentation: per-kernel call/ns counters.

The serving and simulation hot paths (grid queries, batched projections,
LiDAR scans, tile encodes) are instrumented with :func:`timed` so a perf
run can attribute wall time to named kernels without a sampling profiler.
Design constraints, in order:

1. **Near-zero cost when disabled.** Instrumentation ships enabled in no
   code path; a disabled timer is one attribute check per call. The
   benchmark runner (and anything else that wants counters) flips
   ``REGISTRY.enabled`` for the duration of a measurement.
2. **Thread-local accumulation.** Serving workers time kernels
   concurrently; each thread owns its counter dict, so recording never
   takes a lock. ``snapshot()`` merges all threads' counters.
3. **Nestable.** ``timed`` works as a decorator and as a (re-entrant)
   context manager; recursive or nested uses each accumulate under their
   own name with per-thread start stacks.

This module is intentionally stdlib-only: geometry/sensor kernels import
it, so it must never import back into ``repro``.
"""

from __future__ import annotations

import threading
import time
from functools import wraps
from typing import Callable, Dict, List, Optional


class _Timed:
    """Timer for one kernel name; decorator and context manager in one.

    Context-manager entries push start timestamps onto a per-thread stack,
    so nested/recursive ``with`` blocks of the same timer accumulate
    correctly.
    """

    __slots__ = ("_registry", "name", "_starts")

    def __init__(self, registry: "PerfRegistry", name: str) -> None:
        self._registry = registry
        self.name = name
        self._starts = threading.local()

    def __enter__(self) -> "_Timed":
        if self._registry.enabled:
            stack = getattr(self._starts, "stack", None)
            if stack is None:
                stack = self._starts.stack = []
            stack.append(time.perf_counter_ns())
        return self

    def __exit__(self, *exc) -> bool:
        if self._registry.enabled:
            stack = getattr(self._starts, "stack", None)
            if stack:  # guard: registry enabled mid-flight
                self._registry.record(self.name,
                                      time.perf_counter_ns() - stack.pop())
        return False

    def __call__(self, fn: Callable) -> Callable:
        registry = self._registry
        name = self.name

        @wraps(fn)
        def wrapper(*args, **kwargs):
            if not registry.enabled:
                return fn(*args, **kwargs)
            start = time.perf_counter_ns()
            try:
                return fn(*args, **kwargs)
            finally:
                registry.record(name, time.perf_counter_ns() - start)

        wrapper.__wrapped__ = fn
        return wrapper


class PerfRegistry:
    """Per-kernel ``calls``/``total_ns`` counters, merged across threads."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._thread_counters: List[Dict[str, List[int]]] = []
        self._local = threading.local()

    # -- recording ------------------------------------------------------
    def _counters(self) -> Dict[str, List[int]]:
        counters = getattr(self._local, "counters", None)
        if counters is None:
            counters = {}
            self._local.counters = counters
            with self._lock:
                self._thread_counters.append(counters)
        return counters

    def record(self, name: str, elapsed_ns: int, calls: int = 1) -> None:
        """Accumulate ``calls`` invocations totalling ``elapsed_ns``."""
        counters = self._counters()
        entry = counters.get(name)
        if entry is None:
            entry = counters[name] = [0, 0]
        entry[0] += calls
        entry[1] += elapsed_ns

    def timed(self, name: str) -> _Timed:
        """A decorator / re-entrant context manager timing ``name``."""
        return _Timed(self, name)

    # -- lifecycle ------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Zero all counters (every thread's)."""
        with self._lock:
            thread_counters = list(self._thread_counters)
        for counters in thread_counters:
            counters.clear()

    # -- export ---------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Merged point-in-time view: name -> calls/total_ns/mean_ns.

        Counter updates are two int adds under the GIL; a snapshot taken
        while other threads record may lag by one in-flight update, which
        is fine for performance telemetry.
        """
        with self._lock:
            thread_counters = list(self._thread_counters)
        merged: Dict[str, List[int]] = {}
        for counters in thread_counters:
            for name, entry in list(counters.items()):
                calls, total_ns = entry[0], entry[1]
                acc = merged.get(name)
                if acc is None:
                    merged[name] = [calls, total_ns]
                else:
                    acc[0] += calls
                    acc[1] += total_ns
        return {
            name: {
                "calls": calls,
                "total_ns": total_ns,
                "mean_ns": total_ns / calls if calls else 0.0,
            }
            for name, (calls, total_ns) in sorted(merged.items())
        }


#: Process-wide default registry; kernel call sites attach to this one.
REGISTRY = PerfRegistry()


def timed(name: str, registry: Optional[PerfRegistry] = None) -> _Timed:
    """Module-level convenience: time ``name`` against ``REGISTRY``."""
    return (registry if registry is not None else REGISTRY).timed(name)
