"""Semantic max-mixture data association (Stannartz et al. [58]).

Associating detections to HD-map landmarks is ambiguous when landmarks
crowd together; a wrong hard assignment corrupts the pose. The max-mixture
trick keeps every plausible association (plus a null hypothesis) as a
mixture component and, at each optimization step, lets the *best* component
win — re-evaluated inside a sliding window of recent frames so late
evidence can flip an early wrong association. Semantic class labels prune
the mixture, which is the paper's headline benefit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.elements import PointLandmark
from repro.core.hdmap import HDMap
from repro.core.ids import ElementId
from repro.geometry.transform import SE2
from repro.geometry.vec import wrap_angle


@dataclass(frozen=True)
class SemanticDetection:
    """Body-frame point detection with a semantic class."""

    body_point: np.ndarray
    label: str


@dataclass
class AssociationResult:
    """Winning component per detection (None = null hypothesis)."""

    landmark_ids: List[Optional[ElementId]]
    inlier_count: int


class MaxMixtureAssociator:
    """Per-frame semantic max-mixture association."""

    def __init__(self, hdmap: HDMap, sigma: float = 0.5,
                 null_weight: float = 0.02, gate: float = 6.0,
                 use_semantics: bool = True) -> None:
        self.map = hdmap
        self.sigma = sigma
        self.null_weight = null_weight
        self.gate = gate
        self.use_semantics = use_semantics

    def associate(self, pose: SE2, detections: Sequence[SemanticDetection]
                  ) -> AssociationResult:
        ids: List[Optional[ElementId]] = []
        inliers = 0
        radius = max((float(np.hypot(*d.body_point)) for d in detections),
                     default=10.0) + self.gate + 5.0
        landmarks = self.map.landmarks_in_radius(pose.x, pose.y, radius)
        for det in detections:
            world = pose.apply(det.body_point)
            best_id: Optional[ElementId] = None
            best_likelihood = self.null_weight  # null hypothesis floor
            for lm in landmarks:
                if self.use_semantics and lm.id.kind != det.label:
                    continue
                d2 = float((lm.position[0] - world[0])**2
                           + (lm.position[1] - world[1])**2)
                if d2 > self.gate**2:
                    continue
                likelihood = float(np.exp(-0.5 * d2 / self.sigma**2))
                if likelihood > best_likelihood:
                    best_likelihood = likelihood
                    best_id = lm.id
            ids.append(best_id)
            inliers += int(best_id is not None)
        return AssociationResult(landmark_ids=ids, inlier_count=inliers)


@dataclass
class _Frame:
    odom_from_prev: SE2  # body-frame increment from the previous frame
    detections: List[SemanticDetection]


class WindowedPoseEstimator:
    """Sliding-window pose estimation with max-mixture re-association.

    Each window iteration: (1) predict poses through the window from the
    anchor using odometry, (2) re-associate every frame's detections with
    the max-mixture rule, (3) solve a rigid correction aligning all inlier
    detections, (4) repeat until associations stabilize.
    """

    def __init__(self, hdmap: HDMap, window: int = 5,
                 use_semantics: bool = True, sigma: float = 0.5) -> None:
        self.associator = MaxMixtureAssociator(hdmap, sigma=sigma,
                                               use_semantics=use_semantics)
        self.map = hdmap
        self.window = window
        self._frames: List[_Frame] = []
        self._anchor: Optional[SE2] = None

    def start(self, initial: SE2) -> None:
        self._anchor = initial
        self._frames = []

    def push(self, odom_from_prev: SE2,
             detections: Sequence[SemanticDetection]) -> SE2:
        """Add a frame; returns the refined current pose."""
        if self._anchor is None:
            raise RuntimeError("call start() first")
        self._frames.append(_Frame(odom_from_prev, list(detections)))
        if len(self._frames) > self.window:
            # Slide: fold the oldest increment into the anchor.
            oldest = self._frames.pop(0)
            self._anchor = self._anchor @ oldest.odom_from_prev
        return self._optimize()

    # ------------------------------------------------------------------
    def _window_poses(self) -> List[SE2]:
        poses = []
        cur = self._anchor
        for frame in self._frames:
            cur = cur @ frame.odom_from_prev
            poses.append(cur)
        return poses

    def _optimize(self, iterations: int = 4) -> SE2:
        assert self._anchor is not None
        for _ in range(iterations):
            poses = self._window_poses()
            src: List[np.ndarray] = []
            dst: List[np.ndarray] = []
            for pose, frame in zip(poses, self._frames):
                result = self.associator.associate(pose, frame.detections)
                for det, lm_id in zip(frame.detections, result.landmark_ids):
                    if lm_id is None:
                        continue
                    lm = self.map.get(lm_id)
                    assert isinstance(lm, PointLandmark)
                    src.append(pose.apply(det.body_point))
                    dst.append(lm.position)
            if len(src) < 2:
                break
            correction = _umeyama(np.array(src), np.array(dst))
            self._anchor = correction @ self._anchor
            if (abs(correction.x) < 1e-5 and abs(correction.y) < 1e-5
                    and abs(correction.theta) < 1e-6):
                break
        poses = self._window_poses()
        return poses[-1] if poses else self._anchor


def _umeyama(src: np.ndarray, dst: np.ndarray) -> SE2:
    mu_s = src.mean(axis=0)
    mu_d = dst.mean(axis=0)
    s = src - mu_s
    d = dst - mu_d
    cos_sum = float(np.sum(s[:, 0] * d[:, 0] + s[:, 1] * d[:, 1]))
    sin_sum = float(np.sum(s[:, 0] * d[:, 1] - s[:, 1] * d[:, 0]))
    theta = float(np.arctan2(sin_sum, cos_sum))
    c, sn = np.cos(theta), np.sin(theta)
    rot_mu = np.array([c * mu_s[0] - sn * mu_s[1],
                       sn * mu_s[0] + c * mu_s[1]])
    t = mu_d - rot_mu
    return SE2(float(t[0]), float(t[1]), theta)
