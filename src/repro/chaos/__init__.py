"""repro.chaos — fault injection and invariant certification for the
serve→ingest loop.

Public API:

- :class:`FaultPlan` / :class:`FaultSpec` and the ``FAULT_CLASSES`` /
  fault-point name constants (:mod:`repro.chaos.faults`) — deterministic,
  seedable decisions about *what* fails *when*;
- :class:`ChaosHarness` / :class:`ChaosWorkload`
  (:mod:`repro.chaos.harness`) — drives the real pipeline + server +
  service under a plan through their public injection seams;
- :class:`ClusterChaosHarness` / :class:`ClusterWorkload`
  (:mod:`repro.chaos.cluster`) — the ``shard`` fault class: shard
  crashes, slow shards, and rebalances against the sharded
  :class:`~repro.cluster.router.ClusterRouter`, certifying the same
  five invariants from the router journal, merged snapshot, and
  per-shard change logs;
- :class:`ChaosReport` / :class:`InvariantResult` /
  :func:`check_invariants` (:mod:`repro.chaos.report`) — certifies the
  five degradation invariants (no lost acked observations, no duplicate
  published patches, version monotonicity, bounded freshness lag, zero
  constraint violations served) from the run's :mod:`repro.obs` event
  stream, metrics, change log, and a constraint scan of the served map.

``python -m repro.cli chaos-bench`` runs the curated fault matrix;
``docs/OPERATIONS.md`` maps the symptoms these faults produce to the
metrics/events that surface them and the knobs that mitigate them.
"""

from repro.chaos.cluster import (
    ClusterChaosHarness,
    ClusterWorkload,
    canonical_map_bytes,
)
from repro.chaos.faults import (
    ALL_FAULT_POINTS,
    BUS_LEASE_STORM,
    BUS_SLOW_CONSUMER,
    CLUSTER_REBALANCE,
    CLUSTER_SHARD_CRASH,
    CLUSTER_SLOW_SHARD,
    FAULT_CLASSES,
    GEOMETRY_BROKEN_BOUNDARY,
    GEOMETRY_DEGENERATE_LANE,
    GEOMETRY_ORPHAN_REGULATORY,
    PIPELINE_POISON,
    PIPELINE_WORKER_CRASH,
    PUBLISH_CONFLICT,
    PUBLISH_TRANSIENT,
    SENSOR_CLOCK_SKEW,
    SENSOR_CORRUPT,
    SENSOR_DELAY,
    SENSOR_DROP,
    SENSOR_DUPLICATE,
    SERVE_HOT_SHARD,
    SERVE_INVALIDATION_STORM,
    SERVE_SPIKE,
    FaultPlan,
    FaultPoint,
    FaultSpec,
    curated_matrix,
)
from repro.chaos.harness import ChaosHarness, ChaosWorkload
from repro.chaos.report import (
    ChaosReport,
    InvariantResult,
    check_invariants,
    check_served_map_clean,
)

__all__ = [
    "ALL_FAULT_POINTS",
    "BUS_LEASE_STORM",
    "BUS_SLOW_CONSUMER",
    "CLUSTER_REBALANCE",
    "CLUSTER_SHARD_CRASH",
    "CLUSTER_SLOW_SHARD",
    "FAULT_CLASSES",
    "GEOMETRY_BROKEN_BOUNDARY",
    "GEOMETRY_DEGENERATE_LANE",
    "GEOMETRY_ORPHAN_REGULATORY",
    "PIPELINE_POISON",
    "PIPELINE_WORKER_CRASH",
    "PUBLISH_CONFLICT",
    "PUBLISH_TRANSIENT",
    "SENSOR_CLOCK_SKEW",
    "SENSOR_CORRUPT",
    "SENSOR_DELAY",
    "SENSOR_DROP",
    "SENSOR_DUPLICATE",
    "SERVE_HOT_SHARD",
    "SERVE_INVALIDATION_STORM",
    "SERVE_SPIKE",
    "ChaosHarness",
    "ChaosReport",
    "ChaosWorkload",
    "ClusterChaosHarness",
    "ClusterWorkload",
    "FaultPlan",
    "FaultPoint",
    "FaultSpec",
    "InvariantResult",
    "canonical_map_bytes",
    "check_invariants",
    "check_served_map_clean",
    "curated_matrix",
]
